//! Sequence (temporal) models — the paper's §7 caveat, made concrete.
//!
//! Frame-level detectors are functions of a single frame, so reduced frame
//! sampling leaves their *output distribution* unchanged — that is what
//! makes sampling a random intervention. A model that processes frame
//! **sequences** (action recognition, motion analysis) breaks this: its
//! per-frame output depends on neighbouring frames, and when sampling
//! stretches the effective inter-frame gap, the outputs themselves change.
//! "Simply considering it as a random intervention seems inappropriate"
//! (§7) — this module demonstrates exactly that, and that profile repair
//! (whose correction set may retain neighbour access) still rescues the
//! bound.
//!
//! [`MotionEnergyModel`] scores each frame by the magnitude of object
//! motion relative to the frame `stride` steps earlier — a stand-in for an
//! RNN action detector. Its output grows with the stride because objects
//! move further between more-separated frames.

use smokescreen_video::{ObjectClass, VideoCorpus};

/// A model over frame sequences: per-frame output depends on a temporal
/// context window, not just the frame itself.
pub trait SequenceModel: Send + Sync {
    /// Model name.
    fn name(&self) -> &str;

    /// Output for the frame at `idx` when the previous available frame is
    /// `stride` positions earlier (stride 1 = undegraded video; sampling
    /// at fraction `f` makes the expected stride `1/f`).
    fn output(&self, corpus: &VideoCorpus, idx: usize, stride: usize) -> f64;

    /// Outputs over the whole corpus at a fixed stride.
    fn outputs_at_stride(&self, corpus: &VideoCorpus, stride: usize) -> Vec<f64> {
        (0..corpus.len())
            .map(|i| self.output(corpus, i, stride))
            .collect()
    }
}

/// Motion-energy scorer: total displacement of tracked objects between a
/// frame and its temporal predecessor, normalized per object.
#[derive(Debug, Clone, Copy, Default)]
pub struct MotionEnergyModel;

impl SequenceModel for MotionEnergyModel {
    fn name(&self) -> &str {
        "motion-energy"
    }

    fn output(&self, corpus: &VideoCorpus, idx: usize, stride: usize) -> f64 {
        let stride = stride.max(1);
        let Some(frame) = corpus.frame(idx) else {
            return 0.0;
        };
        let Some(prev) = idx.checked_sub(stride).and_then(|p| corpus.frame(p)) else {
            return 0.0;
        };
        // Match objects by track id; displaced distance per matched car,
        // plus a unit charge for appear/disappear events.
        let mut energy = 0.0;
        let mut matched = 0usize;
        for obj in &frame.objects {
            if obj.class != ObjectClass::Car {
                continue;
            }
            match prev.objects.iter().find(|o| o.id == obj.id) {
                Some(before) => {
                    let dx = f64::from(obj.bbox.x - before.bbox.x);
                    let dy = f64::from(obj.bbox.y - before.bbox.y);
                    energy += (dx * dx + dy * dy).sqrt();
                    matched += 1;
                }
                None => energy += 0.05, // appearance event
            }
        }
        for o in &prev.objects {
            if o.class == ObjectClass::Car
                && !frame.objects.iter().any(|c| c.id == o.id)
            {
                energy += 0.05; // disappearance event
            }
        }
        let _ = matched;
        energy
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smokescreen_video::synth::DatasetPreset;

    fn mean(v: &[f64]) -> f64 {
        if v.is_empty() {
            0.0
        } else {
            v.iter().sum::<f64>() / v.len() as f64
        }
    }

    #[test]
    fn motion_grows_with_stride() {
        // The §7 point: sampling (larger effective stride) shifts the
        // output distribution, so it is NOT a random intervention for
        // sequence models.
        let corpus = DatasetPreset::Detrac.generate(31).slice(0, 3_000);
        let model = MotionEnergyModel;
        let s1 = mean(&model.outputs_at_stride(&corpus, 1));
        let s5 = mean(&model.outputs_at_stride(&corpus, 5));
        let s20 = mean(&model.outputs_at_stride(&corpus, 20));
        assert!(s1 > 0.0);
        assert!(
            s5 > s1 * 1.5 && s20 > s5,
            "motion energy must grow with stride: s1={s1} s5={s5} s20={s20}"
        );
    }

    #[test]
    fn frame_level_detector_is_stride_invariant_by_contrast() {
        // Control: a frame-level count does not depend on the stride at
        // all — that is why the paper's Algorithms 1–2 apply to it under
        // sampling but not to sequence models.
        let corpus = DatasetPreset::Detrac.generate(32).slice(0, 500);
        let per_frame: Vec<f64> = corpus.ground_truth_counts(ObjectClass::Car);
        // "stride" has no meaning per-frame; identical outputs regardless
        // of which other frames are sampled.
        assert_eq!(per_frame, corpus.ground_truth_counts(ObjectClass::Car));
    }

    #[test]
    fn boundary_frames_are_safe() {
        let corpus = DatasetPreset::NightStreet.generate(33).slice(0, 50);
        let model = MotionEnergyModel;
        assert_eq!(model.output(&corpus, 0, 1), 0.0); // no predecessor
        assert_eq!(model.output(&corpus, 3, 10), 0.0); // stride too deep
        assert_eq!(model.output(&corpus, 1_000, 1), 0.0); // out of range
    }
}
