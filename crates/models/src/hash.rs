//! Deterministic hashing for detection decisions.
//!
//! A real network is a deterministic function of its input: the same frame
//! at the same resolution always produces the same boxes. The simulators
//! get the same property by deriving every stochastic-looking decision from
//! a splitmix64 hash of `(model seed, frame id, object id, resolution,
//! stream)` — *not* from a shared RNG, whose state would depend on
//! processing order and break the §3.3.2 reuse cache.

/// splitmix64 — fast, well-distributed 64-bit mixer.
#[inline]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

/// Combines a list of words into one hash.
pub fn combine(words: &[u64]) -> u64 {
    let mut acc = 0x51_7C_C1_B7_27_22_0A_95u64;
    for &w in words {
        acc = splitmix64(acc ^ w);
    }
    acc
}

/// Uniform `[0, 1)` value derived from the hash of the given words.
pub fn uniform01(words: &[u64]) -> f64 {
    // 53 high-quality mantissa bits.
    (combine(words) >> 11) as f64 / (1u64 << 53) as f64
}

/// Deterministic Poisson draw with mean `lambda`, derived from the words.
/// Uses inversion by sequential search (fine for the small rates used by
/// false-positive models).
pub fn poisson(words: &[u64], lambda: f64) -> u32 {
    if lambda <= 0.0 {
        return 0;
    }
    let mut u = uniform01(words);
    let mut p = (-lambda).exp();
    let mut k = 0u32;
    while u > p && k < 1_000 {
        u -= p;
        k += 1;
        p *= lambda / k as f64;
    }
    k
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        assert_eq!(combine(&[1, 2, 3]), combine(&[1, 2, 3]));
        assert_ne!(combine(&[1, 2, 3]), combine(&[1, 2, 4]));
        assert_ne!(combine(&[1, 2, 3]), combine(&[3, 2, 1]));
    }

    #[test]
    fn uniform01_in_range_and_spread() {
        let mut buckets = [0u32; 10];
        for i in 0..10_000u64 {
            let u = uniform01(&[i, 7]);
            assert!((0.0..1.0).contains(&u));
            buckets[(u * 10.0) as usize] += 1;
        }
        for &b in &buckets {
            assert!((700..1300).contains(&b), "bucket {b} far from uniform");
        }
    }

    #[test]
    fn poisson_mean_close_to_lambda() {
        let lambda = 2.5;
        let mean: f64 = (0..20_000u64)
            .map(|i| f64::from(poisson(&[i, 99], lambda)))
            .sum::<f64>()
            / 20_000.0;
        assert!((mean - lambda).abs() < 0.1, "mean={mean}");
    }

    #[test]
    fn poisson_zero_lambda() {
        assert_eq!(poisson(&[1], 0.0), 0);
        assert_eq!(poisson(&[1], -3.0), 0);
    }
}
