//! `SimYoloV4` — the YOLOv4/Darknet analogue.
//!
//! Characteristics mirrored from the paper's setup:
//!
//! * native input 608×608; Darknet requires input sides that are multiples
//!   of 32;
//! * detection threshold 0.7;
//! * one-stage detector: fast, slightly worse on very small objects than
//!   Mask R-CNN (higher `area50`);
//! * **the 384×384 anomaly** (Figures 7–8): on low-contrast scenes, inputs
//!   in a band around 384 px hit an anchor-grid mismatch that makes NMS
//!   fail to merge duplicate boxes, inflating car counts. The paper found
//!   the prediction-count distribution at 384×384 deviates wildly from the
//!   truth while 320×320 stays close — error is *non-monotone* in
//!   resolution, which is exactly why administrators need profiles instead
//!   of intuition.

use std::collections::HashMap;

use smokescreen_video::{Frame, ObjectClass, Resolution};

use crate::backbone::SimBackbone;
use crate::detector::{Detections, Detector};
use crate::response::ResponseCurve;

/// Simulated YOLOv4.
#[derive(Debug, Clone)]
pub struct SimYoloV4 {
    backbone: SimBackbone,
    quirk: QuirkBand,
}

/// The duplicate-detection band.
#[derive(Debug, Clone, Copy)]
struct QuirkBand {
    lo: u32,
    hi: u32,
    /// Duplicate probability at low scene contrast.
    dup_prob: f64,
    /// Contrast below which the quirk engages (night scenes).
    contrast_ceiling: f32,
}

impl SimYoloV4 {
    /// Standard configuration (threshold 0.7, native 608×608).
    pub fn new(seed: u64) -> Self {
        let mut curves = HashMap::new();
        let vehicle = ResponseCurve {
            area50: 320.0,
            slope: 1.25,
            p_max: 0.985,
            contrast_gamma: 1.5,
        };
        curves.insert(ObjectClass::Car, vehicle);
        curves.insert(ObjectClass::Truck, ResponseCurve { area50: 380.0, ..vehicle });
        curves.insert(ObjectClass::Bus, ResponseCurve { area50: 400.0, ..vehicle });
        curves.insert(
            ObjectClass::Bicycle,
            ResponseCurve { area50: 260.0, p_max: 0.93, ..vehicle },
        );
        curves.insert(
            ObjectClass::Person,
            ResponseCurve {
                area50: 240.0,
                slope: 1.2,
                p_max: 0.96,
                contrast_gamma: 1.4,
            },
        );
        SimYoloV4 {
            backbone: SimBackbone {
                seed: seed ^ 0x59_4F_4C_4F, // "YOLO"
                curves,
                fp_rate_native: 0.015,
                fp_resolution_exponent: 0.35,
                fp_classes: vec![ObjectClass::Car, ObjectClass::Person],
                threshold: 0.7,
                native: Resolution::square(608),
            },
            quirk: QuirkBand {
                lo: 368,
                hi: 400,
                dup_prob: 0.55,
                contrast_ceiling: 0.5,
            },
        }
    }

    fn quirk_engages(&self, frame: &Frame, res: Resolution) -> bool {
        if res.width < self.quirk.lo || res.width > self.quirk.hi {
            return false;
        }
        // Scene contrast: mean object contrast; empty frames can't glitch.
        let objs = &frame.objects;
        if objs.is_empty() {
            return false;
        }
        let mean_contrast: f32 =
            objs.iter().map(|o| o.contrast).sum::<f32>() / objs.len() as f32;
        mean_contrast < self.quirk.contrast_ceiling
    }
}

impl Detector for SimYoloV4 {
    fn name(&self) -> &str {
        "sim-yolov4"
    }

    fn native_resolution(&self) -> Resolution {
        self.backbone.native
    }

    fn supports(&self, res: Resolution) -> bool {
        res.is_multiple_of(32)
            && res.width <= self.backbone.native.width
            && res.height <= self.backbone.native.height
    }

    fn detect(&self, frame: &Frame, res: Resolution) -> Detections {
        let mut detections = self.backbone.detect(frame, res);
        if self.quirk_engages(frame, res) {
            self.backbone.inject_duplicates(
                &mut detections,
                frame,
                res,
                ObjectClass::Car,
                self.quirk.dup_prob,
            );
        }
        detections
    }

    fn inference_cost_ms(&self, res: Resolution) -> f64 {
        // ≈30 ms per frame at 608² on the paper's 1080 Ti, linear in pixels
        // with a fixed 6 ms load/transform overhead.
        6.0 + 24.0 * res.pixels() as f64 / Resolution::square(608).pixels() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smokescreen_video::synth::{night_street, DatasetPreset};

    #[test]
    fn deterministic_per_frame_resolution() {
        let corpus = DatasetPreset::Detrac.generate(3);
        let yolo = SimYoloV4::new(1);
        let f = corpus.frame(100).unwrap();
        let res = Resolution::square(416);
        assert_eq!(yolo.detect(f, res), yolo.detect(f, res));
    }

    #[test]
    fn supports_darknet_resolutions_only() {
        let yolo = SimYoloV4::new(1);
        assert!(yolo.supports(Resolution::square(608)));
        assert!(yolo.supports(Resolution::square(320)));
        assert!(!yolo.supports(Resolution::square(300)));
        assert!(!yolo.supports(Resolution::square(640))); // above native
    }

    #[test]
    fn recall_degrades_with_resolution() {
        let corpus = DatasetPreset::Detrac.generate(5);
        let yolo = SimYoloV4::new(2);
        let count_at = |side: u32| -> f64 {
            corpus
                .frames()
                .iter()
                .take(800)
                .map(|f| yolo.count(f, Resolution::square(side), ObjectClass::Car))
                .sum()
        };
        let high = count_at(608);
        let low = count_at(128);
        assert!(
            low < high * 0.8,
            "low-res counts should drop: low={low} high={high}"
        );
    }

    #[test]
    fn quirk_band_inflates_night_counts() {
        let corpus = night_street().generate(11);
        let yolo = SimYoloV4::new(3);
        let mean_at = |side: u32| -> f64 {
            let frames: Vec<_> = corpus.frames().iter().take(3_000).collect();
            frames
                .iter()
                .map(|f| yolo.count(f, Resolution::square(side), ObjectClass::Car))
                .sum::<f64>()
                / frames.len() as f64
        };
        let at_608 = mean_at(608);
        let at_384 = mean_at(384);
        let at_320 = mean_at(320);
        // 384 must deviate from truth more than its *lower* neighbour —
        // the Figure 7 anomaly.
        let err_384 = (at_384 - at_608).abs() / at_608;
        let err_320 = (at_320 - at_608).abs() / at_608;
        assert!(
            err_384 > err_320,
            "expected non-monotone error: err384={err_384} err320={err_320}"
        );
    }

    #[test]
    fn quirk_does_not_engage_on_day_scenes() {
        let corpus = DatasetPreset::Detrac.generate(13); // contrast ≈ 0.7
        let yolo = SimYoloV4::new(4);
        let mean_at = |side: u32| -> f64 {
            let frames: Vec<_> = corpus.frames().iter().take(1_500).collect();
            frames
                .iter()
                .map(|f| yolo.count(f, Resolution::square(side), ObjectClass::Car))
                .sum::<f64>()
                / frames.len() as f64
        };
        let err_384 = (mean_at(384) - mean_at(608)).abs() / mean_at(608);
        let err_320 = (mean_at(320) - mean_at(608)).abs() / mean_at(608);
        assert!(
            err_384 <= err_320 + 0.05,
            "daytime 384 should be unremarkable: {err_384} vs {err_320}"
        );
    }

    #[test]
    fn cost_scales_with_pixels() {
        let yolo = SimYoloV4::new(1);
        assert!(
            yolo.inference_cost_ms(Resolution::square(608))
                > yolo.inference_cost_ms(Resolution::square(128))
        );
    }
}
