//! The ground-truth oracle.
//!
//! Returns the synthetic annotations verbatim at any resolution. The paper
//! treats model outputs at the highest resolution as ground truth; the
//! oracle is the limiting case and is used by tests and by experiment
//! harnesses that need the true `X_1 … X_N`.

use smokescreen_video::{Frame, Resolution};

use crate::detector::{Detection, Detections, Detector};

/// Perfect detector.
#[derive(Debug, Clone, Copy, Default)]
pub struct Oracle;

impl Detector for Oracle {
    fn name(&self) -> &str {
        "oracle"
    }

    fn native_resolution(&self) -> Resolution {
        Resolution::square(u32::MAX)
    }

    fn supports(&self, _res: Resolution) -> bool {
        true
    }

    fn detect(&self, frame: &Frame, _res: Resolution) -> Detections {
        Detections {
            items: frame
                .objects
                .iter()
                .map(|o| Detection {
                    class: o.class,
                    score: 1.0,
                    bbox: o.bbox,
                    truth_id: Some(o.id),
                })
                .collect(),
        }
    }

    fn inference_cost_ms(&self, _res: Resolution) -> f64 {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smokescreen_video::synth::DatasetPreset;
    use smokescreen_video::ObjectClass;

    #[test]
    fn oracle_matches_ground_truth_everywhere() {
        let corpus = DatasetPreset::Detrac.generate(2);
        let o = Oracle;
        for f in corpus.frames().iter().take(500) {
            assert_eq!(
                o.count(f, Resolution::square(32), ObjectClass::Car) as usize,
                f.count_class(ObjectClass::Car)
            );
        }
    }
}
