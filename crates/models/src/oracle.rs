//! The ground-truth oracle and the fault-tolerant invocation layer.
//!
//! [`Oracle`] returns the synthetic annotations verbatim at any
//! resolution. The paper treats model outputs at the highest resolution
//! as ground truth; the oracle is the limiting case and is used by tests
//! and by experiment harnesses that need the true `X_1 … X_N`.
//!
//! [`detect_with_retry`] is the oracle *path*: the single fault-aware
//! entry point every model invocation funnels through. It consults an
//! optional seeded [`FaultPlan`], retries transient failures with a
//! deterministic exponential backoff ([`RetryPolicy`] — the backoff is
//! *simulated* and accounted, never slept, so chaos runs stay fast and
//! byte-reproducible), and surfaces permanent failures as the typed
//! [`ModelError`] taxonomy instead of panicking or silently skipping
//! frames.

use smokescreen_rt::fault::{FaultKind, FaultPlan};
use smokescreen_video::{Frame, Resolution};

use crate::detector::{Detection, Detections, Detector, ModelError, ModelResult};

/// Retry budget and deterministic backoff schedule for model calls.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Maximum attempts per call (first try included). At least 1.
    pub max_attempts: u32,
    /// Simulated backoff before the first retry, ms.
    pub base_backoff_ms: f64,
    /// Multiplier applied per further retry (exponential backoff).
    pub backoff_factor: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            base_backoff_ms: 10.0,
            backoff_factor: 2.0,
        }
    }
}

impl RetryPolicy {
    /// Simulated backoff charged before retry number `retry` (1-based):
    /// `base · factor^(retry − 1)` — the standard exponential schedule,
    /// fully determined by the policy (no jitter, so replays are exact).
    pub fn backoff_ms(&self, retry: u32) -> f64 {
        debug_assert!(retry >= 1);
        self.base_backoff_ms * self.backoff_factor.powi(retry as i32 - 1)
    }

    /// Total simulated backoff across `retries` consecutive retries.
    pub fn total_backoff_ms(&self, retries: u32) -> f64 {
        (1..=retries).map(|r| self.backoff_ms(r)).sum()
    }
}

/// Outcome of a successful fault-aware model call.
#[derive(Debug, Clone, PartialEq)]
pub struct RetryOutcome {
    /// The model output (identical to the fault-free output — faults
    /// delay or drop calls, they never corrupt payloads).
    pub detections: Detections,
    /// Retries spent clearing transient faults (0 for a clean call).
    pub retries: u32,
    /// Simulated backoff time charged for those retries, ms.
    pub backoff_ms: f64,
    /// Extra simulated latency from a slow-response fault, ms.
    pub slow_ms: f64,
    /// Whether the result's cache shard is poisoned — the caller must
    /// not cache this output.
    pub poisoned: bool,
}

/// The stable 64-bit key identifying one `(frame, resolution)` model
/// call for fault scheduling. Pure in its inputs, so every layer (cache,
/// generation, tests) sees the same fault for the same logical call.
pub fn call_key(frame_id: u64, res: Resolution) -> u64 {
    frame_id ^ (u64::from(res.width) << 32) ^ (u64::from(res.height).rotate_left(16))
}

/// Runs a model call through the fault plan with retry-and-backoff.
///
/// * No plan, or no fault scheduled → one clean attempt.
/// * `Transient` → attempts fail until the fault clears; if it clears
///   within `policy.max_attempts` the call succeeds and reports its
///   retries + simulated backoff, otherwise
///   [`ModelError::TransientExhausted`].
/// * `Timeout` → every attempt fails; [`ModelError::Timeout`] after
///   `policy.max_attempts`.
/// * `Slow` / `CachePoison` → success with the extra latency /
///   poisoned flag reported.
///
/// Deterministic: the outcome is a pure function of
/// `(detector, frame, res, plan, policy)` — thread count and timing
/// never change it.
pub fn detect_with_retry(
    detector: &dyn Detector,
    frame: &Frame,
    res: Resolution,
    plan: Option<&FaultPlan>,
    policy: &RetryPolicy,
) -> ModelResult<RetryOutcome> {
    let fault = plan.and_then(|p| p.fault_for(call_key(frame.id, res)));
    let max_attempts = policy.max_attempts.max(1);
    match fault {
        None => Ok(RetryOutcome {
            detections: detector.try_detect(frame, res)?,
            retries: 0,
            backoff_ms: 0.0,
            slow_ms: 0.0,
            poisoned: false,
        }),
        Some(FaultKind::Slow { extra_ms }) => Ok(RetryOutcome {
            detections: detector.try_detect(frame, res)?,
            retries: 0,
            backoff_ms: 0.0,
            slow_ms: f64::from(extra_ms),
            poisoned: false,
        }),
        Some(FaultKind::CachePoison) => Ok(RetryOutcome {
            detections: detector.try_detect(frame, res)?,
            retries: 0,
            backoff_ms: 0.0,
            slow_ms: 0.0,
            poisoned: true,
        }),
        Some(FaultKind::Transient { clears_after }) => {
            if clears_after < max_attempts {
                // Attempts 0..clears_after fail, each failure buys one
                // backoff step; the clearing attempt succeeds.
                Ok(RetryOutcome {
                    detections: detector.try_detect(frame, res)?,
                    retries: clears_after,
                    backoff_ms: policy.total_backoff_ms(clears_after),
                    slow_ms: 0.0,
                    poisoned: false,
                })
            } else {
                Err(ModelError::TransientExhausted {
                    model: detector.name().to_string(),
                    frame_id: frame.id,
                    attempts: max_attempts,
                })
            }
        }
        Some(FaultKind::Timeout) => Err(ModelError::Timeout {
            model: detector.name().to_string(),
            frame_id: frame.id,
            attempts: max_attempts,
        }),
    }
}

/// Perfect detector.
#[derive(Debug, Clone, Copy, Default)]
pub struct Oracle;

impl Detector for Oracle {
    fn name(&self) -> &str {
        "oracle"
    }

    fn native_resolution(&self) -> Resolution {
        Resolution::square(u32::MAX)
    }

    fn supports(&self, _res: Resolution) -> bool {
        true
    }

    fn detect(&self, frame: &Frame, _res: Resolution) -> Detections {
        Detections {
            items: frame
                .objects
                .iter()
                .map(|o| Detection {
                    class: o.class,
                    score: 1.0,
                    bbox: o.bbox,
                    truth_id: Some(o.id),
                })
                .collect(),
        }
    }

    fn inference_cost_ms(&self, _res: Resolution) -> f64 {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smokescreen_video::synth::DatasetPreset;
    use smokescreen_video::ObjectClass;

    #[test]
    fn backoff_schedule_is_exponential_and_deterministic() {
        let policy = RetryPolicy::default();
        assert_eq!(policy.backoff_ms(1), 10.0);
        assert_eq!(policy.backoff_ms(2), 20.0);
        assert_eq!(policy.backoff_ms(3), 40.0);
        assert_eq!(policy.total_backoff_ms(3), 70.0);
        assert_eq!(policy.total_backoff_ms(0), 0.0);
    }

    #[test]
    fn retry_outcomes_replay_exactly_per_fault_kind() {
        let corpus = DatasetPreset::Detrac.generate(6).slice(0, 3_000);
        let o = Oracle;
        let res = Resolution::square(416);
        let plan = FaultPlan::new(13, 0.5);
        let policy = RetryPolicy::default();
        let (mut clean, mut retried, mut slow, mut poisoned, mut timeout, mut exhausted) =
            (0u32, 0u32, 0u32, 0u32, 0u32, 0u32);
        for f in corpus.frames() {
            let a = detect_with_retry(&o, f, res, Some(&plan), &policy);
            let b = detect_with_retry(&o, f, res, Some(&plan), &policy);
            assert_eq!(a, b, "fault outcomes must be pure in (plan, key)");
            match a {
                Ok(out) => {
                    // Faults never corrupt payloads.
                    assert_eq!(out.detections, o.detect(f, res));
                    if out.retries > 0 {
                        assert_eq!(out.backoff_ms, policy.total_backoff_ms(out.retries));
                        retried += 1;
                    } else if out.slow_ms > 0.0 {
                        slow += 1;
                    } else if out.poisoned {
                        poisoned += 1;
                    } else {
                        clean += 1;
                    }
                }
                Err(ModelError::Timeout { attempts, .. }) => {
                    assert_eq!(attempts, policy.max_attempts);
                    timeout += 1;
                }
                Err(ModelError::TransientExhausted { attempts, .. }) => {
                    assert_eq!(attempts, policy.max_attempts);
                    exhausted += 1;
                }
                Err(e) => panic!("unexpected error {e}"),
            }
        }
        assert!(
            clean > 0 && retried > 0 && slow > 0 && poisoned > 0 && timeout > 0 && exhausted > 0,
            "all paths must be exercised: clean={clean} retried={retried} slow={slow} \
             poisoned={poisoned} timeout={timeout} exhausted={exhausted}"
        );
    }

    #[test]
    fn no_plan_means_no_faults() {
        let corpus = DatasetPreset::Detrac.generate(7).slice(0, 200);
        let o = Oracle;
        let res = Resolution::square(320);
        for f in corpus.frames() {
            let out = detect_with_retry(&o, f, res, None, &RetryPolicy::default()).unwrap();
            assert_eq!(out.retries, 0);
            assert_eq!(out.slow_ms, 0.0);
            assert!(!out.poisoned);
            assert_eq!(out.detections, o.detect(f, res));
        }
    }

    #[test]
    fn oracle_matches_ground_truth_everywhere() {
        let corpus = DatasetPreset::Detrac.generate(2);
        let o = Oracle;
        for f in corpus.frames().iter().take(500) {
            assert_eq!(
                o.count(f, Resolution::square(32), ObjectClass::Car) as usize,
                f.count_class(ObjectClass::Car)
            );
        }
    }
}
