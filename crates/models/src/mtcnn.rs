//! `SimMtcnn` — the MTCNN face-detector analogue.
//!
//! The paper uses MTCNN (threshold 0.8) to decide which frames contain a
//! "face" for the image-removal intervention; those memberships are stored
//! as prior information. Faces are tiny objects, so the cascade has a very
//! low `area50` but collapses quickly once frames shrink.

use std::collections::HashMap;

use smokescreen_video::{Frame, ObjectClass, Resolution};

use crate::backbone::SimBackbone;
use crate::detector::{Detections, Detector};
use crate::response::ResponseCurve;

/// Simulated MTCNN face detector.
#[derive(Debug, Clone)]
pub struct SimMtcnn {
    backbone: SimBackbone,
}

impl SimMtcnn {
    /// Standard configuration (threshold 0.8).
    pub fn new(seed: u64) -> Self {
        let mut curves = HashMap::new();
        curves.insert(
            ObjectClass::Face,
            ResponseCurve {
                area50: 36.0,
                slope: 1.6,
                p_max: 0.97,
                contrast_gamma: 1.2,
            },
        );
        SimMtcnn {
            backbone: SimBackbone {
                seed: seed ^ 0x4D_54_43_4E, // "MTCN"
                curves,
                fp_rate_native: 0.002,
                fp_resolution_exponent: 0.2,
                fp_classes: vec![ObjectClass::Face],
                threshold: 0.8,
                native: Resolution::square(640),
            },
        }
    }
}

impl Detector for SimMtcnn {
    fn name(&self) -> &str {
        "sim-mtcnn"
    }

    fn native_resolution(&self) -> Resolution {
        self.backbone.native
    }

    fn supports(&self, res: Resolution) -> bool {
        // Fully convolutional cascade: any resolution up to native.
        res.width <= self.backbone.native.width && res.height <= self.backbone.native.height
    }

    fn detect(&self, frame: &Frame, res: Resolution) -> Detections {
        self.backbone.detect(frame, res)
    }

    fn inference_cost_ms(&self, res: Resolution) -> f64 {
        4.0 + 16.0 * res.pixels() as f64 / Resolution::square(640).pixels() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smokescreen_video::synth::DatasetPreset;

    #[test]
    fn detects_only_faces() {
        let corpus = DatasetPreset::NightStreet.generate(8);
        let m = SimMtcnn::new(1);
        for f in corpus.frames().iter().take(2_000) {
            let d = m.detect(f, Resolution::square(640));
            assert!(d.items.iter().all(|x| x.class == ObjectClass::Face));
        }
    }

    #[test]
    fn finds_a_reasonable_share_of_face_frames() {
        let corpus = DatasetPreset::Detrac.generate(8);
        let m = SimMtcnn::new(2);
        let gt: usize = corpus
            .frames()
            .iter()
            .filter(|f| f.contains_class(ObjectClass::Face))
            .count();
        let detected: usize = corpus
            .frames()
            .iter()
            .filter(|f| m.detect(f, Resolution::square(640)).contains(ObjectClass::Face))
            .count();
        assert!(gt > 0);
        // Faces are tiny; recall at native should still be non-trivial and
        // detections should not wildly exceed ground truth.
        assert!(detected as f64 > gt as f64 * 0.2, "detected={detected} gt={gt}");
        assert!(detected as f64 <= gt as f64 * 1.5 + 20.0, "detected={detected} gt={gt}");
    }

    #[test]
    fn face_recall_collapses_at_low_resolution() {
        let corpus = DatasetPreset::NightStreet.generate(9);
        let m = SimMtcnn::new(3);
        let count_at = |side: u32| -> usize {
            corpus
                .frames()
                .iter()
                .take(5_000)
                .filter(|f| m.detect(f, Resolution::square(side)).contains(ObjectClass::Face))
                .count()
        };
        let hi = count_at(640);
        let lo = count_at(96);
        assert!(lo < hi / 2, "face frames at 96px {lo} vs 640px {hi}");
    }
}
