//! Model-output cache.
//!
//! The §3.3.2 reuse strategy depends on never re-running the network for a
//! `(frame, resolution)` pair it has already processed: outputs for frames
//! sampled at a low rate are reused when the rate is raised, and across
//! intervention candidates that share a resolution. The cache also counts
//! invocations and accumulated simulated inference time, which is how the
//! §5.3.1 profile-generation-time experiment measures "model time" without
//! a GPU.
//!
//! Profile generation now runs candidate cells on `rt::pool` workers, so
//! the cache is shard-locked: keys hash to one of [`SHARD_COUNT`]
//! independent `RwLock`ed maps, letting workers at different resolutions
//! proceed without contending on a single lock. Accounting is defined to
//! be **schedule-independent**:
//!
//! * `model_runs` counts *distinct* `(frame, resolution)` keys materialized
//!   — if two workers race on the same cold key, the losing insert is
//!   reclassified as a cache hit, so the totals never depend on thread
//!   interleaving;
//! * `model_time_ms` is derived as `Σ_res runs(res) · cost(res)` over a
//!   sorted per-resolution run ledger rather than a float accumulator, so
//!   it is bit-identical across thread counts and equals
//!   `model_runs · T_model` exactly when one resolution is in play.

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicUsize, Ordering};

use smokescreen_rt::sync::{Mutex, RwLock};
use smokescreen_video::{Frame, ObjectClass, Resolution};

use crate::detector::{Detections, Detector};

/// Cache key: frame id × resolution (the detector is fixed per cache).
type Key = (u64, Resolution);

/// Number of independent lock shards.
pub const SHARD_COUNT: usize = 16;

/// Maps a key to its shard via a SplitMix64-style mix of the frame id and
/// resolution, so consecutive frame ids spread across shards.
fn shard_index(key: &Key) -> usize {
    let mut x = key.0 ^ (u64::from(key.1.width) << 32) ^ u64::from(key.1.height);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    (x ^ (x >> 31)) as usize % SHARD_COUNT
}

/// A caching wrapper around a detector.
///
/// Thread-safe and shard-locked; see the module docs for the concurrency
/// and accounting contract.
pub struct OutputCache<'d> {
    detector: &'d dyn Detector,
    shards: Vec<RwLock<HashMap<Key, Detections>>>,
    model_runs: AtomicUsize,
    cache_hits: AtomicUsize,
    /// Distinct-key model runs per resolution, ordered so the derived
    /// model-time sum is deterministic.
    runs_by_resolution: Mutex<BTreeMap<Resolution, usize>>,
}

/// Invocation accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Invocations {
    /// Times the underlying model actually ran.
    pub model_runs: usize,
    /// Times a cached output was served.
    pub cache_hits: usize,
    /// Simulated total model time in milliseconds.
    pub model_time_ms: f64,
}

impl<'d> OutputCache<'d> {
    /// Wraps a detector.
    pub fn new(detector: &'d dyn Detector) -> Self {
        OutputCache {
            detector,
            shards: (0..SHARD_COUNT).map(|_| RwLock::new(HashMap::new())).collect(),
            model_runs: AtomicUsize::new(0),
            cache_hits: AtomicUsize::new(0),
            runs_by_resolution: Mutex::new(BTreeMap::new()),
        }
    }

    /// The wrapped detector.
    pub fn detector(&self) -> &dyn Detector {
        self.detector
    }

    /// Runs (or replays) the model on a frame at a resolution.
    pub fn detect(&self, frame: &Frame, res: Resolution) -> Detections {
        let key = (frame.id, res);
        let shard = &self.shards[shard_index(&key)];
        if let Some(hit) = shard.read().get(&key) {
            self.cache_hits.fetch_add(1, Ordering::Relaxed);
            return hit.clone();
        }
        // Run the model outside the write lock so a slow inference never
        // blocks the shard. Detectors are deterministic per key, so a
        // racing duplicate computes the identical output.
        let out = self.detector.detect(frame, res);
        let mut entries = shard.write();
        match entries.entry(key) {
            std::collections::hash_map::Entry::Occupied(e) => {
                // Lost a cold-key race: the winner's insert owns the model
                // run; this call is accounted as a hit so totals stay
                // independent of scheduling.
                self.cache_hits.fetch_add(1, Ordering::Relaxed);
                e.get().clone()
            }
            std::collections::hash_map::Entry::Vacant(v) => {
                self.model_runs.fetch_add(1, Ordering::Relaxed);
                *self.runs_by_resolution.lock().entry(res).or_insert(0) += 1;
                v.insert(out.clone());
                out
            }
        }
    }

    /// Count of a class, through the cache.
    pub fn count(&self, frame: &Frame, res: Resolution, class: ObjectClass) -> f64 {
        self.detect(frame, res).count(class) as f64
    }

    /// Current accounting snapshot. `model_time_ms` is recomputed from the
    /// per-resolution ledger, so `model_time_ms = Σ runs(res) · cost(res)`
    /// holds exactly at every snapshot.
    pub fn invocations(&self) -> Invocations {
        let model_time_ms = self
            .runs_by_resolution
            .lock()
            .iter()
            .map(|(&res, &runs)| runs as f64 * self.detector.inference_cost_ms(res))
            .sum();
        Invocations {
            model_runs: self.model_runs.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            model_time_ms,
        }
    }

    /// Number of distinct `(frame, resolution)` outputs held.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().len()).sum()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.read().is_empty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::yolo::SimYoloV4;
    use smokescreen_video::synth::DatasetPreset;

    #[test]
    fn caches_by_frame_and_resolution() {
        let corpus = DatasetPreset::NightStreet.generate(1);
        let yolo = SimYoloV4::new(5);
        let cache = OutputCache::new(&yolo);
        let f = corpus.frame(10).unwrap();
        let r1 = Resolution::square(608);
        let r2 = Resolution::square(320);

        let a = cache.detect(f, r1);
        let b = cache.detect(f, r1);
        assert_eq!(a, b);
        let _ = cache.detect(f, r2);

        let inv = cache.invocations();
        assert_eq!(inv.model_runs, 2);
        assert_eq!(inv.cache_hits, 1);
        assert!(inv.model_time_ms > 0.0);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn cached_output_identical_to_direct() {
        let corpus = DatasetPreset::Detrac.generate(2);
        let yolo = SimYoloV4::new(6);
        let cache = OutputCache::new(&yolo);
        let f = corpus.frame(55).unwrap();
        let res = Resolution::square(416);
        assert_eq!(cache.detect(f, res), yolo.detect(f, res));
    }

    #[test]
    fn model_time_is_exactly_runs_times_cost() {
        let corpus = DatasetPreset::Detrac.generate(3);
        let yolo = SimYoloV4::new(7);
        let cache = OutputCache::new(&yolo);
        let res = Resolution::square(320);
        for i in 0..40 {
            let _ = cache.detect(corpus.frame(i % 25).unwrap(), res);
        }
        let inv = cache.invocations();
        assert_eq!(inv.model_runs, 25);
        assert_eq!(inv.cache_hits, 15);
        assert_eq!(
            inv.model_time_ms,
            inv.model_runs as f64 * smokescreen_models_cost(&yolo, res),
            "single-resolution model time must be exactly runs × cost"
        );
    }

    #[test]
    fn concurrent_access_keeps_accounting_schedule_independent() {
        let corpus = DatasetPreset::NightStreet.generate(4).slice(0, 200);
        let yolo = SimYoloV4::new(8);
        let cache = OutputCache::new(&yolo);
        let res = Resolution::square(512);
        // 8 threads all touch every frame: distinct keys = 200, total
        // calls = 1600, regardless of interleaving.
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for f in corpus.frames() {
                        let _ = cache.detect(f, res);
                    }
                });
            }
        });
        let inv = cache.invocations();
        assert_eq!(inv.model_runs, 200, "distinct keys only");
        assert_eq!(inv.model_runs + inv.cache_hits, 1600, "every call counted once");
        assert_eq!(cache.len(), 200);
        assert_eq!(
            inv.model_time_ms,
            200.0 * smokescreen_models_cost(&yolo, res)
        );
    }

    /// Cost helper without importing the trait into every assert.
    fn smokescreen_models_cost(d: &SimYoloV4, res: Resolution) -> f64 {
        Detector::inference_cost_ms(d, res)
    }
}
