//! Model-output cache.
//!
//! The §3.3.2 reuse strategy depends on never re-running the network for a
//! `(frame, resolution)` pair it has already processed: outputs for frames
//! sampled at a low rate are reused when the rate is raised, and across
//! intervention candidates that share a resolution. The cache also counts
//! invocations and accumulated simulated inference time, which is how the
//! §5.3.1 profile-generation-time experiment measures "model time" without
//! a GPU.

use std::collections::HashMap;

use smokescreen_rt::sync::RwLock;
use smokescreen_video::{Frame, ObjectClass, Resolution};

use crate::detector::{Detections, Detector};

/// Cache key: frame id × resolution (the detector is fixed per cache).
type Key = (u64, Resolution);

/// A caching wrapper around a detector.
///
/// Thread-safe; uses an RwLock'd HashMap (profile generation touches each
/// key once, so contention is not a concern — correctness and accounting
/// are).
pub struct OutputCache<'d> {
    detector: &'d dyn Detector,
    entries: RwLock<HashMap<Key, Detections>>,
    invocations: RwLock<Invocations>,
}

/// Invocation accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Invocations {
    /// Times the underlying model actually ran.
    pub model_runs: usize,
    /// Times a cached output was served.
    pub cache_hits: usize,
    /// Simulated total model time in milliseconds.
    pub model_time_ms: f64,
}

impl<'d> OutputCache<'d> {
    /// Wraps a detector.
    pub fn new(detector: &'d dyn Detector) -> Self {
        OutputCache {
            detector,
            entries: RwLock::new(HashMap::new()),
            invocations: RwLock::new(Invocations::default()),
        }
    }

    /// The wrapped detector.
    pub fn detector(&self) -> &dyn Detector {
        self.detector
    }

    /// Runs (or replays) the model on a frame at a resolution.
    pub fn detect(&self, frame: &Frame, res: Resolution) -> Detections {
        let key = (frame.id, res);
        if let Some(hit) = self.entries.read().get(&key) {
            self.invocations.write().cache_hits += 1;
            return hit.clone();
        }
        let out = self.detector.detect(frame, res);
        {
            let mut inv = self.invocations.write();
            inv.model_runs += 1;
            inv.model_time_ms += self.detector.inference_cost_ms(res);
        }
        self.entries.write().insert(key, out.clone());
        out
    }

    /// Count of a class, through the cache.
    pub fn count(&self, frame: &Frame, res: Resolution, class: ObjectClass) -> f64 {
        self.detect(frame, res).count(class) as f64
    }

    /// Current accounting snapshot.
    pub fn invocations(&self) -> Invocations {
        *self.invocations.read()
    }

    /// Number of distinct `(frame, resolution)` outputs held.
    pub fn len(&self) -> usize {
        self.entries.read().len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.read().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::yolo::SimYoloV4;
    use smokescreen_video::synth::DatasetPreset;

    #[test]
    fn caches_by_frame_and_resolution() {
        let corpus = DatasetPreset::NightStreet.generate(1);
        let yolo = SimYoloV4::new(5);
        let cache = OutputCache::new(&yolo);
        let f = corpus.frame(10).unwrap();
        let r1 = Resolution::square(608);
        let r2 = Resolution::square(320);

        let a = cache.detect(f, r1);
        let b = cache.detect(f, r1);
        assert_eq!(a, b);
        let _ = cache.detect(f, r2);

        let inv = cache.invocations();
        assert_eq!(inv.model_runs, 2);
        assert_eq!(inv.cache_hits, 1);
        assert!(inv.model_time_ms > 0.0);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn cached_output_identical_to_direct() {
        let corpus = DatasetPreset::Detrac.generate(2);
        let yolo = SimYoloV4::new(6);
        let cache = OutputCache::new(&yolo);
        let f = corpus.frame(55).unwrap();
        let res = Resolution::square(416);
        assert_eq!(cache.detect(f, res), yolo.detect(f, res));
    }
}
