//! Model-output cache.
//!
//! The §3.3.2 reuse strategy depends on never re-running the network for a
//! `(frame, resolution)` pair it has already processed: outputs for frames
//! sampled at a low rate are reused when the rate is raised, and across
//! intervention candidates that share a resolution. The cache also counts
//! invocations and accumulated simulated inference time, which is how the
//! §5.3.1 profile-generation-time experiment measures "model time" without
//! a GPU.
//!
//! Profile generation now runs candidate cells on `rt::pool` workers, so
//! the cache is shard-locked: keys hash to one of [`SHARD_COUNT`]
//! independent `RwLock`ed maps, letting workers at different resolutions
//! proceed without contending on a single lock.
//!
//! # Per-worker memo layer
//!
//! Shard `RwLock`s still serialize the hottest path: a warm fraction-ladder
//! sweep is ~100% reads, and readers at the *same* resolution all hammer
//! the same few shards. Each cache therefore carries a read-through memo
//! layer keyed on [`pool::memo_slot`](smokescreen_rt::pool::memo_slot) —
//! one private map per worker thread. A memo hit never touches a shard
//! lock; a shard *read* hit is copied into the calling worker's memo once
//! and served locally forever after. Cold inserts deliberately do **not**
//! warm the memo — a workload that touches each key exactly once (a
//! single-cell sweep) would pay a wasted clone per frame — so only keys
//! that are actually re-read are ever copied. Memos are
//! write-behind-never: they only mirror entries that are already in a
//! shard, so they cannot change which keys exist. Poisoned and failed keys are never memoized (they
//! are never cached at all), preserving the chaos contract below.
//! Accounting is defined to be **schedule-independent**:
//!
//! * `model_runs` counts *distinct* `(frame, resolution)` keys materialized
//!   — if two workers race on the same cold key, the losing insert is
//!   reclassified as a cache hit, so the totals never depend on thread
//!   interleaving;
//! * `model_time_ms` is derived as `Σ_res runs(res) · cost(res)` over a
//!   sorted per-resolution run ledger rather than a float accumulator, so
//!   it is bit-identical across thread counts and equals
//!   `model_runs · T_model` exactly when one resolution is in play.
//!
//! # Fault injection
//!
//! A cache built with [`OutputCache::with_faults`] routes every cold
//! model call through [`detect_with_retry`]: transient failures are
//! retried under the deterministic backoff of a [`RetryPolicy`], timeouts
//! and exhausted retries surface as typed [`ModelError`]s from
//! [`try_detect`](OutputCache::try_detect), and a `CachePoison` fault
//! marks the key uncacheable (its output is served but never stored, so
//! every request re-runs the model — an evicting shard). Fault accounting
//! follows the same schedule-independence rules as run accounting: for a
//! key that ends up cached, only the thread whose insert wins accounts
//! its retries/latency; for keys that are never cached (failures and
//! poisoned keys) every call accounts itself, and the number of logical
//! calls is fixed by the work, not the schedule. Simulated fault latency
//! accumulates in integer microseconds, so sums are order-independent.

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use smokescreen_rt::fault::FaultPlan;
use smokescreen_rt::pool::{memo_slot, MEMO_SLOTS};
use smokescreen_rt::sync::{Mutex, RwLock};
use smokescreen_video::{Frame, ObjectClass, Resolution};

use crate::detector::{Detections, Detector, ModelResult};
use crate::oracle::{detect_with_retry, RetryOutcome, RetryPolicy};

/// Cache key: frame id × resolution (the detector is fixed per cache).
type Key = (u64, Resolution);

/// Number of independent lock shards.
pub const SHARD_COUNT: usize = 16;

/// Maps a key to its shard via a SplitMix64-style mix of the frame id and
/// resolution, so consecutive frame ids spread across shards.
fn shard_index(key: &Key) -> usize {
    let mut x = key.0 ^ (u64::from(key.1.width) << 32) ^ u64::from(key.1.height);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    (x ^ (x >> 31)) as usize % SHARD_COUNT
}

/// A caching wrapper around a detector.
///
/// Thread-safe and shard-locked; see the module docs for the concurrency,
/// accounting, and fault-injection contracts.
pub struct OutputCache<'d> {
    detector: &'d dyn Detector,
    shards: Vec<RwLock<HashMap<Key, Detections>>>,
    /// Per-worker read-through memos over the shards, indexed by
    /// [`memo_slot`]. Each mutex is thread-affine in steady state, so
    /// locking it never contends; it only exists so a slot reassigned to
    /// a new thread (or aliased past [`MEMO_SLOTS`] workers) stays sound.
    memos: Vec<Mutex<HashMap<Key, Detections>>>,
    model_runs: AtomicUsize,
    cache_hits: AtomicUsize,
    /// Distinct-key model runs per resolution, ordered so the derived
    /// model-time sum is deterministic.
    runs_by_resolution: Mutex<BTreeMap<Resolution, usize>>,
    fault_plan: Option<FaultPlan>,
    retry: RetryPolicy,
    retries: AtomicUsize,
    faults_injected: AtomicUsize,
    failed_calls: AtomicUsize,
    /// Simulated fault latency (backoff + slow responses) in integer
    /// microseconds — integer adds commute, so the total is
    /// schedule-independent.
    fault_time_us: AtomicU64,
}

/// Invocation accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Invocations {
    /// Times the underlying model actually ran.
    pub model_runs: usize,
    /// Times a cached output was served.
    pub cache_hits: usize,
    /// Simulated total model time in milliseconds.
    pub model_time_ms: f64,
    /// Retries spent clearing transient faults.
    pub retries: usize,
    /// Calls that encountered an injected fault of any kind.
    pub faults_injected: usize,
    /// Calls that failed permanently (timeout / retry budget exhausted).
    pub failed_calls: usize,
    /// Simulated fault latency (retry backoff + slow responses), ms.
    pub fault_time_ms: f64,
}

impl<'d> OutputCache<'d> {
    /// Wraps a detector (no fault injection).
    pub fn new(detector: &'d dyn Detector) -> Self {
        Self::with_fault_plan(detector, None, RetryPolicy::default())
    }

    /// Wraps a detector with a seeded fault plan and retry policy; the
    /// chaos-run constructor.
    pub fn with_faults(detector: &'d dyn Detector, plan: FaultPlan, retry: RetryPolicy) -> Self {
        Self::with_fault_plan(detector, Some(plan), retry)
    }

    fn with_fault_plan(
        detector: &'d dyn Detector,
        fault_plan: Option<FaultPlan>,
        retry: RetryPolicy,
    ) -> Self {
        OutputCache {
            detector,
            shards: (0..SHARD_COUNT).map(|_| RwLock::new(HashMap::new())).collect(),
            memos: (0..MEMO_SLOTS).map(|_| Mutex::new(HashMap::new())).collect(),
            model_runs: AtomicUsize::new(0),
            cache_hits: AtomicUsize::new(0),
            runs_by_resolution: Mutex::new(BTreeMap::new()),
            fault_plan,
            retry,
            retries: AtomicUsize::new(0),
            faults_injected: AtomicUsize::new(0),
            failed_calls: AtomicUsize::new(0),
            fault_time_us: AtomicU64::new(0),
        }
    }

    /// The wrapped detector.
    pub fn detector(&self) -> &dyn Detector {
        self.detector
    }

    /// The fault plan in force, if any.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.fault_plan.as_ref()
    }

    /// Accounts one distinct-key model run at a resolution.
    fn account_run(&self, res: Resolution) {
        self.model_runs.fetch_add(1, Ordering::Relaxed);
        *self.runs_by_resolution.lock().entry(res).or_insert(0) += 1;
    }

    /// Accounts the fault cost of one successful faulted call.
    fn account_fault(&self, outcome: &RetryOutcome) {
        self.faults_injected.fetch_add(1, Ordering::Relaxed);
        self.retries
            .fetch_add(outcome.retries as usize, Ordering::Relaxed);
        let us = ((outcome.backoff_ms + outcome.slow_ms) * 1e3).round() as u64;
        self.fault_time_us.fetch_add(us, Ordering::Relaxed);
    }

    /// Runs (or replays) the model on a frame at a resolution, surfacing
    /// injected faults as typed errors. Failed keys are never cached, so
    /// a later call under a cleared plan (or a breaker probe) re-attempts
    /// the model rather than replaying a poisoned result.
    pub fn try_detect(&self, frame: &Frame, res: Resolution) -> ModelResult<Detections> {
        let key = (frame.id, res);
        let memo = &self.memos[memo_slot()];
        if let Some(hit) = memo.lock().get(&key) {
            self.cache_hits.fetch_add(1, Ordering::Relaxed);
            return Ok(hit.clone());
        }
        let shard = &self.shards[shard_index(&key)];
        if let Some(hit) = shard.read().get(&key) {
            self.cache_hits.fetch_add(1, Ordering::Relaxed);
            let out = hit.clone();
            memo.lock().insert(key, out.clone());
            return Ok(out);
        }
        // Run the model outside the write lock so a slow inference never
        // blocks the shard. Detectors are deterministic per key, so a
        // racing duplicate computes the identical output.
        match detect_with_retry(self.detector, frame, res, self.fault_plan.as_ref(), &self.retry)
        {
            Ok(outcome) => {
                if outcome.poisoned {
                    // Poisoned shard: serve the output but never store it.
                    // Every call to this key is real model work, so every
                    // call accounts a run; the logical call count is fixed
                    // by the work items, keeping totals replayable.
                    self.account_run(res);
                    self.account_fault(&outcome);
                    return Ok(outcome.detections);
                }
                // The fresh key is NOT mirrored into the memo here: a
                // workload that touches each key once (a single-cell
                // generation sweep) would pay a wasted clone per frame.
                // The memo warms lazily on the first shard *read* hit
                // instead, so only re-read keys are ever copied.
                let mut entries = shard.write();
                match entries.entry(key) {
                    std::collections::hash_map::Entry::Occupied(e) => {
                        // Lost a cold-key race: the winner's insert owns
                        // the model run (and any fault accounting); this
                        // call is reclassified as a hit so totals stay
                        // independent of scheduling.
                        self.cache_hits.fetch_add(1, Ordering::Relaxed);
                        Ok(e.get().clone())
                    }
                    std::collections::hash_map::Entry::Vacant(v) => {
                        self.account_run(res);
                        if outcome.retries > 0 || outcome.slow_ms > 0.0 {
                            self.account_fault(&outcome);
                        }
                        v.insert(outcome.detections.clone());
                        Ok(outcome.detections)
                    }
                }
            }
            Err(e) => {
                // Permanent failure: nothing to cache, so every logical
                // call pays (and accounts) its full retry budget.
                let retries = self.retry.max_attempts.max(1) - 1;
                self.faults_injected.fetch_add(1, Ordering::Relaxed);
                self.failed_calls.fetch_add(1, Ordering::Relaxed);
                self.retries.fetch_add(retries as usize, Ordering::Relaxed);
                let us = (self.retry.total_backoff_ms(retries) * 1e3).round() as u64;
                self.fault_time_us.fetch_add(us, Ordering::Relaxed);
                Err(e)
            }
        }
    }

    /// Runs (or replays) the model on a frame at a resolution. Infallible
    /// companion of [`try_detect`](Self::try_detect) for fault-free
    /// caches; panics if an injected fault surfaces, naming the fallible
    /// entry point to use instead.
    pub fn detect(&self, frame: &Frame, res: Resolution) -> Detections {
        self.try_detect(frame, res).unwrap_or_else(|e| {
            panic!("infallible OutputCache::detect hit an injected fault ({e}); chaos callers must use try_detect")
        })
    }

    /// Count of a class, through the cache.
    pub fn count(&self, frame: &Frame, res: Resolution, class: ObjectClass) -> f64 {
        self.try_count(frame, res, class).unwrap_or_else(|e| {
            panic!("infallible OutputCache::count hit an injected fault ({e}); chaos callers must use try_detect/try_count")
        })
    }

    /// Fallible count of a class, surfacing injected faults.
    ///
    /// This is the fraction-ladder hot path: on a memo hit the count is
    /// computed by reference inside the worker's own memo map — no shard
    /// lock, no `Detections` clone, no allocation. A shard hit counts
    /// under the read guard and pays one clone to warm the memo; only
    /// cold keys fall through to the full [`try_detect`](Self::try_detect)
    /// model path.
    pub fn try_count(
        &self,
        frame: &Frame,
        res: Resolution,
        class: ObjectClass,
    ) -> ModelResult<f64> {
        let key = (frame.id, res);
        let memo = &self.memos[memo_slot()];
        if let Some(hit) = memo.lock().get(&key) {
            self.cache_hits.fetch_add(1, Ordering::Relaxed);
            return Ok(hit.count(class) as f64);
        }
        {
            let shard = self.shards[shard_index(&key)].read();
            if let Some(hit) = shard.get(&key) {
                self.cache_hits.fetch_add(1, Ordering::Relaxed);
                let n = hit.count(class) as f64;
                let warm = hit.clone();
                drop(shard);
                memo.lock().insert(key, warm);
                return Ok(n);
            }
        }
        Ok(self.try_detect(frame, res)?.count(class) as f64)
    }

    /// Current accounting snapshot. `model_time_ms` is recomputed from the
    /// per-resolution ledger, so `model_time_ms = Σ runs(res) · cost(res)`
    /// holds exactly at every snapshot — including mid-chaos: poisoned
    /// re-runs enter both sides of the identity, failed calls enter
    /// neither.
    pub fn invocations(&self) -> Invocations {
        let model_time_ms = self
            .runs_by_resolution
            .lock()
            .iter()
            .map(|(&res, &runs)| runs as f64 * self.detector.inference_cost_ms(res))
            .sum();
        Invocations {
            model_runs: self.model_runs.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            model_time_ms,
            retries: self.retries.load(Ordering::Relaxed),
            faults_injected: self.faults_injected.load(Ordering::Relaxed),
            failed_calls: self.failed_calls.load(Ordering::Relaxed),
            fault_time_ms: self.fault_time_us.load(Ordering::Relaxed) as f64 / 1e3,
        }
    }

    /// Number of distinct `(frame, resolution)` outputs held.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().len()).sum()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.read().is_empty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::yolo::SimYoloV4;
    use smokescreen_rt::pool::Pool;
    use smokescreen_video::synth::DatasetPreset;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    #[test]
    fn caches_by_frame_and_resolution() {
        let corpus = DatasetPreset::NightStreet.generate(1);
        let yolo = SimYoloV4::new(5);
        let cache = OutputCache::new(&yolo);
        let f = corpus.frame(10).unwrap();
        let r1 = Resolution::square(608);
        let r2 = Resolution::square(320);

        let a = cache.detect(f, r1);
        let b = cache.detect(f, r1);
        assert_eq!(a, b);
        let _ = cache.detect(f, r2);

        let inv = cache.invocations();
        assert_eq!(inv.model_runs, 2);
        assert_eq!(inv.cache_hits, 1);
        assert!(inv.model_time_ms > 0.0);
        assert_eq!(inv.retries, 0);
        assert_eq!(inv.faults_injected, 0);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn cached_output_identical_to_direct() {
        let corpus = DatasetPreset::Detrac.generate(2);
        let yolo = SimYoloV4::new(6);
        let cache = OutputCache::new(&yolo);
        let f = corpus.frame(55).unwrap();
        let res = Resolution::square(416);
        assert_eq!(cache.detect(f, res), yolo.detect(f, res));
    }

    #[test]
    fn model_time_is_exactly_runs_times_cost() {
        let corpus = DatasetPreset::Detrac.generate(3);
        let yolo = SimYoloV4::new(7);
        let cache = OutputCache::new(&yolo);
        let res = Resolution::square(320);
        for i in 0..40 {
            let _ = cache.detect(corpus.frame(i % 25).unwrap(), res);
        }
        let inv = cache.invocations();
        assert_eq!(inv.model_runs, 25);
        assert_eq!(inv.cache_hits, 15);
        assert_eq!(
            inv.model_time_ms,
            inv.model_runs as f64 * smokescreen_models_cost(&yolo, res),
            "single-resolution model time must be exactly runs × cost"
        );
    }

    #[test]
    fn concurrent_access_keeps_accounting_schedule_independent() {
        let corpus = DatasetPreset::NightStreet.generate(4).slice(0, 200);
        let yolo = SimYoloV4::new(8);
        let cache = OutputCache::new(&yolo);
        let res = Resolution::square(512);
        // 8 threads all touch every frame: distinct keys = 200, total
        // calls = 1600, regardless of interleaving.
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for f in corpus.frames() {
                        let _ = cache.detect(f, res);
                    }
                });
            }
        });
        let inv = cache.invocations();
        assert_eq!(inv.model_runs, 200, "distinct keys only");
        assert_eq!(inv.model_runs + inv.cache_hits, 1600, "every call counted once");
        assert_eq!(cache.len(), 200);
        assert_eq!(
            inv.model_time_ms,
            200.0 * smokescreen_models_cost(&yolo, res)
        );
    }

    #[test]
    fn faulted_accounting_is_schedule_independent() {
        // The chaos twin of the test above: under a fault plan, every
        // accounting total (runs, hits+runs, retries, faults, failures,
        // fault time) must be invariant across thread interleavings, and
        // model_time_ms == runs · T_model must keep holding exactly.
        let corpus = DatasetPreset::NightStreet.generate(9).slice(0, 300);
        let yolo = SimYoloV4::new(10);
        let res = Resolution::square(512);
        let plan = FaultPlan::new(21, 0.3);
        let run = |threads: usize| {
            let cache = OutputCache::with_faults(&yolo, plan, RetryPolicy::default());
            let frames: Vec<_> = corpus.frames().iter().collect();
            let pool = Pool::with_threads(threads);
            // Every frame requested 4 times: fixed logical call count.
            let reps: Vec<usize> = (0..4 * frames.len()).collect();
            let _: Vec<_> = pool.parallel_map(&reps, |_, &i| {
                cache.try_detect(frames[i % frames.len()], res).ok()
            });
            cache.invocations()
        };
        let seq = run(1);
        assert!(seq.faults_injected > 0, "plan must actually fire");
        assert!(seq.failed_calls > 0);
        assert!(seq.retries > 0);
        assert!(seq.fault_time_ms > 0.0);
        for threads in [2usize, 8, 16] {
            let par = run(threads);
            assert_eq!(par, seq, "accounting diverged at {threads} threads");
        }
        assert_eq!(
            seq.model_time_ms,
            seq.model_runs as f64 * smokescreen_models_cost(&yolo, res)
        );
    }

    #[test]
    fn memo_layer_keeps_counts_and_accounting_schedule_independent() {
        // The contention-free read path: after a warm-up pass, repeated
        // try_count sweeps are served from per-worker memos. Totals must
        // stay schedule-independent (runs == distinct keys, every logical
        // call exactly one run or one hit) and every count must equal the
        // raw detector's, at any thread count.
        let corpus = DatasetPreset::Detrac.generate(14).slice(0, 150);
        let yolo = SimYoloV4::new(14);
        let res = Resolution::square(416);
        let class = ObjectClass::Car;
        let run = |threads: usize| {
            let cache = OutputCache::new(&yolo);
            let pool = Pool::with_threads(threads);
            let frames: Vec<_> = corpus.frames().iter().collect();
            // 6 passes over every frame: 900 logical calls, 150 distinct.
            let passes: Vec<usize> = (0..6 * frames.len()).collect();
            let counts = pool.parallel_map(&passes, |_, &i| {
                let f = frames[i % frames.len()];
                cache.try_count(f, res, class).expect("fault-free cache")
            });
            for (i, &n) in counts.iter().enumerate() {
                let f = frames[i % frames.len()];
                assert_eq!(n, yolo.detect(f, res).count(class) as f64);
            }
            let inv = cache.invocations();
            assert_eq!(inv.model_runs, 150, "distinct keys only at {threads} threads");
            assert_eq!(
                inv.model_runs + inv.cache_hits,
                900,
                "every call counted once at {threads} threads"
            );
            assert_eq!(cache.len(), 150);
            inv
        };
        let seq = run(1);
        for threads in [2usize, 8, 16] {
            assert_eq!(run(threads), seq, "accounting diverged at {threads} threads");
        }
    }

    #[test]
    fn poisoned_keys_are_never_cached_but_stay_consistent() {
        let corpus = DatasetPreset::Detrac.generate(5).slice(0, 400);
        let yolo = SimYoloV4::new(11);
        let res = Resolution::square(416);
        // Poison-only plan: every faulted call succeeds but is uncacheable.
        let plan = FaultPlan::with_rates(3, 0.0, 0.0, 0.0, 0.2);
        let cache = OutputCache::with_faults(&yolo, plan, RetryPolicy::default());
        for _ in 0..2 {
            for f in corpus.frames() {
                let got = cache.try_detect(f, res).expect("poison never fails calls");
                assert_eq!(got, yolo.detect(f, res), "payloads are never corrupted");
            }
        }
        let inv = cache.invocations();
        assert!(inv.faults_injected > 0, "poison must fire");
        assert_eq!(inv.failed_calls, 0);
        // Poisoned keys re-ran on the second pass: strictly more runs than
        // distinct cached keys, and the time identity still holds exactly.
        assert!(inv.model_runs > cache.len());
        assert_eq!(
            inv.model_time_ms,
            inv.model_runs as f64 * smokescreen_models_cost(&yolo, res)
        );
    }

    #[test]
    fn infallible_detect_panics_with_guidance_under_faults() {
        let corpus = DatasetPreset::Detrac.generate(6).slice(0, 200);
        let yolo = SimYoloV4::new(12);
        let res = Resolution::square(320);
        // Timeout-only plan: some call will fail permanently.
        let plan = FaultPlan::with_rates(1, 0.5, 0.0, 0.0, 0.0);
        let cache = OutputCache::with_faults(&yolo, plan, RetryPolicy::default());
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            for f in corpus.frames() {
                let _ = cache.detect(f, res);
            }
        }));
        std::panic::set_hook(hook);
        let payload = outcome.expect_err("a 50% timeout plan must hit detect()");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(msg.contains("try_detect"), "panic must name the fallible API: {msg}");
    }

    #[test]
    fn worker_death_leaves_shard_accounting_consistent() {
        // Regression for the rt::pool worker-death path (companion to the
        // pool's own panic-propagation proptests): a task that dies after
        // partial cache writes must not corrupt shard accounting — the
        // §5.3.1 identity model_time_ms == model_runs · T_model and
        // runs == distinct cached keys must survive the panic, and the
        // surviving entries must replay the exact detector outputs.
        let corpus = DatasetPreset::NightStreet.generate(7).slice(0, 240);
        let yolo = SimYoloV4::new(13);
        let res = Resolution::square(512);
        let cache = OutputCache::new(&yolo);
        let pool = Pool::with_threads(4);
        let tasks: Vec<usize> = (0..48).collect();
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            pool.parallel_map(&tasks, |_, &t| {
                for i in 0..5 {
                    let f = corpus.frame(t * 5 + i).unwrap();
                    let _ = cache.detect(f, res);
                    // Die mid-task after partial writes.
                    if t == 17 && i == 2 {
                        panic!("worker died after partial cache writes");
                    }
                }
            })
        }));
        std::panic::set_hook(hook);
        assert!(outcome.is_err(), "the injected worker death must propagate");

        let inv = cache.invocations();
        assert!(inv.model_runs > 0, "some writes must have landed");
        assert_eq!(
            inv.model_runs,
            cache.len(),
            "every accounted run must correspond to a cached key"
        );
        assert_eq!(
            inv.model_time_ms,
            inv.model_runs as f64 * smokescreen_models_cost(&yolo, res),
            "model_time_ms == model_runs · T_model must survive worker death"
        );
        // The surviving shards serve correct payloads.
        for i in 0..corpus.len() {
            let f = corpus.frame(i).unwrap();
            assert_eq!(cache.detect(f, res), yolo.detect(f, res));
        }
        assert_eq!(cache.invocations().model_runs, corpus.len());
    }

    /// Cost helper without importing the trait into every assert.
    fn smokescreen_models_cost(d: &SimYoloV4, res: Resolution) -> f64 {
        Detector::inference_cost_ms(d, res)
    }
}
