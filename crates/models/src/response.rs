//! Resolution-response curves: the analytic core of the simulators.
//!
//! A detector's recall on an object is modelled as a logistic function of
//! the log of the object's **effective pixel area** at the processed
//! resolution:
//!
//! ```text
//! area_eff = pixel_area(bbox, res) · (contrast / 0.6)^γ · (1 − occlusion)
//! p_detect = p_max · sigmoid(slope · (ln area_eff − ln area50))
//! ```
//!
//! This is the standard empirical shape reported for CNN detectors under
//! downscaling (e.g. Koziarski & Cyganek 2018, cited by the paper):
//! detection holds up until objects approach a critical pixel size, then
//! collapses. `area50` is the 50%-recall pixel area; `slope` controls how
//! sharp the collapse is; the contrast exponent `γ` makes night scenes
//! degrade earlier than day scenes — which is what makes the two datasets'
//! tradeoff curves differ (Figure 3).

use smokescreen_video::{Object, Resolution};

/// Logistic detectability curve for one (model, class) pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResponseCurve {
    /// Effective pixel area at which recall crosses `p_max / 2`.
    pub area50: f64,
    /// Logistic slope in log-area space.
    pub slope: f64,
    /// Asymptotic recall at infinite resolution.
    pub p_max: f64,
    /// Contrast sensitivity exponent `γ` (0 = contrast-blind).
    pub contrast_gamma: f64,
}

impl ResponseCurve {
    /// Detection probability for an object at a resolution.
    pub fn detect_probability(&self, object: &Object, res: Resolution) -> f64 {
        let area = object.bbox.pixel_area(res);
        if area <= 0.0 {
            return 0.0;
        }
        let contrast_factor = (f64::from(object.contrast) / 0.6)
            .max(1e-3)
            .powf(self.contrast_gamma);
        let occlusion_factor = (1.0 - f64::from(object.occlusion)).max(0.0);
        let eff = area * contrast_factor * occlusion_factor;
        if eff <= 0.0 {
            return 0.0;
        }
        let z = self.slope * (eff.ln() - self.area50.ln());
        self.p_max * sigmoid(z)
    }
}

/// Numerically stable logistic function.
pub fn sigmoid(z: f64) -> f64 {
    if z >= 0.0 {
        1.0 / (1.0 + (-z).exp())
    } else {
        let e = z.exp();
        e / (1.0 + e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smokescreen_video::{BBox, ObjectClass};

    fn object(h: f32, contrast: f32, occlusion: f32) -> Object {
        Object {
            id: 1,
            class: ObjectClass::Car,
            bbox: BBox::new(0.2, 0.2, h * 1.8, h),
            contrast,
            occlusion,
        }
    }

    fn curve() -> ResponseCurve {
        ResponseCurve {
            area50: 300.0,
            slope: 1.2,
            p_max: 0.99,
            contrast_gamma: 1.5,
        }
    }

    #[test]
    fn probability_monotone_in_resolution() {
        let o = object(0.1, 0.6, 0.0);
        let c = curve();
        let mut prev = 0.0;
        for side in [64u32, 128, 256, 416, 608] {
            let p = c.detect_probability(&o, Resolution::square(side));
            assert!(p >= prev, "side={side}");
            prev = p;
        }
        assert!(prev > 0.9, "large objects at high res should be detected: {prev}");
    }

    #[test]
    fn low_contrast_hurts() {
        let c = curve();
        let res = Resolution::square(256);
        let day = c.detect_probability(&object(0.08, 0.7, 0.0), res);
        let night = c.detect_probability(&object(0.08, 0.3, 0.0), res);
        assert!(night < day, "night={night} day={day}");
    }

    #[test]
    fn occlusion_hurts() {
        let c = curve();
        let res = Resolution::square(416);
        let free = c.detect_probability(&object(0.08, 0.6, 0.0), res);
        let hidden = c.detect_probability(&object(0.08, 0.6, 0.8), res);
        assert!(hidden < free);
    }

    #[test]
    fn fully_occluded_is_zero() {
        let c = curve();
        assert_eq!(
            c.detect_probability(&object(0.1, 0.6, 1.0), Resolution::square(608)),
            0.0
        );
    }

    #[test]
    fn sigmoid_properties() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-12);
        assert!(sigmoid(30.0) > 0.999);
        assert!(sigmoid(-30.0) < 0.001);
        assert!((sigmoid(2.0) + sigmoid(-2.0) - 1.0).abs() < 1e-12);
    }
}
