//! Detector simulators — the `F_model` UDFs of the paper.
//!
//! Real GPU detectors are unavailable here, so this crate provides analytic
//! simulators whose behaviour matches the failure modes the paper's
//! algorithms are built around:
//!
//! * **Resolution response** ([`response`]): per-object detection
//!   probability is logistic in the log of the object's *effective* pixel
//!   area (geometry × contrast × occlusion). Shrinking the frame
//!   systematically drops small/low-contrast objects — a biased, non-random
//!   degradation of the output distribution.
//! * **Determinism**: a frame processed twice at the same resolution yields
//!   the identical output, exactly like a real network. Detection decisions
//!   are pure functions of `(model seed, frame id, object id, resolution)`.
//! * **Model quirks**: [`yolo::SimYoloV4`] reproduces the paper's Figure 7/8
//!   anomaly — a mid-resolution band (384×384) where duplicate detections
//!   spike on low-contrast scenes, making error *non-monotone* in
//!   resolution.
//! * A ground-truth [`oracle::Oracle`] and a pixel-level
//!   [`blob::BlobDetector`] (operating on actual rendered frames) bracket
//!   the simulators from above and below.

#![deny(missing_docs)]
#![warn(clippy::all)]

mod backbone;

pub mod blob;
pub mod cache;
pub mod detector;
pub mod hash;
pub mod mask_rcnn;
pub mod mtcnn;
pub mod oracle;
pub mod response;
pub mod temporal;
pub mod yolo;
pub mod zoo;

pub use cache::{Invocations, OutputCache};
pub use detector::{Detection, Detections, Detector, ModelError, ModelResult};
pub use oracle::{call_key, detect_with_retry, RetryOutcome, RetryPolicy};
pub use mask_rcnn::SimMaskRcnn;
pub use mtcnn::SimMtcnn;
pub use oracle::Oracle;
pub use yolo::SimYoloV4;
