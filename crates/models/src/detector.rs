//! The `Detector` trait, detection output types, and the typed failure
//! taxonomy for model calls.

use std::fmt;

use smokescreen_video::{BBox, Frame, ObjectClass, Resolution};

/// Typed failure taxonomy for model invocations.
///
/// Production detectors misbehave in distinguishable ways, and the layers
/// above react differently to each: transient failures are retried,
/// timeouts trip circuit breakers, unknown models are configuration
/// errors. Simulated faults come from a seeded
/// [`FaultPlan`](smokescreen_rt::fault::FaultPlan), so every error below
/// is replayable bit-for-bit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelError {
    /// The call hung past its deadline on every attempt — retries cannot
    /// clear it.
    Timeout {
        /// Model name.
        model: String,
        /// Frame the call was processing.
        frame_id: u64,
        /// Attempts made before giving up.
        attempts: u32,
    },
    /// The call kept failing transiently and the retry budget ran out.
    TransientExhausted {
        /// Model name.
        model: String,
        /// Frame the call was processing.
        frame_id: u64,
        /// Attempts made before giving up.
        attempts: u32,
    },
    /// No detector is registered under this name.
    UnknownModel(String),
}

impl ModelError {
    /// Whether retrying the identical call could ever succeed (used by
    /// callers deciding between retry and circuit-break).
    pub fn is_retryable(&self) -> bool {
        matches!(self, ModelError::TransientExhausted { .. })
    }
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::Timeout {
                model,
                frame_id,
                attempts,
            } => write!(
                f,
                "model {model} timed out on frame {frame_id} after {attempts} attempt(s)"
            ),
            ModelError::TransientExhausted {
                model,
                frame_id,
                attempts,
            } => write!(
                f,
                "model {model} failed transiently on frame {frame_id}; retry budget of \
                 {attempts} attempt(s) exhausted"
            ),
            ModelError::UnknownModel(name) => write!(f, "no detector registered as {name:?}"),
        }
    }
}

impl std::error::Error for ModelError {}

/// Result alias for fallible model calls.
pub type ModelResult<T> = std::result::Result<T, ModelError>;

/// One detected object.
#[derive(Debug, Clone, PartialEq)]
pub struct Detection {
    /// Predicted class.
    pub class: ObjectClass,
    /// Confidence score in `[0, 1]` (already past the model threshold).
    pub score: f32,
    /// Predicted box (normalized coordinates).
    pub bbox: BBox,
    /// Ground-truth object id when the detection is a true positive;
    /// `None` for false positives. Exposed for evaluation only — query
    /// processing never looks at it.
    pub truth_id: Option<u64>,
}

/// All detections a model emitted for one frame.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Detections {
    /// Individual detections.
    pub items: Vec<Detection>,
}

impl Detections {
    /// Number of detections of the given class — the per-frame model
    /// output `X_i` of the paper's count queries.
    pub fn count(&self, class: ObjectClass) -> usize {
        self.items.iter().filter(|d| d.class == class).count()
    }

    /// Whether any detection of the class is present.
    pub fn contains(&self, class: ObjectClass) -> bool {
        self.items.iter().any(|d| d.class == class)
    }

    /// Whether any of the given classes is present.
    pub fn contains_any(&self, classes: &[ObjectClass]) -> bool {
        classes.iter().any(|&c| self.contains(c))
    }
}

/// A frame-level vision model (the query UDF).
///
/// Implementations must be deterministic in `(frame, resolution)`: the
/// paper's reuse strategy (§3.3.2) caches outputs per frame/resolution and
/// replays them across sample fractions, which is only sound if the model
/// itself is a function.
pub trait Detector: Send + Sync {
    /// Model name (e.g. `"sim-yolov4"`).
    fn name(&self) -> &str;

    /// The largest (native) input resolution — the paper's "highest
    /// resolution" of the original video for this model.
    fn native_resolution(&self) -> Resolution;

    /// Whether the model architecture accepts this input resolution
    /// (e.g. Mask R-CNN requires multiples of 64, Darknet-YOLO multiples
    /// of 32).
    fn supports(&self, res: Resolution) -> bool;

    /// Runs the model on a frame rendered at `res`.
    fn detect(&self, frame: &Frame, res: Resolution) -> Detections;

    /// Fallible model call. The simulators are pure functions and never
    /// fail, so the default forwards to [`detect`](Self::detect); fault
    /// injection happens at the invocation layer
    /// ([`detect_with_retry`](crate::oracle::detect_with_retry) /
    /// [`OutputCache`](crate::cache::OutputCache)), which surfaces this
    /// taxonomy to callers.
    fn try_detect(&self, frame: &Frame, res: Resolution) -> ModelResult<Detections> {
        Ok(self.detect(frame, res))
    }

    /// Convenience: count of a class at a resolution (the aggregate
    /// queries' per-frame output).
    fn count(&self, frame: &Frame, res: Resolution, class: ObjectClass) -> f64 {
        self.detect(frame, res).count(class) as f64
    }

    /// Simulated single-frame inference latency in milliseconds (loading +
    /// transform + inference), used by the §5.3.1 profile-generation time
    /// model. Scales with input pixels.
    fn inference_cost_ms(&self, res: Resolution) -> f64;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn det(class: ObjectClass) -> Detection {
        Detection {
            class,
            score: 0.9,
            bbox: BBox::new(0.0, 0.0, 0.1, 0.1),
            truth_id: None,
        }
    }

    #[test]
    fn detections_counting() {
        let d = Detections {
            items: vec![det(ObjectClass::Car), det(ObjectClass::Car), det(ObjectClass::Person)],
        };
        assert_eq!(d.count(ObjectClass::Car), 2);
        assert!(d.contains(ObjectClass::Person));
        assert!(!d.contains(ObjectClass::Face));
        assert!(d.contains_any(&[ObjectClass::Face, ObjectClass::Car]));
        assert!(!Detections::default().contains_any(&[ObjectClass::Car]));
    }

    #[test]
    fn model_error_taxonomy_classifies_retryability() {
        let timeout = ModelError::Timeout {
            model: "sim-yolov4".into(),
            frame_id: 9,
            attempts: 3,
        };
        let transient = ModelError::TransientExhausted {
            model: "sim-yolov4".into(),
            frame_id: 9,
            attempts: 3,
        };
        assert!(!timeout.is_retryable());
        assert!(transient.is_retryable());
        assert!(!ModelError::UnknownModel("resnet".into()).is_retryable());
        assert!(timeout.to_string().contains("timed out"));
        assert!(transient.to_string().contains("retry budget"));
    }
}
