//! Shared simulator machinery used by the concrete models.

use std::collections::HashMap;

use smokescreen_video::{BBox, Frame, ObjectClass, Resolution};

use crate::detector::{Detection, Detections};
use crate::hash;
use crate::response::ResponseCurve;

/// Stream tags for the per-decision hashes, so distinct decisions about
/// the same object never reuse a hash value.
const STREAM_DETECT: u64 = 1;
const STREAM_SCORE: u64 = 2;
const STREAM_FP: u64 = 3;
const STREAM_FP_GEOM: u64 = 4;
const STREAM_DUP: u64 = 5;

/// Deterministic detector core: per-object logistic recall + per-frame
/// false positives, all decided by hashing.
#[derive(Debug, Clone)]
pub(crate) struct SimBackbone {
    pub seed: u64,
    pub curves: HashMap<ObjectClass, ResponseCurve>,
    /// Expected false positives per frame at native resolution.
    pub fp_rate_native: f64,
    /// Exponent controlling FP growth as resolution falls.
    pub fp_resolution_exponent: f64,
    /// Classes false positives can take (weighted uniformly).
    pub fp_classes: Vec<ObjectClass>,
    /// Score threshold (detections below it are suppressed).
    pub threshold: f64,
    pub native: Resolution,
}

impl SimBackbone {
    pub(crate) fn detect(&self, frame: &Frame, res: Resolution) -> Detections {
        let mut items = Vec::new();
        let res_words = [u64::from(res.width), u64::from(res.height)];

        for obj in &frame.objects {
            let Some(curve) = self.curves.get(&obj.class) else {
                continue; // class unknown to this model
            };
            let p = curve.detect_probability(obj, res);
            let u = hash::uniform01(&[
                self.seed,
                frame.id,
                obj.id,
                res_words[0],
                res_words[1],
                STREAM_DETECT,
            ]);
            if u >= p {
                continue;
            }
            // Score: the margin by which the object cleared detection,
            // squashed above the threshold (deterministic).
            let s = hash::uniform01(&[
                self.seed,
                frame.id,
                obj.id,
                res_words[0],
                res_words[1],
                STREAM_SCORE,
            ]);
            let score = (self.threshold + (1.0 - self.threshold) * (0.3 + 0.7 * p) * s.max(0.2))
                .clamp(self.threshold, 1.0) as f32;
            items.push(Detection {
                class: obj.class,
                score,
                bbox: jitter_box(obj.bbox, self.seed, frame.id, obj.id, res),
                truth_id: Some(obj.id),
            });
        }

        // False positives: noise blobs misread as objects; more frequent at
        // low resolution.
        if !self.fp_classes.is_empty() && self.fp_rate_native > 0.0 {
            let scale = (self.native.pixels() as f64 / res.pixels().max(1) as f64)
                .powf(self.fp_resolution_exponent);
            let lambda = self.fp_rate_native * scale;
            let fps = hash::poisson(
                &[self.seed, frame.id, res_words[0], res_words[1], STREAM_FP],
                lambda,
            );
            for k in 0..fps {
                let g = |stream: u64| {
                    hash::uniform01(&[
                        self.seed,
                        frame.id,
                        u64::from(k),
                        res_words[0],
                        stream,
                        STREAM_FP_GEOM,
                    ])
                };
                let class = self.fp_classes[(g(11) * self.fp_classes.len() as f64) as usize
                    % self.fp_classes.len()];
                let w = 0.02 + 0.08 * g(12);
                items.push(Detection {
                    class,
                    score: (self.threshold + 0.1 * g(13)).min(1.0) as f32,
                    bbox: BBox::new(g(14) as f32, g(15) as f32, w as f32, (w * 0.7) as f32),
                    truth_id: None,
                });
            }
        }

        Detections { items }
    }

    /// Duplicate-detection injection (NMS failure): each true positive of
    /// `class` is emitted a second time with probability `dup_prob`.
    /// Used by the YOLO 384-band quirk.
    pub(crate) fn inject_duplicates(
        &self,
        detections: &mut Detections,
        frame: &Frame,
        res: Resolution,
        class: ObjectClass,
        dup_prob: f64,
    ) {
        let mut dups = Vec::new();
        for d in &detections.items {
            if d.class != class {
                continue;
            }
            let Some(tid) = d.truth_id else { continue };
            let u = hash::uniform01(&[
                self.seed,
                frame.id,
                tid,
                u64::from(res.width),
                STREAM_DUP,
            ]);
            if u < dup_prob {
                let mut dup = d.clone();
                // Slightly offset box, as a real NMS failure produces.
                dup.bbox = BBox::new(
                    dup.bbox.x + 0.01,
                    dup.bbox.y + 0.01,
                    dup.bbox.w,
                    dup.bbox.h,
                );
                dups.push(dup);
            }
        }
        detections.items.extend(dups);
    }
}

/// Small deterministic localization jitter so predicted boxes are not
/// pixel-identical to ground truth.
fn jitter_box(bbox: BBox, seed: u64, frame_id: u64, obj_id: u64, res: Resolution) -> BBox {
    let j = |stream: u64| {
        (hash::uniform01(&[seed, frame_id, obj_id, u64::from(res.width), stream, 7]) - 0.5)
            * 0.01
    };
    BBox::new(
        bbox.x + j(1) as f32,
        bbox.y + j(2) as f32,
        bbox.w * (1.0 + j(3) as f32),
        bbox.h * (1.0 + j(4) as f32),
    )
}
