//! Model registry.
//!
//! Queries name their UDF model; the zoo resolves names to detector
//! instances, mirroring how the paper's prototype exposes built-in models
//! to its query processor.

use crate::blob::BlobDetector;
use crate::detector::Detector;
use crate::mask_rcnn::SimMaskRcnn;
use crate::mtcnn::SimMtcnn;
use crate::oracle::Oracle;
use crate::yolo::SimYoloV4;

/// Instantiates a built-in detector by name.
///
/// Known names: `sim-yolov4` (aliases `yolo`, `yolov4`), `sim-mask-rcnn`
/// (aliases `mask-rcnn`, `maskrcnn`), `sim-mtcnn` (`mtcnn`), `blob`,
/// `oracle`. The seed parameterizes the simulated weights.
pub fn by_name(name: &str, seed: u64) -> Option<Box<dyn Detector>> {
    match name.to_ascii_lowercase().as_str() {
        "sim-yolov4" | "yolo" | "yolov4" => Some(Box::new(SimYoloV4::new(seed))),
        "sim-mask-rcnn" | "mask-rcnn" | "maskrcnn" => Some(Box::new(SimMaskRcnn::new(seed))),
        "sim-mtcnn" | "mtcnn" => Some(Box::new(SimMtcnn::new(seed))),
        "blob" => Some(Box::new(BlobDetector::default())),
        "oracle" => Some(Box::new(Oracle)),
        _ => None,
    }
}

/// Names of all built-in detectors.
pub fn builtin_names() -> &'static [&'static str] {
    &["sim-yolov4", "sim-mask-rcnn", "sim-mtcnn", "blob", "oracle"]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolves_all_builtins() {
        for name in builtin_names() {
            assert!(by_name(name, 0).is_some(), "{name}");
        }
        assert!(by_name("YOLO", 1).is_some());
        assert!(by_name("resnet", 1).is_none());
    }
}
