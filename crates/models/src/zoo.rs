//! Model registry.
//!
//! Queries name their UDF model; the zoo resolves names to detector
//! instances, mirroring how the paper's prototype exposes built-in models
//! to its query processor.

use crate::blob::BlobDetector;
use crate::detector::{Detector, ModelError, ModelResult};
use crate::mask_rcnn::SimMaskRcnn;
use crate::mtcnn::SimMtcnn;
use crate::oracle::Oracle;
use crate::yolo::SimYoloV4;

/// Instantiates a built-in detector by name.
///
/// Known names: `sim-yolov4` (aliases `yolo`, `yolov4`), `sim-mask-rcnn`
/// (aliases `mask-rcnn`, `maskrcnn`), `sim-mtcnn` (`mtcnn`), `blob`,
/// `oracle`. The seed parameterizes the simulated weights.
pub fn by_name(name: &str, seed: u64) -> Option<Box<dyn Detector>> {
    resolve(name, seed).ok()
}

/// Instantiates a built-in detector by name, reporting a typed
/// [`ModelError::UnknownModel`] for unregistered names so query planners
/// can surface a configuration error instead of a bare `None`.
pub fn resolve(name: &str, seed: u64) -> ModelResult<Box<dyn Detector>> {
    match name.to_ascii_lowercase().as_str() {
        "sim-yolov4" | "yolo" | "yolov4" => Ok(Box::new(SimYoloV4::new(seed))),
        "sim-mask-rcnn" | "mask-rcnn" | "maskrcnn" => Ok(Box::new(SimMaskRcnn::new(seed))),
        "sim-mtcnn" | "mtcnn" => Ok(Box::new(SimMtcnn::new(seed))),
        "blob" => Ok(Box::new(BlobDetector::default())),
        "oracle" => Ok(Box::new(Oracle)),
        other => Err(ModelError::UnknownModel(other.to_string())),
    }
}

/// Names of all built-in detectors.
pub fn builtin_names() -> &'static [&'static str] {
    &["sim-yolov4", "sim-mask-rcnn", "sim-mtcnn", "blob", "oracle"]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolves_all_builtins() {
        for name in builtin_names() {
            assert!(by_name(name, 0).is_some(), "{name}");
        }
        assert!(by_name("YOLO", 1).is_some());
        assert!(by_name("resnet", 1).is_none());
    }

    #[test]
    fn resolve_reports_unknown_models_as_typed_errors() {
        assert!(resolve("oracle", 0).is_ok());
        match resolve("resnet", 0).map(|_| ()) {
            Err(ModelError::UnknownModel(name)) => assert_eq!(name, "resnet"),
            other => panic!("expected UnknownModel, got {other:?}"),
        }
    }
}
