//! `SimMaskRcnn` — the Mask R-CNN analogue.
//!
//! Two-stage detector: better small-object recall than the one-stage
//! YOLO analogue (lower `area50`), no quirk band, roughly 6–8× slower per
//! frame. Per the paper, the default architecture only accepts input
//! resolutions that are multiples of 64, with a native 640×640.

use std::collections::HashMap;

use smokescreen_video::{Frame, ObjectClass, Resolution};

use crate::backbone::SimBackbone;
use crate::detector::{Detections, Detector};
use crate::response::ResponseCurve;

/// Simulated Mask R-CNN (Keras/TensorFlow Matterport build).
#[derive(Debug, Clone)]
pub struct SimMaskRcnn {
    backbone: SimBackbone,
}

impl SimMaskRcnn {
    /// Standard configuration (threshold 0.7, native 640×640).
    pub fn new(seed: u64) -> Self {
        let mut curves = HashMap::new();
        let vehicle = ResponseCurve {
            area50: 240.0,
            slope: 1.15,
            p_max: 0.99,
            contrast_gamma: 1.3,
        };
        curves.insert(ObjectClass::Car, vehicle);
        curves.insert(ObjectClass::Truck, ResponseCurve { area50: 300.0, ..vehicle });
        curves.insert(ObjectClass::Bus, ResponseCurve { area50: 320.0, ..vehicle });
        curves.insert(
            ObjectClass::Bicycle,
            ResponseCurve { area50: 210.0, p_max: 0.95, ..vehicle },
        );
        curves.insert(
            ObjectClass::Person,
            ResponseCurve {
                area50: 190.0,
                slope: 1.1,
                p_max: 0.975,
                contrast_gamma: 1.25,
            },
        );
        SimMaskRcnn {
            backbone: SimBackbone {
                seed: seed ^ 0x4D_52_43_4E, // "MRCN"
                curves,
                fp_rate_native: 0.008,
                fp_resolution_exponent: 0.3,
                fp_classes: vec![ObjectClass::Car, ObjectClass::Person],
                threshold: 0.7,
                native: Resolution::square(640),
            },
        }
    }
}

impl Detector for SimMaskRcnn {
    fn name(&self) -> &str {
        "sim-mask-rcnn"
    }

    fn native_resolution(&self) -> Resolution {
        self.backbone.native
    }

    fn supports(&self, res: Resolution) -> bool {
        res.is_multiple_of(64)
            && res.width <= self.backbone.native.width
            && res.height <= self.backbone.native.height
    }

    fn detect(&self, frame: &Frame, res: Resolution) -> Detections {
        self.backbone.detect(frame, res)
    }

    fn inference_cost_ms(&self, res: Resolution) -> f64 {
        // ≈200 ms per frame at 640² (two-stage, heavy head).
        25.0 + 175.0 * res.pixels() as f64 / Resolution::square(640).pixels() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::yolo::SimYoloV4;
    use smokescreen_video::synth::DatasetPreset;

    #[test]
    fn resolution_constraint_is_64() {
        let m = SimMaskRcnn::new(1);
        assert!(m.supports(Resolution::square(640)));
        assert!(m.supports(Resolution::square(128)));
        assert!(!m.supports(Resolution::square(416)));
        assert!(!m.supports(Resolution::square(704))); // above native
    }

    #[test]
    fn better_small_object_recall_than_yolo() {
        let corpus = DatasetPreset::NightStreet.generate(21);
        let mask = SimMaskRcnn::new(2);
        let yolo = SimYoloV4::new(2);
        let res = Resolution::square(128); // multiple of both 32 and 64
        let frames: Vec<_> = corpus.frames().iter().take(4_000).collect();
        let m: f64 = frames.iter().map(|f| mask.count(f, res, ObjectClass::Car)).sum();
        let y: f64 = frames.iter().map(|f| yolo.count(f, res, ObjectClass::Car)).sum();
        assert!(m > y, "mask={m} yolo={y}");
    }

    #[test]
    fn slower_than_yolo() {
        let m = SimMaskRcnn::new(1);
        let y = SimYoloV4::new(1);
        assert!(
            m.inference_cost_ms(Resolution::square(640))
                > 4.0 * y.inference_cost_ms(Resolution::square(608))
        );
    }

    #[test]
    fn deterministic() {
        let corpus = DatasetPreset::NightStreet.generate(4);
        let m = SimMaskRcnn::new(9);
        let f = corpus.frame(42).unwrap();
        assert_eq!(
            m.detect(f, Resolution::square(256)),
            m.detect(f, Resolution::square(256))
        );
    }
}
