//! Pixel-level blob detector.
//!
//! Unlike the analytic simulators, this model actually *looks at pixels*:
//! the frame is rendered by `smokescreen_video::raster`, thresholded
//! against the background level, and connected components above a minimum
//! pixel area are reported as detections (classified crudely by aspect
//! ratio). It exists to show that the analytic resolution-response model is
//! faithful: at low resolutions small objects genuinely dissolve into
//! background noise and recall collapses for physical reasons.

use smokescreen_video::raster::{self, GrayImage};
use smokescreen_video::{BBox, Frame, ObjectClass, Resolution};

use crate::detector::{Detection, Detections, Detector};

/// Connected-component blob detector over rendered frames.
#[derive(Debug, Clone, Copy)]
pub struct BlobDetector {
    /// Pixel-intensity lift above background required to join a blob.
    pub threshold: u8,
    /// Minimum blob area in pixels.
    pub min_area: u32,
    /// Rendering noise level handed to the raster pipeline.
    pub noise_level: f64,
}

impl Default for BlobDetector {
    fn default() -> Self {
        BlobDetector {
            threshold: 40,
            min_area: 9,
            noise_level: 0.25,
        }
    }
}

impl BlobDetector {
    fn components(&self, img: &GrayImage) -> Vec<(u32, u32, u32, u32, u32)> {
        let (w, h) = (img.width(), img.height());
        let bg = img.mean();
        let cut = (bg + f64::from(self.threshold)).min(255.0) as u8;
        let mut visited = vec![false; (w * h) as usize];
        let mut blobs = Vec::new();

        for y in 0..h {
            for x in 0..w {
                let idx = (y * w + x) as usize;
                if visited[idx] || img.get(x, y) < cut {
                    continue;
                }
                // BFS flood fill.
                let mut stack = vec![(x, y)];
                visited[idx] = true;
                let (mut min_x, mut max_x, mut min_y, mut max_y, mut area) = (x, x, y, y, 0u32);
                while let Some((cx, cy)) = stack.pop() {
                    area += 1;
                    min_x = min_x.min(cx);
                    max_x = max_x.max(cx);
                    min_y = min_y.min(cy);
                    max_y = max_y.max(cy);
                    let neighbours = [
                        (cx.wrapping_sub(1), cy),
                        (cx + 1, cy),
                        (cx, cy.wrapping_sub(1)),
                        (cx, cy + 1),
                    ];
                    for (nx, ny) in neighbours {
                        if nx < w && ny < h {
                            let nidx = (ny * w + nx) as usize;
                            if !visited[nidx] && img.get(nx, ny) >= cut {
                                visited[nidx] = true;
                                stack.push((nx, ny));
                            }
                        }
                    }
                }
                if area >= self.min_area {
                    blobs.push((min_x, min_y, max_x, max_y, area));
                }
            }
        }
        blobs
    }
}

impl Detector for BlobDetector {
    fn name(&self) -> &str {
        "blob"
    }

    fn native_resolution(&self) -> Resolution {
        Resolution::square(640)
    }

    fn supports(&self, res: Resolution) -> bool {
        res.width >= 16 && res.height >= 16
    }

    fn detect(&self, frame: &Frame, res: Resolution) -> Detections {
        let img = raster::render(frame, res, self.noise_level);
        let (w, h) = (f32::from(img.width() as u16), f32::from(img.height() as u16));
        let items = self
            .components(&img)
            .into_iter()
            .map(|(x0, y0, x1, y1, area)| {
                let bw = (x1 - x0 + 1) as f32 / w;
                let bh = (y1 - y0 + 1) as f32 / h;
                // Aspect-ratio classification: wide → car, tall → person.
                let class = if bw > bh * 1.2 {
                    ObjectClass::Car
                } else {
                    ObjectClass::Person
                };
                Detection {
                    class,
                    score: (0.5 + (area as f32 / (w * h)).sqrt()).min(1.0),
                    bbox: BBox::new(x0 as f32 / w, y0 as f32 / h, bw, bh),
                    truth_id: None,
                }
            })
            .collect();
        Detections { items }
    }

    fn inference_cost_ms(&self, res: Resolution) -> f64 {
        // CPU flood fill, linear in pixels.
        0.5 + 2.0 * res.pixels() as f64 / Resolution::square(640).pixels() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smokescreen_video::{Object, ObjectClass};

    fn frame_with_cars(n: usize, size: f32, contrast: f32) -> Frame {
        let objects = (0..n)
            .map(|i| Object {
                id: i as u64,
                class: ObjectClass::Car,
                bbox: BBox::new(0.05 + 0.3 * i as f32, 0.4, size * 1.8, size),
                contrast,
                occlusion: 0.0,
            })
            .collect();
        Frame {
            id: 77,
            ts_secs: 0.0,
            sequence: 0,
            objects,
        }
    }

    #[test]
    fn finds_clear_objects_at_high_resolution() {
        let f = frame_with_cars(3, 0.12, 0.8);
        let d = BlobDetector::default().detect(&f, Resolution::square(320));
        assert_eq!(d.count(ObjectClass::Car), 3, "{:?}", d.items);
    }

    #[test]
    fn recall_collapses_at_low_resolution() {
        let f = frame_with_cars(3, 0.05, 0.5);
        let det = BlobDetector::default();
        let hi = det.detect(&f, Resolution::square(512)).items.len();
        let lo = det.detect(&f, Resolution::square(24)).items.len();
        assert!(hi >= 3, "hi={hi}");
        assert!(lo < hi, "lo={lo} hi={hi}");
    }

    #[test]
    fn empty_frame_mostly_quiet() {
        let f = Frame {
            id: 5,
            ts_secs: 0.0,
            sequence: 0,
            objects: vec![],
        };
        let d = BlobDetector::default().detect(&f, Resolution::square(128));
        assert!(d.items.len() <= 2, "noise blobs: {}", d.items.len());
    }

    #[test]
    fn deterministic() {
        let f = frame_with_cars(2, 0.1, 0.7);
        let det = BlobDetector::default();
        assert_eq!(
            det.detect(&f, Resolution::square(160)),
            det.detect(&f, Resolution::square(160))
        );
    }
}
