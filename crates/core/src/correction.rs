//! Correction-set construction (§3.3.1).
//!
//! The correction set `v_1 … v_m` is a randomly sampled, *otherwise
//! undegraded* set of model outputs that anchors the repair of biased
//! bounds. It must itself be as degraded as possible — i.e. as small as
//! possible — while keeping its own bound `err_b(v)` tight, since the
//! repaired bound inherits it. The paper's heuristic: grow the set by 1% of
//! the corpus at a time and stop at the elbow, where the bound improves by
//! less than 2% per step (or at the administrator's size cap).

use smokescreen_degrade::RestrictionIndex;
use smokescreen_models::OutputCache;

use crate::estimate::{estimate_from_outputs, Estimate, Workload};
use crate::Result;

/// Tunables of the construction heuristic.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CorrectionConfig {
    /// Growth step as a fraction of the corpus (paper: 1%).
    pub step: f64,
    /// Stop when `|err_b(v)|` improves by less than this between steps
    /// (paper: 2%).
    pub stall_threshold: f64,
    /// Administrator's cap on the correction-set fraction.
    pub max_fraction: f64,
}

impl Default for CorrectionConfig {
    fn default() -> Self {
        CorrectionConfig {
            step: 0.01,
            stall_threshold: 0.02,
            max_fraction: 0.25,
        }
    }
}

/// A constructed correction set for one workload.
#[derive(Debug, Clone)]
pub struct CorrectionSet {
    /// The outputs `v_1 … v_m` (native resolution, random sample).
    pub values: Vec<f64>,
    /// Size as a fraction of the corpus.
    pub fraction: f64,
    /// Estimate computed from the correction set alone (Algorithm 3
    /// line 2) — the anchor for repair.
    pub estimate: Estimate,
    /// The `err_b(v)` trajectory observed while growing (one entry per 1%
    /// step), kept for the Figure 9 reproduction.
    pub growth_curve: Vec<(f64, f64)>,
}

impl CorrectionSet {
    /// `m`, the number of frames in the set.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the set is empty (never true for a successfully built set).
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

/// Builds a correction set for the workload using the elbow heuristic.
///
/// The set applies **only random interventions** (frame sampling) at the
/// native resolution with no removal — the precondition for its bound to be
/// valid (§3.2.5). Growth reuses a nested sampling permutation, so each
/// step only runs the model on the newly added frames; pass a `cache` to
/// also share outputs with profile generation.
pub fn build_correction_set(
    workload: &Workload<'_>,
    restrictions: &RestrictionIndex,
    config: &CorrectionConfig,
    seed: u64,
    cache: Option<&OutputCache<'_>>,
) -> Result<CorrectionSet> {
    let corpus = workload.corpus;
    let n_total = corpus.len();
    let step_frames = ((n_total as f64 * config.step).round() as usize).max(1);
    let max_frames = ((n_total as f64 * config.max_fraction).round() as usize)
        .clamp(step_frames, n_total);

    // One full-corpus permutation; prefixes are the growing correction set.
    // Image removal never applies to correction sets, so sample from the
    // whole corpus.
    let _ = restrictions; // correction sets ignore removal by design
    let sampler = smokescreen_stats::sample::PrefixSampler::new(n_total, seed);
    let native = corpus
        .native_resolution
        .min(workload.detector.native_resolution());

    let mut values: Vec<f64> = Vec::with_capacity(max_frames);
    let mut growth_curve = Vec::new();
    let mut prev_err: Option<f64> = None;
    let mut estimate;

    let mut m = step_frames;
    loop {
        let m_clamped = m.min(max_frames);
        // Extend values to cover the prefix of size m.
        for &idx in &sampler.prefix(m_clamped)[values.len()..] {
            let frame = corpus.frame(idx).expect("prefix within corpus");
            let v = match cache {
                Some(c) => c.count(frame, native, workload.class),
                None => workload.detector.count(frame, native, workload.class),
            };
            values.push(v);
        }
        let est = estimate_from_outputs(workload.aggregate, &values, n_total, workload.delta)?;
        let err = est.err_b();
        growth_curve.push((m_clamped as f64 / n_total as f64, err));
        estimate = est;

        let stalled = prev_err.is_some_and(|p| (p - err).abs() < config.stall_threshold);
        if stalled || m_clamped >= max_frames {
            break;
        }
        prev_err = Some(err);
        m = m_clamped + step_frames;
    }

    Ok(CorrectionSet {
        fraction: values.len() as f64 / n_total as f64,
        values,
        estimate,
        growth_curve,
    })
}

/// Sweeps `err_b(v)` over an explicit list of fractions, without the
/// stopping rule — the raw curve Figure 9 plots against the chosen elbow.
pub fn correction_error_curve(
    workload: &Workload<'_>,
    fractions: &[f64],
    seed: u64,
    cache: Option<&OutputCache<'_>>,
) -> Result<Vec<(f64, f64)>> {
    let corpus = workload.corpus;
    let n_total = corpus.len();
    let sampler = smokescreen_stats::sample::PrefixSampler::new(n_total, seed);
    let native = corpus
        .native_resolution
        .min(workload.detector.native_resolution());

    let mut values: Vec<f64> = Vec::new();
    let mut out = Vec::with_capacity(fractions.len());
    let mut sorted = fractions.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite fractions"));
    for f in sorted {
        let m = ((n_total as f64 * f).round() as usize).clamp(1, n_total);
        for &idx in &sampler.prefix(m)[values.len()..] {
            let frame = corpus.frame(idx).expect("prefix within corpus");
            let v = match cache {
                Some(c) => c.count(frame, native, workload.class),
                None => workload.detector.count(frame, native, workload.class),
            };
            values.push(v);
        }
        let est = estimate_from_outputs(workload.aggregate, &values, n_total, workload.delta)?;
        out.push((f, est.err_b()));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimate::Aggregate;
    use smokescreen_models::Oracle;
    use smokescreen_video::synth::DatasetPreset;
    use smokescreen_video::ObjectClass;

    fn workload(corpus: &smokescreen_video::VideoCorpus, agg: Aggregate) -> Workload<'_> {
        Workload {
            corpus,
            detector: &Oracle,
            class: ObjectClass::Car,
            aggregate: agg,
            delta: 0.05,
        }
    }

    #[test]
    fn growth_stops_at_elbow_or_cap() {
        let corpus = DatasetPreset::Detrac.generate(20).slice(0, 8_000);
        let w = workload(&corpus, Aggregate::Avg);
        let restrictions = RestrictionIndex::from_ground_truth(&corpus, &[]);
        let cs =
            build_correction_set(&w, &restrictions, &CorrectionConfig::default(), 3, None)
                .unwrap();
        assert!(!cs.is_empty());
        assert!(cs.fraction <= 0.25 + 1e-9);
        assert_eq!(
            cs.len(),
            (cs.fraction * corpus.len() as f64).round() as usize
        );
        assert!(!cs.growth_curve.is_empty());
        // The curve must be recorded at 1%-of-corpus granularity.
        assert!((cs.growth_curve[0].0 - 0.01).abs() < 1e-9);
    }

    #[test]
    fn max_aggregate_needs_smaller_set_than_avg() {
        // §5.2.3: the chosen fraction for MAX (2%) is below AVG's (4–6%).
        // The rank-metric bound tightens faster than the mean bound on
        // these skewed counts.
        let corpus = DatasetPreset::Detrac.generate(21).slice(0, 8_000);
        let restrictions = RestrictionIndex::from_ground_truth(&corpus, &[]);
        let avg = build_correction_set(
            &workload(&corpus, Aggregate::Avg),
            &restrictions,
            &CorrectionConfig::default(),
            5,
            None,
        )
        .unwrap();
        let max = build_correction_set(
            &workload(&corpus, Aggregate::Max { r: 0.99 }),
            &restrictions,
            &CorrectionConfig::default(),
            5,
            None,
        )
        .unwrap();
        assert!(
            max.fraction <= avg.fraction,
            "max={} avg={}",
            max.fraction,
            avg.fraction
        );
    }

    #[test]
    fn error_curve_is_broadly_decreasing() {
        let corpus = DatasetPreset::Detrac.generate(22).slice(0, 6_000);
        let w = workload(&corpus, Aggregate::Avg);
        let fractions: Vec<f64> = (1..=10).map(|i| i as f64 / 100.0).collect();
        let curve = correction_error_curve(&w, &fractions, 7, None).unwrap();
        assert_eq!(curve.len(), 10);
        assert!(
            curve.first().unwrap().1 > curve.last().unwrap().1,
            "err_b should fall as the set grows: {curve:?}"
        );
    }

    #[test]
    fn cap_binds_when_stall_never_triggers() {
        let corpus = DatasetPreset::NightStreet.generate(23).slice(0, 2_000);
        let w = workload(&corpus, Aggregate::Avg);
        let restrictions = RestrictionIndex::from_ground_truth(&corpus, &[]);
        let config = CorrectionConfig {
            step: 0.01,
            stall_threshold: 0.0, // never stalls
            max_fraction: 0.05,
        };
        let cs = build_correction_set(&w, &restrictions, &config, 1, None).unwrap();
        assert!((cs.fraction - 0.05).abs() < 0.011);
    }
}
