//! Profile similarity (§3.3.1 fallback, §5.3.2 experiment) and
//! content-drift scoring.
//!
//! When not even a random-intervention correction set is permissible on
//! the query video, an administrator can profile a *similar but less
//! sensitive* video and transfer the curves. This module quantifies how
//! close two profiles are by aligning their points on matching
//! intervention sets and diffing the bounds.
//!
//! The second half of the module is an AQuA-style **drift score**: a
//! profile's bounds assume upcoming video is drawn from the same
//! distribution the profile was calibrated on, and the scorer detects
//! when it is not. It maintains a windowed divergence of the kernel
//! summary statistic (the window mean of model outputs) against a
//! profiled [`DriftBaseline`]: each consecutive window of the live stream
//! is scored as `|window_mean − baseline_mean| / baseline_spread`, where
//! the spread is measured **empirically from the baseline's own window
//! means** — under temporal autocorrelation (cars persist across frames;
//! UA-DETRAC-style sequence multipliers) the i.i.d. `σ/√W` prediction
//! underestimates the real spread several-fold and would flood the score
//! with false positives. A window scoring above the threshold is flagged;
//! [`GenerationReport`](crate::generation::GenerationReport) surfaces the
//! max score and flag count when a
//! [`DriftProbe`](crate::generation::GeneratorConfig) is configured.

use smokescreen_stats::describe::{windowed_means, RunningStats};
use smokescreen_video::{ObjectClass, Resolution};

use crate::estimate::Aggregate;
use crate::profile::Profile;
use crate::streaming::StreamingEstimator;

/// A matched pair of profile points and their bound difference.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileDiffPoint {
    /// Sample fraction of the matched candidates.
    pub fraction: f64,
    /// Resolution of the matched candidates (None = native).
    pub resolution: Option<Resolution>,
    /// Restricted classes of the matched candidates.
    pub restricted: Vec<ObjectClass>,
    /// `err_b` in profile A.
    pub err_a: f64,
    /// `err_b` in profile B.
    pub err_b: f64,
}

impl ProfileDiffPoint {
    /// Absolute bound difference `|err_A − err_B|`.
    pub fn abs_difference(&self) -> f64 {
        (self.err_a - self.err_b).abs()
    }
}

/// Summary of a profile comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileDiff {
    /// All matched points.
    pub points: Vec<ProfileDiffPoint>,
}

impl ProfileDiff {
    /// Mean absolute bound difference over matched points (0 when none).
    pub fn mean_abs_difference(&self) -> f64 {
        if self.points.is_empty() {
            return 0.0;
        }
        self.points.iter().map(|p| p.abs_difference()).sum::<f64>() / self.points.len() as f64
    }

    /// Largest absolute bound difference.
    pub fn max_abs_difference(&self) -> f64 {
        self.points
            .iter()
            .map(|p| p.abs_difference())
            .fold(0.0, f64::max)
    }

    /// Number of matched candidates.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether no candidates matched.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }
}

/// Aligns two profiles on identical `(f, p, c)` candidates and diffs their
/// bounds. Fractions are matched with a small tolerance so profiles
/// generated over equal grids align even after floating-point noise.
pub fn profile_difference(a: &Profile, b: &Profile) -> ProfileDiff {
    let mut points = Vec::new();
    for pa in &a.points {
        if let Some(pb) = b.points.iter().find(|pb| {
            (pb.set.sample_fraction - pa.set.sample_fraction).abs() < 1e-9
                && pb.set.resolution == pa.set.resolution
                && same_classes(&pb.set.restricted, &pa.set.restricted)
        }) {
            points.push(ProfileDiffPoint {
                fraction: pa.set.sample_fraction,
                resolution: pa.set.resolution,
                restricted: pa.set.restricted.clone(),
                err_a: pa.err_b,
                err_b: pb.err_b,
            });
        }
    }
    ProfileDiff { points }
}

fn same_classes(a: &[ObjectClass], b: &[ObjectClass]) -> bool {
    a.len() == b.len() && a.iter().all(|c| b.contains(c))
}

/// Default scoring window, in frames. At 30 fps this is ~8.5 s of video —
/// long enough to average over per-frame detector noise, short enough to
/// catch a mid-stream regime change within seconds.
pub const DEFAULT_DRIFT_WINDOW: usize = 256;

/// Default flagging threshold on the drift score (a z-like statistic in
/// units of baseline window-mean spread). Tuned on both synthetic corpora:
/// clean streams stay comfortably below it across seeds while prevalence
/// drift clears it several-fold (see `tests/content_shift.rs`).
pub const DEFAULT_DRIFT_THRESHOLD: f64 = 4.0;

/// Profiled reference statistics the drift score diverges from.
///
/// Built once from the baseline stream's model outputs (the same outputs
/// profile generation already computes), then carried as plain data.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftBaseline {
    /// Scoring window length, in outputs.
    pub window: usize,
    /// Mean of the baseline's non-overlapping window means.
    pub mean: f64,
    /// Empirical spread (sample std-dev) of those window means, floored
    /// by the i.i.d. `σ/√W` prediction so a fluke-flat baseline cannot
    /// produce a divide-by-near-zero score.
    pub spread: f64,
}

impl DriftBaseline {
    /// Profiles a baseline from a stream of model outputs. Returns `None`
    /// when the stream holds fewer than two full windows — a spread
    /// measured from one window mean is no spread at all.
    pub fn from_outputs(outputs: &[f64], window: usize) -> Option<Self> {
        let means = windowed_means(outputs, window);
        if means.len() < 2 {
            return None;
        }
        let of_means = RunningStats::from_slice(&means);
        let per_frame = RunningStats::from_slice(outputs);
        let iid_floor = per_frame.std_dev() / (window as f64).sqrt();
        let abs_floor = 1e-6 * (1.0 + of_means.mean().abs());
        Some(DriftBaseline {
            window,
            mean: of_means.mean(),
            spread: of_means.sample_std_dev().max(iid_floor).max(abs_floor),
        })
    }

    /// The drift score of one window mean: divergence from the baseline
    /// mean in units of baseline spread.
    pub fn score(&self, window_mean: f64) -> f64 {
        (window_mean - self.mean).abs() / self.spread
    }
}

/// Outcome of scoring a stream against a [`DriftBaseline`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct DriftReport {
    /// Windows scored (including a final partial window of at least half
    /// length).
    pub windows_scored: usize,
    /// Windows whose score exceeded the threshold.
    pub windows_flagged: usize,
    /// Largest window score observed (0 when nothing was scored).
    pub max_score: f64,
}

impl DriftReport {
    /// Whether any window crossed the threshold.
    pub fn flagged(&self) -> bool {
        self.windows_flagged > 0
    }
}

/// Streaming drift scorer: feeds consecutive windows of model outputs
/// through a reused [`StreamingEstimator`] kernel and scores each against
/// the baseline.
///
/// The estimator is the same machinery online query estimation uses — the
/// window mean is its `Y_approx` over a window-sized population — reset
/// between windows via
/// [`reset_baseline`](StreamingEstimator::reset_baseline) rather than
/// duplicated kernel state.
#[derive(Debug, Clone)]
pub struct DriftScorer {
    baseline: DriftBaseline,
    threshold: f64,
    estimator: StreamingEstimator,
    report: DriftReport,
}

impl DriftScorer {
    /// Creates a scorer flagging windows whose score exceeds `threshold`.
    pub fn new(baseline: DriftBaseline, threshold: f64) -> Self {
        let estimator = StreamingEstimator::new(Aggregate::Avg, baseline.window, 0.05);
        DriftScorer {
            baseline,
            threshold,
            estimator,
            report: DriftReport::default(),
        }
    }

    /// Ingests one model output in stream order, scoring (and resetting)
    /// whenever a window fills.
    pub fn push(&mut self, output: f64) {
        self.estimator
            .push(output)
            .expect("AVG estimation over a bounded window cannot fail");
        if self.estimator.len() >= self.baseline.window {
            self.score_current_window();
            self.estimator.reset_baseline();
        }
    }

    /// Scores a final partial window (if it holds at least half a window
    /// of outputs — shorter tails are too noisy to judge) and returns the
    /// accumulated report.
    pub fn finish(mut self) -> DriftReport {
        if self.estimator.len() >= self.baseline.window.div_ceil(2) {
            self.score_current_window();
        }
        self.report
    }

    fn score_current_window(&mut self) {
        let mean = self
            .estimator
            .estimate()
            .expect("AVG estimation over a bounded window cannot fail")
            .y_approx();
        let score = self.baseline.score(mean);
        self.report.windows_scored += 1;
        if score > self.threshold {
            self.report.windows_flagged += 1;
        }
        if score > self.report.max_score {
            self.report.max_score = score;
        }
    }
}

/// Scores a whole stream at once — the batch convenience over
/// [`DriftScorer`].
pub fn drift_score(baseline: &DriftBaseline, outputs: &[f64], threshold: f64) -> DriftReport {
    let mut scorer = DriftScorer::new(*baseline, threshold);
    for &v in outputs {
        scorer.push(v);
    }
    scorer.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimate::Aggregate;
    use crate::profile::ProfilePoint;
    use smokescreen_degrade::InterventionSet;

    fn profile(errs: &[(f64, f64)]) -> Profile {
        Profile {
            corpus: "t".into(),
            model: "m".into(),
            class: ObjectClass::Car,
            aggregate: Aggregate::Avg,
            delta: 0.05,
            points: errs
                .iter()
                .map(|&(f, e)| ProfilePoint {
                    set: InterventionSet::sampling(f),
                    y_approx: 1.0,
                    err_b: e,
                    corrected: false,
                    n: 10,
                })
                .collect(),
        }
    }

    #[test]
    fn identical_profiles_have_zero_difference() {
        let a = profile(&[(0.1, 0.3), (0.2, 0.2)]);
        let d = profile_difference(&a, &a.clone());
        assert_eq!(d.len(), 2);
        assert_eq!(d.mean_abs_difference(), 0.0);
        assert_eq!(d.max_abs_difference(), 0.0);
    }

    #[test]
    fn differences_are_computed_per_matched_point() {
        let a = profile(&[(0.1, 0.30), (0.2, 0.20)]);
        let b = profile(&[(0.1, 0.25), (0.2, 0.30), (0.5, 0.1)]);
        let d = profile_difference(&a, &b);
        assert_eq!(d.len(), 2); // 0.5 is unmatched
        assert!((d.mean_abs_difference() - 0.075).abs() < 1e-12);
        assert!((d.max_abs_difference() - 0.10).abs() < 1e-12);
    }

    #[test]
    fn disjoint_profiles_empty_diff() {
        let a = profile(&[(0.1, 0.3)]);
        let b = profile(&[(0.4, 0.3)]);
        let d = profile_difference(&a, &b);
        assert!(d.is_empty());
        assert_eq!(d.mean_abs_difference(), 0.0);
    }

    /// A deterministic noisy stream around `level` (LCG, no global rng).
    fn noisy_stream(n: usize, level: f64, seed: u64) -> Vec<f64> {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        (0..n)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                level + ((state >> 33) % 7) as f64 - 3.0
            })
            .collect()
    }

    #[test]
    fn baseline_needs_two_full_windows() {
        assert!(DriftBaseline::from_outputs(&noisy_stream(100, 5.0, 1), 64).is_none());
        assert!(DriftBaseline::from_outputs(&noisy_stream(128, 5.0, 1), 64).is_some());
        assert!(DriftBaseline::from_outputs(&[], 64).is_none());
    }

    #[test]
    fn baseline_spread_never_collapses() {
        // A perfectly constant stream still gets a positive spread (the
        // absolute floor), so scoring can never divide by zero.
        let constant = vec![3.0; 1_024];
        let b = DriftBaseline::from_outputs(&constant, 128).unwrap();
        assert!(b.spread > 0.0);
        assert_eq!(b.mean, 3.0);
        assert_eq!(b.score(3.0), 0.0);
        assert!(b.score(4.0).is_finite());
    }

    #[test]
    fn clean_stream_scores_low_and_shifted_stream_flags() {
        let baseline_outputs = noisy_stream(4_096, 5.0, 7);
        let b = DriftBaseline::from_outputs(&baseline_outputs, 256).unwrap();

        // A fresh stream from the same regime: no window flags.
        let clean = drift_score(&b, &noisy_stream(4_096, 5.0, 8), DEFAULT_DRIFT_THRESHOLD);
        assert!(clean.windows_scored >= 16);
        assert!(!clean.flagged(), "clean max_score={}", clean.max_score);

        // The same regime with the final third shifted up 2.5×: the tail
        // windows must flag.
        let mut drifted = noisy_stream(4_096, 5.0, 9);
        for v in drifted.iter_mut().skip(2_730) {
            *v *= 2.5;
        }
        let report = drift_score(&b, &drifted, DEFAULT_DRIFT_THRESHOLD);
        assert!(report.flagged(), "drifted max_score={}", report.max_score);
        assert!(report.max_score > clean.max_score * 2.0);
    }

    #[test]
    fn scorer_streams_identically_to_batch_and_scores_partial_tail() {
        let b = DriftBaseline::from_outputs(&noisy_stream(2_048, 4.0, 3), 128).unwrap();
        let stream = noisy_stream(1_000, 4.0, 4);
        let batch = drift_score(&b, &stream, DEFAULT_DRIFT_THRESHOLD);
        let mut scorer = DriftScorer::new(b, DEFAULT_DRIFT_THRESHOLD);
        for &v in &stream {
            scorer.push(v);
        }
        assert_eq!(scorer.finish(), batch);
        // 1000 = 7 full windows of 128 (896) + a 104-output tail ≥ 64:
        // the tail is scored too.
        assert_eq!(batch.windows_scored, 8);

        // A tail shorter than half a window is dropped.
        let short = drift_score(&b, &stream[..896 + 40], DEFAULT_DRIFT_THRESHOLD);
        assert_eq!(short.windows_scored, 7);
    }
}
