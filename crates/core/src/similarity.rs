//! Profile similarity (§3.3.1 fallback, §5.3.2 experiment).
//!
//! When not even a random-intervention correction set is permissible on
//! the query video, an administrator can profile a *similar but less
//! sensitive* video and transfer the curves. This module quantifies how
//! close two profiles are by aligning their points on matching
//! intervention sets and diffing the bounds.

use smokescreen_video::{ObjectClass, Resolution};

use crate::profile::Profile;

/// A matched pair of profile points and their bound difference.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileDiffPoint {
    /// Sample fraction of the matched candidates.
    pub fraction: f64,
    /// Resolution of the matched candidates (None = native).
    pub resolution: Option<Resolution>,
    /// Restricted classes of the matched candidates.
    pub restricted: Vec<ObjectClass>,
    /// `err_b` in profile A.
    pub err_a: f64,
    /// `err_b` in profile B.
    pub err_b: f64,
}

impl ProfileDiffPoint {
    /// Absolute bound difference `|err_A − err_B|`.
    pub fn abs_difference(&self) -> f64 {
        (self.err_a - self.err_b).abs()
    }
}

/// Summary of a profile comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileDiff {
    /// All matched points.
    pub points: Vec<ProfileDiffPoint>,
}

impl ProfileDiff {
    /// Mean absolute bound difference over matched points (0 when none).
    pub fn mean_abs_difference(&self) -> f64 {
        if self.points.is_empty() {
            return 0.0;
        }
        self.points.iter().map(|p| p.abs_difference()).sum::<f64>() / self.points.len() as f64
    }

    /// Largest absolute bound difference.
    pub fn max_abs_difference(&self) -> f64 {
        self.points
            .iter()
            .map(|p| p.abs_difference())
            .fold(0.0, f64::max)
    }

    /// Number of matched candidates.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether no candidates matched.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }
}

/// Aligns two profiles on identical `(f, p, c)` candidates and diffs their
/// bounds. Fractions are matched with a small tolerance so profiles
/// generated over equal grids align even after floating-point noise.
pub fn profile_difference(a: &Profile, b: &Profile) -> ProfileDiff {
    let mut points = Vec::new();
    for pa in &a.points {
        if let Some(pb) = b.points.iter().find(|pb| {
            (pb.set.sample_fraction - pa.set.sample_fraction).abs() < 1e-9
                && pb.set.resolution == pa.set.resolution
                && same_classes(&pb.set.restricted, &pa.set.restricted)
        }) {
            points.push(ProfileDiffPoint {
                fraction: pa.set.sample_fraction,
                resolution: pa.set.resolution,
                restricted: pa.set.restricted.clone(),
                err_a: pa.err_b,
                err_b: pb.err_b,
            });
        }
    }
    ProfileDiff { points }
}

fn same_classes(a: &[ObjectClass], b: &[ObjectClass]) -> bool {
    a.len() == b.len() && a.iter().all(|c| b.contains(c))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimate::Aggregate;
    use crate::profile::ProfilePoint;
    use smokescreen_degrade::InterventionSet;

    fn profile(errs: &[(f64, f64)]) -> Profile {
        Profile {
            corpus: "t".into(),
            model: "m".into(),
            class: ObjectClass::Car,
            aggregate: Aggregate::Avg,
            delta: 0.05,
            points: errs
                .iter()
                .map(|&(f, e)| ProfilePoint {
                    set: InterventionSet::sampling(f),
                    y_approx: 1.0,
                    err_b: e,
                    corrected: false,
                    n: 10,
                })
                .collect(),
        }
    }

    #[test]
    fn identical_profiles_have_zero_difference() {
        let a = profile(&[(0.1, 0.3), (0.2, 0.2)]);
        let d = profile_difference(&a, &a.clone());
        assert_eq!(d.len(), 2);
        assert_eq!(d.mean_abs_difference(), 0.0);
        assert_eq!(d.max_abs_difference(), 0.0);
    }

    #[test]
    fn differences_are_computed_per_matched_point() {
        let a = profile(&[(0.1, 0.30), (0.2, 0.20)]);
        let b = profile(&[(0.1, 0.25), (0.2, 0.30), (0.5, 0.1)]);
        let d = profile_difference(&a, &b);
        assert_eq!(d.len(), 2); // 0.5 is unmatched
        assert!((d.mean_abs_difference() - 0.075).abs() < 1e-12);
        assert!((d.max_abs_difference() - 0.10).abs() < 1e-12);
    }

    #[test]
    fn disjoint_profiles_empty_diff() {
        let a = profile(&[(0.1, 0.3)]);
        let b = profile(&[(0.4, 0.3)]);
        let d = profile_difference(&a, &b);
        assert!(d.is_empty());
        assert_eq!(d.mean_abs_difference(), 0.0);
    }
}
