//! Profile generation (§3.1, §3.3.2).
//!
//! For every intervention candidate the generator records a
//! [`ProfilePoint`]. Three optimizations keep `N_model` and estimation
//! cost small:
//!
//! * **Output reuse** — a shared [`OutputCache`] means each `(frame,
//!   resolution)` pair is processed by the model at most once across all
//!   candidates; ascending fractions reuse the smaller samples' outputs
//!   outright because samples are nested prefixes.
//! * **Incremental estimation** — within one `(resolution, removal)`
//!   cell, a single [`AggregateKernel`] carries running estimator state
//!   across the ascending-fraction sweep, ingesting only the `Δn` newly
//!   sampled outputs per candidate and answering in `O(1)` (mean-style)
//!   or `O(log n)` (order-style) — bit-identical to the batch
//!   [`result_error_est`] path, which remains the one-shot reference.
//! * **Early stopping** — within a cell, fractions are profiled in
//!   ascending order and the sweep stops when the bound improves more
//!   slowly than a threshold.
//!
//! The generator also accounts for simulated model time vs. measured
//! estimation time, which reproduces the §5.3.1 breakdown.
//!
//! # Parallelism and determinism
//!
//! Independent `(resolution, removal)` cells are profiled concurrently on
//! an [`rt::pool`](smokescreen_rt::pool) scoped thread pool; the in-cell
//! ascending-fraction sweep stays sequential because early stopping reads
//! the previous candidate's bound. The contract is **bit-for-bit
//! determinism**: every candidate derives its sampling permutation from
//! the configured seed (never from execution order), cell results are
//! merged back in grid order, and the shard-locked [`OutputCache`] keeps
//! `model_runs`/`cache_hits` schedule-independent — so the emitted
//! [`Profile`] is byte-identical for any thread count, including 1.
//! `estimation_time_ms` sums per-candidate durations (not wall-clock), so
//! it stays meaningful under concurrency; as a measured quantity it is the
//! one report field that naturally varies run-to-run.
//!
//! # Fault injection and graceful degradation
//!
//! A [`GeneratorConfig`] carrying a [`FaultPlan`] routes every model call
//! through the fault-aware [`OutputCache`]: transient failures retry under
//! deterministic backoff, permanent failures (timeouts, exhausted
//! budgets) drop the frame. A cell that loses frames **widens** instead
//! of lying: the kernel ingests only surviving outputs, so every emitted
//! bound is computed over the smaller survivor sample against the full
//! population `N` — sound by construction, because fault decisions depend
//! only on `(frame id, resolution)`, never on frame content, leaving the
//! survivors a uniform without-replacement sample (the lost frames simply
//! join the "not sampled" mass; DESIGN.md proves this). A per-cell
//! circuit breaker quarantines cells whose loss fraction exceeds
//! [`GeneratorConfig::max_cell_loss`] (or that lose *every* frame): their
//! points are withheld and the cell is reported in
//! [`GenerationReport::degraded_cells`] — degraded work is never silently
//! dropped.
//!
//! # Checkpoint/resume durability
//!
//! With [`GeneratorConfig::checkpoint`] set (or `SMOKESCREEN_CHECKPOINT_DIR`
//! in the environment, wired up by callers), every completed cell is
//! committed to an append-only [`rt::journal`](smokescreen_rt::journal)
//! before generation moves past it, and a restarted run splices the
//! journaled cells back in, recomputing only the missing ones. The
//! resumed profile is **bit-identical to an uninterrupted run** because a
//! cell's points are pure functions of `(workload, grid, seed, fault
//! plan)` — nothing a cell computes depends on which process computed it,
//! and the journal stores the cell's full output verbatim.
//!
//! Cells complete in arbitrary order under concurrency, but the journal
//! must describe a *schedule-independent* prefix, so commits are
//! serialized in **grid order**: a dedicated committer holds out-of-order
//! results in a pending map and appends a cell only once every earlier
//! cell is durable. The journal is therefore always a contiguous prefix
//! `0..m` of the grid, making [`GenerationReport::cells_resumed`] and
//! [`GenerationReport::journal_bytes`] deterministic at any thread count.
//! Work completed out of order ahead of a crash is simply recomputed —
//! lost wall-clock, never lost correctness.
//!
//! Resumed cells carry their journaled `frames_lost` / early-stop /
//! quarantine state, so those report fields equal an uninterrupted run's.
//! Cache-derived counters (`model_runs`, `cache_hits`, `model_time_ms`,
//! retry/fault counters) count only the *fresh* work of the current
//! process — cross-cell output reuse makes per-cell attribution
//! impossible — and remain schedule-independent for a given journal
//! state. Measured timings (`estimation_*_ms`) are excluded from journal
//! payloads so journal bytes stay deterministic.
//!
//! A seeded [`CrashPlan`] makes process death itself replayable: a pure
//! function of `(seed, cell index)` decides, at each cell's commit,
//! whether generation dies cleanly after the append or mid-append with a
//! torn record ([`CoreError::CrashInjected`]). Replay detects a torn
//! record's cell and suppresses that cell's scheduled torn crash on
//! resume (the tear already "happened"), so every crash→resume loop
//! terminates: each firing cell kills at most one run.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::time::Instant;

use smokescreen_degrade::{
    CandidateGrid, DegradedView, InterventionSet, RangeOutputs, RestrictionIndex,
};
use smokescreen_models::{OutputCache, RetryPolicy};
use smokescreen_rt::fault::{CrashKind, CrashPlan, FaultPlan};
use smokescreen_rt::journal::{self, Journal, JournalWriter, Replay};
use smokescreen_rt::json::{FromJson, Json, ToJson};
use smokescreen_rt::pool::Pool;
use smokescreen_rt::sync::Mutex;

use crate::correction::CorrectionSet;
use crate::estimate::{result_error_est, AggregateKernel, Workload};
use crate::profile::{Profile, ProfilePoint};
use crate::repair::{best_bound_for_random, corrected_bound};
use crate::similarity::{DriftBaseline, DriftScorer};
use crate::{CoreError, Result};

/// Optional content-drift probe: after profiling, the generator scans the
/// corpus in frame order at the workload's native resolution (through the
/// shared output cache, so profiled frames are free) and scores each
/// window of model outputs against the profiled baseline. Results surface
/// as [`GenerationReport::drift_score`] /
/// [`GenerationReport::drift_windows_flagged`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftProbe {
    /// Reference statistics from the stream the profile was calibrated on.
    pub baseline: DriftBaseline,
    /// Flagging threshold (see
    /// [`DEFAULT_DRIFT_THRESHOLD`](crate::similarity::DEFAULT_DRIFT_THRESHOLD)).
    pub threshold: f64,
}

/// Generator tunables.
#[derive(Debug, Clone, PartialEq)]
pub struct GeneratorConfig {
    /// Sampling-permutation seed.
    pub seed: u64,
    /// Early-stopping: stop a fraction sweep when the bound improves by
    /// less than this between consecutive candidates. `None` disables.
    pub early_stop_improvement: Option<f64>,
    /// Minimum candidates per cell before early stopping may trigger.
    pub early_stop_min_points: usize,
    /// Worker threads for cell-level parallelism. `0` = automatic
    /// (`SMOKESCREEN_THREADS`, else available parallelism). The generated
    /// profile is byte-identical for every value.
    pub threads: usize,
    /// Seeded fault plan for chaos runs. `None` (the default) disables
    /// injection entirely — the production configuration.
    pub faults: Option<FaultPlan>,
    /// Retry budget and backoff for faulted model calls.
    pub retry: RetryPolicy,
    /// Circuit breaker: quarantine a cell when more than this fraction of
    /// its sampled frames are lost to permanent failures.
    pub max_cell_loss: f64,
    /// Checkpoint directory for crash-consistent generation. `None` (the
    /// default) disables journaling entirely and the run is byte-for-byte
    /// what it was before this feature existed. With a directory set,
    /// each completed cell is durably journaled in grid order and a rerun
    /// resumes from the journal, recomputing only missing cells.
    pub checkpoint: Option<PathBuf>,
    /// Seeded process-death schedule for chaos runs: generation dies at
    /// deterministic cells' journal commits with
    /// [`CoreError::CrashInjected`]. `None` (the default) disables it.
    /// Only useful together with [`checkpoint`](Self::checkpoint) — a
    /// crash without a journal replays identically and never progresses.
    pub crash: Option<CrashPlan>,
    /// Content-drift probe scoring the corpus against a profiled
    /// baseline. `None` (the default) leaves generation untouched byte
    /// for byte — the probe neither runs the model nor changes the report
    /// unless explicitly configured.
    pub drift: Option<DriftProbe>,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        GeneratorConfig {
            seed: 0,
            early_stop_improvement: Some(0.005),
            early_stop_min_points: 3,
            threads: 0,
            faults: None,
            retry: RetryPolicy::default(),
            max_cell_loss: 0.5,
            checkpoint: None,
            crash: None,
            drift: None,
        }
    }
}

/// Cost accounting for one generation run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct GenerationReport {
    /// Distinct model invocations (`N_model`).
    pub model_runs: usize,
    /// Cache hits (reused outputs).
    pub cache_hits: usize,
    /// Simulated model processing time, ms (`N_model · T_model`).
    pub model_time_ms: f64,
    /// Measured wall-clock estimation time, ms (ingest + bound).
    pub estimation_time_ms: f64,
    /// Portion of estimation time spent ingesting sample outputs into the
    /// per-cell kernels (`Δn` cache fetches + kernel pushes).
    pub estimation_ingest_ms: f64,
    /// Portion of estimation time spent computing bounds and corrections
    /// from kernel state.
    pub estimation_bound_ms: f64,
    /// `(resolution, removal)` cells swept.
    pub cells: usize,
    /// Profiled points emitted.
    pub points: usize,
    /// Candidates skipped by early stopping.
    pub skipped_by_early_stop: usize,
    /// Retries spent clearing transient model faults (0 without a plan).
    pub retries: usize,
    /// Model calls that encountered an injected fault of any kind.
    pub faults_injected: usize,
    /// Simulated fault latency charged (retry backoff + slow responses),
    /// ms.
    pub fault_time_ms: f64,
    /// Sampled frames lost to permanent failures across surviving cells'
    /// swept prefixes.
    pub frames_lost: usize,
    /// Labels of cells quarantined by the circuit breaker, in grid order.
    /// Their candidates are withheld from the profile, never silently
    /// emitted with unsound bounds.
    pub degraded_cells: Vec<String>,
    /// Cells spliced back from the checkpoint journal instead of being
    /// recomputed (0 without a checkpoint directory). Schedule-independent:
    /// the journal always holds a contiguous grid-order prefix.
    pub cells_resumed: usize,
    /// Final size of the checkpoint journal in bytes (0 when disabled).
    /// Deterministic for a given workload: journal payloads exclude
    /// measured timings.
    pub journal_bytes: u64,
    /// Corruption events detected and quarantined during journal replay
    /// (torn tail record, checksum mismatch, wrong format version,
    /// zero-byte file, …). The damaged cells were recomputed; nonzero
    /// means the journal was repaired, never that the profile is wrong.
    pub journal_corrupt_records: usize,
    /// Largest windowed drift score observed by the configured
    /// [`DriftProbe`] (`None` without one — the untouched default).
    pub drift_score: Option<f64>,
    /// Windows the drift probe flagged as diverged from the baseline
    /// (0 without a probe).
    pub drift_windows_flagged: usize,
}

/// Per-cell sweep result, merged into the profile in grid order.
#[derive(Debug, Default)]
struct CellOutput {
    points: Vec<ProfilePoint>,
    skipped_by_early_stop: usize,
    /// Frames lost to permanent failures in the cell's swept prefix.
    frames_lost: usize,
    /// Breaker label when the cell was quarantined (its points are
    /// withheld).
    quarantined: Option<String>,
    /// Time fetching sample outputs and pushing them into the kernel
    /// (sum of per-candidate durations, not wall-clock).
    ingest_ns: u128,
    /// Time computing bounds and corrections from kernel state.
    bound_ns: u128,
}

/// Journal codec for one completed cell.
///
/// The payload is the cell's *deterministic* output — points, early-stop
/// skips, loss accounting, quarantine label — encoded as compact JSON.
/// Measured timings (`ingest_ns`/`bound_ns`) are deliberately excluded:
/// they vary run to run, and journal bytes must not. A spliced cell
/// contributes zero to the timing totals, which only ever describe the
/// current process's work.
struct CellRecord;

impl CellRecord {
    fn encode(cell: usize, out: &CellOutput) -> Vec<u8> {
        Json::obj([
            ("cell", cell.to_json()),
            ("points", out.points.to_json()),
            ("skipped", out.skipped_by_early_stop.to_json()),
            ("frames_lost", out.frames_lost.to_json()),
            ("quarantined", out.quarantined.to_json()),
        ])
        .encode()
        .into_bytes()
    }

    /// Decodes a replayed payload, rejecting anything malformed or
    /// carrying the wrong cell index. A `None` here is treated by replay
    /// exactly like a checksum mismatch: quarantine and recompute.
    fn decode(cell: u32, bytes: &[u8]) -> Option<CellOutput> {
        let text = std::str::from_utf8(bytes).ok()?;
        let v = Json::parse(text).ok()?;
        if v.get("cell").ok()?.as_usize().ok()? != cell as usize {
            return None;
        }
        Some(CellOutput {
            points: Vec::<ProfilePoint>::from_json(v.get("points").ok()?).ok()?,
            skipped_by_early_stop: v.get("skipped").ok()?.as_usize().ok()?,
            frames_lost: v.get("frames_lost").ok()?.as_usize().ok()?,
            quarantined: Option::<String>::from_json(v.get("quarantined").ok()?).ok()?,
            ingest_ns: 0,
            bound_ns: 0,
        })
    }
}

/// Serializes journal commits into grid order.
///
/// Workers complete cells in schedule-dependent order; the committer
/// parks finished payloads in a pending map and appends to the journal
/// only the contiguous next-in-grid-order run, so the on-disk journal is
/// always a prefix `0..m` of the grid regardless of thread count. The
/// seeded [`CrashPlan`] is evaluated here — at commit time, in grid
/// order — which is what makes injected process deaths deterministic.
struct Committer {
    inner: Mutex<CommitterInner>,
    crash: Option<CrashPlan>,
    /// Cell whose torn append already reached disk in a previous life
    /// (identified by replay): its scheduled torn crash must not re-fire,
    /// or the crash→resume loop would never terminate.
    torn_done: Option<usize>,
}

struct CommitterInner {
    writer: Option<JournalWriter>,
    /// Completed-but-not-yet-durable cells; `None` marks a cell whose
    /// computation failed (commits halt at it — the run is failing).
    pending: BTreeMap<usize, Option<Vec<u8>>>,
    /// Next grid-order cell index to commit.
    next: usize,
    /// Cell whose commit an injected crash killed, once fired.
    crashed: Option<usize>,
    /// First journal I/O failure, surfaced as [`CoreError::Checkpoint`].
    io_error: Option<String>,
    /// Set when an errored cell blocks the contiguous prefix.
    halted: bool,
}

impl Committer {
    fn new(writer: Option<JournalWriter>, resumed: usize, crash: Option<CrashPlan>, torn_done: Option<usize>) -> Self {
        Committer {
            inner: Mutex::new(CommitterInner {
                writer,
                pending: BTreeMap::new(),
                next: resumed,
                crashed: None,
                io_error: None,
                halted: false,
            }),
            crash,
            torn_done,
        }
    }

    /// Whether an injected crash has fired; workers poll this and stop
    /// starting new cells, simulating prompt process death.
    fn crashed(&self) -> bool {
        self.inner.lock().crashed.is_some()
    }

    /// Offers a completed cell (`None` payload = the cell errored) and
    /// drains every newly contiguous cell to the journal.
    fn offer(&self, cell: usize, payload: Option<Vec<u8>>) {
        let mut g = self.inner.lock();
        if g.crashed.is_some() || g.io_error.is_some() || g.halted {
            return;
        }
        g.pending.insert(cell, payload);
        loop {
            let cell = g.next;
            let Some(payload) = g.pending.remove(&cell) else {
                return;
            };
            let Some(payload) = payload else {
                // An errored cell can never become durable; later cells
                // must not be journaled past the gap (contiguity is the
                // resume invariant). The run is returning Err anyway.
                g.halted = true;
                return;
            };
            g.next += 1;
            let crash = match self.crash.and_then(|p| p.crash_at(cell as u64)) {
                Some(CrashKind::TornAppend { .. }) if self.torn_done == Some(cell) => None,
                c => c,
            };
            match (&mut g.writer, crash) {
                (Some(w), None) => {
                    if let Err(e) = w.append(cell as u32, &payload) {
                        g.io_error = Some(format!("appending cell {cell}: {e}"));
                        return;
                    }
                }
                (Some(w), Some(CrashKind::AfterAppend)) => {
                    // The record becomes durable, *then* the process dies:
                    // resume must splice this cell without recomputing it.
                    if let Err(e) = w.append(cell as u32, &payload) {
                        g.io_error = Some(format!("appending cell {cell}: {e}"));
                        return;
                    }
                    g.crashed = Some(cell);
                    return;
                }
                (Some(w), Some(CrashKind::TornAppend { keep_frac })) => {
                    // The process dies mid-append: a torn record reaches
                    // disk and resume must quarantine it and recompute.
                    if let Err(e) = w.append_torn(cell as u32, &payload, keep_frac) {
                        g.io_error = Some(format!("tearing cell {cell}: {e}"));
                        return;
                    }
                    g.crashed = Some(cell);
                    return;
                }
                // Crash without a journal: death still fires (the plan
                // simulates the process, not the disk), nothing durable.
                (None, Some(_)) => {
                    g.crashed = Some(cell);
                    return;
                }
                (None, None) => {}
            }
        }
    }

    /// Tears down the committer, returning `(journal bytes, crashed cell,
    /// io error)`.
    fn finish(self) -> (u64, Option<usize>, Option<String>) {
        let g = self.inner.into_inner();
        (
            g.writer.as_ref().map_or(0, |w| w.bytes()),
            g.crashed,
            g.io_error,
        )
    }
}

/// Profile generator for one workload.
pub struct ProfileGenerator<'a> {
    workload: &'a Workload<'a>,
    restrictions: &'a RestrictionIndex,
    config: GeneratorConfig,
}

impl<'a> ProfileGenerator<'a> {
    /// Creates a generator.
    pub fn new(
        workload: &'a Workload<'a>,
        restrictions: &'a RestrictionIndex,
        config: GeneratorConfig,
    ) -> Self {
        ProfileGenerator {
            workload,
            restrictions,
            config,
        }
    }

    /// Generates the profile over the candidate grid.
    ///
    /// When a correction set is supplied, non-random candidates get
    /// repaired bounds (and are marked `corrected`); random candidates get
    /// the tighter of direct and corrected bounds. Without one, non-random
    /// candidates still record their (possibly invalid) direct bounds —
    /// the baseline behaviour Figure 6 exposes.
    pub fn generate(
        &self,
        grid: &CandidateGrid,
        correction: Option<&CorrectionSet>,
    ) -> Result<(Profile, GenerationReport)> {
        let cache = match self.config.faults {
            Some(plan) => {
                OutputCache::with_faults(self.workload.detector, plan, self.config.retry)
            }
            None => OutputCache::new(self.workload.detector),
        };

        let combos: &[Vec<smokescreen_video::ObjectClass>] = if grid.class_combos.is_empty() {
            &[Vec::new()]
        } else {
            &grid.class_combos
        };
        let resolutions: Vec<Option<smokescreen_video::Resolution>> =
            if grid.resolutions.is_empty() {
                vec![None]
            } else {
                grid.resolutions.iter().copied().map(Some).collect()
            };

        // Grid-order cell list (resolution-major, combo-minor); this order
        // defines the candidate order of the merged profile.
        let cells: Vec<(Option<smokescreen_video::Resolution>, &Vec<smokescreen_video::ObjectClass>)> =
            resolutions
                .iter()
                .flat_map(|&res| combos.iter().map(move |combo| (res, combo)))
                .collect();

        // Open the checkpoint journal (when configured) and splice back
        // every cell it already holds. Replay validates each record's
        // checksum, sequence position, and payload shape; anything
        // damaged is quarantined and simply recomputed below.
        let (writer, replay) = match &self.config.checkpoint {
            Some(dir) => {
                let (w, r) = self.open_journal(dir, grid, cells.len())?;
                (Some(w), r)
            }
            None => (None, Replay::default()),
        };
        let resumed: Vec<CellOutput> = replay
            .payloads
            .iter()
            .enumerate()
            .map(|(i, payload)| {
                CellRecord::decode(i as u32, payload)
                    .expect("replay already validated payloads")
            })
            .collect();
        let committer = Committer::new(
            writer,
            resumed.len(),
            self.config.crash,
            replay.torn_record.map(|c| c as usize),
        );

        let pool = Pool::with_threads(self.config.threads);
        let resumed_len = resumed.len();
        let fresh_outputs = pool.parallel_map(&cells, |i, &(resolution, combo)| {
            if i < resumed_len || committer.crashed() {
                // Already durable (spliced below), or the process is
                // "dead" — a real crash would compute nothing further.
                return Ok(None);
            }
            match self.profile_cell(grid, resolution, combo, correction, &cache) {
                Ok(out) => {
                    committer.offer(i, Some(CellRecord::encode(i, &out)));
                    Ok(Some(out))
                }
                Err(e) => {
                    committer.offer(i, None);
                    Err(e)
                }
            }
        });

        let (journal_bytes, crashed, io_error) = committer.finish();
        if let Some(msg) = io_error {
            return Err(CoreError::Checkpoint(msg));
        }
        if let Some(cell) = crashed {
            return Err(CoreError::CrashInjected { cell });
        }

        let mut points = Vec::new();
        let mut report = GenerationReport::default();
        report.cells = cells.len();
        report.cells_resumed = resumed_len;
        report.journal_bytes = journal_bytes;
        report.journal_corrupt_records = replay.corrupt_records;
        let mut ingest_ns: u128 = 0;
        let mut bound_ns: u128 = 0;
        let mut resumed = resumed.into_iter();
        for (i, fresh) in fresh_outputs.into_iter().enumerate() {
            let cell = if i < resumed_len {
                resumed.next().expect("resumed prefix has resumed_len cells")
            } else {
                fresh?.expect("non-crashed run computes every fresh cell")
            };
            report.skipped_by_early_stop += cell.skipped_by_early_stop;
            report.frames_lost += cell.frames_lost;
            if let Some(label) = cell.quarantined {
                report.degraded_cells.push(label);
            }
            ingest_ns += cell.ingest_ns;
            bound_ns += cell.bound_ns;
            points.extend(cell.points);
        }

        // Content-drift probe: a frame-order scan of model outputs at the
        // workload's effective native resolution, scored windowed against
        // the profiled baseline. Runs through the shared cache, so frames
        // the sweep already processed at this resolution cost nothing;
        // fresh frames are honest monitoring work and are accounted in
        // the model counters below. Frames whose calls permanently fail
        // under chaos simply drop out of the window — same graceful
        // degradation as the cell sweeps.
        if let Some(probe) = &self.config.drift {
            let res = self
                .workload
                .corpus
                .native_resolution
                .min(self.workload.detector.native_resolution());
            let mut scorer = DriftScorer::new(probe.baseline, probe.threshold);
            for frame in self.workload.corpus.frames() {
                if let Ok(v) = cache.try_count(frame, res, self.workload.class) {
                    scorer.push(v);
                }
            }
            let drift = scorer.finish();
            report.drift_score = Some(drift.max_score);
            report.drift_windows_flagged = drift.windows_flagged;
        }

        let inv = cache.invocations();
        report.model_runs = inv.model_runs;
        report.cache_hits = inv.cache_hits;
        report.model_time_ms = inv.model_time_ms;
        report.retries = inv.retries;
        report.faults_injected = inv.faults_injected;
        report.fault_time_ms = inv.fault_time_ms;
        report.estimation_ingest_ms = ingest_ns as f64 / 1e6;
        report.estimation_bound_ms = bound_ns as f64 / 1e6;
        report.estimation_time_ms = (ingest_ns + bound_ns) as f64 / 1e6;
        report.points = points.len();

        Ok((
            Profile {
                corpus: self.workload.corpus.name.clone(),
                model: self.workload.detector.name().to_string(),
                class: self.workload.class,
                aggregate: self.workload.aggregate,
                delta: self.workload.delta,
                points,
            },
            report,
        ))
    }

    /// Opens (creating if needed) this workload's journal inside the
    /// checkpoint directory, replaying any valid prefix.
    ///
    /// The journal file is keyed by a workload identity string — corpus,
    /// detector, query, grid, seed, and every config knob that changes
    /// cell *contents* — so journals from different workloads sharing a
    /// directory can never cross-contaminate. Thread count, the crash
    /// plan, and the drift probe are deliberately excluded: none of them
    /// changes what a cell computes, and resume must work across all
    /// three.
    fn open_journal(
        &self,
        dir: &Path,
        grid: &CandidateGrid,
        n_cells: usize,
    ) -> Result<(JournalWriter, Replay)> {
        std::fs::create_dir_all(dir).map_err(|e| {
            CoreError::Checkpoint(format!("creating checkpoint dir {}: {e}", dir.display()))
        })?;
        let identity = self.journal_identity(grid);
        let path = dir.join(format!(
            "profile-{:016x}.journal",
            journal::checksum64(identity.as_bytes())
        ));
        let validate =
            |idx: u32, payload: &[u8]| (idx as usize) < n_cells && CellRecord::decode(idx, payload).is_some();
        Journal::open(&path, &identity, validate).map_err(|e| {
            CoreError::Checkpoint(format!("opening journal {}: {e}", path.display()))
        })
    }

    /// The workload identity a journal is bound to (stored checksummed in
    /// the journal header). Everything that affects a cell's output is in
    /// here; nothing that merely affects scheduling is.
    fn journal_identity(&self, grid: &CandidateGrid) -> String {
        let w = self.workload;
        let c = &self.config;
        let faults = match &c.faults {
            Some(p) => format!(
                "seed={};to={};tr={};sl={};po={}",
                p.seed(), p.timeout_rate, p.transient_rate, p.slow_rate, p.poison_rate
            ),
            None => "none".to_string(),
        };
        format!(
            "smokescreen-profile-v1|corpus={}|frames={}|native={}|model={}|class={:?}|agg={:?}|delta={}|seed={}|early_stop={:?}/{}|max_loss={}|retry={}/{}/{}|faults={}|fractions={:?}|resolutions={:?}|combos={:?}",
            w.corpus.name,
            w.corpus.len(),
            w.corpus.native_resolution,
            w.detector.name(),
            w.class,
            w.aggregate,
            w.delta,
            c.seed,
            c.early_stop_improvement,
            c.early_stop_min_points,
            c.max_cell_loss,
            c.retry.max_attempts,
            c.retry.base_backoff_ms,
            c.retry.backoff_factor,
            faults,
            grid.fractions,
            grid.resolutions,
            grid.class_combos,
        )
    }

    /// Profiles one `(resolution, removal)` cell: the ascending-fraction
    /// sweep with early stopping. One pool task per cell; results merge
    /// back in grid order.
    ///
    /// The sweep is incremental: because the cell's samples are nested
    /// prefixes of one seeded permutation, a single [`AggregateKernel`]
    /// ingests only the `Δn` outputs each fraction step adds and serves
    /// every candidate's answer/bound from running state — bit-identical
    /// to re-running [`profile_point`](Self::profile_point) per candidate,
    /// which remains the reference path for one-shot callers.
    fn profile_cell(
        &self,
        grid: &CandidateGrid,
        resolution: Option<smokescreen_video::Resolution>,
        combo: &[smokescreen_video::ObjectClass],
        correction: Option<&CorrectionSet>,
        cache: &OutputCache<'_>,
    ) -> Result<CellOutput> {
        let mut out = CellOutput::default();
        // The native resolution is not a degradation: normalize it to None
        // so candidates classify as random and need no correction.
        let effective_res =
            resolution.filter(|&r| r != self.workload.corpus.native_resolution);
        if let Some(res) = effective_res {
            if !self.workload.detector.supports(res) {
                return Err(CoreError::UnsupportedResolution {
                    model: self.workload.detector.name().to_string(),
                    resolution: res.to_string(),
                });
            }
        }
        let cell_set = |fraction: f64| {
            let mut set = InterventionSet::sampling(fraction).with_restricted(combo);
            set.resolution = effective_res;
            set
        };

        // One view at the largest feasible fraction covers the whole sweep:
        // the eligible population and sampling permutation are
        // fraction-independent, so every candidate's sample is a prefix of
        // this view's sample order. Infeasible cells (removal leaves
        // nothing) skip every candidate, exactly as the per-candidate path
        // does.
        let max_fraction = grid
            .fractions
            .iter()
            .copied()
            .filter(|f| *f > 0.0 && *f <= 1.0)
            .fold(f64::NAN, f64::max);
        if !max_fraction.is_finite() {
            return Ok(out);
        }
        let view = match DegradedView::new(
            self.workload.corpus,
            cell_set(max_fraction),
            self.restrictions,
            self.config.seed,
        ) {
            Ok(v) => v,
            Err(_) => return Ok(out),
        };
        debug_assert!(!view.rewrites_frames(), "grid candidates never rewrite frames");

        let population = self.workload.corpus.len();
        let mut kernel = AggregateKernel::with_capacity(self.workload.aggregate, view.len());
        // Reused fetch buffer for the ladder: with a warm cache (and once
        // its capacity covers the largest rung) the fetch→extend→estimate
        // loop below performs no heap allocation — see the zero-alloc
        // suite in tests/zero_alloc.rs and the `cell_path_steady_ingest`
        // trajectory bench.
        let mut fresh = RangeOutputs::default();
        out.points.reserve(grid.fractions.len());
        let mut prev_err: Option<f64> = None;
        let mut stopped = false;
        let mut seen = 0usize;
        // Sample positions consumed so far (survivors + lost). Under fault
        // injection this runs ahead of `kernel.n()`, which counts only
        // survivors — the prefix arithmetic must use positions, not
        // kernel size, or gaps would shift every later fetch.
        let mut prefix_pos = 0usize;
        // Frames lost to permanent failures within the current prefix.
        let mut lost = 0usize;
        for &fraction in &grid.fractions {
            if stopped {
                out.skipped_by_early_stop += 1;
                continue;
            }
            let n_f = match view.sample_size_for_fraction(fraction) {
                Ok(n) => n,
                // An individually infeasible candidate (invalid fraction)
                // is skipped, as the per-candidate path skips
                // `InvalidIntervention`.
                Err(_) => continue,
            };

            let t0 = Instant::now();
            if n_f < prefix_pos {
                // Non-ascending grid: restart the prefix. Correct for any
                // fraction order, merely slower than the ascending case.
                kernel = AggregateKernel::with_capacity(self.workload.aggregate, view.len());
                prefix_pos = 0;
                lost = 0;
            }
            if n_f > prefix_pos {
                view.try_outputs_cached_range_into(
                    cache,
                    self.workload.class,
                    prefix_pos..n_f,
                    &mut fresh,
                );
                kernel.extend(&fresh.values);
                lost += fresh.lost;
                prefix_pos = n_f;
            }
            out.ingest_ns += t0.elapsed().as_nanos();
            out.frames_lost = lost;

            // Circuit breaker: with no survivors there is nothing sound to
            // emit, and past the loss tolerance the cell is degraded enough
            // that the administrator must be told rather than handed a
            // (still sound, but badly widened) profile. Either way the
            // whole cell is quarantined — reported, never silently dropped.
            if lost > 0
                && (kernel.n() == 0
                    || lost as f64 > self.config.max_cell_loss * prefix_pos as f64)
            {
                out.points.clear();
                out.skipped_by_early_stop = 0;
                out.quarantined = Some(format!(
                    "res={} removal={:?} (lost {lost}/{prefix_pos} sampled frames)",
                    effective_res.map_or_else(|| "native".to_string(), |r| r.to_string()),
                    combo,
                ));
                return Ok(out);
            }

            let t1 = Instant::now();
            let set = cell_set(fraction);
            let est = kernel.estimate(population, self.workload.delta)?;
            let (err_b, corrected) = match correction {
                Some(cs) if !set.is_random_only() => (corrected_bound(&est, cs)?, true),
                Some(cs) => {
                    let best = best_bound_for_random(&est, cs)?;
                    (best, best < est.err_b())
                }
                None => (est.err_b(), false),
            };
            out.bound_ns += t1.elapsed().as_nanos();
            let point = ProfilePoint {
                set,
                y_approx: est.y_approx(),
                err_b,
                corrected,
                n: est.n(),
            };
            seen += 1;

            if let (Some(threshold), Some(prev)) =
                (self.config.early_stop_improvement, prev_err)
            {
                if seen >= self.config.early_stop_min_points
                    && (prev - point.err_b).abs() < threshold
                {
                    stopped = true;
                }
            }
            prev_err = Some(point.err_b);
            out.points.push(point);
        }
        Ok(out)
    }

    /// Profiles one candidate.
    pub fn profile_point(
        &self,
        set: &InterventionSet,
        correction: Option<&CorrectionSet>,
        cache: &OutputCache<'_>,
    ) -> Result<ProfilePoint> {
        let est = result_error_est(
            self.workload,
            self.restrictions,
            set,
            self.config.seed,
            Some(cache),
        )?;
        let (err_b, corrected) = match correction {
            Some(cs) if !set.is_random_only() => (corrected_bound(&est, cs)?, true),
            Some(cs) => {
                let best = best_bound_for_random(&est, cs)?;
                (best, best < est.err_b())
            }
            None => (est.err_b(), false),
        };
        Ok(ProfilePoint {
            set: set.clone(),
            y_approx: est.y_approx(),
            err_b,
            corrected,
            n: est.n(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::correction::{build_correction_set, CorrectionConfig};
    use crate::estimate::Aggregate;
    use smokescreen_degrade::CandidateGrid;
    use smokescreen_models::SimYoloV4;
    use smokescreen_video::synth::DatasetPreset;
    use smokescreen_video::{ObjectClass, Resolution};

    fn grid() -> CandidateGrid {
        CandidateGrid::explicit(
            vec![0.01, 0.02, 0.05, 0.1, 0.2],
            vec![Resolution::square(320), Resolution::square(608)],
            vec![vec![], vec![ObjectClass::Person]],
        )
    }

    #[test]
    fn generates_points_for_grid_cells() {
        let corpus = DatasetPreset::Detrac.generate(40).slice(0, 3_000);
        let yolo = SimYoloV4::new(1);
        let w = Workload {
            corpus: &corpus,
            detector: &yolo,
            class: ObjectClass::Car,
            aggregate: Aggregate::Avg,
            delta: 0.05,
        };
        let restrictions =
            RestrictionIndex::from_ground_truth(&corpus, &[ObjectClass::Person]);
        let gen = ProfileGenerator::new(
            &w,
            &restrictions,
            GeneratorConfig {
                early_stop_improvement: None,
                ..Default::default()
            },
        );
        let (profile, report) = gen.generate(&grid(), None).unwrap();
        assert_eq!(profile.len(), 20); // 5 × 2 × 2
        assert_eq!(report.points, 20);
        assert!(report.model_runs > 0);
        assert!(report.model_time_ms > 0.0);
    }

    #[test]
    fn reuse_cache_bounds_model_runs() {
        // Across all 20 candidates the model may run at most
        // (distinct frames sampled) × (2 resolutions) times, and the
        // largest fraction dominates: runs ≤ 2 × n_max_eligible.
        let corpus = DatasetPreset::Detrac.generate(41).slice(0, 2_000);
        let yolo = SimYoloV4::new(2);
        let w = Workload {
            corpus: &corpus,
            detector: &yolo,
            class: ObjectClass::Car,
            aggregate: Aggregate::Avg,
            delta: 0.05,
        };
        let restrictions =
            RestrictionIndex::from_ground_truth(&corpus, &[ObjectClass::Person]);
        let gen = ProfileGenerator::new(
            &w,
            &restrictions,
            GeneratorConfig {
                early_stop_improvement: None,
                ..Default::default()
            },
        );
        let (_, report) = gen.generate(&grid(), None).unwrap();
        let n_max = (0.2 * 2_000.0) as usize;
        assert!(
            report.model_runs <= 2 * 2 * n_max,
            "model_runs={} should be bounded by reuse",
            report.model_runs
        );
        assert!(report.cache_hits > 0, "nested fractions must hit the cache");
    }

    #[test]
    fn early_stopping_skips_flat_tail() {
        let corpus = DatasetPreset::Detrac.generate(42).slice(0, 3_000);
        let yolo = SimYoloV4::new(3);
        let w = Workload {
            corpus: &corpus,
            detector: &yolo,
            class: ObjectClass::Car,
            aggregate: Aggregate::Avg,
            delta: 0.05,
        };
        let restrictions = RestrictionIndex::from_ground_truth(&corpus, &[]);
        let many_fractions = CandidateGrid::explicit(
            (1..=60).map(|i| i as f64 / 100.0).collect(),
            vec![Resolution::square(608)],
            vec![vec![]],
        );
        let gen = ProfileGenerator::new(
            &w,
            &restrictions,
            GeneratorConfig {
                early_stop_improvement: Some(0.01),
                early_stop_min_points: 3,
                ..GeneratorConfig::default()
            },
        );
        let (profile, report) = gen.generate(&many_fractions, None).unwrap();
        assert!(
            report.skipped_by_early_stop > 0,
            "a 60-point flat tail should trigger early stop"
        );
        assert!(profile.len() < 60);
    }

    #[test]
    fn model_time_equals_runs_times_unit_cost_exactly() {
        // With a single off-native resolution every model invocation costs
        // the same T_model, so the report must satisfy
        // model_time_ms == model_runs · T_model with float equality — the
        // §5.3.1 accounting identity, preserved under concurrency by the
        // cache's per-resolution run ledger.
        let corpus = DatasetPreset::Detrac.generate(44).slice(0, 2_000);
        let yolo = SimYoloV4::new(5);
        let w = Workload {
            corpus: &corpus,
            detector: &yolo,
            class: ObjectClass::Car,
            aggregate: Aggregate::Avg,
            delta: 0.05,
        };
        let restrictions = RestrictionIndex::from_ground_truth(&corpus, &[ObjectClass::Person]);
        let res = Resolution::square(320);
        let one_res_grid = CandidateGrid::explicit(
            vec![0.02, 0.05, 0.1],
            vec![res],
            vec![vec![], vec![ObjectClass::Person]],
        );
        for threads in [1usize, 4] {
            let gen = ProfileGenerator::new(
                &w,
                &restrictions,
                GeneratorConfig {
                    early_stop_improvement: None,
                    threads,
                    ..GeneratorConfig::default()
                },
            );
            let (_, report) = gen.generate(&one_res_grid, None).unwrap();
            let t_model = smokescreen_models::Detector::inference_cost_ms(&yolo, res);
            assert!(report.model_runs > 0);
            assert_eq!(
                report.model_time_ms,
                report.model_runs as f64 * t_model,
                "threads={threads}: model time must be exactly N_model · T_model"
            );
        }
    }

    #[test]
    fn parallel_cells_match_sequential_bit_for_bit() {
        let corpus = DatasetPreset::Detrac.generate(45).slice(0, 2_000);
        let yolo = SimYoloV4::new(6);
        let w = Workload {
            corpus: &corpus,
            detector: &yolo,
            class: ObjectClass::Car,
            aggregate: Aggregate::Avg,
            delta: 0.05,
        };
        let restrictions = RestrictionIndex::from_ground_truth(&corpus, &[ObjectClass::Person]);
        let run = |threads: usize| {
            ProfileGenerator::new(
                &w,
                &restrictions,
                GeneratorConfig {
                    seed: 3,
                    threads,
                    ..GeneratorConfig::default()
                },
            )
            .generate(&grid(), None)
            .unwrap()
        };
        let (p1, r1) = run(1);
        let (p8, r8) = run(8);
        assert_eq!(p1, p8, "profiles must be identical across thread counts");
        assert_eq!(r1.model_runs, r8.model_runs);
        assert_eq!(r1.cache_hits, r8.cache_hits);
        assert_eq!(r1.points, r8.points);
        assert_eq!(r1.skipped_by_early_stop, r8.skipped_by_early_stop);
    }

    #[test]
    fn fault_plan_widens_bounds_over_survivors() {
        // Graceful degradation: under a moderate fault plan the generator
        // loses frames, keeps the survivors, and emits *wider* (never
        // tighter-than-clean at equal candidates) bounds — with the losses
        // fully accounted in the report.
        let corpus = DatasetPreset::Detrac.generate(46).slice(0, 2_000);
        let yolo = SimYoloV4::new(7);
        let w = Workload {
            corpus: &corpus,
            detector: &yolo,
            class: ObjectClass::Car,
            aggregate: Aggregate::Avg,
            delta: 0.05,
        };
        let restrictions = RestrictionIndex::from_ground_truth(&corpus, &[ObjectClass::Person]);
        let base = GeneratorConfig {
            early_stop_improvement: None,
            ..GeneratorConfig::default()
        };
        let (clean, clean_report) = ProfileGenerator::new(&w, &restrictions, base.clone())
            .generate(&grid(), None)
            .unwrap();
        let chaotic_cfg = GeneratorConfig {
            faults: Some(smokescreen_rt::fault::FaultPlan::with_rates(
                5, 0.04, 0.08, 0.04, 0.03,
            )),
            ..base
        };
        let (chaotic, report) = ProfileGenerator::new(&w, &restrictions, chaotic_cfg)
            .generate(&grid(), None)
            .unwrap();
        assert!(report.frames_lost > 0, "a 16% plan must lose frames");
        assert!(report.faults_injected > 0);
        assert!(report.retries > 0);
        assert!(report.fault_time_ms > 0.0);
        assert_eq!(clean_report.frames_lost, 0);
        assert_eq!(clean_report.degraded_cells.len(), 0);
        // Points pair up by candidate (no cell quarantined at this rate in
        // this fixture); each chaotic point estimates from no more
        // survivors than its clean twin, and equal survivors ⇒ equal point.
        assert!(report.degraded_cells.is_empty(), "{:?}", report.degraded_cells);
        assert_eq!(chaotic.len(), clean.len());
        let mut strictly_widened = 0;
        for (c, f) in clean.points.iter().zip(&chaotic.points) {
            assert_eq!(c.set, f.set);
            assert!(f.n <= c.n, "survivors can only shrink: {} > {}", f.n, c.n);
            if f.n == c.n {
                assert_eq!(c, f, "no loss ⇒ identical point");
            } else {
                // The *relative* bound also moves with the surviving
                // values, so per-point monotonicity is not guaranteed —
                // validity under loss is what the bound-validity chaos
                // suite checks. Here: the bound must stay usable.
                assert!(f.err_b.is_finite() && f.err_b > 0.0);
                strictly_widened += 1;
            }
        }
        assert!(strictly_widened > 0, "some candidate must actually lose frames");
    }

    #[test]
    fn breaker_quarantines_heavily_lossy_cells() {
        let corpus = DatasetPreset::Detrac.generate(47).slice(0, 1_500);
        let yolo = SimYoloV4::new(8);
        let w = Workload {
            corpus: &corpus,
            detector: &yolo,
            class: ObjectClass::Car,
            aggregate: Aggregate::Avg,
            delta: 0.05,
        };
        let restrictions = RestrictionIndex::from_ground_truth(&corpus, &[ObjectClass::Person]);
        // 70% of calls time out: every cell blows through the default 50%
        // loss tolerance, so all four cells quarantine and the profile is
        // empty — reported, not silently dropped.
        let cfg = GeneratorConfig {
            early_stop_improvement: None,
            faults: Some(smokescreen_rt::fault::FaultPlan::with_rates(1, 0.7, 0.0, 0.0, 0.0)),
            ..GeneratorConfig::default()
        };
        let (profile, report) =
            ProfileGenerator::new(&w, &restrictions, cfg).generate(&grid(), None).unwrap();
        assert_eq!(report.degraded_cells.len(), 4, "{:?}", report.degraded_cells);
        assert_eq!(profile.len(), 0);
        assert_eq!(report.points, 0);
        for label in &report.degraded_cells {
            assert!(label.contains("lost"), "label must carry loss counts: {label}");
        }
        // Grid order: resolution-major, combo-minor (608 is Detrac's
        // native resolution, so those cells normalize to "native").
        assert!(report.degraded_cells[0].contains("320"));
        assert!(report.degraded_cells[3].contains("native"));
    }

    #[test]
    fn faulted_generation_is_deterministic_across_threads() {
        let corpus = DatasetPreset::Detrac.generate(48).slice(0, 2_000);
        let yolo = SimYoloV4::new(9);
        let w = Workload {
            corpus: &corpus,
            detector: &yolo,
            class: ObjectClass::Car,
            aggregate: Aggregate::Avg,
            delta: 0.05,
        };
        let restrictions = RestrictionIndex::from_ground_truth(&corpus, &[ObjectClass::Person]);
        let run = |threads: usize| {
            ProfileGenerator::new(
                &w,
                &restrictions,
                GeneratorConfig {
                    seed: 3,
                    threads,
                    faults: Some(smokescreen_rt::fault::FaultPlan::new(11, 0.2)),
                    ..GeneratorConfig::default()
                },
            )
            .generate(&grid(), None)
            .unwrap()
        };
        let (p1, r1) = run(1);
        for threads in [2usize, 8] {
            let (p, r) = run(threads);
            assert_eq!(p1, p, "faulted profiles must be identical at {threads} threads");
            assert_eq!(r1.model_runs, r.model_runs);
            assert_eq!(r1.cache_hits, r.cache_hits);
            assert_eq!(r1.model_time_ms, r.model_time_ms);
            assert_eq!(r1.retries, r.retries);
            assert_eq!(r1.faults_injected, r.faults_injected);
            assert_eq!(r1.fault_time_ms, r.fault_time_ms);
            assert_eq!(r1.frames_lost, r.frames_lost);
            assert_eq!(r1.degraded_cells, r.degraded_cells);
        }
        assert!(r1.frames_lost > 0, "the plan must actually bite");
    }

    fn checkpoint_dir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "smokescreen-generation-tests-{}",
            std::process::id()
        ));
        let dir = dir.join(name);
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn fixture_workload(corpus: &smokescreen_video::VideoCorpus) -> (SimYoloV4, ObjectClass) {
        let _ = corpus;
        (SimYoloV4::new(1), ObjectClass::Car)
    }

    #[test]
    fn checkpointing_is_inert_on_profile_and_warm_restart_splices_all() {
        let corpus = DatasetPreset::Detrac.generate(52).slice(0, 1_500);
        let (yolo, class) = fixture_workload(&corpus);
        let w = Workload {
            corpus: &corpus,
            detector: &yolo,
            class,
            aggregate: Aggregate::Avg,
            delta: 0.05,
        };
        let restrictions = RestrictionIndex::from_ground_truth(&corpus, &[ObjectClass::Person]);
        let base = GeneratorConfig {
            early_stop_improvement: None,
            ..GeneratorConfig::default()
        };
        let (plain, plain_report) = ProfileGenerator::new(&w, &restrictions, base.clone())
            .generate(&grid(), None)
            .unwrap();
        assert_eq!(plain_report.cells_resumed, 0);
        assert_eq!(plain_report.journal_bytes, 0);
        assert_eq!(plain_report.journal_corrupt_records, 0);

        let dir = checkpoint_dir("inert");
        let ckpt_cfg = GeneratorConfig {
            checkpoint: Some(dir.clone()),
            ..base.clone()
        };
        let (journaled, r1) = ProfileGenerator::new(&w, &restrictions, ckpt_cfg.clone())
            .generate(&grid(), None)
            .unwrap();
        assert_eq!(
            plain.to_json().unwrap(),
            journaled.to_json().unwrap(),
            "checkpointing must not change a byte of the profile"
        );
        assert_eq!(r1.cells_resumed, 0, "first run resumes nothing");
        assert!(r1.journal_bytes > 0);
        assert_eq!(r1.model_runs, plain_report.model_runs);

        // Warm restart: the completed journal splices every cell back.
        let (rerun, r2) = ProfileGenerator::new(&w, &restrictions, ckpt_cfg)
            .generate(&grid(), None)
            .unwrap();
        assert_eq!(plain.to_json().unwrap(), rerun.to_json().unwrap());
        assert_eq!(r2.cells_resumed, r2.cells, "all cells splice");
        assert_eq!(r2.model_runs, 0, "no model work on a warm restart");
        assert_eq!(r2.journal_bytes, r1.journal_bytes, "journal bytes are stable");
        assert_eq!(r2.frames_lost, plain_report.frames_lost);
        assert_eq!(r2.skipped_by_early_stop, plain_report.skipped_by_early_stop);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn crash_resume_loop_converges_to_identical_profile() {
        let corpus = DatasetPreset::Detrac.generate(53).slice(0, 1_500);
        let (yolo, class) = fixture_workload(&corpus);
        let w = Workload {
            corpus: &corpus,
            detector: &yolo,
            class,
            aggregate: Aggregate::Avg,
            delta: 0.05,
        };
        let restrictions = RestrictionIndex::from_ground_truth(&corpus, &[ObjectClass::Person]);
        let base = GeneratorConfig {
            early_stop_improvement: None,
            ..GeneratorConfig::default()
        };
        let (reference, reference_report) =
            ProfileGenerator::new(&w, &restrictions, base.clone())
                .generate(&grid(), None)
                .unwrap();

        // A rate-1 plan crashes at *every* cell commit: the loop must
        // still converge in exactly `cells + 1` runs (one durable cell
        // per life — torn crashes are suppressed on their resume because
        // the tear already happened; AfterAppend cells are already
        // durable when they kill the run).
        let dir = checkpoint_dir("crash_loop");
        let cfg = GeneratorConfig {
            checkpoint: Some(dir.clone()),
            crash: Some(CrashPlan::new(7, 1.0)),
            ..base
        };
        let mut crashes = 0usize;
        let outcome = loop {
            match ProfileGenerator::new(&w, &restrictions, cfg.clone()).generate(&grid(), None) {
                Ok(out) => break out,
                Err(CoreError::CrashInjected { .. }) => {
                    crashes += 1;
                    assert!(crashes <= 16, "crash→resume loop must terminate");
                }
                Err(other) => panic!("unexpected error: {other}"),
            }
        };
        let (resumed, report) = outcome;
        assert!(crashes > 0, "a rate-1 plan must crash at least once");
        assert_eq!(
            reference.to_json().unwrap(),
            resumed.to_json().unwrap(),
            "crash→resume must be bit-identical to an uninterrupted run"
        );
        assert!(report.cells_resumed > 0);
        assert_eq!(report.frames_lost, reference_report.frames_lost);
        assert_eq!(report.skipped_by_early_stop, reference_report.skipped_by_early_stop);
        assert_eq!(report.degraded_cells, reference_report.degraded_cells);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn foreign_workload_journal_is_quarantined_not_spliced() {
        // Two different seeds share a checkpoint dir: different identity
        // strings hash to different journal files, so neither can splice
        // the other's cells.
        let corpus = DatasetPreset::Detrac.generate(54).slice(0, 1_200);
        let (yolo, class) = fixture_workload(&corpus);
        let w = Workload {
            corpus: &corpus,
            detector: &yolo,
            class,
            aggregate: Aggregate::Avg,
            delta: 0.05,
        };
        let restrictions = RestrictionIndex::from_ground_truth(&corpus, &[ObjectClass::Person]);
        let dir = checkpoint_dir("foreign");
        let run = |seed: u64| {
            ProfileGenerator::new(
                &w,
                &restrictions,
                GeneratorConfig {
                    seed,
                    early_stop_improvement: None,
                    checkpoint: Some(dir.clone()),
                    ..GeneratorConfig::default()
                },
            )
            .generate(&grid(), None)
            .unwrap()
        };
        let (_, r_a) = run(1);
        let (_, r_b) = run(2);
        assert_eq!(r_a.cells_resumed, 0);
        assert_eq!(r_b.cells_resumed, 0, "seed 2 must not splice seed 1's journal");
        assert!(r_b.model_runs > 0);
        let (_, r_a2) = run(1);
        assert_eq!(r_a2.cells_resumed, r_a2.cells, "seed 1 still resumes its own journal");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn drift_probe_flags_drifted_corpus_and_stays_inert_by_default() {
        use crate::similarity::{DriftBaseline, DEFAULT_DRIFT_THRESHOLD, DEFAULT_DRIFT_WINDOW};
        use smokescreen_video::perturb::{PerturbKind, PerturbPlan};

        let clean = DatasetPreset::Detrac.generate(49).slice(0, 3_000);
        let yolo = SimYoloV4::new(10);
        let workload_for = |corpus| Workload {
            corpus,
            detector: &yolo,
            class: ObjectClass::Car,
            aggregate: Aggregate::Avg,
            delta: 0.05,
        };
        let baseline = DriftBaseline::from_outputs(
            &workload_for(&clean).population_outputs(),
            DEFAULT_DRIFT_WINDOW,
        )
        .unwrap();
        let small_grid = CandidateGrid::explicit(
            vec![0.02, 0.05],
            vec![Resolution::square(320)],
            vec![vec![]],
        );
        let probe_cfg = GeneratorConfig {
            drift: Some(DriftProbe {
                baseline,
                threshold: DEFAULT_DRIFT_THRESHOLD,
            }),
            ..GeneratorConfig::default()
        };

        // Default config: the probe machinery is byte-invisible.
        let restrictions = RestrictionIndex::from_ground_truth(&clean, &[]);
        let w = workload_for(&clean);
        let (_, default_report) =
            ProfileGenerator::new(&w, &restrictions, GeneratorConfig::default())
                .generate(&small_grid, None)
                .unwrap();
        assert_eq!(default_report.drift_score, None);
        assert_eq!(default_report.drift_windows_flagged, 0);

        // Probing the baseline's own corpus: a score, but no flags.
        let (_, clean_report) = ProfileGenerator::new(&w, &restrictions, probe_cfg.clone())
            .generate(&small_grid, None)
            .unwrap();
        let clean_score = clean_report.drift_score.expect("probe ran");
        assert_eq!(clean_report.drift_windows_flagged, 0, "score={clean_score}");

        // Probing a prevalence-drifted corpus: the tail windows flag.
        let drifted = PerturbPlan::new(3, 0.3, PerturbKind::Drift).apply(&clean);
        let w_drift = workload_for(&drifted);
        let restrictions_drift = RestrictionIndex::from_ground_truth(&drifted, &[]);
        let (_, drift_report) =
            ProfileGenerator::new(&w_drift, &restrictions_drift, probe_cfg)
                .generate(&small_grid, None)
                .unwrap();
        assert!(drift_report.drift_windows_flagged > 0);
        assert!(drift_report.drift_score.unwrap() > clean_score * 2.0);
    }

    #[test]
    fn corrected_points_marked() {
        let corpus = DatasetPreset::Detrac.generate(43).slice(0, 3_000);
        let yolo = SimYoloV4::new(4);
        let w = Workload {
            corpus: &corpus,
            detector: &yolo,
            class: ObjectClass::Car,
            aggregate: Aggregate::Avg,
            delta: 0.05,
        };
        let restrictions =
            RestrictionIndex::from_ground_truth(&corpus, &[ObjectClass::Person]);
        let cs = build_correction_set(&w, &restrictions, &CorrectionConfig::default(), 1, None)
            .unwrap();
        let gen = ProfileGenerator::new(&w, &restrictions, GeneratorConfig::default());
        let (profile, _) = gen.generate(&grid(), Some(&cs)).unwrap();
        // Every non-random point must be corrected.
        for p in &profile.points {
            if !p.set.is_random_only() {
                assert!(p.corrected, "{:?}", p.set.describe());
            }
        }
    }
}
