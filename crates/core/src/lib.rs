//! Smokescreen — video degradation-accuracy profiling (the paper's
//! primary contribution).
//!
//! Given a video corpus `D`, a vision model `F_model`, and an aggregate
//! function `F_A`, Smokescreen produces a **profile**: for every candidate
//! set of destructive interventions `(f, p, c)` it estimates the query
//! answer and a `1 − δ` upper bound on the relative analytical error —
//! computed *from the degraded video alone*. Administrators read the
//! profile as tradeoff curves and pick the most aggressive degradation
//! whose bound still meets their accuracy requirement.
//!
//! Module map (paper section in parentheses):
//!
//! * [`estimate`] — `result_error_est`, the unified answer/bound estimator
//!   (Algorithm 3 line 1; §3.2.1–3.2.4).
//! * [`correction`] — correction-set construction with the 1%-step /
//!   2%-stall elbow heuristic (§3.3.1).
//! * [`repair`] — bound repair for non-random interventions (§3.2.5).
//! * [`profile`] — profiles, the degradation hypercube, slices (§3.1).
//! * [`generation`] — profile generation with early stopping and model
//!   output reuse (§3.3.2).
//! * [`tradeoff`] — public preferences and tradeoff choice (§2.3).
//! * [`admin`] — the administration procedure (§3.1).
//! * [`similarity`] — profile similarity for the similar-video fallback
//!   (§5.3.2).
//! * [`system`] — the end-to-end facade tying the pieces together.

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod admin;
pub mod correction;
pub mod error;
pub mod estimate;
pub mod generation;
pub mod profile;
pub mod repair;
pub mod similarity;
pub mod streaming;
pub mod system;
pub mod tradeoff;

pub use correction::{build_correction_set, CorrectionConfig, CorrectionSet};
pub use error::CoreError;
pub use estimate::{
    estimate_from_outputs, result_error_est, true_relative_error, Aggregate, AggregateKernel,
    Estimate, Workload,
};
pub use generation::{DriftProbe, GenerationReport, GeneratorConfig, ProfileGenerator};
pub use profile::{Profile, ProfilePoint};
pub use repair::corrected_bound;
pub use similarity::{
    drift_score, DriftBaseline, DriftReport, DriftScorer, DEFAULT_DRIFT_THRESHOLD,
    DEFAULT_DRIFT_WINDOW,
};
pub use streaming::{FreshnessMonitor, StreamingEstimator, StreamingStatus};
pub use system::Smokescreen;
pub use tradeoff::{choose_tradeoff, DegradationObjective, Preferences};

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, CoreError>;
