//! Online (streaming) query estimation.
//!
//! After the administrator picks a tradeoff, "the query result is
//! estimated by running the query on … upcoming videos processed by the
//! determined degradation operations" (§3.1). Upcoming video arrives
//! frame-by-frame, so this module maintains a running `(Y_approx, err_b)`
//! as outputs stream in and supports a stopping rule: halt ingestion once
//! the bound reaches a target — the early-stopping idea of §3.3.2 applied
//! at query time, which saves model invocations on live video.
//!
//! Estimates are refreshed on a geometric schedule (every time the sample
//! grows ~5%) so per-frame cost stays O(1) amortized even for the
//! sort-based quantile estimators.

use crate::estimate::{estimate_from_outputs, Aggregate, Estimate};
use crate::similarity::{DriftBaseline, DriftReport};
use crate::Result;

/// Progress state of a streaming estimation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamingStatus {
    /// Still ingesting; the bound has not reached the target.
    Collecting,
    /// The error-bound target has been met — ingestion can stop.
    Converged,
    /// The whole population has been consumed.
    Exhausted,
}

/// Incremental estimator over streaming model outputs.
///
/// Outputs must arrive in the order of a without-replacement random scan
/// (e.g. a `DegradedView`'s sample order, or a camera shipping a random
/// sample of upcoming frames).
#[derive(Debug, Clone)]
pub struct StreamingEstimator {
    aggregate: Aggregate,
    population: usize,
    delta: f64,
    target_err: Option<f64>,
    outputs: Vec<f64>,
    cached: Option<Estimate>,
    next_refresh: usize,
}

impl StreamingEstimator {
    /// Creates an estimator for a query over a population of `N` frames.
    pub fn new(aggregate: Aggregate, population: usize, delta: f64) -> Self {
        StreamingEstimator {
            aggregate,
            population,
            delta,
            target_err: None,
            outputs: Vec::new(),
            cached: None,
            next_refresh: 2,
        }
    }

    /// Sets a stopping target: [`push`](Self::push) reports
    /// [`StreamingStatus::Converged`] once `err_b ≤ target`.
    pub fn with_stop_at(mut self, target_err: f64) -> Self {
        self.target_err = Some(target_err);
        self
    }

    /// Number of outputs ingested so far.
    pub fn len(&self) -> usize {
        self.outputs.len()
    }

    /// Whether nothing has been ingested yet.
    pub fn is_empty(&self) -> bool {
        self.outputs.is_empty()
    }

    /// Ingests one model output and reports progress. The estimate is
    /// refreshed on a geometric schedule; use [`estimate`](Self::estimate)
    /// for an exact up-to-the-frame value.
    pub fn push(&mut self, output: f64) -> Result<StreamingStatus> {
        self.outputs.push(output);
        let n = self.outputs.len();
        if n >= self.next_refresh || n >= self.population {
            self.cached = Some(estimate_from_outputs(
                self.aggregate,
                &self.outputs,
                self.population,
                self.delta,
            )?);
            // ~5% growth between refreshes.
            self.next_refresh = n + (n / 20).max(1);
        }
        Ok(self.status())
    }

    /// Current status based on the latest refreshed estimate.
    pub fn status(&self) -> StreamingStatus {
        if self.outputs.len() >= self.population {
            return StreamingStatus::Exhausted;
        }
        match (self.target_err, &self.cached) {
            (Some(target), Some(est)) if est.err_b() <= target => StreamingStatus::Converged,
            _ => StreamingStatus::Collecting,
        }
    }

    /// The exact estimate over everything ingested so far.
    pub fn estimate(&self) -> Result<Estimate> {
        estimate_from_outputs(self.aggregate, &self.outputs, self.population, self.delta)
    }

    /// The most recently refreshed (possibly slightly stale) estimate.
    pub fn cached_estimate(&self) -> Option<&Estimate> {
        self.cached.as_ref()
    }

    /// The outputs ingested since construction or the last
    /// [`reset_baseline`](Self::reset_baseline) — the current window, in
    /// arrival order.
    pub fn window(&self) -> &[f64] {
        &self.outputs
    }

    /// Clears the ingested window so the estimator can be reused for the
    /// next span of the stream — the hook the content-drift scorer uses
    /// to score consecutive windows against a profiled baseline without
    /// duplicating kernel state. The aggregate, population, `δ`, and any
    /// stopping target are retained; only the window (and its cached
    /// estimate / refresh schedule) reset.
    pub fn reset_baseline(&mut self) {
        self.outputs.clear();
        self.cached = None;
        self.next_refresh = 2;
    }
}

/// Long-lived profile-freshness monitor for a served profile.
///
/// [`DriftScorer`](crate::similarity::DriftScorer) is built for batch
/// audits: its `finish()` consumes the scorer, so a server holding one per
/// stored profile could never report freshness without destroying the
/// monitor mid-stream. `FreshnessMonitor` closes that seam: it scores
/// consecutive **full** windows exactly like the scorer (same reused
/// [`StreamingEstimator`] kernel, same [`DriftBaseline`] arithmetic) but
/// stays alive across reports, and it **latches** staleness — once any
/// window crosses the threshold, the profile stays flagged stale until it
/// is re-profiled, because bounds calibrated on the old regime do not
/// become trustworthy again just because the stream wandered back.
#[derive(Debug, Clone)]
pub struct FreshnessMonitor {
    baseline: DriftBaseline,
    threshold: f64,
    estimator: StreamingEstimator,
    report: DriftReport,
    stale: bool,
}

impl FreshnessMonitor {
    /// Creates a monitor flagging windows whose score exceeds `threshold`.
    pub fn new(baseline: DriftBaseline, threshold: f64) -> Self {
        let estimator = StreamingEstimator::new(Aggregate::Avg, baseline.window, 0.05);
        FreshnessMonitor {
            baseline,
            threshold,
            estimator,
            report: DriftReport::default(),
            stale: false,
        }
    }

    /// Profiles a baseline from `outputs` (the same outputs profile
    /// generation computed) and wraps it in a monitor. `None` when the
    /// stream holds fewer than two full windows.
    pub fn from_outputs(outputs: &[f64], window: usize, threshold: f64) -> Option<Self> {
        DriftBaseline::from_outputs(outputs, window).map(|b| FreshnessMonitor::new(b, threshold))
    }

    /// Ingests one live model output, scoring whenever a window fills.
    pub fn push(&mut self, output: f64) {
        self.estimator
            .push(output)
            .expect("AVG estimation over a bounded window cannot fail");
        if self.estimator.len() >= self.baseline.window {
            let mean = self
                .estimator
                .estimate()
                .expect("AVG estimation over a bounded window cannot fail")
                .y_approx();
            let score = self.baseline.score(mean);
            self.report.windows_scored += 1;
            if score > self.threshold {
                self.report.windows_flagged += 1;
                self.stale = true;
            }
            if score > self.report.max_score {
                self.report.max_score = score;
            }
            self.estimator.reset_baseline();
        }
    }

    /// Ingests a batch of outputs in stream order.
    pub fn extend(&mut self, outputs: &[f64]) {
        for &v in outputs {
            self.push(v);
        }
    }

    /// The accumulated report over all *full* windows scored so far.
    /// Non-consuming: the monitor keeps running.
    pub fn report(&self) -> DriftReport {
        self.report
    }

    /// The latched staleness flag.
    pub fn stale(&self) -> bool {
        self.stale
    }

    /// Multiplicative factor by which served error bounds should be
    /// widened while the profile is stale: `1.0` while fresh, and at
    /// least `1.0` once staleness latches — the worst observed window
    /// score relative to the flagging threshold. A profile that barely
    /// crossed the threshold widens barely; one whose stream drifted far
    /// from the baseline widens proportionally. Like the flag itself the
    /// factor never shrinks until re-profiling, because the bound
    /// calibration does not recover when the stream wanders back.
    pub fn widening_factor(&self) -> f64 {
        if !self.stale || self.threshold <= 0.0 {
            1.0
        } else {
            (self.report.max_score / self.threshold).max(1.0)
        }
    }

    /// The baseline being scored against.
    pub fn baseline(&self) -> &DriftBaseline {
        &self.baseline
    }

    /// Outputs buffered in the current (not yet scored) partial window.
    pub fn pending(&self) -> usize {
        self.estimator.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smokescreen_degrade::{DegradedView, InterventionSet, RestrictionIndex};
    use smokescreen_models::{Detector, SimYoloV4};
    use smokescreen_video::synth::DatasetPreset;
    use smokescreen_video::ObjectClass;

    #[test]
    fn streaming_matches_batch_estimation() {
        let corpus = DatasetPreset::Detrac.generate(60).slice(0, 3_000);
        let idx = RestrictionIndex::from_ground_truth(&corpus, &[]);
        let yolo = SimYoloV4::new(1);
        let view =
            DegradedView::new(&corpus, InterventionSet::sampling(0.2), &idx, 9).unwrap();
        let outputs = view.outputs(&yolo, ObjectClass::Car);

        let mut streaming = StreamingEstimator::new(Aggregate::Avg, corpus.len(), 0.05);
        for &v in &outputs {
            streaming.push(v).unwrap();
        }
        let batch = estimate_from_outputs(Aggregate::Avg, &outputs, corpus.len(), 0.05).unwrap();
        assert_eq!(streaming.estimate().unwrap(), batch);
    }

    #[test]
    fn converges_and_stops_early() {
        let corpus = DatasetPreset::Detrac.generate(61).slice(0, 5_000);
        let truth = corpus.stats().mean_cars_per_frame;
        let idx = RestrictionIndex::from_ground_truth(&corpus, &[]);
        let yolo = SimYoloV4::new(2);
        let view = DegradedView::new(&corpus, InterventionSet::none(), &idx, 3).unwrap();

        let mut streaming =
            StreamingEstimator::new(Aggregate::Avg, corpus.len(), 0.05).with_stop_at(0.25);
        let mut consumed = 0usize;
        let res = view.resolution();
        for i in 0..view.len() {
            let frame = view.frame(i).unwrap();
            consumed += 1;
            if streaming.push(yolo.count(&frame, res, ObjectClass::Car)).unwrap()
                == StreamingStatus::Converged
            {
                break;
            }
        }
        assert!(
            consumed < corpus.len() / 2,
            "should converge well before scanning half the video: {consumed}"
        );
        let est = streaming.estimate().unwrap();
        assert!(est.err_b() <= 0.3);
        // The early-stopped answer is actually close to the truth.
        assert!(((est.y_approx() - truth) / truth).abs() <= est.err_b() + 0.05);
    }

    #[test]
    fn exhaustion_reported_at_full_population() {
        let mut s = StreamingEstimator::new(Aggregate::Avg, 3, 0.05);
        assert_eq!(s.push(1.0).unwrap(), StreamingStatus::Collecting);
        assert_eq!(s.push(2.0).unwrap(), StreamingStatus::Collecting);
        assert_eq!(s.push(3.0).unwrap(), StreamingStatus::Exhausted);
    }

    #[test]
    fn reset_baseline_reuses_kernel_state_across_windows() {
        let mut s = StreamingEstimator::new(Aggregate::Avg, 100, 0.05);
        for v in [1.0, 2.0, 3.0, 4.0] {
            s.push(v).unwrap();
        }
        assert_eq!(s.window(), &[1.0, 2.0, 3.0, 4.0]);
        let first = s.estimate().unwrap();

        s.reset_baseline();
        assert!(s.is_empty());
        assert!(s.window().is_empty());
        assert!(s.cached_estimate().is_none());
        assert_eq!(s.status(), StreamingStatus::Collecting);

        // The second window must behave exactly like a fresh estimator —
        // same refresh schedule, same estimate for the same inputs.
        let mut fresh = StreamingEstimator::new(Aggregate::Avg, 100, 0.05);
        for v in [1.0, 2.0, 3.0, 4.0] {
            s.push(v).unwrap();
            fresh.push(v).unwrap();
        }
        assert_eq!(s.estimate().unwrap(), first);
        assert_eq!(s.estimate().unwrap(), fresh.estimate().unwrap());
        assert_eq!(s.cached_estimate(), fresh.cached_estimate());
    }

    /// A deterministic noisy stream around `level` (LCG, no global rng) —
    /// the same shape the drift tests in `similarity` use.
    fn noisy_stream(n: usize, level: f64, seed: u64) -> Vec<f64> {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        (0..n)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                level + ((state >> 33) % 7) as f64 - 3.0
            })
            .collect()
    }

    #[test]
    fn freshness_monitor_flags_prevalence_drift_with_zero_false_positives() {
        use crate::similarity::DEFAULT_DRIFT_THRESHOLD;
        let window = 256;

        // Clean streams from the same regime, many seeds: the staleness
        // flag must never flip (zero false positives is the contract that
        // makes serving the flag actionable).
        for seed in 0..8u64 {
            let baseline = noisy_stream(4_096, 5.0, 100 + seed);
            let mut monitor =
                FreshnessMonitor::from_outputs(&baseline, window, DEFAULT_DRIFT_THRESHOLD)
                    .unwrap();
            monitor.extend(&noisy_stream(4_096, 5.0, 200 + seed));
            assert!(
                !monitor.stale(),
                "seed {seed}: clean stream flagged stale, max_score={}",
                monitor.report().max_score
            );
            assert!(monitor.report().windows_scored >= 16);
            assert_eq!(monitor.report().windows_flagged, 0);
        }

        // A prevalence shift mid-stream must latch the flag — and keep it
        // latched even after the stream returns to the old regime.
        let mut monitor = FreshnessMonitor::from_outputs(
            &noisy_stream(4_096, 5.0, 42),
            window,
            DEFAULT_DRIFT_THRESHOLD,
        )
        .unwrap();
        monitor.extend(&noisy_stream(1_024, 5.0, 43));
        assert!(!monitor.stale(), "pre-drift stretch is clean");
        let drifted: Vec<f64> = noisy_stream(1_024, 5.0, 44).iter().map(|v| v * 2.5).collect();
        monitor.extend(&drifted);
        assert!(monitor.stale(), "prevalence drift flips the flag");
        let flagged_at = monitor.report().windows_flagged;
        assert!(flagged_at > 0);
        monitor.extend(&noisy_stream(1_024, 5.0, 45));
        assert!(monitor.stale(), "staleness is latched until re-profiling");
        assert!(monitor.report().max_score > DEFAULT_DRIFT_THRESHOLD);
    }

    #[test]
    fn widening_factor_is_one_while_fresh_and_tracks_worst_window() {
        use crate::similarity::DEFAULT_DRIFT_THRESHOLD;
        let window = 256;
        let mut monitor = FreshnessMonitor::from_outputs(
            &noisy_stream(4_096, 5.0, 42),
            window,
            DEFAULT_DRIFT_THRESHOLD,
        )
        .unwrap();
        monitor.extend(&noisy_stream(1_024, 5.0, 43));
        assert_eq!(monitor.widening_factor(), 1.0, "fresh profile never widens");

        let drifted: Vec<f64> = noisy_stream(1_024, 5.0, 44).iter().map(|v| v * 2.5).collect();
        monitor.extend(&drifted);
        assert!(monitor.stale());
        let widen = monitor.widening_factor();
        assert!(widen > 1.0, "stale profile widens, got {widen}");
        assert_eq!(
            widen,
            monitor.report().max_score / DEFAULT_DRIFT_THRESHOLD,
            "factor is the worst window score relative to the threshold"
        );

        // Back on the old regime the factor stays latched, like the flag.
        monitor.extend(&noisy_stream(1_024, 5.0, 45));
        assert!(monitor.widening_factor() >= widen);
    }

    #[test]
    fn freshness_monitor_matches_drift_scorer_on_full_windows() {
        use crate::similarity::{DriftBaseline, DriftScorer, DEFAULT_DRIFT_THRESHOLD};
        let window = 128;
        let baseline =
            DriftBaseline::from_outputs(&noisy_stream(2_048, 4.0, 3), window).unwrap();
        // 4 exactly-full windows: scorer and monitor agree window for
        // window (the monitor never scores a partial tail — it is still
        // live — so compare on a stream with no tail).
        let stream = noisy_stream(window * 4, 4.0, 9);
        let mut scorer = DriftScorer::new(baseline, DEFAULT_DRIFT_THRESHOLD);
        let mut monitor = FreshnessMonitor::new(baseline, DEFAULT_DRIFT_THRESHOLD);
        for &v in &stream {
            scorer.push(v);
            monitor.extend(&[v]);
        }
        assert_eq!(monitor.report(), scorer.finish());
        assert_eq!(monitor.pending(), 0);
        assert_eq!(monitor.baseline(), &baseline);
    }

    #[test]
    fn quantile_streams_too() {
        let corpus = DatasetPreset::Detrac.generate(62).slice(0, 2_000);
        let idx = RestrictionIndex::from_ground_truth(&corpus, &[]);
        let yolo = SimYoloV4::new(3);
        let view =
            DegradedView::new(&corpus, InterventionSet::sampling(0.1), &idx, 4).unwrap();
        let mut s = StreamingEstimator::new(Aggregate::Max { r: 0.99 }, corpus.len(), 0.05);
        for v in view.outputs(&yolo, ObjectClass::Car) {
            s.push(v).unwrap();
        }
        let est = s.estimate().unwrap();
        assert!(matches!(est, Estimate::Quantile(_)));
        assert!(est.y_approx() > 0.0);
    }
}
