//! Online (streaming) query estimation.
//!
//! After the administrator picks a tradeoff, "the query result is
//! estimated by running the query on … upcoming videos processed by the
//! determined degradation operations" (§3.1). Upcoming video arrives
//! frame-by-frame, so this module maintains a running `(Y_approx, err_b)`
//! as outputs stream in and supports a stopping rule: halt ingestion once
//! the bound reaches a target — the early-stopping idea of §3.3.2 applied
//! at query time, which saves model invocations on live video.
//!
//! Estimates are refreshed on a geometric schedule (every time the sample
//! grows ~5%) so per-frame cost stays O(1) amortized even for the
//! sort-based quantile estimators.

use crate::estimate::{estimate_from_outputs, Aggregate, Estimate};
use crate::Result;

/// Progress state of a streaming estimation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamingStatus {
    /// Still ingesting; the bound has not reached the target.
    Collecting,
    /// The error-bound target has been met — ingestion can stop.
    Converged,
    /// The whole population has been consumed.
    Exhausted,
}

/// Incremental estimator over streaming model outputs.
///
/// Outputs must arrive in the order of a without-replacement random scan
/// (e.g. a `DegradedView`'s sample order, or a camera shipping a random
/// sample of upcoming frames).
#[derive(Debug, Clone)]
pub struct StreamingEstimator {
    aggregate: Aggregate,
    population: usize,
    delta: f64,
    target_err: Option<f64>,
    outputs: Vec<f64>,
    cached: Option<Estimate>,
    next_refresh: usize,
}

impl StreamingEstimator {
    /// Creates an estimator for a query over a population of `N` frames.
    pub fn new(aggregate: Aggregate, population: usize, delta: f64) -> Self {
        StreamingEstimator {
            aggregate,
            population,
            delta,
            target_err: None,
            outputs: Vec::new(),
            cached: None,
            next_refresh: 2,
        }
    }

    /// Sets a stopping target: [`push`](Self::push) reports
    /// [`StreamingStatus::Converged`] once `err_b ≤ target`.
    pub fn with_stop_at(mut self, target_err: f64) -> Self {
        self.target_err = Some(target_err);
        self
    }

    /// Number of outputs ingested so far.
    pub fn len(&self) -> usize {
        self.outputs.len()
    }

    /// Whether nothing has been ingested yet.
    pub fn is_empty(&self) -> bool {
        self.outputs.is_empty()
    }

    /// Ingests one model output and reports progress. The estimate is
    /// refreshed on a geometric schedule; use [`estimate`](Self::estimate)
    /// for an exact up-to-the-frame value.
    pub fn push(&mut self, output: f64) -> Result<StreamingStatus> {
        self.outputs.push(output);
        let n = self.outputs.len();
        if n >= self.next_refresh || n >= self.population {
            self.cached = Some(estimate_from_outputs(
                self.aggregate,
                &self.outputs,
                self.population,
                self.delta,
            )?);
            // ~5% growth between refreshes.
            self.next_refresh = n + (n / 20).max(1);
        }
        Ok(self.status())
    }

    /// Current status based on the latest refreshed estimate.
    pub fn status(&self) -> StreamingStatus {
        if self.outputs.len() >= self.population {
            return StreamingStatus::Exhausted;
        }
        match (self.target_err, &self.cached) {
            (Some(target), Some(est)) if est.err_b() <= target => StreamingStatus::Converged,
            _ => StreamingStatus::Collecting,
        }
    }

    /// The exact estimate over everything ingested so far.
    pub fn estimate(&self) -> Result<Estimate> {
        estimate_from_outputs(self.aggregate, &self.outputs, self.population, self.delta)
    }

    /// The most recently refreshed (possibly slightly stale) estimate.
    pub fn cached_estimate(&self) -> Option<&Estimate> {
        self.cached.as_ref()
    }

    /// The outputs ingested since construction or the last
    /// [`reset_baseline`](Self::reset_baseline) — the current window, in
    /// arrival order.
    pub fn window(&self) -> &[f64] {
        &self.outputs
    }

    /// Clears the ingested window so the estimator can be reused for the
    /// next span of the stream — the hook the content-drift scorer uses
    /// to score consecutive windows against a profiled baseline without
    /// duplicating kernel state. The aggregate, population, `δ`, and any
    /// stopping target are retained; only the window (and its cached
    /// estimate / refresh schedule) reset.
    pub fn reset_baseline(&mut self) {
        self.outputs.clear();
        self.cached = None;
        self.next_refresh = 2;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smokescreen_degrade::{DegradedView, InterventionSet, RestrictionIndex};
    use smokescreen_models::{Detector, SimYoloV4};
    use smokescreen_video::synth::DatasetPreset;
    use smokescreen_video::ObjectClass;

    #[test]
    fn streaming_matches_batch_estimation() {
        let corpus = DatasetPreset::Detrac.generate(60).slice(0, 3_000);
        let idx = RestrictionIndex::from_ground_truth(&corpus, &[]);
        let yolo = SimYoloV4::new(1);
        let view =
            DegradedView::new(&corpus, InterventionSet::sampling(0.2), &idx, 9).unwrap();
        let outputs = view.outputs(&yolo, ObjectClass::Car);

        let mut streaming = StreamingEstimator::new(Aggregate::Avg, corpus.len(), 0.05);
        for &v in &outputs {
            streaming.push(v).unwrap();
        }
        let batch = estimate_from_outputs(Aggregate::Avg, &outputs, corpus.len(), 0.05).unwrap();
        assert_eq!(streaming.estimate().unwrap(), batch);
    }

    #[test]
    fn converges_and_stops_early() {
        let corpus = DatasetPreset::Detrac.generate(61).slice(0, 5_000);
        let truth = corpus.stats().mean_cars_per_frame;
        let idx = RestrictionIndex::from_ground_truth(&corpus, &[]);
        let yolo = SimYoloV4::new(2);
        let view = DegradedView::new(&corpus, InterventionSet::none(), &idx, 3).unwrap();

        let mut streaming =
            StreamingEstimator::new(Aggregate::Avg, corpus.len(), 0.05).with_stop_at(0.25);
        let mut consumed = 0usize;
        let res = view.resolution();
        for i in 0..view.len() {
            let frame = view.frame(i).unwrap();
            consumed += 1;
            if streaming.push(yolo.count(&frame, res, ObjectClass::Car)).unwrap()
                == StreamingStatus::Converged
            {
                break;
            }
        }
        assert!(
            consumed < corpus.len() / 2,
            "should converge well before scanning half the video: {consumed}"
        );
        let est = streaming.estimate().unwrap();
        assert!(est.err_b() <= 0.3);
        // The early-stopped answer is actually close to the truth.
        assert!(((est.y_approx() - truth) / truth).abs() <= est.err_b() + 0.05);
    }

    #[test]
    fn exhaustion_reported_at_full_population() {
        let mut s = StreamingEstimator::new(Aggregate::Avg, 3, 0.05);
        assert_eq!(s.push(1.0).unwrap(), StreamingStatus::Collecting);
        assert_eq!(s.push(2.0).unwrap(), StreamingStatus::Collecting);
        assert_eq!(s.push(3.0).unwrap(), StreamingStatus::Exhausted);
    }

    #[test]
    fn reset_baseline_reuses_kernel_state_across_windows() {
        let mut s = StreamingEstimator::new(Aggregate::Avg, 100, 0.05);
        for v in [1.0, 2.0, 3.0, 4.0] {
            s.push(v).unwrap();
        }
        assert_eq!(s.window(), &[1.0, 2.0, 3.0, 4.0]);
        let first = s.estimate().unwrap();

        s.reset_baseline();
        assert!(s.is_empty());
        assert!(s.window().is_empty());
        assert!(s.cached_estimate().is_none());
        assert_eq!(s.status(), StreamingStatus::Collecting);

        // The second window must behave exactly like a fresh estimator —
        // same refresh schedule, same estimate for the same inputs.
        let mut fresh = StreamingEstimator::new(Aggregate::Avg, 100, 0.05);
        for v in [1.0, 2.0, 3.0, 4.0] {
            s.push(v).unwrap();
            fresh.push(v).unwrap();
        }
        assert_eq!(s.estimate().unwrap(), first);
        assert_eq!(s.estimate().unwrap(), fresh.estimate().unwrap());
        assert_eq!(s.cached_estimate(), fresh.cached_estimate());
    }

    #[test]
    fn quantile_streams_too() {
        let corpus = DatasetPreset::Detrac.generate(62).slice(0, 2_000);
        let idx = RestrictionIndex::from_ground_truth(&corpus, &[]);
        let yolo = SimYoloV4::new(3);
        let view =
            DegradedView::new(&corpus, InterventionSet::sampling(0.1), &idx, 4).unwrap();
        let mut s = StreamingEstimator::new(Aggregate::Max { r: 0.99 }, corpus.len(), 0.05);
        for v in view.outputs(&yolo, ObjectClass::Car) {
            s.push(v).unwrap();
        }
        let est = s.estimate().unwrap();
        assert!(matches!(est, Estimate::Quantile(_)));
        assert!(est.y_approx() > 0.0);
    }
}
