//! Public preferences and tradeoff choice (§2.3 "Choosing a tradeoff").
//!
//! The system never chooses for the administrator — but given a preference
//! statement it can mechanically select the profiled point that maximizes
//! degradation subject to the accuracy requirement, which is what Harry
//! does by eye in the paper's running example.

use smokescreen_video::codec::{transmission_bytes, Quality};
use smokescreen_video::{ObjectClass, Resolution};

use crate::profile::{Profile, ProfilePoint};
use crate::{CoreError, Result};

/// What "most degraded" means to this administrator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DegradationObjective {
    /// Minimize transmitted bytes (bandwidth/energy goals): resolution and
    /// sampling both count, weighted by the codec size model.
    MinimizeBytes,
    /// Minimize frame resolution first (privacy/legal goals), breaking
    /// ties by lower sample fraction.
    MinimizeResolution,
    /// Minimize sample fraction first (temporal-privacy goals), breaking
    /// ties by lower resolution.
    MinimizeFraction,
}

/// The administrator's public preferences.
#[derive(Debug, Clone, PartialEq)]
pub struct Preferences {
    /// Maximum tolerable analytical error (e.g. 0.10 for "within 10%").
    pub max_error: f64,
    /// Classes that *must* be removed (legal compliance).
    pub required_removals: Vec<ObjectClass>,
    /// Hard cap on resolution (e.g. GDPR-driven "at most 128×128").
    pub max_resolution: Option<Resolution>,
    /// Hard cap on the sample fraction.
    pub max_fraction: Option<f64>,
    /// Tie-breaking objective among feasible points.
    pub objective: DegradationObjective,
}

impl Preferences {
    /// Plain accuracy requirement with no other constraints.
    pub fn accuracy(max_error: f64) -> Self {
        Preferences {
            max_error,
            required_removals: Vec::new(),
            max_resolution: None,
            max_fraction: None,
            objective: DegradationObjective::MinimizeBytes,
        }
    }

    /// Whether a profiled point satisfies every hard constraint.
    pub fn feasible(&self, point: &ProfilePoint) -> bool {
        if !(point.err_b <= self.max_error) {
            return false;
        }
        if !self
            .required_removals
            .iter()
            .all(|c| point.set.restricted.contains(c))
        {
            return false;
        }
        if let (Some(cap), Some(res)) = (self.max_resolution, point.set.resolution) {
            if res.pixels() > cap.pixels() {
                return false;
            }
        }
        if self.max_resolution.is_some() && point.set.resolution.is_none() {
            // Native resolution with a resolution cap in force: the cap is
            // only satisfied if native itself is under it, which callers
            // encode by profiling explicit resolutions; be conservative.
            return false;
        }
        if let Some(max_f) = self.max_fraction {
            if point.set.sample_fraction > max_f {
                return false;
            }
        }
        true
    }
}

/// Degradation score — lower is *more* degraded (preferred).
fn objective_score(
    point: &ProfilePoint,
    objective: DegradationObjective,
    native: Resolution,
) -> (u64, u64) {
    let res = point.set.resolution.unwrap_or(native);
    match objective {
        DegradationObjective::MinimizeBytes => {
            let bytes = transmission_bytes(
                10_000,
                point.set.sample_fraction,
                res,
                point.set.quality.unwrap_or(Quality::LOSSLESS_ISH),
            );
            (bytes, res.pixels())
        }
        DegradationObjective::MinimizeResolution => (
            res.pixels(),
            (point.set.sample_fraction * 1e9) as u64,
        ),
        DegradationObjective::MinimizeFraction => (
            (point.set.sample_fraction * 1e9) as u64,
            res.pixels(),
        ),
    }
}

/// Chooses the most degraded feasible point of the profile under the
/// preferences. Errors with [`CoreError::NoFeasibleTradeoff`] when nothing
/// qualifies.
pub fn choose_tradeoff<'p>(
    profile: &'p Profile,
    preferences: &Preferences,
    native: Resolution,
) -> Result<&'p ProfilePoint> {
    profile
        .points
        .iter()
        .filter(|p| preferences.feasible(p))
        .min_by_key(|p| objective_score(p, preferences.objective, native))
        .ok_or(CoreError::NoFeasibleTradeoff)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimate::Aggregate;
    use smokescreen_degrade::InterventionSet;

    fn point(f: f64, side: Option<u32>, removed: Vec<ObjectClass>, err: f64) -> ProfilePoint {
        let mut set = InterventionSet::sampling(f).with_restricted(&removed);
        set.resolution = side.map(Resolution::square);
        ProfilePoint {
            set,
            y_approx: 1.0,
            err_b: err,
            corrected: false,
            n: 10,
        }
    }

    fn profile(points: Vec<ProfilePoint>) -> Profile {
        Profile {
            corpus: "t".into(),
            model: "m".into(),
            class: ObjectClass::Car,
            aggregate: Aggregate::Avg,
            delta: 0.05,
            points,
        }
    }

    #[test]
    fn picks_most_degraded_feasible_point() {
        let p = profile(vec![
            point(0.5, Some(608), vec![], 0.02),
            point(0.1, Some(320), vec![], 0.08),
            point(0.05, Some(128), vec![], 0.30), // infeasible: too much error
        ]);
        let native = Resolution::square(608);
        let chosen = choose_tradeoff(&p, &Preferences::accuracy(0.10), native).unwrap();
        assert_eq!(chosen.set.sample_fraction, 0.1);
        assert_eq!(chosen.set.resolution, Some(Resolution::square(320)));
    }

    #[test]
    fn required_removals_enforced() {
        let p = profile(vec![
            point(0.1, Some(320), vec![], 0.05),
            point(0.2, Some(320), vec![ObjectClass::Face], 0.06),
        ]);
        let mut prefs = Preferences::accuracy(0.10);
        prefs.required_removals = vec![ObjectClass::Face];
        let chosen = choose_tradeoff(&p, &prefs, Resolution::square(608)).unwrap();
        assert!(chosen.set.restricted.contains(&ObjectClass::Face));
    }

    #[test]
    fn resolution_cap_enforced() {
        let p = profile(vec![
            point(0.5, Some(608), vec![], 0.01),
            point(0.5, Some(128), vec![], 0.09),
            point(0.5, None, vec![], 0.01), // native — conservative reject
        ]);
        let mut prefs = Preferences::accuracy(0.10);
        prefs.max_resolution = Some(Resolution::square(256));
        let chosen = choose_tradeoff(&p, &prefs, Resolution::square(608)).unwrap();
        assert_eq!(chosen.set.resolution, Some(Resolution::square(128)));
    }

    #[test]
    fn no_feasible_point_errors() {
        let p = profile(vec![point(0.5, Some(608), vec![], 0.5)]);
        assert!(matches!(
            choose_tradeoff(&p, &Preferences::accuracy(0.1), Resolution::square(608)),
            Err(CoreError::NoFeasibleTradeoff)
        ));
    }

    #[test]
    fn objectives_order_differently() {
        let a = point(0.01, Some(608), vec![], 0.05); // few frames, big
        let b = point(0.99, Some(128), vec![], 0.05); // many frames, small
        let p = profile(vec![a, b]);
        let native = Resolution::square(608);

        let mut prefs = Preferences::accuracy(0.1);
        prefs.objective = DegradationObjective::MinimizeFraction;
        assert_eq!(
            choose_tradeoff(&p, &prefs, native).unwrap().set.sample_fraction,
            0.01
        );
        prefs.objective = DegradationObjective::MinimizeResolution;
        assert_eq!(
            choose_tradeoff(&p, &prefs, native)
                .unwrap()
                .set
                .resolution,
            Some(Resolution::square(128))
        );
    }
}
