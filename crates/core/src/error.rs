//! Error type for the Smokescreen core.

use std::fmt;

use smokescreen_stats::StatsError;

/// Errors surfaced by profiling, estimation, and tradeoff selection.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// An underlying statistical estimator failed.
    Stats(StatsError),
    /// The intervention set is malformed (bad fraction, empty resolution…).
    InvalidIntervention(String),
    /// The detector does not support a requested resolution.
    UnsupportedResolution {
        /// Model name.
        model: String,
        /// Offending resolution, as `WxH`.
        resolution: String,
    },
    /// The degraded view contains no frames.
    EmptyView(String),
    /// The aggregate/estimate types disagree (e.g. rank repair on a mean
    /// estimate).
    AggregateMismatch(&'static str),
    /// No profile point satisfies the administrator's preferences.
    NoFeasibleTradeoff,
    /// Profile (de)serialization failed.
    Serialization(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Stats(e) => write!(f, "estimator error: {e}"),
            CoreError::InvalidIntervention(msg) => write!(f, "invalid intervention: {msg}"),
            CoreError::UnsupportedResolution { model, resolution } => {
                write!(f, "model {model} does not accept resolution {resolution}")
            }
            CoreError::EmptyView(msg) => write!(f, "degraded view is empty: {msg}"),
            CoreError::AggregateMismatch(what) => {
                write!(f, "aggregate/estimate type mismatch: {what}")
            }
            CoreError::NoFeasibleTradeoff => {
                write!(f, "no intervention candidate satisfies the preferences")
            }
            CoreError::Serialization(msg) => write!(f, "profile serialization: {msg}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Stats(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StatsError> for CoreError {
    fn from(e: StatsError) -> Self {
        CoreError::Stats(e)
    }
}
