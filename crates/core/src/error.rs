//! Error type for the Smokescreen core.

use std::fmt;

use smokescreen_models::ModelError;
use smokescreen_stats::StatsError;

/// Errors surfaced by profiling, estimation, and tradeoff selection.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// An underlying statistical estimator failed.
    Stats(StatsError),
    /// A model invocation failed permanently (timeout, retry budget
    /// exhausted, unknown model).
    Model(ModelError),
    /// Every sampled frame's model call failed — no surviving outputs to
    /// estimate from. The layer above must quarantine, not widen.
    AllOutputsLost {
        /// Sampled frames whose calls failed.
        lost: usize,
        /// What was being estimated (cell / candidate description).
        context: String,
    },
    /// The intervention set is malformed (bad fraction, empty resolution…).
    InvalidIntervention(String),
    /// The detector does not support a requested resolution.
    UnsupportedResolution {
        /// Model name.
        model: String,
        /// Offending resolution, as `WxH`.
        resolution: String,
    },
    /// The degraded view contains no frames.
    EmptyView(String),
    /// The aggregate/estimate types disagree (e.g. rank repair on a mean
    /// estimate).
    AggregateMismatch(&'static str),
    /// No profile point satisfies the administrator's preferences.
    NoFeasibleTradeoff,
    /// Profile (de)serialization failed.
    Serialization(String),
    /// The checkpoint journal could not be created, read, or appended to.
    /// Durability problems are loud: generation refuses to continue
    /// without the durability the operator asked for.
    Checkpoint(String),
    /// A seeded [`CrashPlan`](smokescreen_rt::fault::CrashPlan) killed
    /// generation at this cell's journal commit. Only ever produced by
    /// chaos runs; the caller resumes by invoking generation again with
    /// the same checkpoint directory.
    CrashInjected {
        /// Grid-order index of the cell whose commit the crash hit.
        cell: usize,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Stats(e) => write!(f, "estimator error: {e}"),
            CoreError::Model(e) => write!(f, "model invocation failed: {e}"),
            CoreError::AllOutputsLost { lost, context } => write!(
                f,
                "all {lost} sampled model call(s) failed for {context}; no surviving outputs"
            ),
            CoreError::InvalidIntervention(msg) => write!(f, "invalid intervention: {msg}"),
            CoreError::UnsupportedResolution { model, resolution } => {
                write!(f, "model {model} does not accept resolution {resolution}")
            }
            CoreError::EmptyView(msg) => write!(f, "degraded view is empty: {msg}"),
            CoreError::AggregateMismatch(what) => {
                write!(f, "aggregate/estimate type mismatch: {what}")
            }
            CoreError::NoFeasibleTradeoff => {
                write!(f, "no intervention candidate satisfies the preferences")
            }
            CoreError::Serialization(msg) => write!(f, "profile serialization: {msg}"),
            CoreError::Checkpoint(msg) => write!(f, "checkpoint journal: {msg}"),
            CoreError::CrashInjected { cell } => {
                write!(f, "injected crash at cell {cell}'s journal commit")
            }
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Stats(e) => Some(e),
            CoreError::Model(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StatsError> for CoreError {
    fn from(e: StatsError) -> Self {
        CoreError::Stats(e)
    }
}

impl From<ModelError> for CoreError {
    fn from(e: ModelError) -> Self {
        CoreError::Model(e)
    }
}
