//! The end-to-end Smokescreen facade.
//!
//! Owns the corpus, detectors, restriction prior, and configuration, and
//! exposes the workflow of the paper's Example 3: generate profiles →
//! inspect curves → choose a tradeoff → estimate the query under the
//! chosen degradation.

use smokescreen_degrade::{CandidateGrid, InterventionSet, RestrictionIndex};
use smokescreen_models::Detector;
use smokescreen_video::{ObjectClass, VideoCorpus};

use crate::admin::AdminSession;
use crate::correction::{build_correction_set, CorrectionConfig, CorrectionSet};
use crate::estimate::{result_error_est, Aggregate, Estimate, Workload};
use crate::generation::{GenerationReport, GeneratorConfig, ProfileGenerator};
use crate::profile::Profile;
use crate::tradeoff::{choose_tradeoff, Preferences};
use crate::Result;

/// The Smokescreen system for one corpus + model + query.
pub struct Smokescreen<'a> {
    corpus: &'a VideoCorpus,
    detector: &'a dyn Detector,
    class: ObjectClass,
    aggregate: Aggregate,
    delta: f64,
    restrictions: RestrictionIndex,
    config: GeneratorConfig,
}

impl<'a> Smokescreen<'a> {
    /// Builds the system. The restriction prior is computed from ground
    /// truth here; use [`Smokescreen::with_restrictions`] to supply a
    /// detector-derived prior as the paper's prototype does.
    pub fn new(
        corpus: &'a VideoCorpus,
        detector: &'a dyn Detector,
        class: ObjectClass,
        aggregate: Aggregate,
        delta: f64,
    ) -> Self {
        let restrictions = RestrictionIndex::from_ground_truth(
            corpus,
            &[ObjectClass::Person, ObjectClass::Face],
        );
        Smokescreen {
            corpus,
            detector,
            class,
            aggregate,
            delta,
            restrictions,
            config: GeneratorConfig::default(),
        }
    }

    /// Replaces the restriction prior (e.g. one built with
    /// `RestrictionIndex::from_detectors`).
    pub fn with_restrictions(mut self, restrictions: RestrictionIndex) -> Self {
        self.restrictions = restrictions;
        self
    }

    /// Replaces the generator configuration.
    pub fn with_config(mut self, config: GeneratorConfig) -> Self {
        self.config = config;
        self
    }

    /// Sets the profile-generation worker count (`0` = automatic via
    /// `SMOKESCREEN_THREADS` or available parallelism). Any value yields a
    /// byte-identical profile; only wall-clock changes.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.config.threads = threads;
        self
    }

    /// Arms a seeded fault plan for chaos runs: model calls fault per the
    /// plan, transient failures retry with deterministic backoff, and
    /// lossy cells widen or quarantine per
    /// [`GeneratorConfig::max_cell_loss`]. `None` restores the fault-free
    /// production configuration.
    pub fn with_fault_plan(
        mut self,
        plan: Option<smokescreen_rt::fault::FaultPlan>,
    ) -> Self {
        self.config.faults = plan;
        self
    }

    /// Points profile generation at a checkpoint directory: each completed
    /// cell is durably journaled, and a rerun of the same workload resumes
    /// from the journal, recomputing only missing cells — bit-identical to
    /// an uninterrupted run. `None` (the default) disables checkpointing
    /// entirely.
    pub fn with_checkpoint_dir(mut self, dir: Option<std::path::PathBuf>) -> Self {
        self.config.checkpoint = dir;
        self
    }

    /// Arms a seeded crash plan for chaos runs: generation dies with
    /// [`CoreError::CrashInjected`](crate::CoreError::CrashInjected) at
    /// deterministic cells' journal commits. Pair with
    /// [`with_checkpoint_dir`](Self::with_checkpoint_dir) so each resume
    /// makes durable progress.
    pub fn with_crash_plan(
        mut self,
        plan: Option<smokescreen_rt::fault::CrashPlan>,
    ) -> Self {
        self.config.crash = plan;
        self
    }

    /// The workload view of this system.
    pub fn workload(&self) -> Workload<'_> {
        Workload {
            corpus: self.corpus,
            detector: self.detector,
            class: self.class,
            aggregate: self.aggregate,
            delta: self.delta,
        }
    }

    /// The restriction prior in force.
    pub fn restrictions(&self) -> &RestrictionIndex {
        &self.restrictions
    }

    /// Constructs a correction set with the §3.3.1 elbow heuristic.
    pub fn build_correction_set(&self, config: &CorrectionConfig, seed: u64) -> Result<CorrectionSet> {
        let w = self.workload();
        build_correction_set(&w, &self.restrictions, config, seed, None)
    }

    /// Generates the profile over a candidate grid (profile generation
    /// stage). Supplying a correction set repairs non-random candidates.
    pub fn generate_profile(
        &self,
        grid: &CandidateGrid,
        correction: Option<&CorrectionSet>,
    ) -> Result<(Profile, GenerationReport)> {
        let w = self.workload();
        ProfileGenerator::new(&w, &self.restrictions, self.config.clone())
            .generate(grid, correction)
    }

    /// Opens an administration session on a generated profile.
    pub fn admin_session(&self, profile: Profile) -> AdminSession {
        AdminSession::new(profile, self.corpus.native_resolution)
    }

    /// Chooses the most degraded feasible candidate of a profile.
    pub fn choose(
        &self,
        profile: &Profile,
        preferences: &Preferences,
    ) -> Result<InterventionSet> {
        Ok(choose_tradeoff(profile, preferences, self.corpus.native_resolution)?
            .set
            .clone())
    }

    /// Runs the query under the chosen degradation (the final step of
    /// Example 3) and returns the estimate.
    pub fn estimate(&self, set: &InterventionSet, seed: u64) -> Result<Estimate> {
        let w = self.workload();
        result_error_est(&w, &self.restrictions, set, seed, None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smokescreen_models::SimYoloV4;
    use smokescreen_video::synth::DatasetPreset;
    use smokescreen_video::Resolution;

    #[test]
    fn end_to_end_profile_choose_estimate() {
        let corpus = DatasetPreset::Detrac.generate(50).slice(0, 3_000);
        let yolo = SimYoloV4::new(5);
        let system = Smokescreen::new(&corpus, &yolo, ObjectClass::Car, Aggregate::Avg, 0.05);

        let grid = CandidateGrid::explicit(
            vec![0.02, 0.05, 0.1, 0.3],
            vec![Resolution::square(320), Resolution::square(608)],
            vec![vec![]],
        );
        let cs = system
            .build_correction_set(&CorrectionConfig::default(), 1)
            .unwrap();
        let (profile, report) = system.generate_profile(&grid, Some(&cs)).unwrap();
        assert!(!profile.is_empty());
        assert!(report.model_runs > 0);

        let prefs = Preferences::accuracy(0.5);
        let set = system.choose(&profile, &prefs).unwrap();
        let est = system.estimate(&set, 99).unwrap();
        assert!(est.err_b().is_finite());

        // The chosen set must genuinely satisfy the preference per the
        // profile's bound.
        let point = profile
            .points
            .iter()
            .find(|p| p.set == set)
            .expect("chosen set is a profiled candidate");
        assert!(point.err_b <= 0.5);
    }

    #[test]
    fn admin_session_round_trip() {
        let corpus = DatasetPreset::NightStreet.generate(51).slice(0, 2_000);
        let yolo = SimYoloV4::new(6);
        let system = Smokescreen::new(&corpus, &yolo, ObjectClass::Car, Aggregate::Avg, 0.05);
        let grid = CandidateGrid::explicit(
            vec![0.05, 0.2],
            vec![Resolution::square(608)],
            vec![vec![]],
        );
        let (profile, _) = system.generate_profile(&grid, None).unwrap();
        let mut session = system.admin_session(profile);
        let view = session.initial_view();
        assert!(!view.over_fraction.is_empty());
    }
}
