//! Bound repair (§3.2.5, Algorithm 3).
//!
//! Dispatches the degraded-video estimate and the correction-set estimate
//! to the right repair formula: triangle-inequality routing through the
//! correction anchor for mean aggregates (Equation 12), rank-difference
//! routing for quantile aggregates (Equation 13).

use smokescreen_stats::{repair_mean_bound, repair_rank_bound};

use crate::correction::CorrectionSet;
use crate::estimate::Estimate;
use crate::{CoreError, Result};

/// Repairs the error bound of `degraded` using the correction set.
///
/// Returns the corrected `err_b`, valid with the correction set's `1 − δ`
/// probability regardless of how non-random the degraded view was.
pub fn corrected_bound(degraded: &Estimate, correction: &CorrectionSet) -> Result<f64> {
    match (degraded, &correction.estimate) {
        (Estimate::Mean(d), Estimate::Mean(c)) => Ok(repair_mean_bound(d, c)?),
        (Estimate::Quantile(d), Estimate::Quantile(c)) => {
            Ok(repair_rank_bound(d, c, &correction.values)?)
        }
        _ => Err(CoreError::AggregateMismatch(
            "degraded and correction estimates use different metrics",
        )),
    }
}

/// The bound to report when only random interventions are in force: the
/// tighter of the direct bound and the corrected bound (§5.2.2 — the
/// correction set helps random interventions too when it carries more
/// information than the degraded sample).
pub fn best_bound_for_random(degraded: &Estimate, correction: &CorrectionSet) -> Result<f64> {
    Ok(degraded.err_b().min(corrected_bound(degraded, correction)?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::correction::{build_correction_set, CorrectionConfig};
    use crate::estimate::{result_error_est, Aggregate, Workload};
    use smokescreen_degrade::{InterventionSet, RestrictionIndex};
    use smokescreen_models::SimYoloV4;
    use smokescreen_video::synth::DatasetPreset;
    use smokescreen_video::{ObjectClass, Resolution};

    fn setup(agg: Aggregate) -> (smokescreen_video::VideoCorpus, SimYoloV4, Aggregate) {
        (
            DatasetPreset::Detrac.generate(30).slice(0, 6_000),
            SimYoloV4::new(7),
            agg,
        )
    }

    #[test]
    fn repaired_bound_covers_resolution_bias() {
        let (corpus, yolo, agg) = setup(Aggregate::Avg);
        let w = Workload {
            corpus: &corpus,
            detector: &yolo,
            class: ObjectClass::Car,
            aggregate: agg,
            delta: 0.05,
        };
        let restrictions = RestrictionIndex::from_ground_truth(&corpus, &[ObjectClass::Person]);
        let pop = w.population_outputs();

        // Heavy resolution degradation at a generous fraction: the direct
        // bound is confidently wrong.
        let set = InterventionSet::sampling(0.5).with_resolution(Resolution::square(128));
        let degraded = result_error_est(&w, &restrictions, &set, 3, None).unwrap();
        let true_err =
            crate::estimate::true_relative_error(agg, &degraded, &pop);
        assert!(
            degraded.err_b() < true_err,
            "premise: uncorrected bound misleads ({} vs {true_err})",
            degraded.err_b()
        );

        let cs = build_correction_set(&w, &restrictions, &CorrectionConfig::default(), 9, None)
            .unwrap();
        let repaired = corrected_bound(&degraded, &cs).unwrap();
        assert!(
            repaired >= true_err,
            "repaired={repaired} true={true_err}"
        );
    }

    #[test]
    fn repaired_rank_bound_covers_removal_bias() {
        let (corpus, yolo, agg) = setup(Aggregate::Max { r: 0.99 });
        let w = Workload {
            corpus: &corpus,
            detector: &yolo,
            class: ObjectClass::Car,
            aggregate: agg,
            delta: 0.05,
        };
        let restrictions = RestrictionIndex::from_ground_truth(&corpus, &[ObjectClass::Person]);
        let pop = w.population_outputs();

        // Remove person frames: busy frames vanish, the sampled quantile
        // shifts down systematically.
        let set = InterventionSet::sampling(0.1).with_restricted(&[ObjectClass::Person]);
        let degraded = result_error_est(&w, &restrictions, &set, 4, None).unwrap();
        let cs = build_correction_set(&w, &restrictions, &CorrectionConfig::default(), 11, None)
            .unwrap();
        let repaired = corrected_bound(&degraded, &cs).unwrap();
        let true_err = crate::estimate::true_relative_error(agg, &degraded, &pop);
        assert!(
            repaired >= true_err,
            "repaired={repaired} true={true_err}"
        );
    }

    #[test]
    fn mismatched_metrics_rejected() {
        let (corpus, yolo, _) = setup(Aggregate::Avg);
        let w_avg = Workload {
            corpus: &corpus,
            detector: &yolo,
            class: ObjectClass::Car,
            aggregate: Aggregate::Avg,
            delta: 0.05,
        };
        let restrictions = RestrictionIndex::from_ground_truth(&corpus, &[]);
        let mean_est =
            result_error_est(&w_avg, &restrictions, &InterventionSet::sampling(0.1), 1, None)
                .unwrap();
        let w_max = Workload {
            aggregate: Aggregate::Max { r: 0.99 },
            ..w_avg
        };
        let cs_max =
            build_correction_set(&w_max, &restrictions, &CorrectionConfig::default(), 1, None)
                .unwrap();
        assert!(matches!(
            corrected_bound(&mean_est, &cs_max),
            Err(CoreError::AggregateMismatch(_))
        ));
    }

    #[test]
    fn best_bound_never_looser_than_direct() {
        let (corpus, yolo, agg) = setup(Aggregate::Avg);
        let w = Workload {
            corpus: &corpus,
            detector: &yolo,
            class: ObjectClass::Car,
            aggregate: agg,
            delta: 0.05,
        };
        let restrictions = RestrictionIndex::from_ground_truth(&corpus, &[]);
        let degraded =
            result_error_est(&w, &restrictions, &InterventionSet::sampling(0.02), 2, None)
                .unwrap();
        let cs = build_correction_set(&w, &restrictions, &CorrectionConfig::default(), 2, None)
            .unwrap();
        let best = best_bound_for_random(&degraded, &cs).unwrap();
        assert!(best <= degraded.err_b() + 1e-12);
    }
}
