//! `result_error_est` — the unified answer/bound estimator.
//!
//! This is line 1 of Algorithm 3: apply the interventions, run the model
//! over the sampled frames, and dispatch to the aggregate-specific
//! estimator of §3.2. It also evaluates the *true* relative error against
//! the oracle population when asked (experiments only — the whole point of
//! the system is that production flows never touch the original video).

use std::borrow::Cow;

use smokescreen_degrade::{DegradedView, InterventionSet, RestrictionIndex};
use smokescreen_rt::json::{FromJson, Json, JsonError, ToJson};
use smokescreen_models::{Detector, OutputCache};
use smokescreen_stats::estimators::quantile::QuantileEstimate;
use smokescreen_stats::{
    avg_estimate, count_estimate, quantile_estimate, sum_estimate, var_estimate, Extreme,
    MeanEstimate, MeanKernel, OrderKernel, VarKernel,
};
use smokescreen_video::{ObjectClass, VideoCorpus};

use crate::{CoreError, Result};

/// The aggregate function `F_A` of the query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Aggregate {
    /// Frame-level average of the model output.
    Avg,
    /// Sum of the model output over all frames.
    Sum,
    /// Number of frames whose output meets the predicate `output ≥ k`.
    Count {
        /// Predicate threshold `k` (e.g. 1.0 = "frame contains a car").
        at_least: f64,
    },
    /// Maximum, approximated by the `r`-quantile with `r` near 1.
    Max {
        /// Quantile position (the paper uses 0.99).
        r: f64,
    },
    /// Minimum, approximated by the `r`-quantile with `r` near 0.
    Min {
        /// Quantile position (e.g. 0.01).
        r: f64,
    },
    /// Arbitrary `r`-quantile (e.g. MEDIAN at r = 0.5) — a holistic
    /// extension beyond the paper's extreme-quantile scope, using the
    /// MAX-form bound of Theorem 3.2 (whose sqrt(r(1-r)) spread term is
    /// valid at any interior `r`).
    Quantile {
        /// Quantile position in `(0, 1)`.
        r: f64,
    },
    /// Variance of the model output (future-work extension, §7).
    Var,
}

impl Aggregate {
    /// Whether the accuracy metric is rank-based (MAX/MIN) rather than
    /// value-based.
    pub fn is_rank_metric(self) -> bool {
        matches!(
            self,
            Aggregate::Max { .. } | Aggregate::Min { .. } | Aggregate::Quantile { .. }
        )
    }

    /// The quantile position, when rank-based.
    pub fn quantile_r(self) -> Option<f64> {
        match self {
            Aggregate::Max { r } | Aggregate::Min { r } | Aggregate::Quantile { r } => Some(r),
            _ => None,
        }
    }

    /// Short name for display.
    pub fn name(self) -> &'static str {
        match self {
            Aggregate::Avg => "AVG",
            Aggregate::Sum => "SUM",
            Aggregate::Count { .. } => "COUNT",
            Aggregate::Max { .. } => "MAX",
            Aggregate::Min { .. } => "MIN",
            Aggregate::Quantile { .. } => "QUANTILE",
            Aggregate::Var => "VAR",
        }
    }

    /// Maps raw per-frame model outputs to the values the estimator
    /// consumes. Identity aggregates borrow the input; only COUNT's
    /// indicator transform allocates.
    pub fn transform<'a>(&self, outputs: &'a [f64]) -> Cow<'a, [f64]> {
        match self {
            Aggregate::Count { at_least } => Cow::Owned(
                outputs
                    .iter()
                    .map(|&v| if v >= *at_least { 1.0 } else { 0.0 })
                    .collect(),
            ),
            _ => Cow::Borrowed(outputs),
        }
    }

    /// The per-sample value the estimator consumes for one raw model
    /// output — the scalar form of [`transform`](Self::transform), applied
    /// by [`AggregateKernel::push`] at insert time.
    pub fn transform_one(&self, raw: f64) -> f64 {
        match self {
            Aggregate::Count { at_least } => {
                if raw >= *at_least {
                    1.0
                } else {
                    0.0
                }
            }
            _ => raw,
        }
    }

    /// The true aggregate over a full population of outputs.
    pub fn true_value(&self, population: &[f64]) -> f64 {
        let n = population.len();
        if n == 0 {
            return 0.0;
        }
        match *self {
            Aggregate::Avg => population.iter().sum::<f64>() / n as f64,
            Aggregate::Sum => population.iter().sum(),
            Aggregate::Count { at_least } => {
                population.iter().filter(|&&v| v >= at_least).count() as f64
            }
            Aggregate::Max { r } | Aggregate::Min { r } | Aggregate::Quantile { r } => {
                let mut sorted = population.to_vec();
                sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite outputs"));
                let idx = ((r * n as f64).ceil() as usize).clamp(1, n) - 1;
                sorted[idx]
            }
            Aggregate::Var => {
                let mean = population.iter().sum::<f64>() / n as f64;
                population.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n as f64
            }
        }
    }
}

impl ToJson for Aggregate {
    fn to_json(&self) -> Json {
        match *self {
            Aggregate::Avg => Json::Str("avg".into()),
            Aggregate::Sum => Json::Str("sum".into()),
            Aggregate::Var => Json::Str("var".into()),
            Aggregate::Count { at_least } => {
                Json::obj([("count", Json::obj([("at_least", at_least.to_json())]))])
            }
            Aggregate::Max { r } => Json::obj([("max", Json::obj([("r", r.to_json())]))]),
            Aggregate::Min { r } => Json::obj([("min", Json::obj([("r", r.to_json())]))]),
            Aggregate::Quantile { r } => {
                Json::obj([("quantile", Json::obj([("r", r.to_json())]))])
            }
        }
    }
}

impl FromJson for Aggregate {
    fn from_json(value: &Json) -> smokescreen_rt::json::Result<Self> {
        if let Ok(tag) = value.as_str() {
            return match tag {
                "avg" => Ok(Aggregate::Avg),
                "sum" => Ok(Aggregate::Sum),
                "var" => Ok(Aggregate::Var),
                other => Err(JsonError::new(format!("unknown aggregate {other:?}"))),
            };
        }
        if let Some(body) = value.get_opt("count") {
            return Ok(Aggregate::Count {
                at_least: f64::from_json(body.get("at_least")?)?,
            });
        }
        for (tag, build) in [
            ("max", Aggregate::Max { r: 0.0 }),
            ("min", Aggregate::Min { r: 0.0 }),
            ("quantile", Aggregate::Quantile { r: 0.0 }),
        ] {
            if let Some(body) = value.get_opt(tag) {
                let r = f64::from_json(body.get("r")?)?;
                return Ok(match build {
                    Aggregate::Max { .. } => Aggregate::Max { r },
                    Aggregate::Min { .. } => Aggregate::Min { r },
                    _ => Aggregate::Quantile { r },
                });
            }
        }
        Err(JsonError::new("unrecognized aggregate encoding"))
    }
}

/// A video analytical query: the paper's `(D, F_model, F_A)` triple plus
/// the queried class and confidence level.
pub struct Workload<'a> {
    /// The original video `D`.
    pub corpus: &'a VideoCorpus,
    /// The vision model `F_model`.
    pub detector: &'a dyn Detector,
    /// The class the UDF counts per frame (cars in every paper workload).
    pub class: ObjectClass,
    /// The aggregate function `F_A`.
    pub aggregate: Aggregate,
    /// `δ`: bounds hold with probability at least `1 − δ`.
    pub delta: f64,
}

impl<'a> Workload<'a> {
    /// Per-frame model outputs over the *entire* corpus at native
    /// resolution — the ground-truth population `X_1 … X_N`. Experiments
    /// only.
    pub fn population_outputs(&self) -> Vec<f64> {
        let res = self
            .corpus
            .native_resolution
            .min(self.detector.native_resolution());
        self.corpus
            .frames()
            .iter()
            .map(|f| self.detector.count(f, res, self.class))
            .collect()
    }

    /// The true query answer (experiments only).
    pub fn true_answer(&self) -> f64 {
        self.aggregate.true_value(&self.population_outputs())
    }
}

/// An estimate: approximate answer plus `1 − δ` relative-error bound.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Estimate {
    /// Mean-style estimate (AVG/SUM/COUNT/VAR) — value-relative metric.
    Mean(MeanEstimate),
    /// Quantile estimate (MAX/MIN) — rank-relative metric.
    Quantile(QuantileEstimate),
}

impl Estimate {
    /// The approximate answer `Y_approx`.
    pub fn y_approx(&self) -> f64 {
        match self {
            Estimate::Mean(m) => m.y_approx,
            Estimate::Quantile(q) => q.y_approx,
        }
    }

    /// The error upper bound `err_b`.
    pub fn err_b(&self) -> f64 {
        match self {
            Estimate::Mean(m) => m.err_b,
            Estimate::Quantile(q) => q.err_b,
        }
    }

    /// Sample size consumed.
    pub fn n(&self) -> usize {
        match self {
            Estimate::Mean(m) => m.n,
            Estimate::Quantile(q) => q.n,
        }
    }
}

/// Runs the query under the interventions and estimates the answer plus
/// error bound (Algorithm 3 line 1).
///
/// * `restrictions` — precomputed restricted-class membership prior.
/// * `seed` — fixes the sampling permutation (vary per trial).
/// * `cache` — optional model-output cache shared across candidates.
pub fn result_error_est(
    workload: &Workload<'_>,
    restrictions: &RestrictionIndex,
    set: &InterventionSet,
    seed: u64,
    cache: Option<&OutputCache<'_>>,
) -> Result<Estimate> {
    if let Some(res) = set.resolution {
        if !workload.detector.supports(res) {
            return Err(CoreError::UnsupportedResolution {
                model: workload.detector.name().to_string(),
                resolution: res.to_string(),
            });
        }
    }
    let view = DegradedView::new(workload.corpus, set.clone(), restrictions, seed)
        .map_err(CoreError::InvalidIntervention)?;
    let raw = match cache {
        Some(c) if !view.rewrites_frames() => {
            // Fallible fetch: on a fault-free cache this is byte-identical
            // to the infallible path; under a fault plan, permanently
            // failed calls drop out and the estimate widens over the
            // surviving (still uniform) sample.
            let fetched = view.try_outputs_cached(c, workload.class);
            if fetched.values.is_empty() && fetched.lost > 0 {
                return Err(CoreError::AllOutputsLost {
                    lost: fetched.lost,
                    context: set.describe(),
                });
            }
            fetched.values
        }
        _ => view.outputs(workload.detector, workload.class),
    };
    if raw.is_empty() {
        return Err(CoreError::EmptyView(set.describe()));
    }
    estimate_from_outputs(
        workload.aggregate,
        &raw,
        workload.corpus.len(),
        workload.delta,
    )
}

/// Dispatches pre-collected per-frame outputs to the right estimator.
pub fn estimate_from_outputs(
    aggregate: Aggregate,
    raw_outputs: &[f64],
    population: usize,
    delta: f64,
) -> Result<Estimate> {
    let values = aggregate.transform(raw_outputs);
    let est = match aggregate {
        Aggregate::Avg => Estimate::Mean(avg_estimate(&values, population, delta)?),
        Aggregate::Sum => Estimate::Mean(sum_estimate(&values, population, delta)?),
        Aggregate::Count { .. } => Estimate::Mean(count_estimate(&values, population, delta)?),
        Aggregate::Max { r } => {
            Estimate::Quantile(quantile_estimate(&values, population, r, delta, Extreme::Max)?)
        }
        Aggregate::Min { r } => {
            Estimate::Quantile(quantile_estimate(&values, population, r, delta, Extreme::Min)?)
        }
        Aggregate::Quantile { r } => {
            Estimate::Quantile(quantile_estimate(&values, population, r, delta, Extreme::Max)?)
        }
        Aggregate::Var => Estimate::Mean(var_estimate(&values, population, delta)?),
    };
    Ok(est)
}

/// Streaming counterpart of [`estimate_from_outputs`]: holds the
/// aggregate-specific kernel from `smokescreen-stats` and ingests raw
/// model outputs one at a time (COUNT's indicator transform folds into
/// [`push`](Self::push)). After ingesting the same outputs in the same
/// order, [`estimate`](Self::estimate) returns exactly the `Estimate` the
/// batch path produces — bit-for-bit — but each fraction step of the
/// §3.3.2 sweep costs `O(Δn)` (mean-style) or `O(Δn log n)` (order-style)
/// instead of a full recompute.
pub struct AggregateKernel {
    aggregate: Aggregate,
    state: KernelState,
}

enum KernelState {
    Mean(MeanKernel),
    Var(VarKernel),
    Order(OrderKernel),
}

impl AggregateKernel {
    /// Fresh kernel for one aggregate.
    pub fn new(aggregate: Aggregate) -> Self {
        Self::with_capacity(aggregate, 0)
    }

    /// Fresh kernel with pre-sized order-statistic scratch (mean-style
    /// kernels hold O(1) state and ignore the hint).
    pub fn with_capacity(aggregate: Aggregate, capacity: usize) -> Self {
        let state = match aggregate {
            Aggregate::Avg | Aggregate::Sum | Aggregate::Count { .. } => {
                KernelState::Mean(MeanKernel::new())
            }
            Aggregate::Var => KernelState::Var(VarKernel::new()),
            Aggregate::Max { .. } | Aggregate::Min { .. } | Aggregate::Quantile { .. } => {
                KernelState::Order(OrderKernel::with_capacity(capacity))
            }
        };
        AggregateKernel { aggregate, state }
    }

    /// The aggregate this kernel serves.
    pub fn aggregate(&self) -> Aggregate {
        self.aggregate
    }

    /// Number of samples ingested so far.
    pub fn n(&self) -> usize {
        match &self.state {
            KernelState::Mean(k) => k.n(),
            KernelState::Var(k) => k.n(),
            KernelState::Order(k) => k.n(),
        }
    }

    /// Ingests one raw model output, applying the aggregate's sample
    /// transform at insert time.
    pub fn push(&mut self, raw: f64) {
        let v = self.aggregate.transform_one(raw);
        match &mut self.state {
            KernelState::Mean(k) => k.push(v),
            KernelState::Var(k) => k.push(v),
            KernelState::Order(k) => k.push(v),
        }
    }

    /// Ingests a slice of raw outputs in order — bit-identical to calling
    /// [`push`](Self::push) on every element, but dispatched once per
    /// slice so each fraction-ladder step reaches the kernels' batched
    /// `push_slice` path (COUNT's indicator transform is fused into an
    /// 8-wide stack buffer, never a heap allocation).
    pub fn extend(&mut self, raw: &[f64]) {
        match (&mut self.state, self.aggregate) {
            (KernelState::Mean(k), Aggregate::Count { at_least }) => {
                let mut ind = [0.0f64; 8];
                let mut chunks = raw.chunks_exact(8);
                for chunk in &mut chunks {
                    for (slot, &v) in ind.iter_mut().zip(chunk) {
                        *slot = if v >= at_least { 1.0 } else { 0.0 };
                    }
                    k.push_slice(&ind);
                }
                let rem = chunks.remainder();
                for (slot, &v) in ind.iter_mut().zip(rem) {
                    *slot = if v >= at_least { 1.0 } else { 0.0 };
                }
                k.push_slice(&ind[..rem.len()]);
            }
            (KernelState::Mean(k), _) => k.push_slice(raw),
            (KernelState::Var(k), _) => k.push_slice(raw),
            (KernelState::Order(k), _) => k.push_slice(raw),
        }
    }

    /// Answer/bound estimate over everything ingested so far. Equals
    /// [`estimate_from_outputs`] on the same outputs in the same order.
    pub fn estimate(&self, population: usize, delta: f64) -> Result<Estimate> {
        let est = match (&self.state, self.aggregate) {
            (KernelState::Mean(k), Aggregate::Avg) => Estimate::Mean(k.avg(population, delta)?),
            (KernelState::Mean(k), Aggregate::Sum) => Estimate::Mean(k.sum(population, delta)?),
            (KernelState::Mean(k), Aggregate::Count { .. }) => {
                Estimate::Mean(k.count(population, delta)?)
            }
            (KernelState::Var(k), Aggregate::Var) => {
                Estimate::Mean(k.estimate(population, delta)?)
            }
            (KernelState::Order(k), Aggregate::Max { r }) => {
                Estimate::Quantile(k.quantile(population, r, delta, Extreme::Max)?)
            }
            (KernelState::Order(k), Aggregate::Min { r }) => {
                Estimate::Quantile(k.quantile(population, r, delta, Extreme::Min)?)
            }
            (KernelState::Order(k), Aggregate::Quantile { r }) => {
                Estimate::Quantile(k.quantile(population, r, delta, Extreme::Max)?)
            }
            _ => unreachable!("kernel state is constructed from its aggregate"),
        };
        Ok(est)
    }
}

/// True relative error of an estimate against the oracle population
/// (value-relative for mean aggregates, rank-relative for MAX/MIN).
/// Experiments only.
pub fn true_relative_error(
    aggregate: Aggregate,
    estimate: &Estimate,
    population_outputs: &[f64],
) -> f64 {
    match (aggregate, estimate) {
        (
            Aggregate::Max { r } | Aggregate::Min { r } | Aggregate::Quantile { r },
            Estimate::Quantile(q),
        ) => {
            smokescreen_stats::estimators::quantile::true_rank_error(
                population_outputs,
                q.y_approx,
                r,
            )
        }
        (_, est) => {
            let truth = aggregate.true_value(population_outputs);
            if truth == 0.0 {
                if est.y_approx() == 0.0 {
                    0.0
                } else {
                    f64::INFINITY
                }
            } else {
                (est.y_approx() - truth).abs() / truth.abs()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smokescreen_models::{Oracle, SimYoloV4};
    use smokescreen_video::synth::DatasetPreset;
    use smokescreen_video::Resolution;

    fn workload<'a>(corpus: &'a VideoCorpus, detector: &'a dyn Detector, agg: Aggregate) -> Workload<'a> {
        // Helper binding lifetimes for tests.
        Workload {
            corpus,
            detector,
            class: ObjectClass::Car,
            aggregate: agg,
            delta: 0.05,
        }
    }

    #[test]
    fn avg_estimate_covers_truth_under_sampling() {
        let corpus = DatasetPreset::Detrac.generate(10).slice(0, 6_000);
        let oracle = Oracle;
        let w = workload(&corpus, &oracle, Aggregate::Avg);
        let restrictions = RestrictionIndex::from_ground_truth(&corpus, &[]);
        let pop = w.population_outputs();

        let mut covered = 0;
        for t in 0..60u64 {
            let est = result_error_est(
                &w,
                &restrictions,
                &InterventionSet::sampling(0.05),
                t,
                None,
            )
            .unwrap();
            if true_relative_error(Aggregate::Avg, &est, &pop) <= est.err_b() {
                covered += 1;
            }
        }
        assert!(covered >= 57, "covered={covered}/60");
    }

    #[test]
    fn count_and_sum_share_relative_bounds() {
        let corpus = DatasetPreset::Detrac.generate(11).slice(0, 3_000);
        let oracle = Oracle;
        let restrictions = RestrictionIndex::from_ground_truth(&corpus, &[]);
        let sum = result_error_est(
            &workload(&corpus, &oracle, Aggregate::Sum),
            &restrictions,
            &InterventionSet::sampling(0.1),
            5,
            None,
        )
        .unwrap();
        let avg = result_error_est(
            &workload(&corpus, &oracle, Aggregate::Avg),
            &restrictions,
            &InterventionSet::sampling(0.1),
            5,
            None,
        )
        .unwrap();
        assert!((sum.err_b() - avg.err_b()).abs() < 1e-12);
        assert!((sum.y_approx() / avg.y_approx() - 3_000.0).abs() < 1e-6);
    }

    #[test]
    fn unsupported_resolution_is_rejected() {
        let corpus = DatasetPreset::NightStreet.generate(12).slice(0, 500);
        let yolo = SimYoloV4::new(1);
        let w = workload(&corpus, &yolo, Aggregate::Avg);
        let restrictions = RestrictionIndex::from_ground_truth(&corpus, &[]);
        let err = result_error_est(
            &w,
            &restrictions,
            &InterventionSet::sampling(0.5).with_resolution(Resolution::square(300)),
            1,
            None,
        )
        .unwrap_err();
        assert!(matches!(err, CoreError::UnsupportedResolution { .. }));
    }

    #[test]
    fn max_uses_rank_metric() {
        let corpus = DatasetPreset::Detrac.generate(13).slice(0, 5_000);
        let oracle = Oracle;
        let w = workload(&corpus, &oracle, Aggregate::Max { r: 0.99 });
        let restrictions = RestrictionIndex::from_ground_truth(&corpus, &[]);
        let pop = w.population_outputs();
        let est = result_error_est(&w, &restrictions, &InterventionSet::sampling(0.1), 3, None)
            .unwrap();
        assert!(matches!(est, Estimate::Quantile(_)));
        let err = true_relative_error(Aggregate::Max { r: 0.99 }, &est, &pop);
        assert!(err <= est.err_b(), "true={err} bound={}", est.err_b());
    }

    #[test]
    fn aggregate_true_values() {
        let pop = [0.0, 1.0, 2.0, 3.0, 4.0];
        assert_eq!(Aggregate::Avg.true_value(&pop), 2.0);
        assert_eq!(Aggregate::Sum.true_value(&pop), 10.0);
        assert_eq!(Aggregate::Count { at_least: 2.0 }.true_value(&pop), 3.0);
        assert_eq!(Aggregate::Max { r: 0.99 }.true_value(&pop), 4.0);
        assert_eq!(Aggregate::Min { r: 0.01 }.true_value(&pop), 0.0);
        assert_eq!(Aggregate::Quantile { r: 0.5 }.true_value(&pop), 2.0);
        assert_eq!(Aggregate::Var.true_value(&pop), 2.0);
        assert_eq!(Aggregate::Avg.true_value(&[]), 0.0);
    }

    #[test]
    fn count_transform_is_indicator() {
        let t = Aggregate::Count { at_least: 1.0 }.transform(&[0.0, 0.5, 1.0, 3.0]);
        assert_eq!(t, vec![0.0, 0.0, 1.0, 1.0]);
        assert!(matches!(t, Cow::Owned(_)));
    }

    #[test]
    fn identity_transform_borrows() {
        let raw = [0.0, 0.5, 1.0, 3.0];
        for agg in [
            Aggregate::Avg,
            Aggregate::Sum,
            Aggregate::Max { r: 0.99 },
            Aggregate::Min { r: 0.01 },
            Aggregate::Quantile { r: 0.5 },
            Aggregate::Var,
        ] {
            let t = agg.transform(&raw);
            assert!(matches!(t, Cow::Borrowed(_)), "{} must not allocate", agg.name());
            assert_eq!(t.as_ptr(), raw.as_ptr());
        }
    }

    #[test]
    fn aggregate_kernel_matches_batch_for_every_aggregate() {
        let corpus = DatasetPreset::Detrac.generate(17).slice(0, 2_000);
        let oracle = Oracle;
        let restrictions = RestrictionIndex::from_ground_truth(&corpus, &[]);
        let view = DegradedView::new(&corpus, InterventionSet::sampling(0.3), &restrictions, 8)
            .expect("valid view");
        let raw = view.outputs(&oracle, ObjectClass::Car);
        let population = corpus.len();
        for agg in [
            Aggregate::Avg,
            Aggregate::Sum,
            Aggregate::Count { at_least: 1.0 },
            Aggregate::Max { r: 0.99 },
            Aggregate::Min { r: 0.01 },
            Aggregate::Quantile { r: 0.5 },
            Aggregate::Var,
        ] {
            let mut kernel = AggregateKernel::new(agg);
            // Push in two uneven chunks to exercise the incremental path,
            // checking the intermediate prefix too.
            let split = raw.len() / 3;
            kernel.extend(&raw[..split]);
            assert_eq!(
                kernel.estimate(population, 0.05).unwrap(),
                estimate_from_outputs(agg, &raw[..split], population, 0.05).unwrap(),
                "{} prefix", agg.name()
            );
            kernel.extend(&raw[split..]);
            assert_eq!(kernel.n(), raw.len());
            assert_eq!(
                kernel.estimate(population, 0.05).unwrap(),
                estimate_from_outputs(agg, &raw, population, 0.05).unwrap(),
                "{} full", agg.name()
            );
        }
    }

    #[test]
    fn kernel_with_injected_gaps_matches_batch_on_survivors() {
        // Degradation satellite: a kernel fed the prefix ladder with
        // fault-injected gaps must agree bit-for-bit with the batch
        // estimator run on the surviving sample — for both the mean-style
        // and order-style kernels.
        use smokescreen_models::{OutputCache, RetryPolicy};
        use smokescreen_rt::fault::FaultPlan;

        let corpus = DatasetPreset::Detrac.generate(18).slice(0, 2_000);
        let yolo = SimYoloV4::new(7);
        let restrictions = RestrictionIndex::from_ground_truth(&corpus, &[]);
        let view = DegradedView::new(&corpus, InterventionSet::sampling(0.4), &restrictions, 8)
            .expect("valid view");
        let plan = FaultPlan::new(19, 0.25);
        let population = corpus.len();
        for agg in [
            Aggregate::Avg,
            Aggregate::Sum,
            Aggregate::Count { at_least: 1.0 },
            Aggregate::Max { r: 0.99 },
            Aggregate::Quantile { r: 0.5 },
            Aggregate::Var,
        ] {
            let cache = OutputCache::with_faults(&yolo, plan, RetryPolicy::default());
            let mut kernel = AggregateKernel::new(agg);
            let mut survivors = Vec::new();
            let mut lost = 0usize;
            // Ascending prefix ladder in uneven rungs, as the §3.3.2 sweep
            // fetches them; each rung checks the running estimate against
            // the batch path over everything that survived so far.
            let rungs = [0usize, 37, 160, 161, 400, view.len()];
            for w in rungs.windows(2) {
                let part = view.try_outputs_cached_range(&cache, ObjectClass::Car, w[0]..w[1]);
                kernel.extend(&part.values);
                survivors.extend(part.values);
                lost += part.lost;
                if survivors.is_empty() {
                    continue;
                }
                assert_eq!(
                    kernel.estimate(population, 0.05).unwrap(),
                    estimate_from_outputs(agg, &survivors, population, 0.05).unwrap(),
                    "{} at prefix {}..{}", agg.name(), w[0], w[1]
                );
            }
            assert!(lost > 0, "a 25% plan must lose frames");
            assert_eq!(kernel.n(), survivors.len());
            assert_eq!(kernel.n() + lost, view.len());
        }
    }

    #[test]
    fn empty_kernel_returns_typed_error_not_nan() {
        // n = 0 (nothing ingested, or everything lost) must be a typed
        // error from every kernel, never a NaN bound.
        for agg in [
            Aggregate::Avg,
            Aggregate::Sum,
            Aggregate::Count { at_least: 1.0 },
            Aggregate::Max { r: 0.99 },
            Aggregate::Min { r: 0.01 },
            Aggregate::Quantile { r: 0.5 },
            Aggregate::Var,
        ] {
            let kernel = AggregateKernel::new(agg);
            assert_eq!(kernel.n(), 0);
            let err = kernel.estimate(1_000, 0.05).expect_err(agg.name());
            assert!(matches!(err, CoreError::Stats(_)), "{}: {err}", agg.name());
            assert_eq!(
                estimate_from_outputs(agg, &[], 1_000, 0.05)
                    .map(|e| (e.y_approx(), e.err_b()))
                    .expect_err(agg.name()),
                err,
                "batch and kernel must agree on the empty-sample error"
            );
        }
    }

    #[test]
    fn all_frames_lost_is_a_typed_error() {
        use smokescreen_models::{OutputCache, RetryPolicy};
        use smokescreen_rt::fault::FaultPlan;

        let corpus = DatasetPreset::Detrac.generate(19).slice(0, 1_000);
        let yolo = SimYoloV4::new(9);
        let w = workload(&corpus, &yolo, Aggregate::Avg);
        let restrictions = RestrictionIndex::from_ground_truth(&corpus, &[]);
        // Every call times out: the whole sample is lost.
        let plan = FaultPlan::with_rates(2, 1.0, 0.0, 0.0, 0.0);
        let cache = OutputCache::with_faults(&yolo, plan, RetryPolicy::default());
        let err = result_error_est(
            &w,
            &restrictions,
            &InterventionSet::sampling(0.1),
            4,
            Some(&cache),
        )
        .unwrap_err();
        match err {
            CoreError::AllOutputsLost { lost, .. } => assert_eq!(lost, 100),
            other => panic!("expected AllOutputsLost, got {other:?}"),
        }
    }

    #[test]
    fn cached_and_uncached_agree() {
        let corpus = DatasetPreset::NightStreet.generate(14).slice(0, 2_000);
        let yolo = SimYoloV4::new(2);
        let w = workload(&corpus, &yolo, Aggregate::Avg);
        let restrictions = RestrictionIndex::from_ground_truth(&corpus, &[]);
        let cache = OutputCache::new(&yolo);
        let set = InterventionSet::sampling(0.2).with_resolution(Resolution::square(320));
        let a = result_error_est(&w, &restrictions, &set, 9, None).unwrap();
        let b = result_error_est(&w, &restrictions, &set, 9, Some(&cache)).unwrap();
        assert_eq!(a, b);
    }
}
