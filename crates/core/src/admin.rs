//! The administration procedure (§3.1).
//!
//! A thin interactive layer over a generated profile: the administrator is
//! first shown the three loosest 2-D slices, then fixes dimensions to pull
//! further slices, and finally nominates a tradeoff which the session
//! validates against the preferences.

use smokescreen_degrade::InterventionSet;
use smokescreen_video::{ObjectClass, Resolution};

use crate::profile::{LoosestSlices, Profile};
use crate::tradeoff::{choose_tradeoff, Preferences};
use crate::{CoreError, Result};

/// An administrator's working session over one profile.
#[derive(Debug, Clone)]
pub struct AdminSession {
    profile: Profile,
    native: Resolution,
    /// Slice requests made so far (audit trail).
    pub views_requested: Vec<String>,
}

impl AdminSession {
    /// Opens a session on a generated profile.
    pub fn new(profile: Profile, native: Resolution) -> Self {
        AdminSession {
            profile,
            native,
            views_requested: Vec::new(),
        }
    }

    /// The underlying profile.
    pub fn profile(&self) -> &Profile {
        &self.profile
    }

    /// The initial three plots (§3.1: unseen dimensions fixed at their
    /// loosest values).
    pub fn initial_view(&mut self) -> LoosestSlices {
        self.views_requested.push("initial".to_string());
        self.profile.loosest_slices()
    }

    /// A refined fraction-curve with the other knobs fixed where the
    /// administrator pointed.
    pub fn fraction_slice(
        &mut self,
        resolution: Option<Resolution>,
        restricted: &[ObjectClass],
    ) -> Vec<(f64, f64)> {
        self.views_requested.push(format!(
            "fraction-slice p={resolution:?} c={restricted:?}"
        ));
        self.profile.curve_over_fraction(resolution, restricted)
    }

    /// A refined resolution-curve.
    pub fn resolution_slice(
        &mut self,
        fraction: f64,
        restricted: &[ObjectClass],
    ) -> Vec<(u32, f64)> {
        self.views_requested
            .push(format!("resolution-slice f={fraction} c={restricted:?}"));
        self.profile.curve_over_resolution(fraction, restricted)
    }

    /// Mechanically selects the most degraded feasible candidate.
    pub fn recommend(&self, preferences: &Preferences) -> Result<InterventionSet> {
        Ok(choose_tradeoff(&self.profile, preferences, self.native)?
            .set
            .clone())
    }

    /// Validates an administrator-nominated set against the profile: it
    /// must be a profiled candidate (or interpolable) whose bound meets
    /// the error requirement.
    pub fn validate_choice(
        &self,
        set: &InterventionSet,
        preferences: &Preferences,
    ) -> Result<f64> {
        let bound = self
            .profile
            .points
            .iter()
            .find(|p| {
                p.set.resolution == set.resolution
                    && (p.set.sample_fraction - set.sample_fraction).abs() < 1e-9
                    && p.set.restricted == set.restricted
            })
            .map(|p| p.err_b)
            .or_else(|| {
                self.profile
                    .interpolate_fraction(set.sample_fraction, set.resolution, &set.restricted)
            })
            .ok_or(CoreError::NoFeasibleTradeoff)?;
        if bound <= preferences.max_error {
            Ok(bound)
        } else {
            Err(CoreError::NoFeasibleTradeoff)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimate::Aggregate;
    use crate::profile::ProfilePoint;

    fn session() -> AdminSession {
        let mk = |f: f64, side: u32, err: f64| ProfilePoint {
            set: InterventionSet::sampling(f).with_resolution(Resolution::square(side)),
            y_approx: 1.0,
            err_b: err,
            corrected: false,
            n: 100,
        };
        let profile = Profile {
            corpus: "t".into(),
            model: "m".into(),
            class: ObjectClass::Car,
            aggregate: Aggregate::Avg,
            delta: 0.05,
            points: vec![
                mk(0.1, 608, 0.20),
                mk(0.5, 608, 0.05),
                mk(0.1, 128, 0.40),
                mk(0.5, 128, 0.12),
            ],
        };
        AdminSession::new(profile, Resolution::square(608))
    }

    #[test]
    fn initial_view_and_audit_trail() {
        let mut s = session();
        let view = s.initial_view();
        assert!(!view.over_fraction.is_empty());
        let _ = s.fraction_slice(Some(Resolution::square(128)), &[]);
        assert_eq!(s.views_requested.len(), 2);
    }

    #[test]
    fn recommend_respects_preferences() {
        let s = session();
        let set = s.recommend(&Preferences::accuracy(0.15)).unwrap();
        // 128×128 at f=0.5 (err 0.12) is feasible and more degraded than
        // 608 at 0.5.
        assert_eq!(set.resolution, Some(Resolution::square(128)));
    }

    #[test]
    fn validate_choice_exact_and_interpolated() {
        let s = session();
        let prefs = Preferences::accuracy(0.15);
        let exact = s
            .validate_choice(
                &InterventionSet::sampling(0.5).with_resolution(Resolution::square(128)),
                &prefs,
            )
            .unwrap();
        assert!((exact - 0.12).abs() < 1e-12);

        // f = 0.3 at 128 is interpolated between 0.40 and 0.12 → 0.26.
        let err = s.validate_choice(
            &InterventionSet::sampling(0.3).with_resolution(Resolution::square(128)),
            &Preferences::accuracy(0.30),
        );
        assert!((err.unwrap() - 0.26).abs() < 1e-9);

        // Same point fails a tighter requirement.
        assert!(s
            .validate_choice(
                &InterventionSet::sampling(0.3).with_resolution(Resolution::square(128)),
                &Preferences::accuracy(0.10),
            )
            .is_err());
    }
}
