//! Profiles and the degradation hypercube (§2.3, §3.1).
//!
//! A profile is the set of `(intervention set, error bound)` pairs for one
//! `(video, query, model)` combination. Conceptually the bounds fill a 3-D
//! hypercube over `(f, p, c)`; administrators view 2-D slices obtained by
//! fixing the other dimension, starting from the loosest values.

use smokescreen_degrade::InterventionSet;
use smokescreen_rt::json::{FromJson, Json, JsonError, ToJson};
use smokescreen_video::{ObjectClass, Resolution};

use crate::estimate::Aggregate;
use crate::{CoreError, Result};

/// One profiled candidate.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfilePoint {
    /// The intervention set the bound was computed under.
    pub set: InterventionSet,
    /// Approximate query answer at this setting.
    pub y_approx: f64,
    /// `1 − δ` upper bound on the relative analytical error.
    pub err_b: f64,
    /// Whether the bound was repaired with a correction set.
    pub corrected: bool,
    /// Sample size the estimate consumed.
    pub n: usize,
}

/// A degradation-accuracy profile.
#[derive(Debug, Clone, PartialEq)]
pub struct Profile {
    /// Corpus name the profile belongs to.
    pub corpus: String,
    /// Model name.
    pub model: String,
    /// Queried class.
    pub class: ObjectClass,
    /// Aggregate function.
    pub aggregate: Aggregate,
    /// Confidence parameter `δ`.
    pub delta: f64,
    /// The profiled points.
    pub points: Vec<ProfilePoint>,
}

impl Profile {
    /// Number of profiled candidates.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the profile is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// All distinct resolutions present (None = native), ascending.
    pub fn resolutions(&self) -> Vec<Option<Resolution>> {
        let mut rs: Vec<Option<Resolution>> =
            self.points.iter().map(|p| p.set.resolution).collect();
        rs.sort();
        rs.dedup();
        rs
    }

    /// All distinct restricted-class combinations present.
    pub fn class_combos(&self) -> Vec<Vec<ObjectClass>> {
        let mut cs: Vec<Vec<ObjectClass>> = self
            .points
            .iter()
            .map(|p| {
                let mut c = p.set.restricted.clone();
                c.sort_by_key(|x| x.name());
                c
            })
            .collect();
        cs.sort_by_key(|c| c.iter().map(|x| x.name()).collect::<Vec<_>>().join(","));
        cs.dedup();
        cs
    }

    /// The tradeoff curve over sample fraction, fixing resolution and
    /// removal: `(f, err_b)` pairs, ascending in `f`.
    pub fn curve_over_fraction(
        &self,
        resolution: Option<Resolution>,
        restricted: &[ObjectClass],
    ) -> Vec<(f64, f64)> {
        let mut pts: Vec<(f64, f64)> = self
            .points
            .iter()
            .filter(|p| p.set.resolution == resolution && same_classes(&p.set.restricted, restricted))
            .map(|p| (p.set.sample_fraction, p.err_b))
            .collect();
        pts.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite fractions"));
        pts
    }

    /// The tradeoff curve over resolution side length, fixing fraction and
    /// removal: `(side, err_b)` pairs, ascending in side.
    pub fn curve_over_resolution(
        &self,
        fraction: f64,
        restricted: &[ObjectClass],
    ) -> Vec<(u32, f64)> {
        let mut pts: Vec<(u32, f64)> = self
            .points
            .iter()
            .filter(|p| {
                (p.set.sample_fraction - fraction).abs() < 1e-9
                    && same_classes(&p.set.restricted, restricted)
            })
            .filter_map(|p| p.set.resolution.map(|r| (r.width, p.err_b)))
            .collect();
        pts.sort_by_key(|&(w, _)| w);
        pts
    }

    /// The error bound for removal combinations, fixing fraction and
    /// resolution: `(combo, err_b)` pairs.
    pub fn curve_over_removal(
        &self,
        fraction: f64,
        resolution: Option<Resolution>,
    ) -> Vec<(Vec<ObjectClass>, f64)> {
        self.points
            .iter()
            .filter(|p| {
                (p.set.sample_fraction - fraction).abs() < 1e-9 && p.set.resolution == resolution
            })
            .map(|p| (p.set.restricted.clone(), p.err_b))
            .collect()
    }

    /// Linear interpolation of the bound at an un-profiled fraction along
    /// a fixed (resolution, removal) curve — §2.3: "missing values should
    /// simply be interpolated by the administrator".
    pub fn interpolate_fraction(
        &self,
        fraction: f64,
        resolution: Option<Resolution>,
        restricted: &[ObjectClass],
    ) -> Option<f64> {
        let curve = self.curve_over_fraction(resolution, restricted);
        if curve.is_empty() {
            return None;
        }
        if fraction <= curve[0].0 {
            return Some(curve[0].1);
        }
        if fraction >= curve[curve.len() - 1].0 {
            return Some(curve[curve.len() - 1].1);
        }
        for w in curve.windows(2) {
            let ((x0, y0), (x1, y1)) = (w[0], w[1]);
            if (x0..=x1).contains(&fraction) {
                let t = (fraction - x0) / (x1 - x0);
                return Some(y0 + t * (y1 - y0));
            }
        }
        None
    }

    /// The initial administrator view (§3.1): three 2-D slices, each
    /// varying one knob with the others fixed at their **loosest**
    /// profiled values (largest fraction, largest resolution, no removal).
    pub fn loosest_slices(&self) -> LoosestSlices {
        let loosest_fraction = self
            .points
            .iter()
            .map(|p| p.set.sample_fraction)
            .fold(0.0, f64::max);
        let loosest_resolution = self
            .resolutions()
            .into_iter()
            .max_by_key(|r| r.map_or(u64::MAX, |r| r.pixels()));
        // The least restrictive removal combo actually profiled (profiles
        // generated under compliance constraints may not contain the empty
        // combo at all).
        let loosest_combo = self
            .class_combos()
            .into_iter()
            .min_by_key(|c| c.len())
            .unwrap_or_default();

        LoosestSlices {
            over_fraction: self
                .curve_over_fraction(loosest_resolution.unwrap_or(None), &loosest_combo),
            over_resolution: self.curve_over_resolution(loosest_fraction, &loosest_combo),
            over_removal: self
                .curve_over_removal(loosest_fraction, loosest_resolution.unwrap_or(None)),
        }
    }

    /// Serializes the profile to JSON (the artifact an administrator
    /// stores/ships). Encoding is deterministic: equal profiles produce
    /// byte-identical documents.
    pub fn to_json(&self) -> Result<String> {
        Ok(ToJson::to_json(self).encode_pretty())
    }

    /// Deserializes a profile from JSON.
    pub fn from_json(s: &str) -> Result<Profile> {
        let value = Json::parse(s).map_err(|e| CoreError::Serialization(e.to_string()))?;
        FromJson::from_json(&value).map_err(|e| CoreError::Serialization(e.to_string()))
    }
}

impl ToJson for ProfilePoint {
    fn to_json(&self) -> Json {
        Json::obj([
            ("set", self.set.to_json()),
            ("y_approx", self.y_approx.to_json()),
            ("err_b", self.err_b.to_json()),
            ("corrected", self.corrected.to_json()),
            ("n", self.n.to_json()),
        ])
    }
}

impl FromJson for ProfilePoint {
    fn from_json(value: &Json) -> smokescreen_rt::json::Result<Self> {
        // Defense in depth for corrupted artifacts (this codec also runs
        // under journal replay): a point carrying a non-finite answer or
        // a nonsensical bound was damaged in storage, not produced by the
        // generator — reject it rather than let it poison downstream
        // tradeoff selection.
        let y_approx = f64::from_json(value.get("y_approx")?)?;
        if !y_approx.is_finite() {
            return Err(JsonError::new("profile point y_approx is not finite"));
        }
        let err_b = f64::from_json(value.get("err_b")?)?;
        if !err_b.is_finite() || err_b < 0.0 {
            return Err(JsonError::new(format!(
                "profile point err_b {err_b} is not a valid bound"
            )));
        }
        Ok(ProfilePoint {
            set: InterventionSet::from_json(value.get("set")?)?,
            y_approx,
            err_b,
            corrected: bool::from_json(value.get("corrected")?)?,
            n: usize::from_json(value.get("n")?)?,
        })
    }
}

impl ToJson for Profile {
    fn to_json(&self) -> Json {
        Json::obj([
            ("corpus", self.corpus.to_json()),
            ("model", self.model.to_json()),
            ("class", self.class.to_json()),
            ("aggregate", self.aggregate.to_json()),
            ("delta", self.delta.to_json()),
            ("points", self.points.to_json()),
        ])
    }
}

impl FromJson for Profile {
    fn from_json(value: &Json) -> smokescreen_rt::json::Result<Self> {
        let delta = f64::from_json(value.get("delta")?)?;
        // δ is a confidence parameter: (0, 1) exclusive. Anything else in
        // a stored profile is corruption.
        if !delta.is_finite() || delta <= 0.0 || delta >= 1.0 {
            return Err(JsonError::new(format!(
                "profile delta {delta} is not a confidence parameter in (0, 1)"
            )));
        }
        Ok(Profile {
            corpus: String::from_json(value.get("corpus")?)?,
            model: String::from_json(value.get("model")?)?,
            class: ObjectClass::from_json(value.get("class")?)?,
            aggregate: Aggregate::from_json(value.get("aggregate")?)?,
            delta,
            points: Vec::from_json(value.get("points")?)?,
        })
    }
}

/// The three initial 2-D plots shown to the administrator.
#[derive(Debug, Clone, PartialEq)]
pub struct LoosestSlices {
    /// Bound vs. sample fraction (resolution native-est, no removal).
    pub over_fraction: Vec<(f64, f64)>,
    /// Bound vs. resolution side (fraction loosest, no removal).
    pub over_resolution: Vec<(u32, f64)>,
    /// Bound vs. removal combination (other knobs loosest).
    pub over_removal: Vec<(Vec<ObjectClass>, f64)>,
}

fn same_classes(a: &[ObjectClass], b: &[ObjectClass]) -> bool {
    a.len() == b.len() && a.iter().all(|c| b.contains(c))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point(f: f64, res: Option<u32>, restricted: Vec<ObjectClass>, err: f64) -> ProfilePoint {
        let mut set = InterventionSet::sampling(f);
        set.resolution = res.map(Resolution::square);
        set.restricted = restricted;
        ProfilePoint {
            set,
            y_approx: 1.0,
            err_b: err,
            corrected: false,
            n: 100,
        }
    }

    fn profile(points: Vec<ProfilePoint>) -> Profile {
        Profile {
            corpus: "test".into(),
            model: "oracle".into(),
            class: ObjectClass::Car,
            aggregate: Aggregate::Avg,
            delta: 0.05,
            points,
        }
    }

    #[test]
    fn fraction_curve_sorted_and_filtered() {
        let p = profile(vec![
            point(0.5, Some(608), vec![], 0.1),
            point(0.1, Some(608), vec![], 0.4),
            point(0.1, Some(128), vec![], 0.9),
            point(0.3, Some(608), vec![ObjectClass::Person], 0.2),
        ]);
        let c = p.curve_over_fraction(Some(Resolution::square(608)), &[]);
        assert_eq!(c, vec![(0.1, 0.4), (0.5, 0.1)]);
    }

    #[test]
    fn resolution_curve() {
        let p = profile(vec![
            point(0.5, Some(608), vec![], 0.1),
            point(0.5, Some(128), vec![], 0.6),
            point(0.5, Some(320), vec![], 0.3),
        ]);
        let c = p.curve_over_resolution(0.5, &[]);
        assert_eq!(c, vec![(128, 0.6), (320, 0.3), (608, 0.1)]);
    }

    #[test]
    fn interpolation_midpoint_and_clamping() {
        let p = profile(vec![
            point(0.1, None, vec![], 0.4),
            point(0.3, None, vec![], 0.2),
        ]);
        let mid = p.interpolate_fraction(0.2, None, &[]).unwrap();
        assert!((mid - 0.3).abs() < 1e-12);
        assert_eq!(p.interpolate_fraction(0.05, None, &[]), Some(0.4));
        assert_eq!(p.interpolate_fraction(0.9, None, &[]), Some(0.2));
        assert_eq!(p.interpolate_fraction(0.2, Some(Resolution::square(64)), &[]), None);
    }

    #[test]
    fn loosest_slices_pick_loosest_axes() {
        let p = profile(vec![
            point(0.5, Some(608), vec![], 0.1),
            point(0.1, Some(608), vec![], 0.4),
            point(0.5, Some(128), vec![], 0.7),
            point(0.5, Some(608), vec![ObjectClass::Person], 0.25),
        ]);
        let s = p.loosest_slices();
        assert_eq!(s.over_fraction.len(), 2); // f = 0.1, 0.5 at 608/no-removal
        assert_eq!(s.over_resolution.len(), 2); // 128 and 608 at f=0.5
        assert_eq!(s.over_removal.len(), 2); // {} and {person}
    }

    #[test]
    fn json_round_trip() {
        let p = profile(vec![point(0.5, Some(608), vec![ObjectClass::Face], 0.12)]);
        let json = p.to_json().unwrap();
        let back = Profile::from_json(&json).unwrap();
        assert_eq!(p, back);
        assert!(Profile::from_json("not json").is_err());
    }
}
