//! Restriction index — which frames contain which sensitive classes.
//!
//! The paper detects `person` with YOLOv4 (threshold 0.7) and `face` with
//! MTCNN (threshold 0.8) at full resolution and stores the memberships as
//! prior information (§5.1). The image-removal intervention then deletes
//! every frame containing a restricted class.

use std::collections::HashMap;

use smokescreen_models::Detector;
use smokescreen_video::{ObjectClass, VideoCorpus};

/// Per-frame sensitive-class membership.
#[derive(Debug, Clone)]
pub struct RestrictionIndex {
    /// `membership[class][frame]` — true when the frame contains the class.
    membership: HashMap<ObjectClass, Vec<bool>>,
    frames: usize,
}

impl RestrictionIndex {
    /// Builds the index from ground-truth annotations (exact membership).
    pub fn from_ground_truth(corpus: &VideoCorpus, classes: &[ObjectClass]) -> Self {
        let mut membership = HashMap::new();
        for &class in classes {
            let v: Vec<bool> = corpus
                .frames()
                .iter()
                .map(|f| f.contains_class(class))
                .collect();
            membership.insert(class, v);
        }
        RestrictionIndex {
            membership,
            frames: corpus.len(),
        }
    }

    /// Builds the index by running detectors at native resolution, as the
    /// paper's prototype does. Each `(class, detector)` pair scans the
    /// whole corpus once.
    pub fn from_detectors(
        corpus: &VideoCorpus,
        scanners: &[(ObjectClass, &dyn Detector)],
    ) -> Self {
        let mut membership = HashMap::new();
        for &(class, detector) in scanners {
            let res = corpus
                .native_resolution
                .min(detector.native_resolution());
            let v: Vec<bool> = corpus
                .frames()
                .iter()
                .map(|f| detector.detect(f, res).contains(class))
                .collect();
            membership.insert(class, v);
        }
        RestrictionIndex {
            membership,
            frames: corpus.len(),
        }
    }

    /// Number of frames covered.
    pub fn frames(&self) -> usize {
        self.frames
    }

    /// Whether a frame contains any of the restricted classes. Classes the
    /// index was not built for are treated as absent (callers should build
    /// the index over every class they may restrict).
    pub fn frame_restricted(&self, frame_idx: usize, restricted: &[ObjectClass]) -> bool {
        restricted.iter().any(|c| {
            self.membership
                .get(c)
                .and_then(|v| v.get(frame_idx))
                .copied()
                .unwrap_or(false)
        })
    }

    /// Indices of frames that survive removal of the given classes.
    pub fn surviving_indices(&self, restricted: &[ObjectClass]) -> Vec<usize> {
        (0..self.frames)
            .filter(|&i| !self.frame_restricted(i, restricted))
            .collect()
    }

    /// Fraction of frames containing the class (the statistic §5.1
    /// reports, e.g. 65.86% `person` frames in UA-DETRAC).
    pub fn prevalence(&self, class: ObjectClass) -> f64 {
        match self.membership.get(&class) {
            Some(v) if !v.is_empty() => {
                v.iter().filter(|&&b| b).count() as f64 / v.len() as f64
            }
            _ => 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smokescreen_models::{SimMtcnn, SimYoloV4};
    use smokescreen_video::synth::DatasetPreset;

    #[test]
    fn ground_truth_index_matches_corpus() {
        let corpus = DatasetPreset::NightStreet.generate(3);
        let idx = RestrictionIndex::from_ground_truth(
            &corpus,
            &[ObjectClass::Person, ObjectClass::Face],
        );
        assert_eq!(idx.frames(), corpus.len());
        let stats = corpus.stats();
        assert!((idx.prevalence(ObjectClass::Person) - stats.person_frame_fraction).abs() < 1e-12);
        assert!((idx.prevalence(ObjectClass::Face) - stats.face_frame_fraction).abs() < 1e-12);
    }

    #[test]
    fn surviving_indices_exclude_restricted() {
        let corpus = DatasetPreset::NightStreet.generate(4);
        let idx = RestrictionIndex::from_ground_truth(&corpus, &[ObjectClass::Person]);
        let survivors = idx.surviving_indices(&[ObjectClass::Person]);
        for &i in survivors.iter().take(500) {
            assert!(!corpus.frame(i).unwrap().contains_class(ObjectClass::Person));
        }
        // No restriction ⇒ everything survives.
        assert_eq!(idx.surviving_indices(&[]).len(), corpus.len());
    }

    #[test]
    fn detector_index_close_to_ground_truth() {
        let corpus = DatasetPreset::Detrac.generate(5).slice(0, 2_000);
        let yolo = SimYoloV4::new(1);
        let mtcnn = SimMtcnn::new(1);
        let idx = RestrictionIndex::from_detectors(
            &corpus,
            &[
                (ObjectClass::Person, &yolo as &dyn Detector),
                (ObjectClass::Face, &mtcnn as &dyn Detector),
            ],
        );
        let gt = RestrictionIndex::from_ground_truth(
            &corpus,
            &[ObjectClass::Person, ObjectClass::Face],
        );
        let (dp, gp) = (idx.prevalence(ObjectClass::Person), gt.prevalence(ObjectClass::Person));
        assert!((dp - gp).abs() < 0.15, "detector person prevalence {dp} vs gt {gp}");
    }

    #[test]
    fn unknown_class_treated_as_absent() {
        let corpus = DatasetPreset::NightStreet.generate(6).slice(0, 100);
        let idx = RestrictionIndex::from_ground_truth(&corpus, &[ObjectClass::Person]);
        // Face was never indexed: restricting on it removes nothing.
        assert_eq!(idx.surviving_indices(&[ObjectClass::Face]).len(), 100);
    }
}
