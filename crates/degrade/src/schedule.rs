//! Time-windowed intervention schedules.
//!
//! Policies vary over time: business hours may demand stricter privacy
//! than 3 a.m.; §3.3.1 notes that "it may be acceptable to permit a lower
//! level of degradation for just a limited amount of time" to collect a
//! correction set. A [`Schedule`] maps time windows to intervention sets
//! and can split a corpus into per-window degraded views.

use smokescreen_video::VideoCorpus;

use crate::intervention::InterventionSet;
use crate::pipeline::DegradedView;
use crate::removal::RestrictionIndex;

/// One scheduled window: `[start_secs, end_secs)` mapped to a set.
#[derive(Debug, Clone, PartialEq)]
pub struct Window {
    /// Window start, seconds from the start of the recording (inclusive).
    pub start_secs: f64,
    /// Window end, seconds (exclusive).
    pub end_secs: f64,
    /// Interventions in force during the window.
    pub set: InterventionSet,
    /// Human-readable label (e.g. `"business-hours"`).
    pub label: String,
}

/// A piecewise-constant intervention schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct Schedule {
    /// The default interventions outside every window.
    pub default: InterventionSet,
    windows: Vec<Window>,
}

impl Schedule {
    /// Creates a schedule with the given out-of-window default.
    pub fn new(default: InterventionSet) -> Self {
        Schedule {
            default,
            windows: Vec::new(),
        }
    }

    /// Adds a window. Windows must not overlap and must be well-formed.
    pub fn add_window(
        &mut self,
        label: impl Into<String>,
        start_secs: f64,
        end_secs: f64,
        set: InterventionSet,
    ) -> Result<(), String> {
        if !(start_secs < end_secs) {
            return Err(format!("window [{start_secs}, {end_secs}) is empty or inverted"));
        }
        set.validate()?;
        for w in &self.windows {
            if start_secs < w.end_secs && w.start_secs < end_secs {
                return Err(format!(
                    "window [{start_secs}, {end_secs}) overlaps {:?}",
                    w.label
                ));
            }
        }
        self.windows.push(Window {
            start_secs,
            end_secs,
            set,
            label: label.into(),
        });
        self.windows
            .sort_by(|a, b| a.start_secs.partial_cmp(&b.start_secs).expect("finite times"));
        Ok(())
    }

    /// All windows, in time order.
    pub fn windows(&self) -> &[Window] {
        &self.windows
    }

    /// The interventions in force at a timestamp.
    pub fn set_at(&self, ts_secs: f64) -> &InterventionSet {
        self.windows
            .iter()
            .find(|w| ts_secs >= w.start_secs && ts_secs < w.end_secs)
            .map(|w| &w.set)
            .unwrap_or(&self.default)
    }

    /// Splits a corpus into per-window sub-corpora (plus the out-of-window
    /// remainder labelled `"default"`), each paired with its interventions.
    /// Sub-corpora preserve frame order; each can then be wrapped in a
    /// [`DegradedView`].
    pub fn partition(&self, corpus: &VideoCorpus) -> Vec<(String, InterventionSet, VideoCorpus)> {
        let mut parts: Vec<(String, InterventionSet, Vec<smokescreen_video::Frame>)> = self
            .windows
            .iter()
            .map(|w| (w.label.clone(), w.set.clone(), Vec::new()))
            .collect();
        let mut rest: Vec<smokescreen_video::Frame> = Vec::new();

        for frame in corpus.frames() {
            match self
                .windows
                .iter()
                .position(|w| frame.ts_secs >= w.start_secs && frame.ts_secs < w.end_secs)
            {
                Some(i) => parts[i].2.push(frame.clone()),
                None => rest.push(frame.clone()),
            }
        }

        let mut out = Vec::new();
        for (label, set, frames) in parts {
            if !frames.is_empty() {
                out.push((
                    label.clone(),
                    set,
                    VideoCorpus::new(
                        format!("{}@{label}", corpus.name),
                        corpus.fps,
                        corpus.native_resolution,
                        frames,
                    ),
                ));
            }
        }
        if !rest.is_empty() {
            out.push((
                "default".to_string(),
                self.default.clone(),
                VideoCorpus::new(
                    format!("{}@default", corpus.name),
                    corpus.fps,
                    corpus.native_resolution,
                    rest,
                ),
            ));
        }
        out
    }

    /// Builds degraded views for every partition in one call.
    pub fn views<'c>(
        &self,
        partitions: &'c [(String, InterventionSet, VideoCorpus)],
        restrictions_for: impl Fn(&VideoCorpus) -> RestrictionIndex,
        seed: u64,
    ) -> Result<Vec<(String, DegradedView<'c>)>, String> {
        partitions
            .iter()
            .enumerate()
            .map(|(i, (label, set, corpus))| {
                let restrictions = restrictions_for(corpus);
                DegradedView::new(corpus, set.clone(), &restrictions, seed.wrapping_add(i as u64))
                    .map(|v| (label.clone(), v))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smokescreen_video::synth::DatasetPreset;
    use smokescreen_video::ObjectClass;

    fn schedule() -> Schedule {
        let mut s = Schedule::new(InterventionSet::sampling(0.5));
        s.add_window(
            "business-hours",
            100.0,
            300.0,
            InterventionSet::sampling(0.1).with_restricted(&[ObjectClass::Person]),
        )
        .unwrap();
        s.add_window("night-calibration", 400.0, 450.0, InterventionSet::none())
            .unwrap();
        s
    }

    #[test]
    fn set_at_resolves_windows_and_default() {
        let s = schedule();
        assert_eq!(s.set_at(50.0), &InterventionSet::sampling(0.5));
        assert_eq!(s.set_at(100.0).sample_fraction, 0.1);
        assert_eq!(s.set_at(299.999).sample_fraction, 0.1);
        assert_eq!(s.set_at(300.0).sample_fraction, 0.5); // end exclusive
        assert!(s.set_at(420.0).is_identity());
    }

    #[test]
    fn overlapping_and_inverted_windows_rejected() {
        let mut s = schedule();
        assert!(s
            .add_window("overlap", 250.0, 350.0, InterventionSet::none())
            .is_err());
        assert!(s
            .add_window("inverted", 500.0, 500.0, InterventionSet::none())
            .is_err());
        assert!(s
            .add_window("bad-set", 600.0, 700.0, InterventionSet::sampling(0.0))
            .is_err());
    }

    #[test]
    fn partition_covers_every_frame_exactly_once() {
        let corpus = DatasetPreset::NightStreet.generate(3).slice(0, 20_000);
        let s = schedule();
        let parts = s.partition(&corpus);
        let total: usize = parts.iter().map(|(_, _, c)| c.len()).sum();
        assert_eq!(total, corpus.len());
        // Window membership is respected.
        for (label, _, sub) in &parts {
            for f in sub.frames() {
                match label.as_str() {
                    "business-hours" => assert!((100.0..300.0).contains(&f.ts_secs)),
                    "night-calibration" => assert!((400.0..450.0).contains(&f.ts_secs)),
                    _ => {}
                }
            }
        }
    }

    #[test]
    fn views_apply_each_windows_interventions() {
        let corpus = DatasetPreset::NightStreet.generate(4).slice(0, 15_000);
        let s = schedule();
        let parts = s.partition(&corpus);
        let views = s
            .views(
                &parts,
                |c| RestrictionIndex::from_ground_truth(c, &[ObjectClass::Person]),
                7,
            )
            .unwrap();
        for (label, view) in &views {
            if label == "business-hours" {
                assert!(!view.intervention().restricted.is_empty());
                // f = 0.1 of the window's population.
                let expected = (view.population() as f64 * 0.1).round() as usize;
                assert!(view.len() <= expected.max(1));
            }
        }
    }
}
