//! Destructive interventions (§2.1) and degraded views of a corpus.
//!
//! An [`InterventionSet`] is the paper's `(f, p, c)` triple — reduced frame
//! sampling, reduced frame resolution, and restricted-class image removal —
//! extended with the two "other degradation methods" §2.1 mentions (noise
//! addition and compression). Interventions are classified **random**
//! (model-output distribution unchanged — frame sampling) or **non-random**
//! (distribution may change — everything else), the split that decides
//! whether profile repair is required (Table 1).
//!
//! A [`DegradedView`] applies a set to a corpus without mutating it: it
//! resolves which frames survive image removal, samples the survivors
//! without replacement (with nested prefixes so outputs are reusable across
//! fractions), and adjusts object contrast for noise/compression before
//! frames reach a detector.

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod grid;
pub mod intervention;
pub mod pipeline;
pub mod removal;
pub mod schedule;

pub use grid::CandidateGrid;
pub use intervention::{InterventionKind, InterventionSet};
pub use pipeline::{DegradedView, RangeOutputs};
pub use removal::RestrictionIndex;
pub use schedule::{Schedule, Window};
