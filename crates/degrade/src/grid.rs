//! Intervention candidate design (§3.3.2).
//!
//! The system first enumerates many candidate `(f, p, c)` sets: sample
//! fractions at 1% intervals, ten uniformly spaced frame resolutions
//! (filtered to those the model architecture accepts), and all combinations
//! of possibly-sensitive classes. Administrators then filter the grid by
//! their degradation goals.

use smokescreen_models::Detector;
use smokescreen_video::{ObjectClass, Resolution};

use crate::intervention::InterventionSet;

/// The candidate grid over the three paper knobs.
#[derive(Debug, Clone, PartialEq)]
pub struct CandidateGrid {
    /// Sample-fraction candidates, ascending.
    pub fractions: Vec<f64>,
    /// Resolution candidates, ascending by pixel count. `None` entries are
    /// not used; the native resolution is represented explicitly.
    pub resolutions: Vec<Resolution>,
    /// Restricted-class combinations (including the empty combination).
    pub class_combos: Vec<Vec<ObjectClass>>,
}

impl CandidateGrid {
    /// The paper's default: fractions 1%..=100% at 1% intervals, ten
    /// resolutions uniform between `min_side` and the model's native side
    /// (keeping only resolutions the model supports), and every subset of
    /// `sensitive` classes.
    pub fn default_for(
        detector: &dyn Detector,
        min_side: u32,
        sensitive: &[ObjectClass],
    ) -> Self {
        let fractions: Vec<f64> = (1..=100).map(|i| i as f64 / 100.0).collect();
        let native = detector.native_resolution().width;
        let resolutions = uniform_resolutions(detector, min_side, native, 10);
        CandidateGrid {
            fractions,
            resolutions,
            class_combos: subsets(sensitive),
        }
    }

    /// Builds a grid from explicit candidate lists.
    pub fn explicit(
        fractions: Vec<f64>,
        resolutions: Vec<Resolution>,
        class_combos: Vec<Vec<ObjectClass>>,
    ) -> Self {
        CandidateGrid {
            fractions,
            resolutions,
            class_combos,
        }
    }

    /// Total number of candidate intervention sets.
    pub fn len(&self) -> usize {
        self.fractions.len() * self.resolutions.len().max(1) * self.class_combos.len().max(1)
    }

    /// Whether the grid is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Iterates every candidate intervention set (fraction-major order, so
    /// ascending fractions are adjacent — the order the early-stopping
    /// strategy consumes them in).
    pub fn iter(&self) -> impl Iterator<Item = InterventionSet> + '_ {
        self.resolutions
            .iter()
            .flat_map(move |&res| {
                self.class_combos.iter().map(move |combo| (res, combo.clone()))
            })
            .flat_map(move |(res, combo)| {
                self.fractions.iter().map(move |&f| {
                    InterventionSet::sampling(f)
                        .with_resolution(res)
                        .with_restricted(&combo)
                })
            })
    }

    /// Retains only candidates passing the administrator's filter (public
    /// preferences, e.g. "resolution must be ≤ 256" or "person frames must
    /// be removed").
    pub fn filter(&mut self, keep: impl Fn(&InterventionSet) -> bool) {
        // Filter each axis by probing with otherwise-loose candidates.
        self.fractions.retain(|&f| keep(&InterventionSet::sampling(f)));
        self.resolutions
            .retain(|&r| keep(&InterventionSet::none().with_resolution(r)));
        self.class_combos
            .retain(|c| keep(&InterventionSet::none().with_restricted(c)));
    }
}

/// Ten (or `count`) square resolutions uniformly spaced between `min_side`
/// and `native_side`, snapped to the model's supported grid.
pub fn uniform_resolutions(
    detector: &dyn Detector,
    min_side: u32,
    native_side: u32,
    count: usize,
) -> Vec<Resolution> {
    let count = count.max(2);
    let mut out = Vec::new();
    for i in 0..count {
        let side = min_side as f64
            + (native_side - min_side) as f64 * i as f64 / (count - 1) as f64;
        // Snap to the nearest supported side at or below.
        let mut side = side.round() as u32;
        while side >= min_side.min(16) {
            let r = Resolution::square(side);
            if detector.supports(r) {
                if out.last() != Some(&r) {
                    out.push(r);
                }
                break;
            }
            side -= 1;
        }
    }
    out.sort();
    out.dedup();
    out
}

/// All subsets of the class list (power set), empty set first.
fn subsets(classes: &[ObjectClass]) -> Vec<Vec<ObjectClass>> {
    let mut out = Vec::with_capacity(1 << classes.len());
    for mask in 0u32..(1 << classes.len()) {
        let combo: Vec<ObjectClass> = classes
            .iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << i) != 0)
            .map(|(_, &c)| c)
            .collect();
        out.push(combo);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use smokescreen_models::{SimMaskRcnn, SimYoloV4};

    #[test]
    fn default_grid_shape() {
        let yolo = SimYoloV4::new(1);
        let grid = CandidateGrid::default_for(
            &yolo,
            96,
            &[ObjectClass::Person, ObjectClass::Face],
        );
        assert_eq!(grid.fractions.len(), 100);
        assert!(grid.resolutions.len() >= 8 && grid.resolutions.len() <= 10);
        assert_eq!(grid.class_combos.len(), 4); // {}, {p}, {f}, {p,f}
        assert_eq!(grid.len(), grid.iter().count());
    }

    #[test]
    fn resolutions_respect_model_constraints() {
        let mask = SimMaskRcnn::new(1);
        let rs = uniform_resolutions(&mask, 128, 640, 10);
        assert!(rs.iter().all(|r| r.is_multiple_of(64)));
        assert!(rs.contains(&Resolution::square(640)));

        let yolo = SimYoloV4::new(1);
        let rs = uniform_resolutions(&yolo, 96, 608, 10);
        assert!(rs.iter().all(|r| r.is_multiple_of(32)));
    }

    #[test]
    fn filtering_drops_axes() {
        let yolo = SimYoloV4::new(1);
        let mut grid =
            CandidateGrid::default_for(&yolo, 96, &[ObjectClass::Person, ObjectClass::Face]);
        grid.filter(|set| {
            set.resolution.map_or(true, |r| r.width <= 320)
                && set.restricted.contains(&ObjectClass::Person)
        });
        assert!(grid.resolutions.iter().all(|r| r.width <= 320));
        assert!(grid
            .class_combos
            .iter()
            .all(|c| c.contains(&ObjectClass::Person)));
    }

    #[test]
    fn iter_orders_fractions_ascending_within_cell() {
        let yolo = SimYoloV4::new(1);
        let grid = CandidateGrid::explicit(
            vec![0.01, 0.05, 0.1],
            vec![Resolution::square(608)],
            vec![vec![]],
        );
        let _ = yolo; // grid iteration needs no detector
        let sets: Vec<_> = grid.iter().collect();
        assert_eq!(sets.len(), 3);
        assert!(sets[0].sample_fraction < sets[1].sample_fraction);
        assert!(sets[1].sample_fraction < sets[2].sample_fraction);
    }
}
