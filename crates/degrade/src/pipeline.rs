//! Degraded views: applying an intervention set to a corpus.

use std::borrow::Cow;

use smokescreen_models::{Detector, OutputCache};
use smokescreen_stats::sample::PrefixSampler;
use smokescreen_video::codec::quantize_contrast;
use smokescreen_video::{Frame, ObjectClass, Resolution, VideoCorpus};

use crate::intervention::InterventionSet;
use crate::removal::RestrictionIndex;

/// Outputs fetched over a sample range under fault injection.
///
/// Frames whose model calls failed permanently (timeout / retry budget
/// exhausted) are *dropped, and counted*: `values` holds only the
/// surviving outputs, in sample order, and `lost` says how many calls
/// failed. Because fault decisions are functions of `(frame, resolution)`
/// alone — independent of frame *content* — the survivors remain a
/// uniform without-replacement sample of the population, so feeding them
/// to the estimators keeps every bound sound (missing frames simply join
/// the "not sampled" mass; see DESIGN.md).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RangeOutputs {
    /// Surviving per-frame outputs, in sample order.
    pub values: Vec<f64>,
    /// Sampled frames in the range whose model calls failed permanently.
    pub lost: usize,
}

/// A non-destructive degraded view of a corpus under an intervention set.
///
/// Construction resolves the three paper knobs:
///
/// 1. **image removal** — frames containing restricted classes are excluded
///    from the eligible population (membership comes from the
///    [`RestrictionIndex`] prior);
/// 2. **frame sampling** — `n = round(N · f)` eligible frames are drawn
///    without replacement. The underlying permutation is seeded, and
///    samples at smaller fractions are prefixes of samples at larger ones,
///    enabling output reuse across candidates (§3.3.2);
/// 3. **resolution** — frames are processed at `p` (or native).
///
/// Noise/compression extensions are applied by rewriting object contrast
/// when a frame is materialized.
#[derive(Debug)]
pub struct DegradedView<'c> {
    corpus: &'c VideoCorpus,
    set: InterventionSet,
    /// Corpus indices that survive image removal.
    eligible: Vec<usize>,
    /// Positions into `eligible`, in sampled order (a full permutation).
    sampler: PrefixSampler,
    /// Number of sampled frames under the current fraction.
    n: usize,
}

impl<'c> DegradedView<'c> {
    /// Builds the view. The seed fixes the sampling permutation; distinct
    /// experiment trials use distinct seeds.
    pub fn new(
        corpus: &'c VideoCorpus,
        set: InterventionSet,
        restrictions: &RestrictionIndex,
        seed: u64,
    ) -> Result<Self, String> {
        set.validate()?;
        let eligible = restrictions.surviving_indices(&set.restricted);
        if eligible.is_empty() {
            return Err(format!(
                "image removal of {:?} leaves no frames",
                set.restricted
            ));
        }
        // n = round(N · f), clamped to the surviving population (the paper
        // hits the same clamp: DETRAC person-removal leaves < 50% of
        // frames, so f = 0.5 is infeasible there and §5.2.2 drops to 0.1).
        let n = ((corpus.len() as f64 * set.sample_fraction).round() as usize)
            .max(1)
            .min(eligible.len());
        let sampler = PrefixSampler::new(eligible.len(), seed);
        Ok(DegradedView {
            corpus,
            set,
            eligible,
            sampler,
            n,
        })
    }

    /// The intervention set in force.
    pub fn intervention(&self) -> &InterventionSet {
        &self.set
    }

    /// Sampled frame count `n`.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the view is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Total population size `N` the estimators bound against.
    pub fn population(&self) -> usize {
        self.corpus.len()
    }

    /// Eligible (post-removal) population size.
    pub fn eligible_len(&self) -> usize {
        self.eligible.len()
    }

    /// The effective processing resolution.
    pub fn resolution(&self) -> Resolution {
        self.set
            .resolution
            .unwrap_or(self.corpus.native_resolution)
    }

    /// Corpus indices of the sampled frames, in sample order.
    pub fn sampled_indices(&self) -> Vec<usize> {
        self.sampler
            .prefix(self.n)
            .iter()
            .map(|&pos| self.eligible[pos])
            .collect()
    }

    /// The sample size a *different* fraction would select over this view's
    /// eligible population — the same `round(N·f).max(1)` clamp applied at
    /// construction. Because samples are nested prefixes of one seeded
    /// permutation, the first `sample_size_for_fraction(f)` entries of this
    /// view's sample order are exactly the sample a view built at fraction
    /// `f` would process; the §3.3.2 sweep uses this to reuse prefix state
    /// across ascending fractions.
    pub fn sample_size_for_fraction(&self, fraction: f64) -> Result<usize, String> {
        if !(fraction > 0.0 && fraction <= 1.0) {
            return Err(format!("sample fraction {fraction} must be in (0, 1]"));
        }
        Ok(((self.corpus.len() as f64 * fraction).round() as usize)
            .max(1)
            .min(self.eligible.len()))
    }

    /// Whether frame materialization rewrites object attributes (blur,
    /// noise, compression). When false, frames are borrowed verbatim and
    /// model-output caching by frame id is sound.
    pub fn rewrites_frames(&self) -> bool {
        !self.set.blurred.is_empty() || self.set.noise > 0.0 || self.set.quality.is_some()
    }

    /// Materializes the sampled frame at sample position `i`, applying
    /// blur/noise/compression rewrites when engaged.
    pub fn frame(&self, i: usize) -> Option<Cow<'c, Frame>> {
        let pos = *self.sampler.prefix(self.n).get(i)?;
        let frame = self.corpus.frame(self.eligible[pos])?;
        if !self.rewrites_frames() {
            return Some(Cow::Borrowed(frame));
        }
        let mut owned = frame.clone();
        for obj in &mut owned.objects {
            let mut c = obj.contrast;
            if self.set.blurred.contains(&obj.class) {
                // In-place region blur: the object melts into the
                // background — undetectable and unrecognizable, while the
                // rest of the frame is untouched.
                c = 0.0;
            }
            if let Some(q) = self.set.quality {
                c = quantize_contrast(c, q);
            }
            // Additive noise drowns contrast proportionally.
            c *= 1.0 - 0.5 * self.set.noise as f32;
            obj.contrast = c.max(0.0);
        }
        Some(Cow::Owned(owned))
    }

    /// Runs the detector over the sampled frames at the view's resolution,
    /// returning per-frame class counts `x_1 … x_n` (the estimator input).
    pub fn outputs(&self, detector: &dyn Detector, class: ObjectClass) -> Vec<f64> {
        let res = self.resolution();
        (0..self.n)
            .filter_map(|i| self.frame(i))
            .map(|f| detector.count(&f, res, class))
            .collect()
    }

    /// As [`outputs`](Self::outputs) but through an [`OutputCache`] so
    /// repeated profile-generation passes reuse model invocations. Only
    /// sound when noise/compression are off (the cache keys on frame id
    /// and resolution alone).
    pub fn outputs_cached(&self, cache: &OutputCache<'_>, class: ObjectClass) -> Vec<f64> {
        self.outputs_cached_range(cache, class, 0..self.n)
    }

    /// Cached outputs for the half-open sample-position range
    /// `range.start..range.end` only (positions beyond this view's sample
    /// size yield nothing). This is the incremental-sweep entry point: a
    /// kernel that has already ingested positions `0..a` asks for `a..b`
    /// when the fraction rises, paying `O(Δn)` instead of `O(n)` — and the
    /// values are exactly the suffix [`outputs_cached`](Self::outputs_cached)
    /// would produce, in the same order.
    pub fn outputs_cached_range(
        &self,
        cache: &OutputCache<'_>,
        class: ObjectClass,
        range: std::ops::Range<usize>,
    ) -> Vec<f64> {
        debug_assert!(
            !self.rewrites_frames(),
            "cached outputs with contrast rewrites would alias clean frames"
        );
        let res = self.resolution();
        let end = range.end.min(self.n);
        let start = range.start.min(end);
        // `filter_map` hides the exact length from `collect`'s size hint;
        // reserve it up front so each ladder rung allocates once.
        let mut values = Vec::with_capacity(end - start);
        values.extend(
            self.sampler.prefix(self.n)[start..end]
                .iter()
                .filter_map(|&pos| self.corpus.frame(self.eligible[pos]))
                .map(|f| cache.count(f, res, class)),
        );
        values
    }

    /// Fault-tolerant twin of [`outputs_cached`](Self::outputs_cached):
    /// frames whose model calls fail permanently are dropped and counted
    /// instead of panicking the run.
    pub fn try_outputs_cached(&self, cache: &OutputCache<'_>, class: ObjectClass) -> RangeOutputs {
        self.try_outputs_cached_range(cache, class, 0..self.n)
    }

    /// Fault-tolerant twin of
    /// [`outputs_cached_range`](Self::outputs_cached_range). On a cache
    /// without a fault plan this returns exactly the infallible values
    /// with `lost == 0`; under a plan, permanently failed calls are
    /// dropped into `lost` while survivors keep their sample order.
    pub fn try_outputs_cached_range(
        &self,
        cache: &OutputCache<'_>,
        class: ObjectClass,
        range: std::ops::Range<usize>,
    ) -> RangeOutputs {
        let mut out = RangeOutputs::default();
        self.try_outputs_cached_range_into(cache, class, range, &mut out);
        out
    }

    /// Scratch-reusing form of
    /// [`try_outputs_cached_range`](Self::try_outputs_cached_range): the
    /// caller owns `out` and hands the same instance back rung after
    /// rung. `out` is cleared and refilled; once its `values` capacity
    /// has grown to the largest rung it is ever asked for, this performs
    /// no heap allocation — the zero-alloc contract the fraction-ladder
    /// hot loop in `smokescreen-core` (and the counting-allocator bench
    /// in `rt::bench`) relies on.
    pub fn try_outputs_cached_range_into(
        &self,
        cache: &OutputCache<'_>,
        class: ObjectClass,
        range: std::ops::Range<usize>,
        out: &mut RangeOutputs,
    ) {
        debug_assert!(
            !self.rewrites_frames(),
            "cached outputs with contrast rewrites would alias clean frames"
        );
        let res = self.resolution();
        let end = range.end.min(self.n);
        let start = range.start.min(end);
        out.values.clear();
        out.lost = 0;
        // One up-front reservation per ladder rung: the slice-ingest path
        // downstream consumes `values` as a single batch, so growth
        // reallocations here would dominate small Δn fetches. A no-op
        // once the reused scratch has warmed past the rung size.
        out.values.reserve(end - start);
        for &pos in &self.sampler.prefix(self.n)[start..end] {
            let Some(frame) = self.corpus.frame(self.eligible[pos]) else {
                continue;
            };
            match cache.try_count(frame, res, class) {
                Ok(v) => out.values.push(v),
                Err(_) => out.lost += 1,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::intervention::InterventionSet;
    use smokescreen_models::{Oracle, SimYoloV4};
    use smokescreen_video::synth::DatasetPreset;
    use std::collections::HashSet;

    fn setup() -> (VideoCorpus, RestrictionIndex) {
        let corpus = DatasetPreset::NightStreet.generate(1).slice(0, 4_000);
        let idx = RestrictionIndex::from_ground_truth(
            &corpus,
            &[ObjectClass::Person, ObjectClass::Face],
        );
        (corpus, idx)
    }

    #[test]
    fn sampling_respects_fraction() {
        let (corpus, idx) = setup();
        let view =
            DegradedView::new(&corpus, InterventionSet::sampling(0.1), &idx, 7).unwrap();
        assert_eq!(view.len(), 400);
        assert_eq!(view.population(), 4_000);
        let s: HashSet<_> = view.sampled_indices().into_iter().collect();
        assert_eq!(s.len(), 400, "samples must be distinct");
    }

    #[test]
    fn nested_fractions_share_prefixes() {
        let (corpus, idx) = setup();
        let small = DegradedView::new(&corpus, InterventionSet::sampling(0.05), &idx, 7)
            .unwrap()
            .sampled_indices();
        let large = DegradedView::new(&corpus, InterventionSet::sampling(0.2), &idx, 7)
            .unwrap()
            .sampled_indices();
        assert_eq!(&large[..small.len()], &small[..]);
    }

    #[test]
    fn removal_excludes_person_frames() {
        let (corpus, idx) = setup();
        let set = InterventionSet::sampling(0.5).with_restricted(&[ObjectClass::Person]);
        let view = DegradedView::new(&corpus, set, &idx, 3).unwrap();
        for i in view.sampled_indices() {
            assert!(!corpus.frame(i).unwrap().contains_class(ObjectClass::Person));
        }
        assert!(view.eligible_len() < corpus.len());
    }

    #[test]
    fn sample_clamped_to_survivors() {
        let corpus = DatasetPreset::Detrac.generate(2).slice(0, 3_000);
        let idx = RestrictionIndex::from_ground_truth(&corpus, &[ObjectClass::Person]);
        // ~65% of DETRAC frames contain a person, so f = 0.9 over-asks.
        let set = InterventionSet::sampling(0.9).with_restricted(&[ObjectClass::Person]);
        let view = DegradedView::new(&corpus, set, &idx, 1).unwrap();
        assert_eq!(view.len(), view.eligible_len());
    }

    #[test]
    fn outputs_use_requested_resolution() {
        let (corpus, idx) = setup();
        let yolo = SimYoloV4::new(9);
        let hi = DegradedView::new(&corpus, InterventionSet::sampling(0.3), &idx, 5).unwrap();
        let lo = DegradedView::new(
            &corpus,
            InterventionSet::sampling(0.3).with_resolution(Resolution::square(96)),
            &idx,
            5,
        )
        .unwrap();
        let hi_sum: f64 = hi.outputs(&yolo, ObjectClass::Car).iter().sum();
        let lo_sum: f64 = lo.outputs(&yolo, ObjectClass::Car).iter().sum();
        assert!(lo_sum < hi_sum, "lo={lo_sum} hi={hi_sum}");
    }

    #[test]
    fn noise_rewrites_contrast() {
        let (corpus, idx) = setup();
        let noisy = DegradedView::new(
            &corpus,
            InterventionSet::sampling(1.0).with_noise(0.8),
            &idx,
            5,
        )
        .unwrap();
        let clean = DegradedView::new(&corpus, InterventionSet::sampling(1.0), &idx, 5).unwrap();
        // Find a sampled frame with objects and compare contrast.
        for i in 0..noisy.len() {
            let nf = noisy.frame(i).unwrap();
            let cf = clean.frame(i).unwrap();
            if let (Some(no), Some(co)) = (nf.objects.first(), cf.objects.first()) {
                assert!(no.contrast < co.contrast);
                return;
            }
        }
        panic!("no frame with objects found");
    }

    #[test]
    fn blur_suppresses_only_the_blurred_class() {
        let (corpus, idx) = setup();
        let yolo = SimYoloV4::new(21);
        let clean = DegradedView::new(&corpus, InterventionSet::sampling(1.0), &idx, 6).unwrap();
        let blurred = DegradedView::new(
            &corpus,
            InterventionSet::sampling(1.0).with_blur(&[ObjectClass::Person]),
            &idx,
            6,
        )
        .unwrap();
        let clean_persons: f64 = clean.outputs(&yolo, ObjectClass::Person).iter().sum();
        let blur_persons: f64 = blurred.outputs(&yolo, ObjectClass::Person).iter().sum();
        let clean_cars: f64 = clean.outputs(&yolo, ObjectClass::Car).iter().sum();
        let blur_cars: f64 = blurred.outputs(&yolo, ObjectClass::Car).iter().sum();
        assert!(
            blur_persons < clean_persons * 0.1,
            "blurred persons must be undetectable: {blur_persons} vs {clean_persons}"
        );
        // Cars are untouched by a person blur (same hash-deterministic
        // decisions on unmodified objects).
        assert_eq!(blur_cars, clean_cars);
    }

    #[test]
    fn cached_outputs_match_direct() {
        let (corpus, idx) = setup();
        let yolo = SimYoloV4::new(4);
        let cache = OutputCache::new(&yolo);
        let view = DegradedView::new(&corpus, InterventionSet::sampling(0.1), &idx, 11).unwrap();
        assert_eq!(
            view.outputs(&yolo, ObjectClass::Car),
            view.outputs_cached(&cache, ObjectClass::Car)
        );
        // Second pass is pure cache hits.
        let before = cache.invocations().model_runs;
        let _ = view.outputs_cached(&cache, ObjectClass::Car);
        assert_eq!(cache.invocations().model_runs, before);
    }

    #[test]
    fn ranged_outputs_concatenate_to_full_scan() {
        let (corpus, idx) = setup();
        let yolo = SimYoloV4::new(4);
        let cache = OutputCache::new(&yolo);
        let view = DegradedView::new(&corpus, InterventionSet::sampling(0.2), &idx, 11).unwrap();
        let full = view.outputs_cached(&cache, ObjectClass::Car);
        assert_eq!(view.outputs_cached_range(&cache, ObjectClass::Car, 0..view.len()), full);
        // Arbitrary chunking reassembles the same sequence in order.
        let mut chunked = Vec::new();
        for start in (0..view.len()).step_by(97) {
            let end = (start + 97).min(view.len());
            chunked.extend(view.outputs_cached_range(&cache, ObjectClass::Car, start..end));
        }
        assert_eq!(chunked, full);
        // Out-of-bounds ranges clamp instead of panicking.
        assert!(view
            .outputs_cached_range(&cache, ObjectClass::Car, view.len()..view.len() + 50)
            .is_empty());
    }

    #[test]
    fn try_outputs_drop_and_count_failed_calls() {
        use smokescreen_models::RetryPolicy;
        use smokescreen_rt::fault::FaultPlan;

        let (corpus, idx) = setup();
        let yolo = SimYoloV4::new(4);
        let view = DegradedView::new(&corpus, InterventionSet::sampling(0.2), &idx, 11).unwrap();

        // Plan-less fallible path is byte-identical to the infallible one.
        let clean_cache = OutputCache::new(&yolo);
        let clean = view.try_outputs_cached(&clean_cache, ObjectClass::Car);
        assert_eq!(clean.lost, 0);
        assert_eq!(clean.values, view.outputs_cached(&clean_cache, ObjectClass::Car));

        // Under a timeout-heavy plan, failures are dropped and counted and
        // the survivors are the clean subsequence (payloads never corrupt).
        let plan = FaultPlan::with_rates(17, 0.3, 0.0, 0.0, 0.0);
        let cache = OutputCache::with_faults(&yolo, plan, RetryPolicy::default());
        let chaotic = view.try_outputs_cached(&cache, ObjectClass::Car);
        assert!(chaotic.lost > 0, "a 30% timeout plan must lose frames");
        assert_eq!(chaotic.lost + chaotic.values.len(), view.len());
        let mut remaining: &[f64] = &clean.values;
        for v in &chaotic.values {
            let at = remaining
                .iter()
                .position(|c| c == v)
                .expect("survivor values must come from the clean sequence in order");
            remaining = &remaining[at + 1..];
        }

        // Replays are exact, and chunked fetches agree with the full scan.
        let replay = OutputCache::with_faults(&yolo, plan, RetryPolicy::default());
        assert_eq!(view.try_outputs_cached(&replay, ObjectClass::Car), chaotic);
        let mut chunked = RangeOutputs::default();
        for start in (0..view.len()).step_by(61) {
            let end = (start + 61).min(view.len());
            let part = view.try_outputs_cached_range(&replay, ObjectClass::Car, start..end);
            chunked.values.extend(part.values);
            chunked.lost += part.lost;
        }
        assert_eq!(chunked, chaotic);
    }

    #[test]
    fn sample_size_for_fraction_matches_constructed_views() {
        let (corpus, idx) = setup();
        let base =
            DegradedView::new(&corpus, InterventionSet::sampling(1.0), &idx, 7).unwrap();
        for f in [0.001, 0.05, 0.1, 0.25, 0.5, 0.9, 1.0] {
            let view =
                DegradedView::new(&corpus, InterventionSet::sampling(f), &idx, 7).unwrap();
            assert_eq!(base.sample_size_for_fraction(f).unwrap(), view.len(), "f={f}");
        }
        assert!(base.sample_size_for_fraction(0.0).is_err());
        assert!(base.sample_size_for_fraction(1.5).is_err());
    }

    #[test]
    fn oracle_full_view_equals_ground_truth() {
        let (corpus, idx) = setup();
        let view = DegradedView::new(&corpus, InterventionSet::none(), &idx, 2).unwrap();
        let mut outs = view.outputs(&Oracle, ObjectClass::Car);
        outs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut gt = corpus.ground_truth_counts(ObjectClass::Car);
        gt.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(outs, gt);
    }

    #[test]
    fn invalid_set_rejected() {
        let (corpus, idx) = setup();
        assert!(DegradedView::new(&corpus, InterventionSet::sampling(0.0), &idx, 1).is_err());
    }
}
