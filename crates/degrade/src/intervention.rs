//! Intervention sets: the paper's `(f, p, c)` knobs plus extensions.

use smokescreen_rt::json::{FromJson, Json, ToJson};
use smokescreen_video::codec::Quality;
use smokescreen_video::{ObjectClass, Resolution};

/// Random vs. non-random intervention classification (Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InterventionKind {
    /// The model-output distribution on processed frames is unchanged;
    /// Algorithms 1–2 apply directly.
    Random,
    /// The distribution may shift; a correction set (Algorithm 3) is
    /// required for a valid bound.
    NonRandom,
}

/// A full set of destructive interventions applied together.
#[derive(Debug, Clone, PartialEq)]
pub struct InterventionSet {
    /// `f` — fraction of frames randomly sampled, in `(0, 1]`.
    pub sample_fraction: f64,
    /// `p` — processing resolution; `None` means the native (highest)
    /// resolution, i.e. no resolution intervention.
    pub resolution: Option<Resolution>,
    /// `c` — restricted classes; frames containing any of them are removed
    /// entirely. Empty means no image removal.
    pub restricted: Vec<ObjectClass>,
    /// Classes whose image regions are blurred in place (GDPR-style face
    /// blurring, §1). Unlike image removal, the frame is kept; the blurred
    /// objects become undetectable and unrecognizable. Extension.
    pub blurred: Vec<ObjectClass>,
    /// Additive noise level in `[0, 1]` (0 = none). Extension (§2.1
    /// "noise addition").
    pub noise: f64,
    /// Lossy-compression quality; `None` means uncompressed. Extension
    /// (§2.1 "video compression techniques").
    pub quality: Option<Quality>,
}

impl Default for InterventionSet {
    fn default() -> Self {
        InterventionSet::none()
    }
}

impl InterventionSet {
    /// The identity intervention: full sampling, native resolution, no
    /// removal, no noise, no compression.
    pub fn none() -> Self {
        InterventionSet {
            sample_fraction: 1.0,
            resolution: None,
            restricted: Vec::new(),
            blurred: Vec::new(),
            noise: 0.0,
            quality: None,
        }
    }

    /// Pure frame-sampling intervention (the random case).
    pub fn sampling(fraction: f64) -> Self {
        InterventionSet {
            sample_fraction: fraction,
            ..InterventionSet::none()
        }
    }

    /// Builder: set the resolution knob.
    pub fn with_resolution(mut self, res: Resolution) -> Self {
        self.resolution = Some(res);
        self
    }

    /// Builder: set the restricted classes.
    pub fn with_restricted(mut self, classes: &[ObjectClass]) -> Self {
        self.restricted = classes.to_vec();
        self
    }

    /// Builder: set the sample fraction.
    pub fn with_fraction(mut self, fraction: f64) -> Self {
        self.sample_fraction = fraction;
        self
    }

    /// Builder: set the classes to blur in place.
    pub fn with_blur(mut self, classes: &[ObjectClass]) -> Self {
        self.blurred = classes.to_vec();
        self
    }

    /// Builder: set the noise level.
    pub fn with_noise(mut self, noise: f64) -> Self {
        self.noise = noise.clamp(0.0, 1.0);
        self
    }

    /// Builder: set the compression quality.
    pub fn with_quality(mut self, quality: Quality) -> Self {
        self.quality = Some(quality);
        self
    }

    /// Whether any non-random knob is engaged.
    pub fn kind(&self) -> InterventionKind {
        let non_random = self.resolution.is_some()
            || !self.restricted.is_empty()
            || !self.blurred.is_empty()
            || self.noise > 0.0
            || self.quality.is_some();
        if non_random {
            InterventionKind::NonRandom
        } else {
            InterventionKind::Random
        }
    }

    /// Convenience for `kind() == Random`.
    pub fn is_random_only(&self) -> bool {
        self.kind() == InterventionKind::Random
    }

    /// Whether the set degrades anything at all.
    pub fn is_identity(&self) -> bool {
        self.sample_fraction >= 1.0 && self.is_random_only()
    }

    /// Validates knob ranges.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.sample_fraction > 0.0 && self.sample_fraction <= 1.0) {
            return Err(format!(
                "sample fraction {} must be in (0, 1]",
                self.sample_fraction
            ));
        }
        if !(0.0..=1.0).contains(&self.noise) {
            return Err(format!("noise {} must be in [0, 1]", self.noise));
        }
        if let Some(r) = self.resolution {
            if r.pixels() == 0 {
                return Err("resolution must be non-empty".into());
            }
        }
        Ok(())
    }

    /// Human-readable knob summary, e.g. `f=0.10 p=128x128 c={person}`.
    pub fn describe(&self) -> String {
        let mut parts = vec![format!("f={:.4}", self.sample_fraction)];
        match self.resolution {
            Some(r) => parts.push(format!("p={r}")),
            None => parts.push("p=native".into()),
        }
        if self.restricted.is_empty() {
            parts.push("c={}".into());
        } else {
            let names: Vec<&str> = self.restricted.iter().map(|c| c.name()).collect();
            parts.push(format!("c={{{}}}", names.join(",")));
        }
        if !self.blurred.is_empty() {
            let names: Vec<&str> = self.blurred.iter().map(|c| c.name()).collect();
            parts.push(format!("blur={{{}}}", names.join(",")));
        }
        if self.noise > 0.0 {
            parts.push(format!("noise={:.2}", self.noise));
        }
        if let Some(q) = self.quality {
            parts.push(format!("q={:.2}", q.value()));
        }
        parts.join(" ")
    }
}

impl ToJson for InterventionSet {
    fn to_json(&self) -> Json {
        Json::obj([
            ("sample_fraction", self.sample_fraction.to_json()),
            ("resolution", self.resolution.to_json()),
            ("restricted", self.restricted.to_json()),
            ("blurred", self.blurred.to_json()),
            ("noise", self.noise.to_json()),
            ("quality", self.quality.to_json()),
        ])
    }
}

impl FromJson for InterventionSet {
    fn from_json(value: &Json) -> smokescreen_rt::json::Result<Self> {
        // Stored artifacts only ever contain fractions in [0, 1] and
        // non-negative finite noise; anything else is storage corruption
        // and must be rejected, not carried into view construction.
        let sample_fraction = f64::from_json(value.get("sample_fraction")?)?;
        if !sample_fraction.is_finite() || !(0.0..=1.0).contains(&sample_fraction) {
            return Err(smokescreen_rt::json::JsonError::new(format!(
                "sample_fraction {sample_fraction} is not in [0, 1]"
            )));
        }
        let noise = f64::from_json(value.get("noise")?)?;
        if !noise.is_finite() || noise < 0.0 {
            return Err(smokescreen_rt::json::JsonError::new(format!(
                "noise {noise} is not a non-negative finite value"
            )));
        }
        Ok(InterventionSet {
            sample_fraction,
            resolution: Option::from_json(value.get("resolution")?)?,
            restricted: Vec::from_json(value.get("restricted")?)?,
            blurred: Vec::from_json(value.get("blurred")?)?,
            noise,
            quality: Option::from_json(value.get("quality")?)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_matches_table1() {
        assert_eq!(InterventionSet::sampling(0.1).kind(), InterventionKind::Random);
        assert_eq!(
            InterventionSet::sampling(0.5)
                .with_resolution(Resolution::square(128))
                .kind(),
            InterventionKind::NonRandom
        );
        assert_eq!(
            InterventionSet::sampling(0.5)
                .with_restricted(&[ObjectClass::Person])
                .kind(),
            InterventionKind::NonRandom
        );
        assert_eq!(
            InterventionSet::sampling(0.5).with_noise(0.3).kind(),
            InterventionKind::NonRandom
        );
        assert_eq!(
            InterventionSet::sampling(0.5)
                .with_blur(&[ObjectClass::Face])
                .kind(),
            InterventionKind::NonRandom
        );
        assert_eq!(
            InterventionSet::sampling(0.5)
                .with_quality(Quality::new(0.5))
                .kind(),
            InterventionKind::NonRandom
        );
    }

    #[test]
    fn identity_detection() {
        assert!(InterventionSet::none().is_identity());
        assert!(!InterventionSet::sampling(0.99).is_identity());
        assert!(!InterventionSet::none()
            .with_resolution(Resolution::square(64))
            .is_identity());
    }

    #[test]
    fn validation() {
        assert!(InterventionSet::sampling(0.0).validate().is_err());
        assert!(InterventionSet::sampling(1.5).validate().is_err());
        assert!(InterventionSet::sampling(0.5).validate().is_ok());
        let mut bad = InterventionSet::none();
        bad.noise = 2.0;
        assert!(bad.validate().is_err());
    }

    #[test]
    fn describe_is_stable() {
        let s = InterventionSet::sampling(0.1)
            .with_resolution(Resolution::square(128))
            .with_restricted(&[ObjectClass::Person]);
        assert_eq!(s.describe(), "f=0.1000 p=128x128 c={person}");
        assert_eq!(InterventionSet::none().describe(), "f=1.0000 p=native c={}");
    }
}
