//! Tokenizer for the query language.

use crate::QueryError;

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Keyword or identifier (kept verbatim; keywords are matched
    /// case-insensitively by the parser).
    Word(String),
    /// Numeric literal.
    Number(f64),
    /// A resolution literal like `128x128` (width, height).
    ResolutionLit(u32, u32),
    /// `(`.
    LParen,
    /// `)`.
    RParen,
    /// `,`.
    Comma,
    /// `>=`.
    Ge,
}

/// Tokenizes a query string.
pub fn lex(input: &str) -> Result<Vec<Token>, QueryError> {
    let bytes = input.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\r' | '\n' => i += 1,
            '(' => {
                tokens.push(Token::LParen);
                i += 1;
            }
            ')' => {
                tokens.push(Token::RParen);
                i += 1;
            }
            ',' => {
                tokens.push(Token::Comma);
                i += 1;
            }
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token::Ge);
                    i += 2;
                } else {
                    return Err(QueryError::Lex {
                        at: i,
                        message: "expected '>='".into(),
                    });
                }
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_digit() || bytes[i] == b'.')
                {
                    i += 1;
                }
                // Resolution literal: digits 'x' digits.
                if i < bytes.len()
                    && (bytes[i] == b'x' || bytes[i] == b'X')
                    && bytes.get(i + 1).is_some_and(|b| (*b as char).is_ascii_digit())
                {
                    let w: u32 = input[start..i].parse().map_err(|e| QueryError::Lex {
                        at: start,
                        message: format!("bad width: {e}"),
                    })?;
                    i += 1; // consume 'x'
                    let hstart = i;
                    while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                        i += 1;
                    }
                    let h: u32 = input[hstart..i].parse().map_err(|e| QueryError::Lex {
                        at: hstart,
                        message: format!("bad height: {e}"),
                    })?;
                    tokens.push(Token::ResolutionLit(w, h));
                } else {
                    let n: f64 = input[start..i].parse().map_err(|e| QueryError::Lex {
                        at: start,
                        message: format!("bad number: {e}"),
                    })?;
                    tokens.push(Token::Number(n));
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len() {
                    let c = bytes[i] as char;
                    if c.is_ascii_alphanumeric() || c == '_' || c == '-' {
                        i += 1;
                    } else {
                        break;
                    }
                }
                tokens.push(Token::Word(input[start..i].to_string()));
            }
            other => {
                return Err(QueryError::Lex {
                    at: i,
                    message: format!("unexpected character {other:?}"),
                })
            }
        }
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexes_a_full_query() {
        let t = lex("SELECT AVG(car) FROM detrac SAMPLE 0.1 RESOLUTION 128x128").unwrap();
        assert_eq!(
            t,
            vec![
                Token::Word("SELECT".into()),
                Token::Word("AVG".into()),
                Token::LParen,
                Token::Word("car".into()),
                Token::RParen,
                Token::Word("FROM".into()),
                Token::Word("detrac".into()),
                Token::Word("SAMPLE".into()),
                Token::Number(0.1),
                Token::Word("RESOLUTION".into()),
                Token::ResolutionLit(128, 128),
            ]
        );
    }

    #[test]
    fn lexes_count_predicate() {
        let t = lex("COUNT(car >= 2)").unwrap();
        assert_eq!(
            t,
            vec![
                Token::Word("COUNT".into()),
                Token::LParen,
                Token::Word("car".into()),
                Token::Ge,
                Token::Number(2.0),
                Token::RParen,
            ]
        );
    }

    #[test]
    fn hyphenated_model_names() {
        let t = lex("USING sim-mask-rcnn").unwrap();
        assert_eq!(
            t,
            vec![Token::Word("USING".into()), Token::Word("sim-mask-rcnn".into())]
        );
    }

    #[test]
    fn rejects_garbage() {
        assert!(lex("SELECT @").is_err());
        assert!(lex("a > b").is_err()); // lone '>'
    }

    #[test]
    fn number_vs_resolution_disambiguation() {
        assert_eq!(lex("608").unwrap(), vec![Token::Number(608.0)]);
        assert_eq!(lex("608x608").unwrap(), vec![Token::ResolutionLit(608, 608)]);
        assert_eq!(lex("0.99").unwrap(), vec![Token::Number(0.99)]);
    }
}
