//! Recursive-descent parser for the query language.
//!
//! Grammar (keywords case-insensitive):
//!
//! ```text
//! query      := SELECT agg FROM word clause*
//! agg        := (AVG|SUM|VAR|MEDIAN|QUANTILE) '(' class ')'
//!             | COUNT '(' class ('>=' number)? ')'
//!             | (MAX|MIN) '(' class ')'
//! clause     := SAMPLE number
//!             | RESOLUTION reslit
//!             | REMOVE class (',' class)*
//!             | BLUR class (',' class)*
//!             | NOISE number
//!             | QUALITY number
//!             | CONFIDENCE number
//!             | QUANTILE number          -- adjusts MAX/MIN's r
//!             | USING word
//! ```

use smokescreen_core::Aggregate;
use smokescreen_video::{ObjectClass, Resolution};

use crate::ast::{AggregateSpec, Query};
use crate::lexer::{lex, Token};
use crate::QueryError;

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), QueryError> {
        match self.next() {
            Some(Token::Word(w)) if w.eq_ignore_ascii_case(kw) => Ok(()),
            other => Err(QueryError::Parse(format!("expected {kw}, found {other:?}"))),
        }
    }

    fn expect_word(&mut self) -> Result<String, QueryError> {
        match self.next() {
            Some(Token::Word(w)) => Ok(w),
            other => Err(QueryError::Parse(format!(
                "expected identifier, found {other:?}"
            ))),
        }
    }

    fn expect_number(&mut self) -> Result<f64, QueryError> {
        match self.next() {
            Some(Token::Number(n)) => Ok(n),
            other => Err(QueryError::Parse(format!("expected number, found {other:?}"))),
        }
    }

    fn expect_token(&mut self, t: Token) -> Result<(), QueryError> {
        match self.next() {
            Some(found) if found == t => Ok(()),
            other => Err(QueryError::Parse(format!("expected {t:?}, found {other:?}"))),
        }
    }

    fn expect_class(&mut self) -> Result<ObjectClass, QueryError> {
        let w = self.expect_word()?;
        w.parse::<ObjectClass>().map_err(QueryError::Parse)
    }

}

/// Parses a query string.
pub fn parse_query(input: &str) -> Result<Query, QueryError> {
    let mut p = Parser {
        tokens: lex(input)?,
        pos: 0,
    };

    p.expect_keyword("SELECT")?;
    let agg_word = p.expect_word()?;
    p.expect_token(Token::LParen)?;
    let class = p.expect_class()?;

    let mut aggregate = match agg_word.to_ascii_uppercase().as_str() {
        "AVG" => Aggregate::Avg,
        "SUM" => Aggregate::Sum,
        "VAR" => Aggregate::Var,
        "MAX" => Aggregate::Max { r: 0.99 },
        "MIN" => Aggregate::Min { r: 0.01 },
        "MEDIAN" => Aggregate::Quantile { r: 0.5 },
        "QUANTILE" | "PERCENTILE" => Aggregate::Quantile { r: 0.5 },
        "COUNT" => {
            let at_least = if p.peek() == Some(&Token::Ge) {
                p.next();
                p.expect_number()?
            } else {
                1.0
            };
            Aggregate::Count { at_least }
        }
        other => {
            return Err(QueryError::Parse(format!(
                "unknown aggregate function {other}"
            )))
        }
    };
    p.expect_token(Token::RParen)?;

    p.expect_keyword("FROM")?;
    let from = p.expect_word()?;

    let mut query = Query {
        select: AggregateSpec { aggregate, class },
        from,
        sample: 1.0,
        resolution: None,
        remove: Vec::new(),
        blur: Vec::new(),
        noise: 0.0,
        quality: None,
        confidence: 0.95,
        model: "sim-yolov4".to_string(),
    };

    while let Some(tok) = p.peek() {
        let Token::Word(kw) = tok else {
            return Err(QueryError::Parse(format!("unexpected token {tok:?}")));
        };
        let kw = kw.to_ascii_uppercase();
        p.next();
        match kw.as_str() {
            "SAMPLE" => {
                query.sample = p.expect_number()?;
                if !(query.sample > 0.0 && query.sample <= 1.0) {
                    return Err(QueryError::Parse(format!(
                        "SAMPLE {} out of (0, 1]",
                        query.sample
                    )));
                }
            }
            "RESOLUTION" => match p.next() {
                Some(Token::ResolutionLit(w, h)) => {
                    query.resolution = Some(Resolution::new(w, h));
                }
                Some(Token::Number(n)) if n > 0.0 && n.fract() == 0.0 => {
                    query.resolution = Some(Resolution::square(n as u32));
                }
                other => {
                    return Err(QueryError::Parse(format!(
                        "expected WxH after RESOLUTION, found {other:?}"
                    )))
                }
            },
            "REMOVE" => {
                query.remove.push(p.expect_class()?);
                while p.peek() == Some(&Token::Comma) {
                    p.next();
                    query.remove.push(p.expect_class()?);
                }
            }
            "BLUR" => {
                query.blur.push(p.expect_class()?);
                while p.peek() == Some(&Token::Comma) {
                    p.next();
                    query.blur.push(p.expect_class()?);
                }
            }
            "NOISE" => query.noise = p.expect_number()?,
            "QUALITY" => query.quality = Some(p.expect_number()?),
            "CONFIDENCE" => {
                query.confidence = p.expect_number()?;
                if !(query.confidence > 0.0 && query.confidence < 1.0) {
                    return Err(QueryError::Parse(format!(
                        "CONFIDENCE {} out of (0, 1)",
                        query.confidence
                    )));
                }
            }
            "QUANTILE" => {
                let r = p.expect_number()?;
                aggregate = match aggregate {
                    Aggregate::Max { .. } => Aggregate::Max { r },
                    Aggregate::Min { .. } => Aggregate::Min { r },
                    Aggregate::Quantile { .. } => Aggregate::Quantile { r },
                    other => {
                        return Err(QueryError::Parse(format!(
                            "QUANTILE only applies to MAX/MIN/QUANTILE/MEDIAN, not {}",
                            other.name()
                        )))
                    }
                };
                query.select.aggregate = aggregate;
            }
            "USING" => query.model = p.expect_word()?,
            other => {
                return Err(QueryError::Parse(format!("unknown clause {other}")));
            }
        }
    }

    Ok(query)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimal_query_defaults() {
        let q = parse_query("SELECT AVG(car) FROM nightstreet").unwrap();
        assert_eq!(q.select.aggregate, Aggregate::Avg);
        assert_eq!(q.select.class, ObjectClass::Car);
        assert_eq!(q.from, "nightstreet");
        assert_eq!(q.sample, 1.0);
        assert_eq!(q.confidence, 0.95);
        assert_eq!(q.model, "sim-yolov4");
    }

    #[test]
    fn full_query() {
        let q = parse_query(
            "select count(car >= 3) from detrac sample 0.25 resolution 320x320 \
             remove person, face noise 0.1 quality 0.9 confidence 0.99 using sim-mask-rcnn",
        )
        .unwrap();
        assert_eq!(q.select.aggregate, Aggregate::Count { at_least: 3.0 });
        assert_eq!(q.sample, 0.25);
        assert_eq!(q.resolution, Some(Resolution::square(320)));
        assert_eq!(q.remove, vec![ObjectClass::Person, ObjectClass::Face]);
        assert_eq!(q.quality, Some(0.9));
        assert!((q.delta() - 0.01).abs() < 1e-12);
        assert_eq!(q.model, "sim-mask-rcnn");
    }

    #[test]
    fn median_and_percentile() {
        let q = parse_query("SELECT MEDIAN(car) FROM v").unwrap();
        assert_eq!(q.select.aggregate, Aggregate::Quantile { r: 0.5 });
        let q = parse_query("SELECT QUANTILE(car) FROM v QUANTILE 0.9").unwrap();
        assert_eq!(q.select.aggregate, Aggregate::Quantile { r: 0.9 });
    }

    #[test]
    fn blur_clause() {
        let q = parse_query("SELECT AVG(car) FROM v BLUR face, person").unwrap();
        assert_eq!(q.blur, vec![ObjectClass::Face, ObjectClass::Person]);
        assert!(!q.intervention_set().is_random_only());
    }

    #[test]
    fn max_with_quantile() {
        let q = parse_query("SELECT MAX(car) FROM v QUANTILE 0.995").unwrap();
        assert_eq!(q.select.aggregate, Aggregate::Max { r: 0.995 });
        let q = parse_query("SELECT MIN(car) FROM v QUANTILE 0.02").unwrap();
        assert_eq!(q.select.aggregate, Aggregate::Min { r: 0.02 });
    }

    #[test]
    fn square_resolution_shorthand() {
        let q = parse_query("SELECT AVG(car) FROM v RESOLUTION 128").unwrap();
        assert_eq!(q.resolution, Some(Resolution::square(128)));
    }

    #[test]
    fn rejects_malformed_queries() {
        assert!(parse_query("AVG(car) FROM v").is_err()); // missing SELECT
        assert!(parse_query("SELECT MODE(car) FROM v").is_err());
        assert!(parse_query("SELECT AVG(drone) FROM v").is_err());
        assert!(parse_query("SELECT AVG(car) FROM v SAMPLE 2.0").is_err());
        assert!(parse_query("SELECT AVG(car) FROM v CONFIDENCE 1.0").is_err());
        assert!(parse_query("SELECT AVG(car) FROM v QUANTILE 0.9").is_err()); // not MAX/MIN
        assert!(parse_query("SELECT AVG(car) FROM v FROBNICATE 3").is_err());
    }

    #[test]
    fn count_default_predicate() {
        let q = parse_query("SELECT COUNT(car) FROM v").unwrap();
        assert_eq!(q.select.aggregate, Aggregate::Count { at_least: 1.0 });
    }
}
