//! Query AST.

use smokescreen_core::Aggregate;
use smokescreen_degrade::InterventionSet;
use smokescreen_video::codec::Quality;
use smokescreen_video::{ObjectClass, Resolution};

/// The aggregate clause of a query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AggregateSpec {
    /// Which aggregate function.
    pub aggregate: Aggregate,
    /// The class whose per-frame count the UDF produces.
    pub class: ObjectClass,
}

/// A parsed query.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// Aggregate + class.
    pub select: AggregateSpec,
    /// Source corpus name.
    pub from: String,
    /// `SAMPLE f` (default 1.0).
    pub sample: f64,
    /// `RESOLUTION WxH` (default native).
    pub resolution: Option<Resolution>,
    /// `REMOVE class, ...` (default none).
    pub remove: Vec<ObjectClass>,
    /// `BLUR class, ...` (default none) — in-place region blurring.
    pub blur: Vec<ObjectClass>,
    /// `NOISE x` (default 0).
    pub noise: f64,
    /// `QUALITY q` (default uncompressed).
    pub quality: Option<f64>,
    /// `CONFIDENCE 1-δ` (default 0.95).
    pub confidence: f64,
    /// `USING model` (default `sim-yolov4`).
    pub model: String,
}

impl Query {
    /// The `δ` the estimators consume.
    pub fn delta(&self) -> f64 {
        1.0 - self.confidence
    }

    /// The intervention set the query implies.
    pub fn intervention_set(&self) -> InterventionSet {
        let mut set = InterventionSet::sampling(self.sample).with_restricted(&self.remove);
        set.blurred = self.blur.clone();
        set.resolution = self.resolution;
        set.noise = self.noise;
        set.quality = self.quality.map(Quality::new);
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intervention_set_reflects_clauses() {
        let q = Query {
            select: AggregateSpec {
                aggregate: Aggregate::Avg,
                class: ObjectClass::Car,
            },
            from: "detrac".into(),
            sample: 0.2,
            resolution: Some(Resolution::square(128)),
            remove: vec![ObjectClass::Person],
            blur: vec![ObjectClass::Face],
            noise: 0.1,
            quality: Some(0.8),
            confidence: 0.95,
            model: "sim-yolov4".into(),
        };
        let set = q.intervention_set();
        assert_eq!(set.sample_fraction, 0.2);
        assert_eq!(set.resolution, Some(Resolution::square(128)));
        assert_eq!(set.restricted, vec![ObjectClass::Person]);
        assert_eq!(set.blurred, vec![ObjectClass::Face]);
        assert!(set.noise > 0.0);
        assert!(set.quality.is_some());
        assert!((q.delta() - 0.05).abs() < 1e-12);
    }
}
