//! Query execution engine.
//!
//! Holds registered corpora (with precomputed restriction priors) and
//! resolves model names through the zoo. Execution compiles the parsed
//! query into a core `Workload` + `InterventionSet` and delegates to
//! `result_error_est`, so every query answer arrives with its `1 − δ`
//! error bound attached — the contract the paper's system offers.

use std::collections::HashMap;
use std::fmt;

use smokescreen_core::{result_error_est, Estimate, Workload};
use smokescreen_degrade::RestrictionIndex;
use smokescreen_models::zoo;
use smokescreen_video::{ObjectClass, VideoCorpus};

use crate::ast::Query;
use crate::parser::parse_query;
use crate::QueryError;

/// The result of executing a query.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryOutput {
    /// Approximate answer `Y_approx`.
    pub y_approx: f64,
    /// Error upper bound `err_b` at the query's confidence.
    pub err_b: f64,
    /// Confidence level `1 − δ`.
    pub confidence: f64,
    /// Frames processed.
    pub n: usize,
    /// Aggregate name for display.
    pub aggregate: &'static str,
    /// Whether the executed interventions were non-random (bound validity
    /// then requires a correction set — surfaced as a caveat).
    pub non_random_warning: bool,
}

impl fmt::Display for QueryOutput {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ≈ {:.4} (±{:.2}% rel. bound at {:.0}% confidence, n={})",
            self.aggregate,
            self.y_approx,
            self.err_b * 100.0,
            self.confidence * 100.0,
            self.n
        )?;
        if self.non_random_warning {
            write!(
                f,
                " [non-random interventions: bound requires a correction set]"
            )?;
        }
        Ok(())
    }
}

/// A registry of corpora plus execution context.
pub struct QueryEngine {
    corpora: HashMap<String, (VideoCorpus, RestrictionIndex)>,
    model_seed: u64,
    sampling_seed: u64,
}

impl QueryEngine {
    /// Creates an empty engine. `model_seed` parameterizes simulated model
    /// weights; `sampling_seed` fixes sampling permutations.
    pub fn new(model_seed: u64, sampling_seed: u64) -> Self {
        QueryEngine {
            corpora: HashMap::new(),
            model_seed,
            sampling_seed,
        }
    }

    /// Registers a corpus under a name, precomputing its restriction prior
    /// from ground truth.
    pub fn register(&mut self, name: impl Into<String>, corpus: VideoCorpus) {
        let restrictions = RestrictionIndex::from_ground_truth(
            &corpus,
            &[ObjectClass::Person, ObjectClass::Face],
        );
        self.corpora.insert(name.into(), (corpus, restrictions));
    }

    /// Registered corpus names.
    pub fn corpora(&self) -> Vec<&str> {
        self.corpora.keys().map(String::as_str).collect()
    }

    /// Parses and executes a query string.
    pub fn run(&self, sql: &str) -> Result<QueryOutput, QueryError> {
        let query = parse_query(sql)?;
        self.execute(&query)
    }

    /// Executes a parsed query.
    pub fn execute(&self, query: &Query) -> Result<QueryOutput, QueryError> {
        let (corpus, restrictions) = self
            .corpora
            .get(&query.from)
            .ok_or_else(|| QueryError::UnknownCorpus(query.from.clone()))?;
        let detector = zoo::by_name(&query.model, self.model_seed)
            .ok_or_else(|| QueryError::UnknownModel(query.model.clone()))?;

        let workload = Workload {
            corpus,
            detector: detector.as_ref(),
            class: query.select.class,
            aggregate: query.select.aggregate,
            delta: query.delta(),
        };
        let set = query.intervention_set();
        let estimate: Estimate =
            result_error_est(&workload, restrictions, &set, self.sampling_seed, None)
                .map_err(|e| QueryError::Execution(e.to_string()))?;

        Ok(QueryOutput {
            y_approx: estimate.y_approx(),
            err_b: estimate.err_b(),
            confidence: query.confidence,
            n: estimate.n(),
            aggregate: query.select.aggregate.name(),
            non_random_warning: !set.is_random_only(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smokescreen_video::synth::DatasetPreset;

    fn engine() -> QueryEngine {
        let mut e = QueryEngine::new(1, 7);
        e.register("detrac", DatasetPreset::Detrac.generate(60).slice(0, 3_000));
        e.register(
            "nightstreet",
            DatasetPreset::NightStreet.generate(60).slice(0, 3_000),
        );
        e
    }

    #[test]
    fn runs_an_avg_query_end_to_end() {
        let e = engine();
        let out = e.run("SELECT AVG(car) FROM detrac SAMPLE 0.1").unwrap();
        assert!(out.y_approx > 0.5, "detrac is busy: {}", out.y_approx);
        assert!(out.err_b.is_finite());
        assert!(!out.non_random_warning);
        assert_eq!(out.aggregate, "AVG");
        assert_eq!(out.n, 300);
    }

    #[test]
    fn non_random_queries_carry_a_warning() {
        let e = engine();
        let out = e
            .run("SELECT AVG(car) FROM detrac SAMPLE 0.5 RESOLUTION 320x320")
            .unwrap();
        assert!(out.non_random_warning);
        let display = out.to_string();
        assert!(display.contains("correction set"), "{display}");
    }

    #[test]
    fn unknown_names_error_cleanly() {
        let e = engine();
        assert!(matches!(
            e.run("SELECT AVG(car) FROM nowhere"),
            Err(QueryError::UnknownCorpus(_))
        ));
        assert!(matches!(
            e.run("SELECT AVG(car) FROM detrac USING resnet50"),
            Err(QueryError::UnknownModel(_))
        ));
    }

    #[test]
    fn count_and_max_aggregates_execute() {
        let e = engine();
        let count = e
            .run("SELECT COUNT(car >= 2) FROM detrac SAMPLE 0.2")
            .unwrap();
        assert!(count.y_approx > 0.0);
        let max = e
            .run("SELECT MAX(car) FROM detrac SAMPLE 0.2 QUANTILE 0.99")
            .unwrap();
        assert!(max.y_approx >= count.y_approx / 3_000.0);
        assert_eq!(max.aggregate, "MAX");
    }

    #[test]
    fn execution_is_deterministic() {
        let e = engine();
        let a = e.run("SELECT AVG(car) FROM detrac SAMPLE 0.1").unwrap();
        let b = e.run("SELECT AVG(car) FROM detrac SAMPLE 0.1").unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn oracle_full_scan_matches_ground_truth() {
        let e = engine();
        let out = e.run("SELECT AVG(car) FROM detrac USING oracle").unwrap();
        let truth = DatasetPreset::Detrac
            .generate(60)
            .slice(0, 3_000)
            .stats()
            .mean_cars_per_frame;
        assert!(
            (out.y_approx - truth).abs() / truth < 0.01,
            "approx={} truth={truth}",
            out.y_approx
        );
    }
}
