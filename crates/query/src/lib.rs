//! Video query processor.
//!
//! The paper's system receives *analytical queries* whose UDF is a neural
//! network. This crate gives that component a concrete surface: a small
//! declarative language over registered corpora, compiled to the core
//! crate's workloads and executed under destructive interventions.
//!
//! ```text
//! SELECT AVG(car) FROM detrac
//!     SAMPLE 0.1
//!     RESOLUTION 128x128
//!     REMOVE person, face
//!     CONFIDENCE 0.95
//!     USING sim-yolov4
//! ```
//!
//! * [`lexer`] / [`parser`] / [`ast`] — the language front-end.
//! * [`engine`] — corpus registry + execution via `result_error_est`.

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod ast;
pub mod engine;
pub mod lexer;
pub mod parser;

pub use ast::{AggregateSpec, Query};
pub use engine::{QueryEngine, QueryOutput};
pub use parser::parse_query;

/// Errors from parsing or executing a query.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryError {
    /// Lexical error at a byte offset.
    Lex {
        /// Offset into the query string.
        at: usize,
        /// What went wrong.
        message: String,
    },
    /// Parse error.
    Parse(String),
    /// The query references an unregistered corpus.
    UnknownCorpus(String),
    /// The query names an unknown model.
    UnknownModel(String),
    /// Execution failed in the core system.
    Execution(String),
}

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryError::Lex { at, message } => write!(f, "lex error at byte {at}: {message}"),
            QueryError::Parse(m) => write!(f, "parse error: {m}"),
            QueryError::UnknownCorpus(name) => write!(f, "unknown corpus: {name}"),
            QueryError::UnknownModel(name) => write!(f, "unknown model: {name}"),
            QueryError::Execution(m) => write!(f, "execution error: {m}"),
        }
    }
}

impl std::error::Error for QueryError {}
