//! Video corpora: the "original video" `D` of the paper.

use crate::frame::Frame;
use crate::object::{ObjectClass, Resolution};

/// An in-memory video corpus.
///
/// Frames carry ground-truth object annotations; the *pixels* are implied
/// (and can be materialized on demand by [`crate::raster`]). This matches
/// the paper's setting where decoded frames sit on disk and are loaded one
/// at a time — here loading is free, and the cost model lives in the
/// camera/bench crates.
#[derive(Debug, Clone)]
pub struct VideoCorpus {
    /// Human-readable corpus name (e.g. `"night-street"`).
    pub name: String,
    /// Frames per second of the (possibly subsampled) corpus.
    pub fps: f64,
    /// Native capture resolution — the paper's "highest resolution"
    /// (640×640 for Mask R-CNN runs, 608×608 for YOLOv4 runs).
    pub native_resolution: Resolution,
    frames: Vec<Frame>,
}

impl VideoCorpus {
    /// Builds a corpus from frames. Frame ids are rewritten to be
    /// contiguous 0-based indices.
    pub fn new(
        name: impl Into<String>,
        fps: f64,
        native_resolution: Resolution,
        mut frames: Vec<Frame>,
    ) -> Self {
        for (i, f) in frames.iter_mut().enumerate() {
            f.id = i as u64;
        }
        VideoCorpus {
            name: name.into(),
            fps,
            native_resolution,
            frames,
        }
    }

    /// Number of frames `N`.
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// Whether the corpus is empty.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// All frames in order.
    pub fn frames(&self) -> &[Frame] {
        &self.frames
    }

    /// A single frame by index.
    pub fn frame(&self, idx: usize) -> Option<&Frame> {
        self.frames.get(idx)
    }

    /// Restrict the corpus to a contiguous sub-range (used to carve
    /// sequence-level sub-videos like the paper's MVI_40771 / MVI_40775).
    pub fn slice(&self, start: usize, end: usize) -> VideoCorpus {
        let end = end.min(self.frames.len());
        let start = start.min(end);
        VideoCorpus::new(
            format!("{}[{start}..{end}]", self.name),
            self.fps,
            self.native_resolution,
            self.frames[start..end].to_vec(),
        )
    }

    /// Restrict to one synthetic sequence.
    pub fn sequence(&self, seq: u32) -> VideoCorpus {
        VideoCorpus::new(
            format!("{}#{seq}", self.name),
            self.fps,
            self.native_resolution,
            self.frames
                .iter()
                .filter(|f| f.sequence == seq)
                .cloned()
                .collect(),
        )
    }

    /// Summary statistics used for calibration and reporting.
    pub fn stats(&self) -> CorpusStats {
        let n = self.frames.len().max(1) as f64;
        let mut total_cars = 0usize;
        let mut person_frames = 0usize;
        let mut face_frames = 0usize;
        let mut max_cars = 0usize;
        for f in &self.frames {
            let c = f.count_class(ObjectClass::Car);
            total_cars += c;
            max_cars = max_cars.max(c);
            if f.contains_class(ObjectClass::Person) {
                person_frames += 1;
            }
            if f.contains_class(ObjectClass::Face) {
                face_frames += 1;
            }
        }
        CorpusStats {
            frames: self.frames.len(),
            mean_cars_per_frame: total_cars as f64 / n,
            max_cars_per_frame: max_cars,
            person_frame_fraction: person_frames as f64 / n,
            face_frame_fraction: face_frames as f64 / n,
        }
    }

    /// Per-frame ground-truth counts of a class — the `X_1 … X_N` of the
    /// paper when the model is the oracle. Experiment harnesses use this;
    /// production flows go through a detector.
    pub fn ground_truth_counts(&self, class: ObjectClass) -> Vec<f64> {
        self.frames
            .iter()
            .map(|f| f.count_class(class) as f64)
            .collect()
    }
}

/// Calibration summary of a corpus.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CorpusStats {
    /// Frame count `N`.
    pub frames: usize,
    /// Mean cars per frame (the paper's AVG ground truth).
    pub mean_cars_per_frame: f64,
    /// Maximum cars observed in one frame.
    pub max_cars_per_frame: usize,
    /// Fraction of frames containing at least one person.
    pub person_frame_fraction: f64,
    /// Fraction of frames containing at least one face.
    pub face_frame_fraction: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::{BBox, Object};

    fn frame(seq: u32, cars: usize, with_person: bool) -> Frame {
        let mut objects = Vec::new();
        for i in 0..cars {
            objects.push(Object {
                id: i as u64,
                class: ObjectClass::Car,
                bbox: BBox::new(0.1, 0.1, 0.1, 0.1),
                contrast: 0.5,
                occlusion: 0.0,
            });
        }
        if with_person {
            objects.push(Object {
                id: 99,
                class: ObjectClass::Person,
                bbox: BBox::new(0.5, 0.5, 0.05, 0.15),
                contrast: 0.5,
                occlusion: 0.0,
            });
        }
        Frame {
            id: 0,
            ts_secs: 0.0,
            sequence: seq,
            objects,
        }
    }

    #[test]
    fn ids_are_rewritten_contiguously() {
        let c = VideoCorpus::new(
            "t",
            30.0,
            Resolution::square(608),
            vec![frame(0, 1, false), frame(0, 2, true)],
        );
        assert_eq!(c.frame(0).unwrap().id, 0);
        assert_eq!(c.frame(1).unwrap().id, 1);
    }

    #[test]
    fn stats_are_correct() {
        let c = VideoCorpus::new(
            "t",
            30.0,
            Resolution::square(608),
            vec![frame(0, 2, true), frame(0, 0, false), frame(0, 4, true), frame(0, 2, false)],
        );
        let s = c.stats();
        assert_eq!(s.frames, 4);
        assert!((s.mean_cars_per_frame - 2.0).abs() < 1e-12);
        assert_eq!(s.max_cars_per_frame, 4);
        assert!((s.person_frame_fraction - 0.5).abs() < 1e-12);
        assert_eq!(s.face_frame_fraction, 0.0);
    }

    #[test]
    fn slicing_and_sequences() {
        let c = VideoCorpus::new(
            "t",
            25.0,
            Resolution::square(608),
            vec![frame(0, 1, false), frame(1, 2, false), frame(1, 3, false)],
        );
        assert_eq!(c.slice(1, 3).len(), 2);
        assert_eq!(c.slice(5, 9).len(), 0);
        let seq1 = c.sequence(1);
        assert_eq!(seq1.len(), 2);
        assert_eq!(seq1.frame(0).unwrap().id, 0); // ids rewritten
    }

    #[test]
    fn ground_truth_counts_match_frames() {
        let c = VideoCorpus::new(
            "t",
            25.0,
            Resolution::square(608),
            vec![frame(0, 3, false), frame(0, 1, true)],
        );
        assert_eq!(c.ground_truth_counts(ObjectClass::Car), vec![3.0, 1.0]);
        assert_eq!(c.ground_truth_counts(ObjectClass::Person), vec![0.0, 1.0]);
    }
}
