//! Objects, bounding boxes, classes, and frame resolutions.

use smokescreen_rt::json::{FromJson, Json, JsonError, ToJson};
use std::fmt;
use std::str::FromStr;

/// Object classes the simulated detectors know about.
///
/// `Person` and `Face` are the paper's restricted classes; the others are
/// typical traffic-analytics targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ObjectClass {
    /// Passenger car (the queried class in every paper experiment).
    Car,
    /// Truck.
    Truck,
    /// Bus.
    Bus,
    /// Bicycle.
    Bicycle,
    /// Pedestrian — restricted class #1.
    Person,
    /// Human face — restricted class #2 (a sub-region of a person).
    Face,
}

impl ObjectClass {
    /// All classes, in a stable order.
    pub const ALL: [ObjectClass; 6] = [
        ObjectClass::Car,
        ObjectClass::Truck,
        ObjectClass::Bus,
        ObjectClass::Bicycle,
        ObjectClass::Person,
        ObjectClass::Face,
    ];

    /// Whether the paper treats this class as privacy-sensitive.
    pub fn is_sensitive(self) -> bool {
        matches!(self, ObjectClass::Person | ObjectClass::Face)
    }

    /// Lower-case canonical name (used by the query language).
    pub fn name(self) -> &'static str {
        match self {
            ObjectClass::Car => "car",
            ObjectClass::Truck => "truck",
            ObjectClass::Bus => "bus",
            ObjectClass::Bicycle => "bicycle",
            ObjectClass::Person => "person",
            ObjectClass::Face => "face",
        }
    }
}

impl fmt::Display for ObjectClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for ObjectClass {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "car" => Ok(ObjectClass::Car),
            "truck" => Ok(ObjectClass::Truck),
            "bus" => Ok(ObjectClass::Bus),
            "bicycle" | "bike" => Ok(ObjectClass::Bicycle),
            "person" | "pedestrian" => Ok(ObjectClass::Person),
            "face" => Ok(ObjectClass::Face),
            other => Err(format!("unknown object class: {other:?}")),
        }
    }
}

/// An axis-aligned bounding box in **normalized** coordinates
/// (`0.0 ..= 1.0` relative to the frame), so it is resolution-independent.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BBox {
    /// Left edge.
    pub x: f32,
    /// Top edge.
    pub y: f32,
    /// Width.
    pub w: f32,
    /// Height.
    pub h: f32,
}

impl BBox {
    /// Creates a box, clamping all coordinates into the unit square.
    pub fn new(x: f32, y: f32, w: f32, h: f32) -> Self {
        let x = x.clamp(0.0, 1.0);
        let y = y.clamp(0.0, 1.0);
        BBox {
            x,
            y,
            w: w.clamp(0.0, 1.0 - x),
            h: h.clamp(0.0, 1.0 - y),
        }
    }

    /// Normalized area (fraction of the frame covered).
    pub fn area(&self) -> f32 {
        self.w * self.h
    }

    /// Apparent area in pixels at the given frame resolution — the quantity
    /// the detector response curves are functions of.
    pub fn pixel_area(&self, res: Resolution) -> f64 {
        f64::from(self.w) * f64::from(res.width) * f64::from(self.h) * f64::from(res.height)
    }

    /// Intersection-over-union with another box.
    pub fn iou(&self, other: &BBox) -> f32 {
        let ix = (self.x + self.w).min(other.x + other.w) - self.x.max(other.x);
        let iy = (self.y + self.h).min(other.y + other.h) - self.y.max(other.y);
        if ix <= 0.0 || iy <= 0.0 {
            return 0.0;
        }
        let inter = ix * iy;
        let union = self.area() + other.area() - inter;
        if union <= 0.0 {
            0.0
        } else {
            inter / union
        }
    }
}

/// A single object in a frame. Objects carry everything the detector
/// simulators need to decide detectability: geometry, contrast, occlusion.
#[derive(Debug, Clone, PartialEq)]
pub struct Object {
    /// Stable identity across frames (a track id).
    pub id: u64,
    /// Class label (the synthetic ground truth).
    pub class: ObjectClass,
    /// Normalized bounding box.
    pub bbox: BBox,
    /// Photometric contrast against the background in `[0, 1]`
    /// (night scenes have low contrast).
    pub contrast: f32,
    /// Fraction of the object occluded by others, in `[0, 1]`.
    pub occlusion: f32,
}

/// A frame resolution in pixels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Resolution {
    /// Width in pixels.
    pub width: u32,
    /// Height in pixels.
    pub height: u32,
}

impl Resolution {
    /// Convenience constructor.
    pub const fn new(width: u32, height: u32) -> Self {
        Resolution { width, height }
    }

    /// Square resolution `s × s` — the shape both paper models consume.
    pub const fn square(side: u32) -> Self {
        Resolution {
            width: side,
            height: side,
        }
    }

    /// Total pixel count.
    pub fn pixels(&self) -> u64 {
        u64::from(self.width) * u64::from(self.height)
    }

    /// Whether both sides are multiples of `m` (the paper notes the default
    /// Mask R-CNN only accepts resolutions in multiples of 64).
    pub fn is_multiple_of(&self, m: u32) -> bool {
        m != 0 && self.width % m == 0 && self.height % m == 0
    }

    /// Linear scale factor relative to another resolution (geometric mean
    /// of the per-axis ratios).
    pub fn scale_relative_to(&self, native: Resolution) -> f64 {
        if native.pixels() == 0 {
            return 0.0;
        }
        (self.pixels() as f64 / native.pixels() as f64).sqrt()
    }
}

impl ToJson for ObjectClass {
    fn to_json(&self) -> Json {
        Json::Str(self.name().to_string())
    }
}

impl FromJson for ObjectClass {
    fn from_json(value: &Json) -> smokescreen_rt::json::Result<Self> {
        value.as_str()?.parse().map_err(JsonError::new)
    }
}

impl ToJson for Resolution {
    fn to_json(&self) -> Json {
        Json::obj([
            ("width", self.width.to_json()),
            ("height", self.height.to_json()),
        ])
    }
}

impl FromJson for Resolution {
    fn from_json(value: &Json) -> smokescreen_rt::json::Result<Self> {
        Ok(Resolution {
            width: u32::from_json(value.get("width")?)?,
            height: u32::from_json(value.get("height")?)?,
        })
    }
}

impl fmt::Display for Resolution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}", self.width, self.height)
    }
}

impl FromStr for Resolution {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let lower = s.to_ascii_lowercase();
        let (w, h) = lower
            .split_once(['x', '×'])
            .ok_or_else(|| format!("resolution {s:?} must look like 608x608"))?;
        let width: u32 = w.trim().parse().map_err(|e| format!("bad width: {e}"))?;
        let height: u32 = h.trim().parse().map_err(|e| format!("bad height: {e}"))?;
        if width == 0 || height == 0 {
            return Err("resolution sides must be positive".into());
        }
        Ok(Resolution { width, height })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_round_trip() {
        for class in ObjectClass::ALL {
            assert_eq!(class.name().parse::<ObjectClass>().unwrap(), class);
        }
        assert!("drone".parse::<ObjectClass>().is_err());
    }

    #[test]
    fn sensitive_classes() {
        assert!(ObjectClass::Person.is_sensitive());
        assert!(ObjectClass::Face.is_sensitive());
        assert!(!ObjectClass::Car.is_sensitive());
    }

    #[test]
    fn bbox_clamps_into_unit_square() {
        let b = BBox::new(0.9, 0.9, 0.5, 0.5);
        assert!(b.x + b.w <= 1.0 + f32::EPSILON);
        assert!(b.y + b.h <= 1.0 + f32::EPSILON);
    }

    #[test]
    fn pixel_area_scales_quadratically() {
        let b = BBox::new(0.0, 0.0, 0.1, 0.1);
        let a1 = b.pixel_area(Resolution::square(100));
        let a2 = b.pixel_area(Resolution::square(200));
        assert!((a2 / a1 - 4.0).abs() < 1e-9);
    }

    #[test]
    fn iou_identity_and_disjoint() {
        let a = BBox::new(0.1, 0.1, 0.2, 0.2);
        assert!((a.iou(&a) - 1.0).abs() < 1e-6);
        let b = BBox::new(0.7, 0.7, 0.1, 0.1);
        assert_eq!(a.iou(&b), 0.0);
    }

    #[test]
    fn resolution_parsing() {
        assert_eq!("608x608".parse::<Resolution>().unwrap(), Resolution::square(608));
        assert_eq!(
            "1280X720".parse::<Resolution>().unwrap(),
            Resolution::new(1280, 720)
        );
        assert!("608".parse::<Resolution>().is_err());
        assert!("0x64".parse::<Resolution>().is_err());
    }

    #[test]
    fn resolution_multiples() {
        assert!(Resolution::square(640).is_multiple_of(64));
        assert!(!Resolution::square(600).is_multiple_of(64));
        assert!(!Resolution::square(640).is_multiple_of(0));
    }

    #[test]
    fn scale_relative() {
        let native = Resolution::square(608);
        assert!((Resolution::square(304).scale_relative_to(native) - 0.5).abs() < 1e-9);
        assert!((Resolution::square(608).scale_relative_to(native) - 1.0).abs() < 1e-12);
    }
}
