//! Pixel-level rendering of synthetic frames.
//!
//! The analytic detector models in `smokescreen-models` decide
//! detectability from object geometry directly. To show that this is
//! faithful, this module can materialize a frame into an actual grayscale
//! pixel buffer — objects drawn as filled rectangles whose intensity
//! offset equals their contrast, over a noisy background — and downsample
//! it with a box filter. The blob detector then recovers objects from
//! pixels, and loses small ones at low resolutions for the *physical*
//! reason the paper describes (too few pixels left to distinguish them
//! from noise).

use smokescreen_rt::rng::StdRng;

use crate::frame::Frame;
use crate::object::Resolution;

/// A single-channel 8-bit image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GrayImage {
    width: u32,
    height: u32,
    pixels: Vec<u8>,
}

impl GrayImage {
    /// Creates a constant image.
    pub fn filled(res: Resolution, value: u8) -> Self {
        GrayImage {
            width: res.width,
            height: res.height,
            pixels: vec![value; (res.width * res.height) as usize],
        }
    }

    /// Image width in pixels.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Image height in pixels.
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Pixel accessor (row-major). Out-of-bounds reads return 0.
    pub fn get(&self, x: u32, y: u32) -> u8 {
        if x >= self.width || y >= self.height {
            return 0;
        }
        self.pixels[(y * self.width + x) as usize]
    }

    /// Mutable pixel accessor; out-of-bounds writes are ignored.
    pub fn set(&mut self, x: u32, y: u32, value: u8) {
        if x < self.width && y < self.height {
            self.pixels[(y * self.width + x) as usize] = value;
        }
    }

    /// Raw pixel buffer.
    pub fn pixels(&self) -> &[u8] {
        &self.pixels
    }

    /// Box-filter downsampling to the target resolution. Upsampling is not
    /// supported (degradation only); the target is clamped per-axis.
    pub fn downsample(&self, target: Resolution) -> GrayImage {
        let tw = target.width.min(self.width).max(1);
        let th = target.height.min(self.height).max(1);
        let mut out = GrayImage::filled(Resolution::new(tw, th), 0);
        for ty in 0..th {
            let y0 = (ty as u64 * self.height as u64 / th as u64) as u32;
            let y1 = (((ty as u64 + 1) * self.height as u64).div_ceil(th as u64) as u32)
                .min(self.height)
                .max(y0 + 1);
            for tx in 0..tw {
                let x0 = (tx as u64 * self.width as u64 / tw as u64) as u32;
                let x1 = (((tx as u64 + 1) * self.width as u64).div_ceil(tw as u64) as u32)
                    .min(self.width)
                    .max(x0 + 1);
                let mut acc: u64 = 0;
                for y in y0..y1 {
                    for x in x0..x1 {
                        acc += u64::from(self.get(x, y));
                    }
                }
                let count = u64::from(y1 - y0) * u64::from(x1 - x0);
                out.set(tx, ty, (acc / count) as u8);
            }
        }
        out
    }

    /// Mean pixel intensity.
    pub fn mean(&self) -> f64 {
        if self.pixels.is_empty() {
            return 0.0;
        }
        self.pixels.iter().map(|&p| f64::from(p)).sum::<f64>() / self.pixels.len() as f64
    }
}

/// Renders a frame's ground-truth objects into a grayscale image at the
/// given resolution. Background is mid-gray with additive uniform noise;
/// each object is a filled rectangle brightened by its contrast.
///
/// Rendering is deterministic per `(frame.id, resolution)` so the pixel
/// path has the same reuse-cache-soundness property as the analytic one.
pub fn render(frame: &Frame, res: Resolution, noise_level: f64) -> GrayImage {
    let mut rng = StdRng::seed_from_u64(frame.id ^ (u64::from(res.width) << 32));
    let mut img = GrayImage::filled(res, 96);

    // Background noise.
    let amp = (noise_level.clamp(0.0, 1.0) * 48.0) as i16;
    if amp > 0 {
        for y in 0..res.height {
            for x in 0..res.width {
                let n = rng.gen_range(-amp..=amp);
                let v = (i16::from(img.get(x, y)) + n).clamp(0, 255) as u8;
                img.set(x, y, v);
            }
        }
    }

    // Objects, painter's order.
    for obj in &frame.objects {
        let x0 = (obj.bbox.x * res.width as f32) as u32;
        let y0 = (obj.bbox.y * res.height as f32) as u32;
        let x1 = ((obj.bbox.x + obj.bbox.w) * res.width as f32).ceil() as u32;
        let y1 = ((obj.bbox.y + obj.bbox.h) * res.height as f32).ceil() as u32;
        let lift = (obj.contrast * 140.0) as i16;
        for y in y0..y1.min(res.height) {
            for x in x0..x1.min(res.width) {
                let v = (i16::from(img.get(x, y)) + lift).clamp(0, 255) as u8;
                img.set(x, y, v);
            }
        }
    }
    img
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::{BBox, Object, ObjectClass};

    fn frame_with_box(contrast: f32) -> Frame {
        Frame {
            id: 5,
            ts_secs: 0.0,
            sequence: 0,
            objects: vec![Object {
                id: 1,
                class: ObjectClass::Car,
                bbox: BBox::new(0.4, 0.4, 0.2, 0.2),
                contrast,
                occlusion: 0.0,
            }],
        }
    }

    #[test]
    fn render_is_deterministic() {
        let f = frame_with_box(0.6);
        let a = render(&f, Resolution::square(64), 0.2);
        let b = render(&f, Resolution::square(64), 0.2);
        assert_eq!(a, b);
    }

    #[test]
    fn object_region_is_brighter() {
        let f = frame_with_box(0.8);
        let img = render(&f, Resolution::square(100), 0.1);
        // Center of the object vs a corner of the background.
        assert!(img.get(50, 50) > img.get(5, 5));
    }

    #[test]
    fn downsample_preserves_mean_roughly() {
        let f = frame_with_box(0.5);
        let img = render(&f, Resolution::square(128), 0.15);
        let small = img.downsample(Resolution::square(32));
        assert_eq!(small.width(), 32);
        assert!((img.mean() - small.mean()).abs() < 4.0);
    }

    #[test]
    fn downsample_clamps_upsample_requests() {
        let img = GrayImage::filled(Resolution::square(16), 50);
        let out = img.downsample(Resolution::square(64));
        assert_eq!(out.width(), 16);
    }

    #[test]
    fn oob_accessors_are_safe() {
        let mut img = GrayImage::filled(Resolution::new(4, 4), 9);
        assert_eq!(img.get(100, 0), 0);
        img.set(100, 100, 7); // no panic
        assert_eq!(img.mean(), 9.0);
    }
}
