//! Frame size / compression model.
//!
//! Interventions are motivated partly by *system* goals — bandwidth and
//! energy (§1, §2.1). To quantify those gains the camera crate needs a
//! model of how many bytes a frame costs at a given resolution and quality.
//! We use a standard intra-coded video model: bytes ≈ pixels × bits-per-
//! pixel(quality) / 8, with bpp falling as quantization coarsens.

use crate::object::Resolution;
use smokescreen_rt::json::{FromJson, Json, ToJson};

/// Encoder quality setting, mapped onto an H.264-like quantization scale.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Quality(f64);

impl Quality {
    /// Full quality (bpp ≈ 0.9, visually lossless intra coding).
    pub const LOSSLESS_ISH: Quality = Quality(1.0);

    /// Creates a quality in `[0, 1]`; values are clamped.
    pub fn new(q: f64) -> Self {
        Quality(q.clamp(0.0, 1.0))
    }

    /// The quality knob value.
    pub fn value(&self) -> f64 {
        self.0
    }

    /// Effective bits per pixel: decays from 0.9 at full quality to 0.05
    /// at the coarsest quantization.
    pub fn bits_per_pixel(&self) -> f64 {
        0.05 + 0.85 * self.0.powf(1.5)
    }
}

impl ToJson for Quality {
    fn to_json(&self) -> Json {
        Json::Num(self.0)
    }
}

impl FromJson for Quality {
    fn from_json(value: &Json) -> smokescreen_rt::json::Result<Self> {
        Ok(Quality::new(value.as_f64()?))
    }
}

/// Estimated encoded size of one frame, in bytes.
pub fn frame_bytes(res: Resolution, quality: Quality) -> u64 {
    ((res.pixels() as f64) * quality.bits_per_pixel() / 8.0).ceil() as u64
}

/// Estimated bytes to ship `frames` frames at the given resolution,
/// quality, and sampling fraction.
pub fn transmission_bytes(frames: usize, fraction: f64, res: Resolution, quality: Quality) -> u64 {
    let kept = (frames as f64 * fraction.clamp(0.0, 1.0)).round();
    (kept * frame_bytes(res, quality) as f64) as u64
}

/// Simulates quantization of a contrast value: coarser quality compresses
/// contrast toward the mid-tone, degrading detectability — this is how the
/// optional compression intervention couples into the detector models.
pub fn quantize_contrast(contrast: f32, quality: Quality) -> f32 {
    let q = quality.value() as f32;
    // At q=1 contrast is untouched; at q=0 it is halved.
    contrast * (0.5 + 0.5 * q)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_scale_with_pixels() {
        let q = Quality::LOSSLESS_ISH;
        let small = frame_bytes(Resolution::square(128), q);
        let large = frame_bytes(Resolution::square(256), q);
        assert!((large as f64 / small as f64 - 4.0).abs() < 0.01);
    }

    #[test]
    fn lower_quality_fewer_bytes() {
        let r = Resolution::square(608);
        assert!(frame_bytes(r, Quality::new(0.3)) < frame_bytes(r, Quality::new(0.9)));
    }

    #[test]
    fn transmission_scales_with_fraction() {
        let r = Resolution::square(608);
        let full = transmission_bytes(1000, 1.0, r, Quality::LOSSLESS_ISH);
        let tenth = transmission_bytes(1000, 0.1, r, Quality::LOSSLESS_ISH);
        assert!((full as f64 / tenth as f64 - 10.0).abs() < 0.05);
    }

    #[test]
    fn quantize_contrast_monotone_in_quality() {
        let c = 0.8;
        assert!(quantize_contrast(c, Quality::new(0.2)) < quantize_contrast(c, Quality::new(0.9)));
        assert_eq!(quantize_contrast(c, Quality::new(1.0)), c);
    }

    #[test]
    fn quality_clamps() {
        assert_eq!(Quality::new(7.0).value(), 1.0);
        assert_eq!(Quality::new(-3.0).value(), 0.0);
    }
}
