//! Synthetic scene generation.
//!
//! [`traffic`] contains the generic traffic-scene engine: a pool of
//! persistent objects driven by a time-varying arrival process with AR(1)
//! intensity modulation, which produces the temporal autocorrelation,
//! burstiness, and person↔car occurrence correlation the paper's
//! experiments depend on. [`presets`] calibrates the engine to the two
//! datasets of the paper (night-street and UA-DETRAC).

pub mod presets;
pub mod traffic;

pub use presets::{detrac, detrac_sequence_pair, night_street, DatasetPreset};
pub use traffic::{ClassProcess, SceneConfig, SizeModel};
