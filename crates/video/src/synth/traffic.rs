//! The generic traffic-scene engine.
//!
//! Frames are produced by simulating a pool of persistent objects:
//!
//! * arrivals per frame follow `Poisson(λ_t)` where
//!   `λ_t = base · seq_mult · exp(a_t)` and `a_t` is an AR(1) process —
//!   this yields bursty, autocorrelated traffic rather than i.i.d. counts;
//! * each object lives for a geometrically distributed dwell time, drifting
//!   across the frame;
//! * person arrivals share the same intensity process raised to a coupling
//!   exponent, so frames that contain people systematically contain more
//!   cars — the correlation that biases image removal (§5.2.2);
//! * a person whose `face_visible` flag is set contributes a small `Face`
//!   object occupying the top of the person box.

use smokescreen_rt::rng::{Distribution, LogNormal, Poisson, StandardNormal, StdRng};
use crate::frame::Frame;
use crate::object::{BBox, Object, ObjectClass, Resolution};

/// Log-normal size model over normalized object height.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SizeModel {
    /// Mean of `ln(height)`.
    pub ln_mean: f64,
    /// Std-dev of `ln(height)`.
    pub ln_sigma: f64,
    /// Width = height × aspect (before clamping).
    pub aspect: f64,
    /// Hard floor/ceiling on normalized height.
    pub clamp: (f64, f64),
}

impl SizeModel {
    fn sample(&self, rng: &mut StdRng) -> (f32, f32) {
        let dist = LogNormal::new(self.ln_mean, self.ln_sigma).expect("valid lognormal");
        let h = dist.sample(rng).clamp(self.clamp.0, self.clamp.1);
        ((h * self.aspect) as f32, h as f32)
    }
}

/// Arrival/dwell process for one object class.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClassProcess {
    /// Base arrivals per frame (before intensity modulation).
    pub arrivals_per_frame: f64,
    /// Mean dwell time in frames (geometric distribution).
    pub mean_dwell_frames: f64,
    /// Exponent coupling this class to the shared intensity process
    /// (1.0 = fully coupled like cars; 0.0 = independent).
    pub intensity_coupling: f64,
    /// Object size model.
    pub size: SizeModel,
}

/// Full configuration of a synthetic scene.
#[derive(Debug, Clone, PartialEq)]
pub struct SceneConfig {
    /// Corpus name.
    pub name: String,
    /// Total frames to generate (across all sequences).
    pub frames: usize,
    /// Frames per second recorded in the corpus metadata.
    pub fps: f64,
    /// Native (highest) resolution.
    pub native_resolution: Resolution,
    /// Car process.
    pub cars: ClassProcess,
    /// Person process.
    pub persons: ClassProcess,
    /// Probability that a person has a camera-visible face.
    pub face_visibility: f64,
    /// AR(1) coefficient of the log-intensity process (`0 ≤ φ < 1`).
    pub ar_phi: f64,
    /// Innovation std-dev of the log-intensity process.
    pub ar_sigma: f64,
    /// Sinusoidal seasonal modulation amplitude (fraction of base rate).
    pub seasonal_amplitude: f64,
    /// Seasonal period in frames.
    pub seasonal_period: f64,
    /// Mean photometric contrast (night ≈ 0.35, day ≈ 0.7).
    pub contrast_mean: f64,
    /// Contrast spread (uniform half-width).
    pub contrast_spread: f64,
    /// Per-sequence intensity multipliers; sequences get equal shares of
    /// `frames` (the last absorbs the remainder). Use `vec![1.0]` for a
    /// single-camera corpus.
    pub sequence_multipliers: Vec<f64>,
}

#[derive(Debug, Clone)]
struct ActiveObject {
    id: u64,
    class: ObjectClass,
    x: f32,
    y: f32,
    w: f32,
    h: f32,
    dx: f32,
    dy: f32,
    contrast: f32,
    remaining: u32,
    face_visible: bool,
}

impl SceneConfig {
    /// Generates the corpus deterministically from the seed.
    pub fn generate(&self, seed: u64) -> crate::VideoCorpus {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut frames = Vec::with_capacity(self.frames);
        let mut next_id: u64 = 1;

        let seqs = self.sequence_multipliers.len().max(1);
        let per_seq = self.frames / seqs;

        for (seq_idx, &mult) in self
            .sequence_multipliers
            .iter()
            .chain(std::iter::once(&1.0).take(usize::from(self.sequence_multipliers.is_empty())))
            .enumerate()
        {
            let count = if seq_idx == seqs - 1 {
                self.frames - per_seq * (seqs - 1)
            } else {
                per_seq
            };
            // Fresh pools per sequence: the camera moved.
            let mut active: Vec<ActiveObject> = Vec::new();
            let mut log_intensity = 0.0f64;

            for t in 0..count {
                // AR(1) log-intensity shared by all classes.
                log_intensity =
                    self.ar_phi * log_intensity + self.ar_sigma * standard_normal(&mut rng);
                let seasonal = 1.0
                    + self.seasonal_amplitude
                        * (2.0 * std::f64::consts::PI * t as f64 / self.seasonal_period).sin();
                let intensity = (log_intensity.exp() * seasonal).max(1e-6);

                self.spawn_class(
                    &mut rng,
                    &mut active,
                    &mut next_id,
                    ObjectClass::Car,
                    &self.cars,
                    mult,
                    intensity,
                );
                self.spawn_class(
                    &mut rng,
                    &mut active,
                    &mut next_id,
                    ObjectClass::Person,
                    &self.persons,
                    mult,
                    intensity,
                );

                // Advance and snapshot.
                let mut objects = Vec::with_capacity(active.len());
                for a in active.iter_mut() {
                    a.x += a.dx;
                    a.y += a.dy;
                    let bbox = BBox::new(a.x, a.y, a.w, a.h);
                    let visible = bbox.w > 0.0 && bbox.h > 0.0;
                    if visible {
                        objects.push(Object {
                            id: a.id,
                            class: a.class,
                            bbox,
                            contrast: a.contrast,
                            occlusion: 0.0,
                        });
                        if a.class == ObjectClass::Person && a.face_visible {
                            // Face occupies the top ~18% of the person box.
                            let fh = bbox.h * 0.18;
                            let fw = (bbox.w * 0.6).min(fh);
                            objects.push(Object {
                                id: a.id | (1 << 63),
                                class: ObjectClass::Face,
                                bbox: BBox::new(
                                    bbox.x + (bbox.w - fw) / 2.0,
                                    bbox.y,
                                    fw,
                                    fh,
                                ),
                                contrast: a.contrast,
                                occlusion: 0.0,
                            });
                        }
                    }
                }
                set_occlusions(&mut objects);

                frames.push(Frame {
                    id: 0, // rewritten by VideoCorpus::new
                    ts_secs: frames.len() as f64 / self.fps,
                    sequence: seq_idx as u32,
                    objects,
                });

                // Retire.
                for a in active.iter_mut() {
                    a.remaining = a.remaining.saturating_sub(1);
                }
                active.retain(|a| a.remaining > 0 && a.x < 1.0 && a.y < 1.0 && a.x > -0.5);
            }
        }

        crate::VideoCorpus::new(
            self.name.clone(),
            self.fps,
            self.native_resolution,
            frames,
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn spawn_class(
        &self,
        rng: &mut StdRng,
        active: &mut Vec<ActiveObject>,
        next_id: &mut u64,
        class: ObjectClass,
        proc: &ClassProcess,
        seq_mult: f64,
        intensity: f64,
    ) {
        let lambda =
            proc.arrivals_per_frame * seq_mult * intensity.powf(proc.intensity_coupling);
        let arrivals = if lambda > 0.0 {
            Poisson::new(lambda).map(|d| d.sample(rng) as u64).unwrap_or(0)
        } else {
            0
        };
        for _ in 0..arrivals {
            let (w, h) = proc.size.sample(rng);
            let dwell = sample_geometric(rng, proc.mean_dwell_frames).max(1);
            let from_left = rng.gen_bool(0.5);
            let speed = rng.gen_range(0.2..1.2) / proc.mean_dwell_frames.max(1.0);
            active.push(ActiveObject {
                id: *next_id,
                class,
                x: if from_left { -w * 0.5 } else { rng.gen_range(0.0..0.9) },
                y: rng.gen_range(0.15..0.8),
                w,
                h,
                dx: if from_left { speed as f32 } else { (speed * 0.3) as f32 },
                dy: rng.gen_range(-0.002..0.002),
                contrast: (self.contrast_mean
                    + rng.gen_range(-self.contrast_spread..=self.contrast_spread))
                .clamp(0.05, 1.0) as f32,
                remaining: dwell,
                face_visible: class == ObjectClass::Person
                    && rng.gen_bool(self.face_visibility.clamp(0.0, 1.0)),
            });
            *next_id += 1;
        }
    }
}

/// Marks pairwise occlusion: for each object, the max IoU against any other
/// object drawn later (closer to the camera in our painter's order).
fn set_occlusions(objects: &mut [Object]) {
    let boxes: Vec<BBox> = objects.iter().map(|o| o.bbox).collect();
    for (i, obj) in objects.iter_mut().enumerate() {
        let mut occ = 0.0f32;
        for (j, b) in boxes.iter().enumerate() {
            if j > i {
                occ = occ.max(obj.bbox.iou(b));
            }
        }
        obj.occlusion = occ.min(0.95);
    }
}

fn sample_geometric(rng: &mut StdRng, mean: f64) -> u32 {
    if mean <= 1.0 {
        return 1;
    }
    let p = 1.0 / mean;
    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
    ((u.ln() / (1.0 - p).ln()).ceil() as u32).clamp(1, 100_000)
}

fn standard_normal(rng: &mut StdRng) -> f64 {
    StandardNormal.sample(rng)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> SceneConfig {
        SceneConfig {
            name: "tiny".into(),
            frames: 2_000,
            fps: 30.0,
            native_resolution: Resolution::square(608),
            cars: ClassProcess {
                arrivals_per_frame: 0.08,
                mean_dwell_frames: 20.0,
                intensity_coupling: 1.0,
                size: SizeModel {
                    ln_mean: -2.3,
                    ln_sigma: 0.4,
                    aspect: 1.8,
                    clamp: (0.02, 0.5),
                },
            },
            persons: ClassProcess {
                arrivals_per_frame: 0.01,
                mean_dwell_frames: 30.0,
                intensity_coupling: 0.8,
                size: SizeModel {
                    ln_mean: -2.8,
                    ln_sigma: 0.3,
                    aspect: 0.4,
                    clamp: (0.02, 0.3),
                },
            },
            face_visibility: 0.3,
            ar_phi: 0.95,
            ar_sigma: 0.18,
            seasonal_amplitude: 0.3,
            seasonal_period: 700.0,
            contrast_mean: 0.5,
            contrast_spread: 0.2,
            sequence_multipliers: vec![1.0],
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let c = tiny_config();
        let a = c.generate(7);
        let b = c.generate(7);
        assert_eq!(a.frames(), b.frames());
        let c2 = c.generate(8);
        assert_ne!(a.frames(), c2.frames());
    }

    #[test]
    fn generates_requested_frame_count() {
        let corpus = tiny_config().generate(1);
        assert_eq!(corpus.len(), 2_000);
    }

    #[test]
    fn mean_occupancy_tracks_littles_law() {
        // E[cars per frame] ≈ arrivals/frame × mean dwell, modulo the
        // lognormal intensity modulation (E[exp(a)] > 1) and edge exits.
        let corpus = tiny_config().generate(3);
        let mean = corpus.stats().mean_cars_per_frame;
        let expected = 0.08 * 20.0;
        assert!(
            mean > expected * 0.5 && mean < expected * 2.5,
            "mean={mean} expected≈{expected}"
        );
    }

    #[test]
    fn counts_are_autocorrelated() {
        let corpus = tiny_config().generate(5);
        let counts = corpus.ground_truth_counts(ObjectClass::Car);
        let n = counts.len();
        let mean: f64 = counts.iter().sum::<f64>() / n as f64;
        let var: f64 = counts.iter().map(|c| (c - mean).powi(2)).sum::<f64>() / n as f64;
        let lag1: f64 = counts
            .windows(2)
            .map(|w| (w[0] - mean) * (w[1] - mean))
            .sum::<f64>()
            / (n - 1) as f64;
        let rho = lag1 / var;
        assert!(rho > 0.5, "lag-1 autocorrelation {rho} too low for persistent objects");
    }

    #[test]
    fn faces_only_appear_with_persons() {
        let corpus = tiny_config().generate(9);
        for f in corpus.frames() {
            if f.contains_class(ObjectClass::Face) {
                assert!(f.contains_class(ObjectClass::Person), "frame {}", f.id);
            }
        }
    }

    #[test]
    fn person_frames_have_more_cars_on_average() {
        // The coupling exponent must induce positive person↔car correlation.
        let corpus = tiny_config().generate(11);
        let (mut with, mut with_n, mut without, mut without_n) = (0.0, 0u32, 0.0, 0u32);
        for f in corpus.frames() {
            let cars = f.count_class(ObjectClass::Car) as f64;
            if f.contains_class(ObjectClass::Person) {
                with += cars;
                with_n += 1;
            } else {
                without += cars;
                without_n += 1;
            }
        }
        assert!(with_n > 10 && without_n > 10, "degenerate split");
        assert!(
            with / with_n as f64 > without / without_n as f64,
            "person frames should be busier: {} vs {}",
            with / with_n as f64,
            without / without_n as f64
        );
    }

    #[test]
    fn sequences_partition_frames() {
        let mut c = tiny_config();
        c.sequence_multipliers = vec![0.5, 1.0, 2.0];
        c.frames = 1_000;
        let corpus = c.generate(2);
        assert_eq!(corpus.len(), 1_000);
        assert_eq!(corpus.sequence(0).len(), 333);
        assert_eq!(corpus.sequence(2).len(), 334);
        // Higher multiplier ⇒ busier sequence.
        let m0 = corpus.sequence(0).stats().mean_cars_per_frame;
        let m2 = corpus.sequence(2).stats().mean_cars_per_frame;
        assert!(m2 > m0, "seq2={m2} seq0={m0}");
    }
}
