//! Calibrated dataset presets mirroring the paper's two corpora.
//!
//! Calibration targets come straight from §5.1:
//!
//! | statistic | night-street | UA-DETRAC |
//! |---|---|---|
//! | frames | 19,463 | 15,210 (12 sequences) |
//! | fps | 30 | 25 |
//! | frames containing `person` | 14.18% | 65.86% |
//! | frames containing `face` | 4.02% | 2.48% |
//! | traffic character | sparse, night, low contrast | dense, daytime, regime shifts |
//!
//! The mean-cars-per-frame targets (≈0.5 night-street, ≈6 UA-DETRAC) are
//! not printed in the paper; they are chosen to match the qualitative
//! descriptions (a quiet Jackson Hole street at night vs. busy Beijing /
//! Tianjin intersections) and the BlazeIt project's published statistics.

use crate::object::Resolution;
use crate::synth::traffic::{ClassProcess, SceneConfig, SizeModel};
use crate::VideoCorpus;

/// The two paper datasets, as an enum the bench harness iterates over.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DatasetPreset {
    /// BlazeIt night-street analogue.
    NightStreet,
    /// UA-DETRAC analogue.
    Detrac,
}

impl DatasetPreset {
    /// Scene configuration for the preset.
    pub fn config(self) -> SceneConfig {
        match self {
            DatasetPreset::NightStreet => night_street(),
            DatasetPreset::Detrac => detrac(),
        }
    }

    /// Canonical corpus name.
    pub fn name(self) -> &'static str {
        match self {
            DatasetPreset::NightStreet => "night-street",
            DatasetPreset::Detrac => "ua-detrac",
        }
    }

    /// Generates the corpus with the given seed.
    pub fn generate(self, seed: u64) -> VideoCorpus {
        self.config().generate(seed)
    }
}

/// Night-street: sparse nighttime traffic, low contrast, occasional
/// pedestrians whose presence correlates with busier moments.
pub fn night_street() -> SceneConfig {
    SceneConfig {
        name: "night-street".into(),
        frames: 19_463,
        fps: 30.0,
        native_resolution: Resolution::square(640),
        cars: ClassProcess {
            arrivals_per_frame: 0.021,
            mean_dwell_frames: 20.0,
            intensity_coupling: 1.0,
            size: SizeModel {
                ln_mean: -2.2,
                ln_sigma: 0.45,
                aspect: 1.9,
                clamp: (0.03, 0.5),
            },
        },
        persons: ClassProcess {
            arrivals_per_frame: 0.0042,
            mean_dwell_frames: 30.0,
            intensity_coupling: 0.8,
            size: SizeModel {
                ln_mean: -2.7,
                ln_sigma: 0.35,
                aspect: 0.4,
                clamp: (0.025, 0.3),
            },
        },
        face_visibility: 0.27,
        ar_phi: 0.97,
        ar_sigma: 0.15,
        seasonal_amplitude: 0.35,
        seasonal_period: 2_500.0,
        contrast_mean: 0.35,
        contrast_spread: 0.15,
        sequence_multipliers: vec![1.0],
    }
}

/// UA-DETRAC: dense daytime traffic across 12 sequences with distinct
/// intensity regimes; pedestrians are common, visible faces rare (traffic
/// cameras are far from sidewalks).
pub fn detrac() -> SceneConfig {
    SceneConfig {
        name: "ua-detrac".into(),
        frames: 15_210,
        fps: 25.0,
        native_resolution: Resolution::square(608),
        cars: ClassProcess {
            arrivals_per_frame: 0.24,
            mean_dwell_frames: 22.0,
            intensity_coupling: 1.0,
            size: SizeModel {
                ln_mean: -2.0,
                ln_sigma: 0.4,
                aspect: 1.7,
                clamp: (0.04, 0.55),
            },
        },
        persons: ClassProcess {
            arrivals_per_frame: 0.036,
            mean_dwell_frames: 40.0,
            intensity_coupling: 0.7,
            size: SizeModel {
                ln_mean: -2.9,
                ln_sigma: 0.3,
                aspect: 0.4,
                clamp: (0.02, 0.25),
            },
        },
        face_visibility: 0.023,
        ar_phi: 0.96,
        ar_sigma: 0.12,
        seasonal_amplitude: 0.25,
        seasonal_period: 1_100.0,
        contrast_mean: 0.7,
        contrast_spread: 0.15,
        sequence_multipliers: vec![0.5, 0.8, 1.2, 1.5, 0.6, 1.0, 1.4, 0.7, 1.1, 0.9, 1.3, 1.0],
    }
}

/// The §5.3.2 similar-video pair: two sequences captured by the *same*
/// camera at a busy intersection at different times (the paper's MVI_40771
/// with 1,720 frames and MVI_40775 with 975 frames). Same scene regime,
/// different realizations.
pub fn detrac_sequence_pair(seed: u64) -> (VideoCorpus, VideoCorpus) {
    let mut config = detrac();
    config.sequence_multipliers = vec![1.3];

    config.name = "detrac-MVI_40771-like".into();
    config.frames = 1_720;
    let a = config.generate(seed);

    config.name = "detrac-MVI_40775-like".into();
    config.frames = 975;
    let b = config.generate(seed.wrapping_add(1_000));

    (a, b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn night_street_calibration() {
        let corpus = night_street().generate(42);
        let s = corpus.stats();
        assert_eq!(s.frames, 19_463);
        assert!(
            s.mean_cars_per_frame > 0.25 && s.mean_cars_per_frame < 1.0,
            "mean cars {}",
            s.mean_cars_per_frame
        );
        assert!(
            (s.person_frame_fraction - 0.1418).abs() < 0.06,
            "person fraction {}",
            s.person_frame_fraction
        );
        assert!(
            (s.face_frame_fraction - 0.0402).abs() < 0.03,
            "face fraction {}",
            s.face_frame_fraction
        );
    }

    #[test]
    fn detrac_calibration() {
        let corpus = detrac().generate(42);
        let s = corpus.stats();
        assert_eq!(s.frames, 15_210);
        assert!(
            s.mean_cars_per_frame > 3.0 && s.mean_cars_per_frame < 12.0,
            "mean cars {}",
            s.mean_cars_per_frame
        );
        assert!(
            (s.person_frame_fraction - 0.6586).abs() < 0.12,
            "person fraction {}",
            s.person_frame_fraction
        );
        assert!(
            (s.face_frame_fraction - 0.0248).abs() < 0.03,
            "face fraction {}",
            s.face_frame_fraction
        );
    }

    #[test]
    fn datasets_differ_in_character() {
        let ns = night_street().generate(1).stats();
        let dt = detrac().generate(1).stats();
        assert!(dt.mean_cars_per_frame > 4.0 * ns.mean_cars_per_frame);
        assert!(dt.person_frame_fraction > ns.person_frame_fraction);
    }

    #[test]
    fn sequence_pair_shapes() {
        let (a, b) = detrac_sequence_pair(7);
        assert_eq!(a.len(), 1_720);
        assert_eq!(b.len(), 975);
        // Same regime: mean car counts within 2x of each other.
        let (ma, mb) = (a.stats().mean_cars_per_frame, b.stats().mean_cars_per_frame);
        assert!(ma / mb < 2.0 && mb / ma < 2.0, "ma={ma} mb={mb}");
    }

    #[test]
    fn preset_enum_round_trip() {
        assert_eq!(DatasetPreset::NightStreet.name(), "night-street");
        assert_eq!(DatasetPreset::Detrac.config().frames, 15_210);
    }
}
