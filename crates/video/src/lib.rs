//! Video substrate: frame/object model, synthetic corpora, raster pipeline.
//!
//! The paper evaluates on two real datasets (BlazeIt's night-street video
//! and UA-DETRAC). Neither is available here, so this crate provides
//! calibrated **synthetic scene generators** that reproduce the statistics
//! the paper's algorithms are sensitive to:
//!
//! * per-frame object-count distributions (sparse/bursty vs. dense),
//! * temporal autocorrelation (cars persist across frames),
//! * restricted-class prevalence (% of frames containing `person`/`face`),
//! * **correlation between restricted classes and the queried class** —
//!   the property that makes image removal a *biased*, non-random
//!   intervention (§5.2.2).
//!
//! A lightweight raster pipeline ([`raster`]) can additionally render
//! frames to actual pixel buffers so resolution reduction can be exercised
//! on real pixels (used by the blob-detector example and tests).

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod codec;
pub mod corpus;
pub mod frame;
pub mod object;
pub mod perturb;
pub mod raster;
pub mod synth;

pub use corpus::{CorpusStats, VideoCorpus};
pub use frame::Frame;
pub use object::{BBox, Object, ObjectClass, Resolution};
pub use perturb::{PerturbKind, PerturbPlan, Perturbation};
