//! Frames: timestamped bags of objects.

use crate::object::{Object, ObjectClass};

/// One video frame. The "original video" of the paper is a sequence of
/// these; destructive interventions never mutate a `Frame`, they produce
/// degraded *views* (see `smokescreen-degrade`).
#[derive(Debug, Clone, PartialEq)]
pub struct Frame {
    /// Index within its corpus (0-based).
    pub id: u64,
    /// Capture timestamp in seconds from the start of the recording.
    pub ts_secs: f64,
    /// Which synthetic sequence this frame belongs to (UA-DETRAC-style
    /// corpora contain many sequences; single-camera corpora use 0).
    pub sequence: u32,
    /// Ground-truth objects present in the frame.
    pub objects: Vec<Object>,
}

impl Frame {
    /// Number of ground-truth objects of `class` in the frame.
    pub fn count_class(&self, class: ObjectClass) -> usize {
        self.objects.iter().filter(|o| o.class == class).count()
    }

    /// Whether any ground-truth object of `class` is present.
    pub fn contains_class(&self, class: ObjectClass) -> bool {
        self.objects.iter().any(|o| o.class == class)
    }

    /// Whether any of the given classes is present (image-removal test).
    pub fn contains_any(&self, classes: &[ObjectClass]) -> bool {
        classes.iter().any(|&c| self.contains_class(c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::{BBox, Object};

    fn obj(id: u64, class: ObjectClass) -> Object {
        Object {
            id,
            class,
            bbox: BBox::new(0.1, 0.1, 0.1, 0.1),
            contrast: 0.5,
            occlusion: 0.0,
        }
    }

    #[test]
    fn counting_and_membership() {
        let f = Frame {
            id: 0,
            ts_secs: 0.0,
            sequence: 0,
            objects: vec![
                obj(1, ObjectClass::Car),
                obj(2, ObjectClass::Car),
                obj(3, ObjectClass::Person),
            ],
        };
        assert_eq!(f.count_class(ObjectClass::Car), 2);
        assert_eq!(f.count_class(ObjectClass::Face), 0);
        assert!(f.contains_class(ObjectClass::Person));
        assert!(f.contains_any(&[ObjectClass::Face, ObjectClass::Person]));
        assert!(!f.contains_any(&[ObjectClass::Face]));
        assert!(!f.contains_any(&[]));
    }
}
