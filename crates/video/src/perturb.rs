//! Deterministic content-fault injection — seeded perturbations of the
//! frame stream itself.
//!
//! The chaos harness (`rt::fault`) injures the *infrastructure*: model
//! calls time out, caches get poisoned, processes die. This module
//! injures the *content*: the frames a corpus hands the detector stop
//! looking like the frames the profile was calibrated on. Hosseini et
//! al. showed that small, targeted input perturbations flip cloud
//! video-API decisions wholesale; the bound-soundness audit
//! (`tests/content_shift.rs`) uses this module to measure exactly where
//! the paper's Hoeffding–Serfling / Bernstein bounds stay sound under
//! such shifts and where they silently bend.
//!
//! Like [`rt::fault`](smokescreen_rt), every decision is a **pure
//! function** of `(plan, frame index)` — never of shared mutable state or
//! of frame *content* — derived from a seeded xoshiro256\*\* stream. Two
//! runs with the same plan perturb the identical frame set with the
//! identical parameters at any thread count, which keeps perturbed runs
//! replayable bit-for-bit and (crucially for the audit) keeps the
//! perturbed population fixed *before* any sampling happens, so uniform
//! sampling remains uniform over the perturbed stream.
//!
//! The plan schedules five perturbation kinds:
//!
//! * **Occlusion** — a static occluder patch (a parked truck, a smudge on
//!   the dome) raises the `occlusion` attribute of every object it
//!   overlaps, in proportion to the overlap.
//! * **Glare** — a horizontal brightness ramp (low sun, headlight bloom)
//!   attenuates object contrast, biting hardest through the detectors'
//!   `contrast_gamma` response at night.
//! * **Shake** — camera-shake jitter translates every bounding box by a
//!   per-frame offset; boxes clamp at the frame edge, shrinking objects
//!   that get pushed out of view.
//! * **LabelFlip** — Hosseini's decision-flip regime: ground-truth labels
//!   swap within confusable pairs (car ↔ truck, bus ↔ bicycle), so the
//!   queried class's per-frame counts are wrong at the source. Sensitive
//!   classes (person/face) are never touched.
//! * **Drift** — mid-stream class-prevalence drift: the final `rate`
//!   fraction of the stream deterministically gains 1–2 extra cars per
//!   existing car (rush hour starting mid-recording). Unlike the other
//!   kinds, drift is a *tail regime*, not a per-frame coin flip — that is
//!   what makes it a distribution shift rather than noise.
//!
//! Replay recipe: set `SMOKESCREEN_PERTURB_SEED`, `SMOKESCREEN_PERTURB_RATE`
//! and `SMOKESCREEN_PERTURB_KIND` and build the plan with
//! [`PerturbPlan::from_env`]. Malformed values are a *loud* startup error
//! (a panic naming the variable and the offending string), matching the
//! FAULT/CRASH convention: a typo in a chaos knob must never silently run
//! the perturbations-disabled configuration.

use std::fmt;
use std::str::FromStr;

use smokescreen_rt::rng::StdRng;

use crate::corpus::VideoCorpus;
use crate::frame::Frame;
use crate::object::{BBox, Object, ObjectClass};

/// Environment variable carrying the perturbation-plan seed (decimal `u64`).
pub const PERTURB_SEED_ENV: &str = "SMOKESCREEN_PERTURB_SEED";

/// Environment variable carrying the perturbation rate in `[0, 1]`.
pub const PERTURB_RATE_ENV: &str = "SMOKESCREEN_PERTURB_RATE";

/// Environment variable naming the perturbation kind
/// (`occlusion|glare|shake|label-flip|drift`).
pub const PERTURB_KIND_ENV: &str = "SMOKESCREEN_PERTURB_KIND";

/// Domain-separation constant keeping perturbation decisions independent
/// of fault and crash decisions derived from the same seed.
const PERTURB_STREAM_SALT: u64 = 0x0CC1_0DED_FA11_5AFE;

/// Which content fault a plan injects.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PerturbKind {
    /// Static occluder patch raising `occlusion` on overlapped objects.
    Occlusion,
    /// Horizontal brightness ramp attenuating object contrast.
    Glare,
    /// Camera-shake jitter translating every bounding box.
    Shake,
    /// Ground-truth label swap within confusable class pairs.
    LabelFlip,
    /// Mid-stream class-prevalence drift in the tail of the stream.
    Drift,
}

impl PerturbKind {
    /// All kinds, in a stable order (the audit matrix sweeps this).
    pub const ALL: [PerturbKind; 5] = [
        PerturbKind::Occlusion,
        PerturbKind::Glare,
        PerturbKind::Shake,
        PerturbKind::LabelFlip,
        PerturbKind::Drift,
    ];

    /// Canonical lower-case name (the `SMOKESCREEN_PERTURB_KIND` value).
    pub fn name(self) -> &'static str {
        match self {
            PerturbKind::Occlusion => "occlusion",
            PerturbKind::Glare => "glare",
            PerturbKind::Shake => "shake",
            PerturbKind::LabelFlip => "label-flip",
            PerturbKind::Drift => "drift",
        }
    }
}

impl fmt::Display for PerturbKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for PerturbKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_lowercase().as_str() {
            "occlusion" => Ok(PerturbKind::Occlusion),
            "glare" => Ok(PerturbKind::Glare),
            "shake" => Ok(PerturbKind::Shake),
            "label-flip" | "label_flip" | "labelflip" => Ok(PerturbKind::LabelFlip),
            "drift" => Ok(PerturbKind::Drift),
            other => Err(format!(
                "unknown perturbation kind {other:?} (expected \
                 occlusion|glare|shake|label-flip|drift)"
            )),
        }
    }
}

/// One scheduled perturbation for a frame, with all parameters drawn.
///
/// Parameters are drawn at decision time from the frame's pure stream, so
/// a `Perturbation` value fully describes what happens to the frame —
/// applying it is deterministic arithmetic with no further randomness.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Perturbation {
    /// An occluder patch covering `[x, x+w] × [y, y+h]` of the frame;
    /// objects it overlaps gain `severity · overlap_fraction` occlusion.
    Occlusion {
        /// Patch left edge (normalized).
        x: f32,
        /// Patch top edge (normalized).
        y: f32,
        /// Patch width (normalized).
        w: f32,
        /// Patch height (normalized).
        h: f32,
        /// Occlusion added to a fully covered object, in `(0, 1)`.
        severity: f32,
    },
    /// A horizontal brightness ramp: an object centred at normalized `cx`
    /// keeps `1 − attenuation · cx` of its contrast.
    Glare {
        /// Maximum contrast attenuation (at the right frame edge).
        attenuation: f32,
    },
    /// A per-frame camera offset applied to every bounding box.
    Shake {
        /// Horizontal translation (normalized).
        dx: f32,
        /// Vertical translation (normalized).
        dy: f32,
    },
    /// Swap ground-truth labels within confusable pairs
    /// (car ↔ truck, bus ↔ bicycle).
    LabelFlip,
    /// Prevalence drift: every car gains this many extra copies.
    Drift {
        /// Extra cars spawned per existing car (1 or 2).
        extra_copies: u32,
    },
}

/// A seeded, replayable content-fault schedule.
///
/// The plan is plain data (`Copy`): [`PerturbPlan::decision`] is a pure
/// function of `(plan, frame index, population)`, never of frame content
/// or shared state — the soundness argument in DESIGN.md ("content
/// independence") rests on exactly this property.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PerturbPlan {
    seed: u64,
    rate: f64,
    kind: PerturbKind,
}

impl PerturbPlan {
    /// A plan perturbing frames at `rate` (clamped to `[0, 1]`). For
    /// [`PerturbKind::Drift`] the rate is the drifted *tail fraction* of
    /// the stream rather than a per-frame probability.
    pub fn new(seed: u64, rate: f64, kind: PerturbKind) -> Self {
        PerturbPlan {
            seed,
            rate: rate.clamp(0.0, 1.0),
            kind,
        }
    }

    /// The plan seed (for replay reporting).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Per-frame perturbation probability (tail fraction for drift).
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// The perturbation kind this plan injects.
    pub fn kind(&self) -> PerturbKind {
        self.kind
    }

    /// Builds a plan from `SMOKESCREEN_PERTURB_SEED` /
    /// `SMOKESCREEN_PERTURB_RATE` / `SMOKESCREEN_PERTURB_KIND`. Returns
    /// `None` when the rate is unset or zero — the perturbations-disabled
    /// configuration. Malformed values (including a positive rate with no
    /// kind, or a bogus kind even when disabled) are a loud startup error,
    /// matching [`FaultPlan::from_env`](smokescreen_rt::fault::FaultPlan).
    pub fn from_env() -> Option<Self> {
        match Self::parse_env(
            std::env::var(PERTURB_SEED_ENV).ok().as_deref(),
            std::env::var(PERTURB_RATE_ENV).ok().as_deref(),
            std::env::var(PERTURB_KIND_ENV).ok().as_deref(),
        ) {
            Ok(plan) => plan,
            Err(msg) => panic!("{msg}"),
        }
    }

    /// Parse layer behind [`PerturbPlan::from_env`], exposed for tests.
    /// `Err` carries a message naming the offending variable and value.
    pub fn parse_env(
        seed: Option<&str>,
        rate: Option<&str>,
        kind: Option<&str>,
    ) -> Result<Option<Self>, String> {
        let seed = parse_seed(PERTURB_SEED_ENV, seed)?;
        // The kind is validated even when the rate leaves the plan
        // disabled — a typo'd kind is a configuration bug either way.
        let kind = match kind {
            None => None,
            Some(raw) => Some(
                raw.parse::<PerturbKind>()
                    .map_err(|e| format!("{PERTURB_KIND_ENV}: {e}"))?,
            ),
        };
        match parse_rate(PERTURB_RATE_ENV, rate)? {
            Some(rate) if rate > 0.0 => match kind {
                Some(kind) => Ok(Some(PerturbPlan::new(seed, rate, kind))),
                None => Err(format!(
                    "{PERTURB_KIND_ENV} must be set when {PERTURB_RATE_ENV} > 0 \
                     (expected occlusion|glare|shake|label-flip|drift)"
                )),
            },
            _ => Ok(None),
        }
    }

    /// The perturbation scheduled for `frame_idx` in a stream of
    /// `population` frames, or `None` for a clean frame.
    ///
    /// Pure in `(self, frame_idx, population)`: the same plan and indices
    /// always return the same decision with the same drawn parameters, on
    /// any thread, in any order. `population` only matters for
    /// [`PerturbKind::Drift`], whose regime is the final `rate` fraction
    /// of the stream.
    pub fn decision(&self, frame_idx: u64, population: u64) -> Option<Perturbation> {
        if self.rate <= 0.0 {
            return None;
        }
        let mut rng = StdRng::seed_from_u64(mix(self.seed ^ PERTURB_STREAM_SALT, frame_idx));
        match self.kind {
            PerturbKind::Drift => {
                // Tail regime, not a coin flip: drift starts at a fixed
                // frame and stays on, which is what "the traffic changed"
                // means. The rng only draws the per-frame magnitude.
                let start = (population as f64 * (1.0 - self.rate)).ceil() as u64;
                if frame_idx < start {
                    return None;
                }
                Some(Perturbation::Drift {
                    extra_copies: rng.gen_range(1u32..=2),
                })
            }
            kind => {
                if rng.gen_f64() >= self.rate {
                    return None;
                }
                Some(match kind {
                    PerturbKind::Occlusion => Perturbation::Occlusion {
                        x: rng.gen_f64() as f32 * 0.6,
                        y: rng.gen_f64() as f32 * 0.6,
                        w: 0.25 + 0.35 * rng.gen_f64() as f32,
                        h: 0.25 + 0.35 * rng.gen_f64() as f32,
                        severity: 0.6 + 0.35 * rng.gen_f64() as f32,
                    },
                    PerturbKind::Glare => Perturbation::Glare {
                        attenuation: 0.25 + 0.45 * rng.gen_f64() as f32,
                    },
                    PerturbKind::Shake => Perturbation::Shake {
                        dx: (rng.gen_f64() as f32 - 0.5) * 0.12,
                        dy: (rng.gen_f64() as f32 - 0.5) * 0.12,
                    },
                    PerturbKind::LabelFlip => Perturbation::LabelFlip,
                    PerturbKind::Drift => unreachable!("handled above"),
                })
            }
        }
    }

    /// Applies the plan to a corpus, returning the perturbed corpus.
    ///
    /// At rate 0 the input is returned unchanged (same name, same frames,
    /// byte-identical downstream) — the inertness contract `ci.sh` pins.
    /// Otherwise the perturbed corpus is renamed
    /// `"{name}+{kind}@{rate}#{seed}"` so its generation journals and
    /// caches can never cross-contaminate with the clean corpus's.
    pub fn apply(&self, corpus: &VideoCorpus) -> VideoCorpus {
        if self.rate <= 0.0 {
            return corpus.clone();
        }
        let population = corpus.len() as u64;
        let frames = corpus
            .frames()
            .iter()
            .map(|f| match self.decision(f.id, population) {
                Some(p) => perturb_frame(f, &p),
                None => f.clone(),
            })
            .collect();
        VideoCorpus::new(
            format!(
                "{}+{}@{}#{}",
                corpus.name,
                self.kind.name(),
                self.rate,
                self.seed
            ),
            corpus.fps,
            corpus.native_resolution,
            frames,
        )
    }
}

/// Applies one drawn perturbation to a frame — deterministic arithmetic,
/// no randomness beyond what [`PerturbPlan::decision`] already drew.
pub fn perturb_frame(frame: &Frame, perturbation: &Perturbation) -> Frame {
    let mut out = frame.clone();
    match *perturbation {
        Perturbation::Occlusion { x, y, w, h, severity } => {
            let patch = BBox::new(x, y, w, h);
            for obj in &mut out.objects {
                let frac = overlap_fraction(&obj.bbox, &patch);
                if frac > 0.0 {
                    obj.occlusion = obj.occlusion.max(severity * frac).min(1.0);
                }
            }
        }
        Perturbation::Glare { attenuation } => {
            for obj in &mut out.objects {
                let cx = (obj.bbox.x + 0.5 * obj.bbox.w).clamp(0.0, 1.0);
                let keep = 1.0 - attenuation * cx;
                obj.contrast = (obj.contrast * keep).clamp(0.01, 1.0);
            }
        }
        Perturbation::Shake { dx, dy } => {
            for obj in &mut out.objects {
                // BBox::new clamps into the unit square, shrinking boxes
                // pushed past the frame edge — objects shaken out of view
                // genuinely lose pixels.
                obj.bbox = BBox::new(obj.bbox.x + dx, obj.bbox.y + dy, obj.bbox.w, obj.bbox.h);
            }
        }
        Perturbation::LabelFlip => {
            for obj in &mut out.objects {
                obj.class = flip_class(obj.class);
            }
        }
        Perturbation::Drift { extra_copies } => {
            let base_id = out.objects.iter().map(|o| o.id).max().map_or(0, |m| m + 1);
            let cars: Vec<Object> = out
                .objects
                .iter()
                .filter(|o| o.class == ObjectClass::Car)
                .cloned()
                .collect();
            let mut next_id = base_id;
            for (i, car) in cars.iter().enumerate() {
                for k in 0..extra_copies {
                    let mut extra = car.clone();
                    extra.id = next_id;
                    next_id += 1;
                    // Offset each copy so it is a distinct physical car,
                    // deterministically placed from its ordinal.
                    let shift = 0.03 * (1.0 + k as f32) * (1.0 + (i % 3) as f32);
                    extra.bbox = BBox::new(
                        car.bbox.x + shift,
                        car.bbox.y + 0.4 * shift,
                        car.bbox.w,
                        car.bbox.h,
                    );
                    out.objects.push(extra);
                }
            }
        }
    }
    out
}

/// Fraction of `obj`'s area covered by `patch` (0 when disjoint).
fn overlap_fraction(obj: &BBox, patch: &BBox) -> f32 {
    let ix = (obj.x + obj.w).min(patch.x + patch.w) - obj.x.max(patch.x);
    let iy = (obj.y + obj.h).min(patch.y + patch.h) - obj.y.max(patch.y);
    if ix <= 0.0 || iy <= 0.0 {
        return 0.0;
    }
    let area = obj.area();
    if area <= 0.0 {
        0.0
    } else {
        (ix * iy / area).clamp(0.0, 1.0)
    }
}

/// The label-flip involution: confusable pairs swap, sensitive classes
/// are never touched (the privacy semantics must survive content faults).
pub fn flip_class(class: ObjectClass) -> ObjectClass {
    match class {
        ObjectClass::Car => ObjectClass::Truck,
        ObjectClass::Truck => ObjectClass::Car,
        ObjectClass::Bus => ObjectClass::Bicycle,
        ObjectClass::Bicycle => ObjectClass::Bus,
        ObjectClass::Person => ObjectClass::Person,
        ObjectClass::Face => ObjectClass::Face,
    }
}

/// Strictly parses a seed variable: unset defaults to 0, anything set
/// must be a decimal `u64`. (Mirrors `rt::fault`'s private helper — the
/// convention is shared, the code deliberately lives with its consumer.)
fn parse_seed(var: &str, raw: Option<&str>) -> Result<u64, String> {
    match raw {
        None => Ok(0),
        Some(s) => s
            .trim()
            .parse()
            .map_err(|_| format!("{var} must be a decimal u64 seed, got {s:?}")),
    }
}

/// Strictly parses a rate variable: unset means disabled, anything set
/// must be a finite `f64` in `[0, 1]`.
fn parse_rate(var: &str, raw: Option<&str>) -> Result<Option<f64>, String> {
    match raw {
        None => Ok(None),
        Some(s) => {
            let rate: f64 = s
                .trim()
                .parse()
                .map_err(|_| format!("{var} must be a rate in [0, 1], got {s:?}"))?;
            if !rate.is_finite() || !(0.0..=1.0).contains(&rate) {
                return Err(format!("{var} must be a rate in [0, 1], got {s:?}"));
            }
            Ok(Some(rate))
        }
    }
}

/// Avalanches `(seed, key)` into one well-mixed 64-bit stream seed
/// (SplitMix64 finalizer over both words — same construction as
/// `rt::fault`, salted differently via [`PERTURB_STREAM_SALT`]).
fn mix(seed: u64, key: u64) -> u64 {
    let mut x = seed ^ key.rotate_left(32) ^ 0x9E37_79B9_7F4A_7C15;
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::Resolution;

    fn test_frame(id: u64, cars: usize) -> Frame {
        let mut objects = Vec::new();
        for i in 0..cars {
            objects.push(Object {
                id: i as u64,
                class: ObjectClass::Car,
                bbox: BBox::new(0.1 + 0.15 * i as f32, 0.3, 0.12, 0.08),
                contrast: 0.6,
                occlusion: 0.1,
            });
        }
        objects.push(Object {
            id: 90,
            class: ObjectClass::Person,
            bbox: BBox::new(0.7, 0.6, 0.05, 0.15),
            contrast: 0.5,
            occlusion: 0.0,
        });
        Frame {
            id,
            ts_secs: id as f64 / 30.0,
            sequence: 0,
            objects,
        }
    }

    fn test_corpus(frames: usize) -> VideoCorpus {
        VideoCorpus::new(
            "t",
            30.0,
            Resolution::square(608),
            (0..frames).map(|i| test_frame(i as u64, 2 + i % 3)).collect(),
        )
    }

    #[test]
    fn kind_names_round_trip() {
        for kind in PerturbKind::ALL {
            assert_eq!(kind.name().parse::<PerturbKind>().unwrap(), kind);
        }
        assert!("fog".parse::<PerturbKind>().is_err());
        assert_eq!(
            "label_flip".parse::<PerturbKind>().unwrap(),
            PerturbKind::LabelFlip
        );
    }

    #[test]
    fn decisions_are_pure_and_seed_sensitive() {
        for kind in PerturbKind::ALL {
            let plan = PerturbPlan::new(7, 0.3, kind);
            let a: Vec<_> = (0..2_000).map(|i| plan.decision(i, 2_000)).collect();
            let b: Vec<_> = (0..2_000).map(|i| plan.decision(i, 2_000)).collect();
            assert_eq!(a, b, "{kind}: same plan must replay the same schedule");
            let other = PerturbPlan::new(8, 0.3, kind);
            let c: Vec<_> = (0..2_000).map(|i| other.decision(i, 2_000)).collect();
            assert_ne!(a, c, "{kind}: different seeds must schedule differently");
        }
    }

    #[test]
    fn decisions_are_order_independent() {
        let plan = PerturbPlan::new(3, 0.25, PerturbKind::Occlusion);
        let forward: Vec<_> = (0..1_000).map(|i| plan.decision(i, 1_000)).collect();
        let mut backward: Vec<_> = (0..1_000).rev().map(|i| plan.decision(i, 1_000)).collect();
        backward.reverse();
        assert_eq!(forward, backward);
    }

    #[test]
    fn frequency_tracks_rate_for_coin_flip_kinds() {
        for kind in [PerturbKind::Occlusion, PerturbKind::Glare, PerturbKind::Shake] {
            for &rate in &[0.05, 0.2, 0.5] {
                let plan = PerturbPlan::new(11, rate, kind);
                let n = 20_000u64;
                let hits = (0..n).filter(|&i| plan.decision(i, n).is_some()).count();
                let observed = hits as f64 / n as f64;
                assert!(
                    (observed - rate).abs() < 0.02,
                    "{kind} rate={rate} observed={observed}"
                );
            }
        }
    }

    #[test]
    fn drift_is_a_contiguous_tail_regime() {
        let plan = PerturbPlan::new(5, 0.25, PerturbKind::Drift);
        let n = 4_000u64;
        let decisions: Vec<_> = (0..n).map(|i| plan.decision(i, n)).collect();
        let start = (n as f64 * 0.75).ceil() as usize;
        assert!(decisions[..start].iter().all(Option::is_none));
        assert!(decisions[start..].iter().all(Option::is_some));
        for d in &decisions[start..] {
            let Some(Perturbation::Drift { extra_copies }) = d else {
                panic!("drift plan drew a non-drift perturbation: {d:?}");
            };
            assert!((1..=2).contains(extra_copies));
        }
    }

    #[test]
    fn zero_rate_apply_is_identity() {
        let corpus = test_corpus(50);
        for kind in PerturbKind::ALL {
            let plan = PerturbPlan::new(9, 0.0, kind);
            let out = plan.apply(&corpus);
            assert_eq!(out.name, corpus.name, "{kind}: zero rate must not rename");
            assert_eq!(out.frames(), corpus.frames());
            assert!((0..200).all(|i| plan.decision(i, 200).is_none()));
        }
    }

    #[test]
    fn apply_renames_and_replays_byte_identically() {
        let corpus = test_corpus(200);
        let plan = PerturbPlan::new(13, 0.2, PerturbKind::Glare);
        let a = plan.apply(&corpus);
        let b = plan.apply(&corpus);
        assert_eq!(a.name, "t+glare@0.2#13");
        assert_eq!(a.frames(), b.frames());
        assert_ne!(a.frames(), corpus.frames(), "a 20% glare plan must bite");
    }

    #[test]
    fn occlusion_raises_occlusion_proportionally() {
        let frame = test_frame(0, 2);
        let full = Perturbation::Occlusion {
            x: 0.0,
            y: 0.0,
            w: 1.0,
            h: 1.0,
            severity: 0.9,
        };
        let out = perturb_frame(&frame, &full);
        for obj in &out.objects {
            assert!((obj.occlusion - 0.9).abs() < 1e-6, "full cover ⇒ severity");
        }
        let miss = Perturbation::Occlusion {
            x: 0.0,
            y: 0.9,
            w: 0.05,
            h: 0.05,
            severity: 0.9,
        };
        assert_eq!(perturb_frame(&frame, &miss), frame, "disjoint patch is a no-op");
    }

    #[test]
    fn glare_attenuates_contrast_by_horizontal_position() {
        let frame = test_frame(0, 2);
        let out = perturb_frame(&frame, &Perturbation::Glare { attenuation: 0.5 });
        for (before, after) in frame.objects.iter().zip(&out.objects) {
            assert!(after.contrast <= before.contrast);
            assert!(after.contrast >= 0.01);
        }
        // The rightmost object (person at cx≈0.72) loses more than the
        // leftmost car (cx≈0.16).
        let left_keep = out.objects[0].contrast / frame.objects[0].contrast;
        let right_keep = out.objects.last().unwrap().contrast
            / frame.objects.last().unwrap().contrast;
        assert!(right_keep < left_keep);
    }

    #[test]
    fn shake_keeps_boxes_in_unit_square() {
        let frame = test_frame(0, 3);
        let out = perturb_frame(&frame, &Perturbation::Shake { dx: 0.3, dy: -0.5 });
        for obj in &out.objects {
            assert!(obj.bbox.x >= 0.0 && obj.bbox.x + obj.bbox.w <= 1.0 + f32::EPSILON);
            assert!(obj.bbox.y >= 0.0 && obj.bbox.y + obj.bbox.h <= 1.0 + f32::EPSILON);
        }
        assert_ne!(out, frame);
    }

    #[test]
    fn label_flip_is_an_involution_sparing_sensitive_classes() {
        for class in ObjectClass::ALL {
            assert_eq!(flip_class(flip_class(class)), class);
            if class.is_sensitive() {
                assert_eq!(flip_class(class), class);
            } else {
                assert_ne!(flip_class(class), class);
            }
        }
        let frame = test_frame(0, 2);
        let out = perturb_frame(&frame, &Perturbation::LabelFlip);
        assert_eq!(out.count_class(ObjectClass::Truck), 2);
        assert_eq!(out.count_class(ObjectClass::Car), 0);
        assert_eq!(out.count_class(ObjectClass::Person), 1, "person untouched");
        assert_eq!(perturb_frame(&out, &Perturbation::LabelFlip), frame);
    }

    #[test]
    fn drift_multiplies_cars_with_fresh_ids() {
        let frame = test_frame(0, 3);
        let out = perturb_frame(&frame, &Perturbation::Drift { extra_copies: 2 });
        assert_eq!(out.count_class(ObjectClass::Car), 9, "3 cars × (1 + 2 copies)");
        assert_eq!(out.count_class(ObjectClass::Person), 1);
        let mut ids: Vec<u64> = out.objects.iter().map(|o| o.id).collect();
        let before = ids.len();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), before, "all object ids must stay unique");
    }

    #[test]
    fn drifted_corpus_raises_tail_mean_car_count() {
        let corpus = test_corpus(1_000);
        let plan = PerturbPlan::new(21, 0.3, PerturbKind::Drift);
        let out = plan.apply(&corpus);
        let counts = out.ground_truth_counts(ObjectClass::Car);
        let head: f64 = counts[..700].iter().sum::<f64>() / 700.0;
        let tail: f64 = counts[700..].iter().sum::<f64>() / 300.0;
        assert!(
            tail > 2.0 * head,
            "drift tail must visibly shift prevalence: head={head} tail={tail}"
        );
    }

    #[test]
    fn env_parsing_is_strict_and_loud() {
        // Valid configurations.
        assert_eq!(PerturbPlan::parse_env(None, None, None), Ok(None));
        assert_eq!(PerturbPlan::parse_env(Some("7"), None, None), Ok(None));
        assert_eq!(PerturbPlan::parse_env(None, Some("0"), Some("glare")), Ok(None));
        assert_eq!(
            PerturbPlan::parse_env(Some("7"), Some("0.05"), Some("glare")),
            Ok(Some(PerturbPlan::new(7, 0.05, PerturbKind::Glare)))
        );
        assert_eq!(
            PerturbPlan::parse_env(None, Some("0.5"), Some("label-flip")),
            Ok(Some(PerturbPlan::new(0, 0.5, PerturbKind::LabelFlip)))
        );

        // Malformed values surface the variable name and raw string.
        for (seed, rate, bad) in [
            (Some("banana"), Some("0.1"), "banana"),
            (Some("-3"), Some("0.1"), "-3"),
            (None, Some("lots"), "lots"),
            (None, Some("1.5"), "1.5"),
            (None, Some("-0.1"), "-0.1"),
            (None, Some("NaN"), "NaN"),
            (None, Some("inf"), "inf"),
        ] {
            let err = PerturbPlan::parse_env(seed, rate, Some("glare")).unwrap_err();
            assert!(err.contains("SMOKESCREEN_PERTURB_"), "{err}");
            assert!(err.contains(bad), "{err} should quote {bad:?}");
        }

        // A bogus kind is loud even when the rate leaves the plan
        // disabled, and a positive rate with no kind names the missing
        // variable.
        let err = PerturbPlan::parse_env(None, None, Some("fog")).unwrap_err();
        assert!(err.contains(PERTURB_KIND_ENV) && err.contains("fog"), "{err}");
        let err = PerturbPlan::parse_env(None, Some("0.2"), None).unwrap_err();
        assert!(err.contains(PERTURB_KIND_ENV), "{err}");
        // A malformed seed is loud even when disabled.
        assert!(PerturbPlan::parse_env(Some("oops"), None, None).is_err());
    }

    #[test]
    fn perturb_stream_is_independent_of_fault_stream() {
        use smokescreen_rt::fault::FaultPlan;
        let perturbs = PerturbPlan::new(42, 0.2, PerturbKind::Occlusion);
        let faults = FaultPlan::new(42, 0.2);
        let both = (0..20_000u64)
            .filter(|&k| perturbs.decision(k, 20_000).is_some() && faults.fault_for(k).is_some())
            .count();
        // Independent 20% streams co-fire on ~4% of keys; identical
        // streams would co-fire on 20%.
        assert!((both as f64 / 20_000.0) < 0.08, "co-fire={both}");
    }
}
