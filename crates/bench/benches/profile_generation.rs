//! Profile-generation benchmarks, including the §3.3.2 ablations that
//! DESIGN.md calls out: output reuse (nested prefix sampling + cache) and
//! early stopping.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use smokescreen_core::{Aggregate, GeneratorConfig, ProfileGenerator, Workload};
use smokescreen_degrade::{CandidateGrid, RestrictionIndex};
use smokescreen_models::SimYoloV4;
use smokescreen_video::synth::DatasetPreset;
use smokescreen_video::{ObjectClass, Resolution, VideoCorpus};

struct Fixture {
    corpus: VideoCorpus,
    yolo: SimYoloV4,
    restrictions: RestrictionIndex,
}

fn fixture() -> Fixture {
    let corpus = DatasetPreset::Detrac.generate(1).slice(0, 2_000);
    let restrictions =
        RestrictionIndex::from_ground_truth(&corpus, &[ObjectClass::Person, ObjectClass::Face]);
    Fixture {
        corpus,
        yolo: SimYoloV4::new(1),
        restrictions,
    }
}

fn grid() -> CandidateGrid {
    CandidateGrid::explicit(
        (1..=10).map(|i| i as f64 / 100.0).collect(),
        vec![
            Resolution::square(192),
            Resolution::square(320),
            Resolution::square(608),
        ],
        vec![vec![], vec![ObjectClass::Person]],
    )
}

fn bench_generation(c: &mut Criterion) {
    let f = fixture();
    let workload = Workload {
        corpus: &f.corpus,
        detector: &f.yolo,
        class: ObjectClass::Car,
        aggregate: Aggregate::Avg,
        delta: 0.05,
    };
    let grid = grid();

    let mut group = c.benchmark_group("profile_generation");
    group.sample_size(10);

    group.bench_function("full_grid_no_early_stop", |b| {
        let gen = ProfileGenerator::new(
            &workload,
            &f.restrictions,
            GeneratorConfig {
                seed: 0,
                early_stop_improvement: None,
                early_stop_min_points: 3,
            },
        );
        b.iter(|| black_box(gen.generate(&grid, None).unwrap()))
    });

    group.bench_function("with_early_stop", |b| {
        let gen = ProfileGenerator::new(&workload, &f.restrictions, GeneratorConfig::default());
        b.iter(|| black_box(gen.generate(&grid, None).unwrap()))
    });

    group.finish();
}

fn bench_reuse_ablation(c: &mut Criterion) {
    // Quantify what the output cache buys: profile the same grid where
    // every candidate re-runs the detector (cold) vs. shared cache (the
    // generator's default).
    let f = fixture();
    let mut group = c.benchmark_group("reuse_ablation");
    group.sample_size(10);

    group.bench_function("detector_cold_runs", |b| {
        // Simulate no-reuse: run the detector on every sampled frame for
        // every fraction candidate independently.
        b.iter(|| {
            let mut acc = 0.0f64;
            for i in 1..=10usize {
                let n = f.corpus.len() * i / 100;
                for frame in f.corpus.frames().iter().take(n) {
                    acc += f
                        .yolo
                        .count_direct(frame, Resolution::square(320));
                }
            }
            black_box(acc)
        })
    });

    group.bench_function("detector_prefix_reuse", |b| {
        // With nested prefixes, only the largest fraction's frames run.
        b.iter(|| {
            let n = f.corpus.len() / 10;
            let mut acc = 0.0f64;
            for frame in f.corpus.frames().iter().take(n) {
                acc += f.yolo.count_direct(frame, Resolution::square(320));
            }
            black_box(acc)
        })
    });

    group.finish();
}

/// Helper trait call without importing Detector's name into bench scope.
trait CountDirect {
    fn count_direct(&self, frame: &smokescreen_video::Frame, res: Resolution) -> f64;
}

impl CountDirect for SimYoloV4 {
    fn count_direct(&self, frame: &smokescreen_video::Frame, res: Resolution) -> f64 {
        use smokescreen_models::Detector as _;
        self.count(frame, res, ObjectClass::Car)
    }
}

criterion_group!(benches, bench_generation, bench_reuse_ablation);
criterion_main!(benches);
