//! Profile-generation benchmarks, including the §3.3.2 ablations that
//! DESIGN.md calls out: output reuse (nested prefix sampling + cache) and
//! early stopping.
//!
//! Timed with the in-tree `smokescreen_rt::bench` timer under the libtest
//! harness; `cargo test -- --nocapture` prints the numbers.

use smokescreen_core::{Aggregate, GeneratorConfig, ProfileGenerator, Workload};
use smokescreen_degrade::{CandidateGrid, RestrictionIndex};
use smokescreen_models::SimYoloV4;
use smokescreen_rt::bench::bench;
use smokescreen_video::synth::DatasetPreset;
use smokescreen_video::{ObjectClass, Resolution, VideoCorpus};

struct Fixture {
    corpus: VideoCorpus,
    yolo: SimYoloV4,
    restrictions: RestrictionIndex,
}

fn fixture() -> Fixture {
    let corpus = DatasetPreset::Detrac.generate(1).slice(0, 2_000);
    let restrictions =
        RestrictionIndex::from_ground_truth(&corpus, &[ObjectClass::Person, ObjectClass::Face]);
    Fixture {
        corpus,
        yolo: SimYoloV4::new(1),
        restrictions,
    }
}

fn grid() -> CandidateGrid {
    CandidateGrid::explicit(
        (1..=10).map(|i| i as f64 / 100.0).collect(),
        vec![
            Resolution::square(192),
            Resolution::square(320),
            Resolution::square(608),
        ],
        vec![vec![], vec![ObjectClass::Person]],
    )
}

#[test]
fn bench_generation() {
    let f = fixture();
    let workload = Workload {
        corpus: &f.corpus,
        detector: &f.yolo,
        class: ObjectClass::Car,
        aggregate: Aggregate::Avg,
        delta: 0.05,
    };
    let grid = grid();

    let no_stop = ProfileGenerator::new(
        &workload,
        &f.restrictions,
        GeneratorConfig {
            seed: 0,
            early_stop_improvement: None,
            ..GeneratorConfig::default()
        },
    );
    bench("profile_generation/full_grid_no_early_stop", 3, || {
        no_stop.generate(&grid, None).unwrap()
    });

    let default_gen = ProfileGenerator::new(&workload, &f.restrictions, GeneratorConfig::default());
    bench("profile_generation/with_early_stop", 3, || {
        default_gen.generate(&grid, None).unwrap()
    });
}

#[test]
fn bench_reuse_ablation() {
    // Quantify what the output cache buys: profile the same grid where
    // every candidate re-runs the detector (cold) vs. shared cache (the
    // generator's default).
    let f = fixture();

    bench("reuse_ablation/detector_cold_runs", 3, || {
        // Simulate no-reuse: run the detector on every sampled frame for
        // every fraction candidate independently.
        let mut acc = 0.0f64;
        for i in 1..=10usize {
            let n = f.corpus.len() * i / 100;
            for frame in f.corpus.frames().iter().take(n) {
                acc += f.yolo.count_direct(frame, Resolution::square(320));
            }
        }
        acc
    });

    bench("reuse_ablation/detector_prefix_reuse", 3, || {
        // With nested prefixes, only the largest fraction's frames run.
        let n = f.corpus.len() / 10;
        let mut acc = 0.0f64;
        for frame in f.corpus.frames().iter().take(n) {
            acc += f.yolo.count_direct(frame, Resolution::square(320));
        }
        acc
    });
}

/// Helper trait call without importing Detector's name into bench scope.
trait CountDirect {
    fn count_direct(&self, frame: &smokescreen_video::Frame, res: Resolution) -> f64;
}

impl CountDirect for SimYoloV4 {
    fn count_direct(&self, frame: &smokescreen_video::Frame, res: Resolution) -> f64 {
        use smokescreen_models::Detector as _;
        self.count(frame, res, ObjectClass::Car)
    }
}
