//! Batch vs. incremental estimator kernels across the §3.3.2 sweep.
//!
//! Profile generation answers every fraction candidate within a
//! `(resolution, removal)` cell over nested prefix samples. The batch
//! reference path (`ProfileGenerator::profile_point`) rebuilds the view,
//! re-fetches the full prefix and re-runs the estimator from scratch per
//! candidate — `O(n)` for mean-style aggregates and `O(n log n)` re-sorts
//! for order-style ones. The incremental path inside `generate` carries an
//! `AggregateKernel` across the sweep, ingesting only the `Δn` new outputs
//! per step.
//!
//! This bench times both paths over a paper-scale corpus (UA-DETRAC,
//! 15,210 frames) on a 100-step fraction ladder and asserts the ≥3×
//! estimation-time reduction on the quantile-heavy aggregates (MAX and
//! MEDIAN), where re-sorting dominates the batch cost. It also asserts the
//! two paths produce bit-identical profile points. Results land in
//! `bench_results/estimator_kernels.csv`.

use std::path::Path;
use std::time::Instant;

use smokescreen_bench::table::{fmt, Table};
use smokescreen_core::{Aggregate, GeneratorConfig, ProfileGenerator, ProfilePoint, Workload};
use smokescreen_degrade::{CandidateGrid, InterventionSet, RestrictionIndex};
use smokescreen_models::{OutputCache, SimYoloV4};
use smokescreen_video::synth::DatasetPreset;
use smokescreen_video::ObjectClass;

#[test]
fn bench_estimator_kernels_batch_vs_incremental() {
    // Full UA-DETRAC preset: 15,210 frames, the paper's corpus size.
    let corpus = DatasetPreset::Detrac.generate(1);
    let yolo = SimYoloV4::new(1);
    let restrictions = RestrictionIndex::from_ground_truth(&corpus, &[]);
    // One native-resolution cell with the maximum number of prefix steps:
    // a 100-step ascending fraction ladder.
    let fractions: Vec<f64> = (1..=100).map(|i| f64::from(i) / 100.0).collect();
    let grid = CandidateGrid::explicit(fractions.clone(), vec![], vec![]);

    let cases = [
        ("MAX(r=0.99)", Aggregate::Max { r: 0.99 }, true),
        ("MEDIAN(r=0.5)", Aggregate::Quantile { r: 0.5 }, true),
        ("AVG", Aggregate::Avg, false),
    ];

    let mut table = Table::new(
        "Estimator kernels: batch vs. incremental fraction sweep (UA-DETRAC 15,210 frames, 100 fractions, native resolution)",
        &[
            "aggregate",
            "candidates",
            "n_max",
            "batch_estimation_ms",
            "incremental_estimation_ms",
            "speedup",
        ],
    );

    for (label, aggregate, quantile_heavy) in cases {
        let workload = Workload {
            corpus: &corpus,
            detector: &yolo,
            class: ObjectClass::Car,
            aggregate,
            delta: 0.05,
        };
        let gen = ProfileGenerator::new(
            &workload,
            &restrictions,
            GeneratorConfig {
                early_stop_improvement: None, // sweep the full ladder
                ..GeneratorConfig::default()
            },
        );

        // Batch reference: per-candidate `profile_point`, timed exactly as
        // the pre-kernel generator timed its sweep. Starts from a cold
        // cache, as `generate` does — both paths pay the same one-miss-
        // per-(frame, resolution) model cost.
        let batch_cache = OutputCache::new(&yolo);
        let mut batch_points: Vec<ProfilePoint> = Vec::new();
        let mut batch_ns: u128 = 0;
        for &f in &fractions {
            let set = InterventionSet::sampling(f);
            let t0 = Instant::now();
            let point = gen.profile_point(&set, None, &batch_cache).unwrap();
            batch_ns += t0.elapsed().as_nanos();
            batch_points.push(point);
        }
        let batch_ms = batch_ns as f64 / 1e6;

        // Incremental: the kernel-backed sweep inside `generate`.
        let (profile, report) = gen.generate(&grid, None).unwrap();
        let incremental_ms = report.estimation_time_ms;

        assert_eq!(
            profile.points, batch_points,
            "{label}: incremental sweep must be bit-identical to the batch reference"
        );

        let n_max = batch_points.last().unwrap().n;
        let speedup = batch_ms / incremental_ms.max(1e-9);
        println!(
            "estimator_kernels/{label}: batch {batch_ms:.1} ms vs incremental \
             {incremental_ms:.1} ms ({speedup:.1}×, ingest {:.1} ms + bound {:.1} ms)",
            report.estimation_ingest_ms, report.estimation_bound_ms
        );
        table.push_row(vec![
            label.into(),
            fractions.len().to_string(),
            n_max.to_string(),
            fmt(batch_ms),
            fmt(incremental_ms),
            fmt(speedup),
        ]);

        if quantile_heavy {
            assert!(
                speedup >= 3.0,
                "{label}: incremental sweep must cut estimation time ≥3×, got {speedup:.2}×"
            );
        }
    }

    // cwd is crates/bench under `cargo test`; resolve the workspace root.
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../bench_results");
    let path = table.write_csv(&dir, "estimator_kernels").unwrap();
    println!("{}", table.render());
    println!("wrote {}", path.display());
}
