//! Estimator micro-benchmarks (§5.3.1's "tens of milliseconds" claim).
//!
//! Measures the pure estimation cost — Algorithm 1, Algorithm 2,
//! Algorithm 3 repair, and the baselines — as a function of sample size.
//! The paper's point is that these are negligible next to model
//! inference; the numbers here make that concrete.
//!
//! Runs under the ordinary libtest harness via the in-tree
//! `smokescreen_rt::bench` timer, so `cargo test -q` compiles and
//! exercises every benchmark; `cargo test -- --nocapture` (or
//! `cargo bench`) prints the timings.

use smokescreen_rt::bench::bench;
use smokescreen_rt::rng::StdRng;
use smokescreen_stats::bounds::{clt, ebgs, hoeffding, hoeffding_serfling};
use smokescreen_stats::estimators::quantile::stein_estimate;
use smokescreen_stats::{avg_estimate, quantile_estimate, repair_mean_bound, Extreme};

fn sample(n: usize) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(7);
    (0..n).map(|_| rng.gen_range(0.0..9.0_f64).floor()).collect()
}

const SIZES: [usize; 3] = [100, 1_000, 10_000];

#[test]
fn bench_mean_estimators() {
    for &n in &SIZES {
        let data = sample(n);
        let pop = n * 20;
        bench(&format!("mean/smokescreen_avg/{n}"), 30, || {
            avg_estimate(&data, pop, 0.05).unwrap()
        });
        bench(&format!("mean/ebgs/{n}"), 30, || {
            ebgs::run(&data, pop, 0.05).unwrap()
        });
        bench(&format!("mean/hoeffding/{n}"), 30, || {
            hoeffding::interval(&data, pop, 0.05).unwrap()
        });
        bench(&format!("mean/hoeffding_serfling/{n}"), 30, || {
            hoeffding_serfling::interval(&data, pop, 0.05).unwrap()
        });
        bench(&format!("mean/clt/{n}"), 30, || {
            clt::interval(&data, pop, 0.05).unwrap()
        });
    }
}

#[test]
fn bench_quantile_estimators() {
    for &n in &SIZES {
        let data = sample(n);
        let pop = n * 20;
        bench(&format!("quantile/smokescreen_max/{n}"), 30, || {
            quantile_estimate(&data, pop, 0.99, 0.05, Extreme::Max).unwrap()
        });
        bench(&format!("quantile/stein/{n}"), 30, || {
            stein_estimate(&data, pop, 0.99, 0.05).unwrap()
        });
    }
}

#[test]
fn bench_repair() {
    let degraded = avg_estimate(&sample(2_000), 40_000, 0.05).unwrap();
    let correction = avg_estimate(&sample(800), 40_000, 0.05).unwrap();
    bench("repair_mean_bound", 100, || {
        repair_mean_bound(&degraded, &correction).unwrap()
    });
}
