//! Estimator micro-benchmarks (§5.3.1's "tens of milliseconds" claim).
//!
//! Measures the pure estimation cost — Algorithm 1, Algorithm 2,
//! Algorithm 3 repair, and the baselines — as a function of sample size.
//! The paper's point is that these are negligible next to model
//! inference; the numbers here make that concrete.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use smokescreen_stats::bounds::{clt, ebgs, hoeffding, hoeffding_serfling};
use smokescreen_stats::estimators::quantile::stein_estimate;
use smokescreen_stats::{avg_estimate, quantile_estimate, repair_mean_bound, Extreme};

fn sample(n: usize) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(7);
    (0..n).map(|_| rng.gen_range(0.0..9.0_f64).floor()).collect()
}

fn bench_mean_estimators(c: &mut Criterion) {
    let mut group = c.benchmark_group("mean_estimators");
    for &n in &[100usize, 1_000, 10_000] {
        let data = sample(n);
        let pop = n * 20;
        group.bench_with_input(BenchmarkId::new("smokescreen_avg", n), &data, |b, d| {
            b.iter(|| avg_estimate(black_box(d), pop, 0.05).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("ebgs", n), &data, |b, d| {
            b.iter(|| ebgs::run(black_box(d), pop, 0.05).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("hoeffding", n), &data, |b, d| {
            b.iter(|| hoeffding::interval(black_box(d), pop, 0.05).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("hoeffding_serfling", n), &data, |b, d| {
            b.iter(|| hoeffding_serfling::interval(black_box(d), pop, 0.05).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("clt", n), &data, |b, d| {
            b.iter(|| clt::interval(black_box(d), pop, 0.05).unwrap())
        });
    }
    group.finish();
}

fn bench_quantile_estimators(c: &mut Criterion) {
    let mut group = c.benchmark_group("quantile_estimators");
    for &n in &[100usize, 1_000, 10_000] {
        let data = sample(n);
        let pop = n * 20;
        group.bench_with_input(BenchmarkId::new("smokescreen_max", n), &data, |b, d| {
            b.iter(|| quantile_estimate(black_box(d), pop, 0.99, 0.05, Extreme::Max).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("stein", n), &data, |b, d| {
            b.iter(|| stein_estimate(black_box(d), pop, 0.99, 0.05).unwrap())
        });
    }
    group.finish();
}

fn bench_repair(c: &mut Criterion) {
    let degraded = avg_estimate(&sample(2_000), 40_000, 0.05).unwrap();
    let correction = avg_estimate(&sample(800), 40_000, 0.05).unwrap();
    c.bench_function("repair_mean_bound", |b| {
        b.iter(|| repair_mean_bound(black_box(&degraded), black_box(&correction)).unwrap())
    });
}

criterion_group!(
    benches,
    bench_mean_estimators,
    bench_quantile_estimators,
    bench_repair
);
criterion_main!(benches);
