//! Wall-clock speedup of parallel profile generation.
//!
//! The §5.3.1 breakdown shows model time dominating estimation time by
//! orders of magnitude, and real model invocations are latency-bound
//! (GPU/accelerator round trips), not host-CPU-bound. The simulated
//! detectors here answer in nanoseconds, so to measure what `rt::pool`
//! buys on the paper's actual bottleneck this bench wraps a detector in a
//! fixed per-inference latency and times `ProfileGenerator::generate` at
//! 1 vs. 4 workers. Sleeping inferences overlap across workers even on a
//! single-core host, so the measured ratio reflects the deployment-shaped
//! speedup rather than the host's core count.
//!
//! Results land in `bench_results/parallel_speedup.csv`; the test also
//! asserts the PR's acceptance floor (≥ 2× at 4 workers) and that the
//! parallel profile is byte-identical to the sequential one.

use std::path::Path;
use std::time::{Duration, Instant};

use smokescreen_bench::table::{fmt, Table};
use smokescreen_core::{Aggregate, GeneratorConfig, ProfileGenerator, Workload};
use smokescreen_degrade::{CandidateGrid, RestrictionIndex};
use smokescreen_models::{Detections, Detector, SimYoloV4};
use smokescreen_video::synth::DatasetPreset;
use smokescreen_video::{Frame, ObjectClass, Resolution};

/// A detector with a simulated fixed per-inference latency.
struct LatencyDetector {
    inner: SimYoloV4,
    latency: Duration,
}

impl Detector for LatencyDetector {
    fn name(&self) -> &str {
        "sim-yolov4-latency"
    }

    fn native_resolution(&self) -> Resolution {
        self.inner.native_resolution()
    }

    fn supports(&self, res: Resolution) -> bool {
        self.inner.supports(res)
    }

    fn detect(&self, frame: &Frame, res: Resolution) -> Detections {
        std::thread::sleep(self.latency);
        self.inner.detect(frame, res)
    }

    fn inference_cost_ms(&self, res: Resolution) -> f64 {
        self.inner.inference_cost_ms(res)
    }
}

#[test]
fn bench_parallel_generation_speedup() {
    let corpus = DatasetPreset::Detrac.generate(1).slice(0, 1_000);
    let detector = LatencyDetector {
        inner: SimYoloV4::new(1),
        latency: Duration::from_micros(300),
    };
    let restrictions =
        RestrictionIndex::from_ground_truth(&corpus, &[ObjectClass::Person, ObjectClass::Face]);
    let workload = Workload {
        corpus: &corpus,
        detector: &detector,
        class: ObjectClass::Car,
        aggregate: Aggregate::Avg,
        delta: 0.05,
    };
    // Six resolutions × two combos = 12 cells; at 4 workers the heavy
    // (cold-cache) resolution cells pack into ~2 waves vs. 6 sequential.
    let grid = CandidateGrid::explicit(
        vec![0.02, 0.05, 0.1],
        (1..=6).map(|i| Resolution::square(i * 96)).collect(),
        vec![vec![], vec![ObjectClass::Person]],
    );

    let mut timed = Vec::new();
    let mut profiles = Vec::new();
    for threads in [1usize, 4] {
        let gen = ProfileGenerator::new(
            &workload,
            &restrictions,
            GeneratorConfig {
                early_stop_improvement: None,
                threads,
                ..GeneratorConfig::default()
            },
        );
        let start = Instant::now();
        let (profile, report) = gen.generate(&grid, None).unwrap();
        let wall_ms = start.elapsed().as_secs_f64() * 1e3;
        println!(
            "parallel_speedup/threads={threads}: {wall_ms:.1} ms wall, \
             {} model runs, {} cache hits",
            report.model_runs, report.cache_hits
        );
        timed.push((threads, wall_ms));
        profiles.push(profile);
    }

    assert_eq!(
        profiles[0], profiles[1],
        "parallel profile must be byte-identical to sequential"
    );

    let speedup = timed[0].1 / timed[1].1;
    let mut table = Table::new(
        "Parallel profile generation: wall-clock vs. workers (300µs simulated inference latency, UA-DETRAC 1000 frames, 36-candidate grid)",
        &["threads", "wall_ms", "speedup_vs_seq"],
    );
    for &(threads, wall_ms) in &timed {
        table.push_row(vec![
            threads.to_string(),
            fmt(wall_ms),
            fmt(timed[0].1 / wall_ms),
        ]);
    }
    // cwd is crates/bench under `cargo test`; resolve the workspace root.
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../bench_results");
    let path = table.write_csv(&dir, "parallel_speedup").unwrap();
    println!("{}", table.render());
    println!("wrote {}", path.display());

    assert!(
        speedup >= 2.0,
        "4 workers must be ≥2× over sequential on latency-bound inference, got {speedup:.2}×"
    );
}
