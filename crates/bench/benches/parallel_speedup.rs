//! Wall-clock speedup of parallel profile generation.
//!
//! The §5.3.1 breakdown shows model time dominating estimation time by
//! orders of magnitude, and real model invocations are latency-bound
//! (GPU/accelerator round trips), not host-CPU-bound. The simulated
//! detectors here answer in nanoseconds, so to measure what `rt::pool`
//! buys on the paper's actual bottleneck this bench wraps a detector in a
//! fixed per-inference latency and times `ProfileGenerator::generate` at
//! 1/2/4/8/16 workers. Sleeping inferences overlap across workers even on
//! a single-core host, so the measured ratio reflects the
//! deployment-shaped speedup rather than the host's core count.
//!
//! Results land in `bench_results/parallel_speedup.csv`; the test also
//! asserts the scaling floors (≥2× at 4 workers, ≥2.5× at 8, ≥4× at 16 —
//! the committed `BENCH_8.json` records the tighter full-run numbers)
//! and that every parallel profile is byte-identical to the sequential
//! one.

use std::path::Path;
use std::time::{Duration, Instant};

use smokescreen_bench::table::{fmt, Table};
use smokescreen_core::{Aggregate, GeneratorConfig, ProfileGenerator, Workload};
use smokescreen_degrade::{CandidateGrid, RestrictionIndex};
use smokescreen_models::{Detections, Detector, SimYoloV4};
use smokescreen_video::synth::DatasetPreset;
use smokescreen_video::{Frame, ObjectClass, Resolution};

/// A detector with a simulated fixed per-inference latency.
struct LatencyDetector {
    inner: SimYoloV4,
    latency: Duration,
}

impl Detector for LatencyDetector {
    fn name(&self) -> &str {
        "sim-yolov4-latency"
    }

    fn native_resolution(&self) -> Resolution {
        self.inner.native_resolution()
    }

    fn supports(&self, res: Resolution) -> bool {
        self.inner.supports(res)
    }

    fn detect(&self, frame: &Frame, res: Resolution) -> Detections {
        std::thread::sleep(self.latency);
        self.inner.detect(frame, res)
    }

    fn inference_cost_ms(&self, res: Resolution) -> f64 {
        self.inner.inference_cost_ms(res)
    }
}

#[test]
fn bench_parallel_generation_speedup() {
    let corpus = DatasetPreset::Detrac.generate(1).slice(0, 1_000);
    let detector = LatencyDetector {
        inner: SimYoloV4::new(1),
        latency: Duration::from_micros(300),
    };
    let restrictions =
        RestrictionIndex::from_ground_truth(&corpus, &[ObjectClass::Person, ObjectClass::Face]);
    let workload = Workload {
        corpus: &corpus,
        detector: &detector,
        class: ObjectClass::Car,
        aggregate: Aggregate::Avg,
        delta: 0.05,
    };
    // Sixteen resolutions × two combos: enough heavy (cold-cache) cells
    // that 16 workers still have candidate-level parallelism to consume,
    // on top of the per-frame parallelism inside each cell.
    let grid = CandidateGrid::explicit(
        vec![0.02, 0.05, 0.1],
        (2..=17).map(|i| Resolution::square(i * 32)).collect(),
        vec![vec![], vec![ObjectClass::Person]],
    );

    let mut timed = Vec::new();
    let mut profiles = Vec::new();
    for threads in [1usize, 2, 4, 8, 16] {
        let gen = ProfileGenerator::new(
            &workload,
            &restrictions,
            GeneratorConfig {
                early_stop_improvement: None,
                threads,
                ..GeneratorConfig::default()
            },
        );
        let start = Instant::now();
        let (profile, report) = gen.generate(&grid, None).unwrap();
        let wall_ms = start.elapsed().as_secs_f64() * 1e3;
        println!(
            "parallel_speedup/threads={threads}: {wall_ms:.1} ms wall, \
             {} model runs, {} cache hits",
            report.model_runs, report.cache_hits
        );
        timed.push((threads, wall_ms));
        profiles.push(profile);
    }

    for (i, profile) in profiles.iter().enumerate().skip(1) {
        assert_eq!(
            &profiles[0], profile,
            "profile at {} workers must be byte-identical to sequential",
            timed[i].0
        );
    }

    let mut table = Table::new(
        "Parallel profile generation: wall-clock vs. workers (300µs simulated inference latency, UA-DETRAC 1000 frames, 96-candidate grid)",
        &["threads", "wall_ms", "speedup_vs_seq"],
    );
    for &(threads, wall_ms) in &timed {
        table.push_row(vec![
            threads.to_string(),
            fmt(wall_ms),
            fmt(timed[0].1 / wall_ms),
        ]);
    }
    // cwd is crates/bench under `cargo test`; resolve the workspace root.
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../bench_results");
    let path = table.write_csv(&dir, "parallel_speedup").unwrap();
    println!("{}", table.render());
    println!("wrote {}", path.display());

    // Conservative in-test floors: shared CI hosts are noisy, so the
    // tighter ISSUE 8 targets (≥2.8× at 8, ≥5× at 16) are gated on the
    // committed full trajectory run instead (`trajectory` binary).
    for (want_threads, floor) in [(4usize, 2.0), (8, 2.5), (16, 4.0)] {
        let (_, wall) = timed
            .iter()
            .copied()
            .find(|&(t, _)| t == want_threads)
            .expect("bench ran this worker count");
        let speedup = timed[0].1 / wall;
        assert!(
            speedup >= floor,
            "{want_threads} workers must be ≥{floor}× over sequential on \
             latency-bound inference, got {speedup:.2}×"
        );
    }
}
