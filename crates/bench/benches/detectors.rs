//! Detector-simulator throughput: confirms the simulated UDFs are cheap
//! enough that hundred-trial experiments are estimation-bound, and
//! compares the analytic path against the pixel-level blob path.
//!
//! Timed with the in-tree `smokescreen_rt::bench` timer under the libtest
//! harness; `cargo test -- --nocapture` prints the numbers.

use smokescreen_models::blob::BlobDetector;
use smokescreen_models::{Detector, Oracle, SimMaskRcnn, SimMtcnn, SimYoloV4};
use smokescreen_rt::bench::bench;
use smokescreen_video::synth::DatasetPreset;
use smokescreen_video::{ObjectClass, Resolution};

#[test]
fn bench_analytic_detectors() {
    let corpus = DatasetPreset::Detrac.generate(3).slice(0, 200);
    let frames = corpus.frames();
    let res = Resolution::square(320);

    let yolo = SimYoloV4::new(1);
    let mask = SimMaskRcnn::new(1);
    let mtcnn = SimMtcnn::new(1);

    bench("detectors/sim_yolov4/200_frames", 20, || {
        frames
            .iter()
            .map(|f| yolo.count(f, res, ObjectClass::Car))
            .sum::<f64>()
    });
    bench("detectors/sim_mask_rcnn/200_frames", 20, || {
        frames
            .iter()
            .map(|f| mask.count(f, res, ObjectClass::Car))
            .sum::<f64>()
    });
    bench("detectors/sim_mtcnn/200_frames", 20, || {
        frames
            .iter()
            .map(|f| mtcnn.count(f, res, ObjectClass::Face))
            .sum::<f64>()
    });
    bench("detectors/oracle/200_frames", 20, || {
        frames
            .iter()
            .map(|f| Oracle.count(f, res, ObjectClass::Car))
            .sum::<f64>()
    });
}

#[test]
fn bench_blob_pixels() {
    let corpus = DatasetPreset::Detrac.generate(4).slice(0, 4);
    let frames = corpus.frames();
    let blob = BlobDetector::default();

    for side in [64u32, 160, 320] {
        let res = Resolution::square(side);
        bench(&format!("blob/4_frames/{side}px"), 3, || {
            frames
                .iter()
                .map(|f| blob.count(f, res, ObjectClass::Car))
                .sum::<f64>()
        });
    }
}
