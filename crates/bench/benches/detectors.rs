//! Detector-simulator throughput: confirms the simulated UDFs are cheap
//! enough that hundred-trial experiments are estimation-bound, and
//! compares the analytic path against the pixel-level blob path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use smokescreen_models::blob::BlobDetector;
use smokescreen_models::{Detector, Oracle, SimMaskRcnn, SimMtcnn, SimYoloV4};
use smokescreen_video::synth::DatasetPreset;
use smokescreen_video::{ObjectClass, Resolution};

fn bench_analytic_detectors(c: &mut Criterion) {
    let corpus = DatasetPreset::Detrac.generate(3).slice(0, 200);
    let frames = corpus.frames();
    let res = Resolution::square(320);

    let yolo = SimYoloV4::new(1);
    let mask = SimMaskRcnn::new(1);
    let mtcnn = SimMtcnn::new(1);

    let mut group = c.benchmark_group("analytic_detectors_200_frames");
    group.bench_function("sim_yolov4", |b| {
        b.iter(|| {
            frames
                .iter()
                .map(|f| yolo.count(black_box(f), res, ObjectClass::Car))
                .sum::<f64>()
        })
    });
    group.bench_function("sim_mask_rcnn", |b| {
        b.iter(|| {
            frames
                .iter()
                .map(|f| mask.count(black_box(f), res, ObjectClass::Car))
                .sum::<f64>()
        })
    });
    group.bench_function("sim_mtcnn", |b| {
        b.iter(|| {
            frames
                .iter()
                .map(|f| mtcnn.count(black_box(f), res, ObjectClass::Face))
                .sum::<f64>()
        })
    });
    group.bench_function("oracle", |b| {
        b.iter(|| {
            frames
                .iter()
                .map(|f| Oracle.count(black_box(f), res, ObjectClass::Car))
                .sum::<f64>()
        })
    });
    group.finish();
}

fn bench_blob_pixels(c: &mut Criterion) {
    let corpus = DatasetPreset::Detrac.generate(4).slice(0, 4);
    let frames = corpus.frames();
    let blob = BlobDetector::default();

    let mut group = c.benchmark_group("blob_detector_4_frames");
    group.sample_size(10);
    for side in [64u32, 160, 320] {
        group.bench_with_input(BenchmarkId::from_parameter(side), &side, |b, &side| {
            let res = Resolution::square(side);
            b.iter(|| {
                frames
                    .iter()
                    .map(|f| blob.count(black_box(f), res, ObjectClass::Car))
                    .sum::<f64>()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_analytic_detectors, bench_blob_pixels);
criterion_main!(benches);
