//! End-to-end tests of the `trajectory` binary: smoke run, schema gate,
//! and the regression exit code (ISSUE 6 acceptance: non-zero exit when
//! fed a synthetically regressed prior file).

use std::fs;
use std::path::{Path, PathBuf};
use std::process::Command;

use smokescreen_bench::trajectory::{schema_of, Trajectory, SCHEMA};
use smokescreen_rt::json::{Json, ToJson};

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_trajectory")
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("smokescreen-trajectory-cli-{tag}"));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

/// One shared smoke run for the whole suite (the run itself is the slow
/// part); everything downstream works on the emitted file.
fn smoke_run(dir: &Path) -> PathBuf {
    let out = Command::new(bin())
        .args([
            "run",
            "--smoke",
            "--reps",
            "2",
            "--pr",
            "6",
            "--out",
            dir.to_str().unwrap(),
        ])
        .output()
        .expect("trajectory binary runs");
    assert!(
        out.status.success(),
        "smoke run failed:\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    dir.join("BENCH_6.json")
}

#[test]
fn smoke_run_emits_valid_trajectory_and_check_gates_regressions() {
    let dir = tmp_dir("main");
    let path = smoke_run(&dir);

    // --- The emitted file parses, carries the schema tag, and matches
    // the structural golden the workspace test pins. ---
    let cur = Trajectory::load(&path).expect("emitted trajectory loads");
    assert_eq!(cur.schema, SCHEMA);
    assert_eq!(cur.pr, 6);
    assert!(cur.smoke);
    assert!(cur.benches.len() >= 10, "all suite benches recorded");
    for b in &cur.benches {
        assert!(b.median_wall_ms > 0.0, "{}: empty median", b.name);
        assert!(b.p95_wall_ms >= b.median_wall_ms, "{}", b.name);
        assert!(b.min_wall_ms <= b.median_wall_ms, "{}", b.name);
        assert_eq!(b.reps, 2, "{}", b.name);
    }
    let golden = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../tests/golden/trajectory_schema.json");
    let golden = Json::parse(&fs::read_to_string(golden).unwrap()).unwrap();
    assert_eq!(
        schema_of(&cur.to_json()),
        golden,
        "emitted file drifted from the schema golden"
    );

    // --- Self-check: a file never regresses against itself. ---
    let check = |prev: &Path, cur: &Path, extra: &[&str]| {
        Command::new(bin())
            .args(["check", "--prev", prev.to_str().unwrap(), "--cur", cur.to_str().unwrap()])
            .args(extra)
            .output()
            .expect("trajectory check runs")
    };
    let self_check = check(&path, &path, &[]);
    assert!(
        self_check.status.success(),
        "self-check must pass: {}",
        String::from_utf8_lossy(&self_check.stderr)
    );

    // --- Synthetically regressed prior: every median 10× faster in the
    // prior file makes the current run a regression → non-zero exit. ---
    let mut prior = cur.clone();
    prior.pr = 5;
    for b in &mut prior.benches {
        b.median_wall_ms /= 10.0;
    }
    let prior_path = prior.save(&dir).unwrap();
    let regressed = check(&prior_path, &path, &[]);
    assert!(
        !regressed.status.success(),
        "regressed check must exit non-zero"
    );
    let stderr = String::from_utf8_lossy(&regressed.stderr);
    assert!(stderr.contains("REGRESSION"), "stderr: {stderr}");
    let stdout = String::from_utf8_lossy(&regressed.stdout);
    assert!(stdout.contains("REGRESSED"), "delta table flags the rows");

    // --- A shrunken derived ratio alone also gates. ---
    let mut slower_ratio = cur.clone();
    slower_ratio.pr = 5;
    slower_ratio.derived.ingest_speedup_max = cur.derived.ingest_speedup_max * 10.0;
    let ratio_path = slower_ratio.save(&dir).unwrap();
    let ratio_check = check(&ratio_path, &path, &[]);
    assert!(
        !ratio_check.status.success(),
        "derived-ratio shrinkage must exit non-zero"
    );

    // --- The threshold flag loosens the gate: at 1000% nothing fails. ---
    let loose = check(&prior_path, &path, &["--threshold", "10.0"]);
    assert!(
        loose.status.success(),
        "10.0 threshold must absorb a 10× delta: {}",
        String::from_utf8_lossy(&loose.stderr)
    );

    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn check_rejects_malformed_and_missing_files() {
    let dir = tmp_dir("malformed");
    let bad = dir.join("BENCH_9.json");
    fs::write(&bad, "{\"schema\": \"smokescreen-trajectory/1\"").unwrap();
    let out = Command::new(bin())
        .args(["check", "--prev", bad.to_str().unwrap(), "--cur", bad.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2), "malformed JSON is a usage error");

    let missing = dir.join("nope.json");
    let out = Command::new(bin())
        .args(["check", "--prev", missing.to_str().unwrap(), "--cur", missing.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));

    let out = Command::new(bin()).args(["check"]).output().unwrap();
    assert_eq!(out.status.code(), Some(2), "missing flags is a usage error");

    let out = Command::new(bin()).output().unwrap();
    assert_eq!(out.status.code(), Some(2), "no subcommand is a usage error");
    let _ = fs::remove_dir_all(&dir);
}
