//! Plain-text table rendering and CSV output.

use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// A simple column-aligned table that can also serialize itself to CSV.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (stringified cells).
    pub fn push_row(&mut self, cells: Vec<String>) {
        debug_assert_eq!(cells.len(), self.headers.len());
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("## {}\n", self.title));
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>width$}", c, width = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }

    /// The table's CSV serialization (header line + one line per row).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.headers.join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }

    /// Writes the table as CSV under the results directory; returns the
    /// path.
    pub fn write_csv(&self, dir: &Path, file_stem: &str) -> std::io::Result<PathBuf> {
        fs::create_dir_all(dir)?;
        let path = dir.join(format!("{file_stem}.csv"));
        let mut f = fs::File::create(&path)?;
        f.write_all(self.to_csv().as_bytes())?;
        Ok(path)
    }
}

/// Formats a float for table cells (4 significant decimals, `inf` capped).
pub fn fmt(v: f64) -> String {
    if v.is_infinite() {
        "inf".to_string()
    } else if v.is_nan() {
        "nan".to_string()
    } else {
        format!("{v:.4}")
    }
}

/// The default results directory.
pub fn results_dir() -> PathBuf {
    PathBuf::from("bench_results")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_table() {
        let mut t = Table::new("demo", &["a", "bbbb"]);
        t.push_row(vec!["1".into(), "2".into()]);
        t.push_row(vec!["10".into(), "20000".into()]);
        let s = t.render();
        assert!(s.contains("## demo"));
        assert!(s.lines().count() >= 4);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn csv_round_trip() {
        let mut t = Table::new("demo", &["x", "y"]);
        t.push_row(vec![fmt(0.5), fmt(f64::INFINITY)]);
        let dir = std::env::temp_dir().join("smokescreen-table-test");
        let path = t.write_csv(&dir, "demo").unwrap();
        let content = std::fs::read_to_string(path).unwrap();
        assert_eq!(content, "x,y\n0.5000,inf\n");
    }

    #[test]
    fn fmt_edge_cases() {
        assert_eq!(fmt(f64::NAN), "nan");
        assert_eq!(fmt(1.0 / 3.0), "0.3333");
    }
}
