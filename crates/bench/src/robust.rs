//! Bound-soundness audit matrix under content faults (`ROBUST_<n>.json`).
//!
//! The paper's profiles promise `P(true error ≤ err_b) ≥ 1 − δ` assuming
//! the sampled frame population is the population the query runs over.
//! Content faults stress that assumption from two directions, and the
//! audit measures both:
//!
//! * **`coverage_perturbed`** — bound coverage against the *perturbed*
//!   population's own truth. Because perturbation decisions are pure in
//!   `(seed, frame index)` — never frame content — the perturbed
//!   population is fixed before sampling, uniform sampling stays uniform
//!   over it, and the distribution-free bounds must stay nominal **at
//!   every rate and kind**. The audit asserts this (and a δ=1e-6 strict
//!   sweep that must never be violated): a failure here is broken math.
//! * **`coverage_clean`** — coverage of the same estimates against the
//!   *clean* baseline's truth, i.e. what an administrator who profiled
//!   clean video actually experiences when the content shifts under
//!   them. Nothing guarantees this; the audit *records* where it
//!   degrades (label-flip at rate 0.5 is the canonical collapse) and
//!   flags those cells rather than asserting them away.
//!
//! Alongside the coverage matrix, every perturbed stream is scored by the
//! AQuA-style drift scorer against a baseline profiled on a *different
//! seed* of the clean corpus: prevalence-drift streams must flag,
//! unperturbed streams must never flag — the detection signal that tells
//! an administrator when `coverage_clean` can no longer be trusted.
//!
//! The emitted `bench_results/ROBUST_<pr>.json` uses the same
//! versioned-snapshot conventions as the perf trajectory
//! ([`crate::trajectory`]): a schema tag, deterministic pretty encoding,
//! and a structural schema golden (`tests/golden/content_shift_schema.json`).

use std::fs;
use std::path::{Path, PathBuf};

use smokescreen_core::{
    drift_score, estimate_from_outputs, true_relative_error, Aggregate, DriftBaseline, Workload,
    DEFAULT_DRIFT_THRESHOLD, DEFAULT_DRIFT_WINDOW,
};
use smokescreen_models::Detector;
use smokescreen_rt::json::{FromJson, Json, JsonError, ToJson};
use smokescreen_stats::sample::sample_indices;
use smokescreen_video::synth::DatasetPreset;
use smokescreen_video::{ObjectClass, PerturbKind, PerturbPlan, VideoCorpus};

use crate::workloads::ModelKind;

/// Format tag for `ROBUST_<n>.json`.
pub const SCHEMA: &str = "smokescreen-robust/1";

/// Paper-default confidence parameter for the nominal-coverage sweep.
pub const DELTA: f64 = 0.05;

/// Near-certain confidence for the never-violated sweep: at δ=1e-6 a
/// single observed violation across the matrix means the bound math is
/// broken, not unlucky.
pub const STRICT_DELTA: f64 = 1e-6;

/// Finite-trial slack on nominal coverage: with `T` trials the audit
/// asserts `coverage ≥ 1 − δ − slack` rather than exactly `1 − δ`.
pub const COVERAGE_SLACK: f64 = 0.05;

/// Audit matrix configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct AuditConfig {
    /// Smoke mode: one kind × one rate, fewer trials, smaller corpora.
    pub smoke: bool,
    /// Sampling trials per cell.
    pub trials: usize,
    /// Frames per corpus slice.
    pub frames: usize,
    /// Base seed (corpus generation, perturbation plans, trial sampling).
    pub seed: u64,
    /// Perturbation kinds swept (`None` = the unperturbed control).
    pub kinds: Vec<Option<PerturbKind>>,
    /// Perturbation rates swept (the control always runs at rate 0).
    pub rates: Vec<f64>,
    /// Drift-scorer window (frames).
    pub drift_window: usize,
    /// Drift-scorer flagging threshold.
    pub drift_threshold: f64,
}

impl AuditConfig {
    /// The full committed matrix: every kind × three rates × both corpora.
    ///
    /// The rate floor is 0.1 by design: at rate 0.05 the drift regime's
    /// tail (5% of 4 000 frames = 200) is shorter than the scorer window,
    /// so "flags every drift stream" would be vacuous noise rather than a
    /// detection claim.
    pub fn full() -> Self {
        AuditConfig {
            smoke: false,
            trials: 40,
            frames: 4_000,
            seed: 42,
            kinds: std::iter::once(None)
                .chain(PerturbKind::ALL.into_iter().map(Some))
                .collect(),
            rates: vec![0.1, 0.25, 0.5],
            drift_window: DEFAULT_DRIFT_WINDOW,
            drift_threshold: DEFAULT_DRIFT_THRESHOLD,
        }
    }

    /// CI smoke slice: the control plus one kind × one rate on both
    /// corpora.
    pub fn smoke() -> Self {
        AuditConfig {
            smoke: true,
            trials: 12,
            frames: 1_500,
            seed: 42,
            kinds: vec![None, Some(PerturbKind::Glare)],
            rates: vec![0.25],
            drift_window: DEFAULT_DRIFT_WINDOW,
            drift_threshold: DEFAULT_DRIFT_THRESHOLD,
        }
    }
}

/// The aggregates the matrix sweeps (names match `EXPERIMENTS.md`).
pub fn audit_aggregates() -> [(&'static str, Aggregate); 3] {
    [
        ("AVG", Aggregate::Avg),
        ("MAX", Aggregate::Max { r: 0.99 }),
        ("COUNT", Aggregate::Count { at_least: 1.0 }),
    ]
}

/// The sample-fraction ladder the matrix sweeps.
pub const AUDIT_FRACTIONS: [f64; 3] = [0.02, 0.05, 0.2];

/// One cell of the audit matrix: a `(corpus, kind, rate, aggregate,
/// fraction)` combination measured over `trials` seeded samples.
#[derive(Debug, Clone, PartialEq)]
pub struct AuditCell {
    /// Dataset label (`night-street` / `detrac`).
    pub corpus: String,
    /// Perturbation kind (`none` for the control).
    pub kind: String,
    /// Perturbation rate (0 for the control).
    pub rate: f64,
    /// Aggregate name.
    pub aggregate: String,
    /// Sample fraction.
    pub fraction: f64,
    /// Trials measured.
    pub trials: usize,
    /// Fraction of trials whose true error vs the **perturbed** truth
    /// stayed within `err_b` at δ=0.05 — must be nominal everywhere.
    pub coverage_perturbed: f64,
    /// Fraction of trials whose true error vs the **clean** truth stayed
    /// within `err_b` — recorded, asserted only for the control.
    pub coverage_clean: f64,
    /// Bound violations vs the perturbed truth at δ=1e-6 — must be 0.
    pub strict_violations: usize,
    /// Mean `err_b` across trials at δ=0.05.
    pub mean_err_bound: f64,
    /// Whether `coverage_clean` fell below nominal: the regime where the
    /// paper's assumption provably bends. Flagged, never failed.
    pub degraded: bool,
}

impl ToJson for AuditCell {
    fn to_json(&self) -> Json {
        Json::obj([
            ("corpus", self.corpus.to_json()),
            ("kind", self.kind.to_json()),
            ("rate", self.rate.to_json()),
            ("aggregate", self.aggregate.to_json()),
            ("fraction", self.fraction.to_json()),
            ("trials", self.trials.to_json()),
            ("coverage_perturbed", self.coverage_perturbed.to_json()),
            ("coverage_clean", self.coverage_clean.to_json()),
            ("strict_violations", self.strict_violations.to_json()),
            ("mean_err_bound", self.mean_err_bound.to_json()),
            ("degraded", self.degraded.to_json()),
        ])
    }
}

impl FromJson for AuditCell {
    fn from_json(value: &Json) -> smokescreen_rt::json::Result<Self> {
        Ok(AuditCell {
            corpus: String::from_json(value.get("corpus")?)?,
            kind: String::from_json(value.get("kind")?)?,
            rate: value.get("rate")?.as_f64()?,
            aggregate: String::from_json(value.get("aggregate")?)?,
            fraction: value.get("fraction")?.as_f64()?,
            trials: value.get("trials")?.as_usize()?,
            coverage_perturbed: value.get("coverage_perturbed")?.as_f64()?,
            coverage_clean: value.get("coverage_clean")?.as_f64()?,
            strict_violations: value.get("strict_violations")?.as_usize()?,
            mean_err_bound: value.get("mean_err_bound")?.as_f64()?,
            degraded: value.get("degraded")?.as_bool()?,
        })
    }
}

/// Drift-scorer verdict for one perturbed stream.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamAudit {
    /// Dataset label.
    pub corpus: String,
    /// Perturbation kind (`none` for the control).
    pub kind: String,
    /// Perturbation rate.
    pub rate: f64,
    /// Largest windowed drift score.
    pub max_score: f64,
    /// Windows scored.
    pub windows_scored: usize,
    /// Windows above the threshold.
    pub windows_flagged: usize,
    /// Whether the stream flagged at the default threshold.
    pub flagged: bool,
}

impl ToJson for StreamAudit {
    fn to_json(&self) -> Json {
        Json::obj([
            ("corpus", self.corpus.to_json()),
            ("kind", self.kind.to_json()),
            ("rate", self.rate.to_json()),
            ("max_score", self.max_score.to_json()),
            ("windows_scored", self.windows_scored.to_json()),
            ("windows_flagged", self.windows_flagged.to_json()),
            ("flagged", self.flagged.to_json()),
        ])
    }
}

impl FromJson for StreamAudit {
    fn from_json(value: &Json) -> smokescreen_rt::json::Result<Self> {
        Ok(StreamAudit {
            corpus: String::from_json(value.get("corpus")?)?,
            kind: String::from_json(value.get("kind")?)?,
            rate: value.get("rate")?.as_f64()?,
            max_score: value.get("max_score")?.as_f64()?,
            windows_scored: value.get("windows_scored")?.as_usize()?,
            windows_flagged: value.get("windows_flagged")?.as_usize()?,
            flagged: value.get("flagged")?.as_bool()?,
        })
    }
}

/// One audit file: provenance plus the full matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct RobustAudit {
    /// Format tag ([`SCHEMA`]).
    pub schema: String,
    /// PR number this file belongs to (`ROBUST_<pr>.json`).
    pub pr: u64,
    /// Git revision of the run (short hash, or `unknown`).
    pub git_rev: String,
    /// Whether this was a smoke run (sparser matrix, fewer trials).
    pub smoke: bool,
    /// Trials per cell.
    pub trials: usize,
    /// Frames per corpus slice.
    pub frames: usize,
    /// Nominal confidence parameter of the coverage sweep.
    pub delta: f64,
    /// Confidence parameter of the never-violated sweep.
    pub strict_delta: f64,
    /// Drift-scorer window.
    pub drift_window: usize,
    /// Drift-scorer threshold.
    pub drift_threshold: f64,
    /// Coverage matrix cells, in sweep order.
    pub cells: Vec<AuditCell>,
    /// Drift verdicts per perturbed stream, in sweep order.
    pub streams: Vec<StreamAudit>,
}

impl RobustAudit {
    /// Writes the pretty-encoded file; returns the path.
    pub fn save(&self, dir: &Path) -> std::io::Result<PathBuf> {
        fs::create_dir_all(dir)?;
        let path = dir.join(robust_file_name(self.pr));
        fs::write(&path, self.to_json().encode_pretty())?;
        Ok(path)
    }

    /// Parses an audit file, validating the schema tag.
    pub fn load(path: &Path) -> Result<Self, String> {
        let text =
            fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        let json = Json::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
        let audit =
            RobustAudit::from_json(&json).map_err(|e| format!("{}: {e}", path.display()))?;
        if audit.schema != SCHEMA {
            return Err(format!(
                "{}: schema {:?}, expected {SCHEMA:?}",
                path.display(),
                audit.schema
            ));
        }
        Ok(audit)
    }
}

impl ToJson for RobustAudit {
    fn to_json(&self) -> Json {
        Json::obj([
            ("schema", self.schema.to_json()),
            ("pr", self.pr.to_json()),
            ("git_rev", self.git_rev.to_json()),
            ("smoke", self.smoke.to_json()),
            ("trials", self.trials.to_json()),
            ("frames", self.frames.to_json()),
            ("delta", self.delta.to_json()),
            ("strict_delta", self.strict_delta.to_json()),
            ("drift_window", self.drift_window.to_json()),
            ("drift_threshold", self.drift_threshold.to_json()),
            (
                "cells",
                Json::Arr(self.cells.iter().map(ToJson::to_json).collect()),
            ),
            (
                "streams",
                Json::Arr(self.streams.iter().map(ToJson::to_json).collect()),
            ),
        ])
    }
}

impl FromJson for RobustAudit {
    fn from_json(value: &Json) -> smokescreen_rt::json::Result<Self> {
        let cells = value
            .get("cells")?
            .as_arr()?
            .iter()
            .map(AuditCell::from_json)
            .collect::<smokescreen_rt::json::Result<Vec<_>>>()?;
        if cells.is_empty() {
            return Err(JsonError::new("audit has no cells"));
        }
        let streams = value
            .get("streams")?
            .as_arr()?
            .iter()
            .map(StreamAudit::from_json)
            .collect::<smokescreen_rt::json::Result<Vec<_>>>()?;
        Ok(RobustAudit {
            schema: String::from_json(value.get("schema")?)?,
            pr: value.get("pr")?.as_u64()?,
            git_rev: String::from_json(value.get("git_rev")?)?,
            smoke: value.get("smoke")?.as_bool()?,
            trials: value.get("trials")?.as_usize()?,
            frames: value.get("frames")?.as_usize()?,
            delta: value.get("delta")?.as_f64()?,
            strict_delta: value.get("strict_delta")?.as_f64()?,
            drift_window: value.get("drift_window")?.as_usize()?,
            drift_threshold: value.get("drift_threshold")?.as_f64()?,
            cells,
            streams,
        })
    }
}

/// The canonical audit file name for a PR number.
pub fn robust_file_name(pr: u64) -> String {
    format!("ROBUST_{pr}.json")
}

/// Per-frame model outputs at the workload's effective native resolution
/// — the population the query runs over.
fn outputs_of(corpus: &VideoCorpus, detector: &dyn Detector) -> Vec<f64> {
    Workload {
        corpus,
        detector,
        class: ObjectClass::Car,
        aggregate: Aggregate::Avg,
        delta: DELTA,
    }
    .population_outputs()
}

/// Runs the audit matrix.
pub fn run(cfg: &AuditConfig, pr: u64, rev: String) -> RobustAudit {
    let mut cells = Vec::new();
    let mut streams = Vec::new();

    for dataset in [DatasetPreset::NightStreet, DatasetPreset::Detrac] {
        let label = dataset.name();
        let detector = ModelKind::paper_default(dataset).build(cfg.seed);
        let clean = dataset.generate(cfg.seed).slice(0, cfg.frames);
        let clean_outputs = outputs_of(&clean, detector.as_ref());

        // The drift baseline is profiled on a *different seed* of the
        // clean regime — the audit's clean stream must score as "new
        // video from the same distribution", not as "the exact frames the
        // baseline averaged".
        let baseline_corpus = dataset.generate(cfg.seed + 101).slice(0, cfg.frames);
        let baseline = DriftBaseline::from_outputs(
            &outputs_of(&baseline_corpus, detector.as_ref()),
            cfg.drift_window,
        )
        .expect("audit corpora hold at least two drift windows");

        for &kind in &cfg.kinds {
            let rates: &[f64] = match kind {
                None => &[0.0],
                Some(_) => &cfg.rates,
            };
            for &rate in rates {
                let (kind_name, outputs) = match kind {
                    None => ("none".to_string(), clean_outputs.clone()),
                    Some(k) => {
                        let perturbed =
                            PerturbPlan::new(cfg.seed, rate, k).apply(&clean);
                        (k.name().to_string(), outputs_of(&perturbed, detector.as_ref()))
                    }
                };

                let report = drift_score(&baseline, &outputs, cfg.drift_threshold);
                streams.push(StreamAudit {
                    corpus: label.to_string(),
                    kind: kind_name.clone(),
                    rate,
                    max_score: report.max_score,
                    windows_scored: report.windows_scored,
                    windows_flagged: report.windows_flagged,
                    flagged: report.flagged(),
                });

                cells.extend(audit_variant(
                    cfg,
                    label,
                    &kind_name,
                    rate,
                    &outputs,
                    &clean_outputs,
                ));
            }
        }
    }

    RobustAudit {
        schema: SCHEMA.to_string(),
        pr,
        git_rev: rev,
        smoke: cfg.smoke,
        trials: cfg.trials,
        frames: cfg.frames,
        delta: DELTA,
        strict_delta: STRICT_DELTA,
        drift_window: cfg.drift_window,
        drift_threshold: cfg.drift_threshold,
        cells,
        streams,
    }
}

/// Sweeps aggregates × fractions × trials for one `(corpus, kind, rate)`
/// variant. Trial samples are shared across aggregates: the paper
/// estimates every aggregate from the same degraded sample, so the audit
/// does too.
fn audit_variant(
    cfg: &AuditConfig,
    corpus: &str,
    kind: &str,
    rate: f64,
    outputs: &[f64],
    clean_outputs: &[f64],
) -> Vec<AuditCell> {
    let nominal = 1.0 - DELTA - COVERAGE_SLACK;
    let population = outputs.len();
    let mut cells = Vec::new();
    for &fraction in &AUDIT_FRACTIONS {
        let n = ((population as f64 * fraction) as usize).max(2);
        // One seeded sample per trial, reused by every aggregate.
        let samples: Vec<Vec<f64>> = (0..cfg.trials)
            .map(|t| {
                sample_indices(population, n, cfg.seed + 1 + t as u64)
                    .expect("valid sample")
                    .into_iter()
                    .map(|i| outputs[i])
                    .collect()
            })
            .collect();
        for (agg_name, aggregate) in audit_aggregates() {
            let mut covered_perturbed = 0usize;
            let mut covered_clean = 0usize;
            let mut strict_violations = 0usize;
            let mut bound_sum = 0.0;
            for sample in &samples {
                let est = estimate_from_outputs(aggregate, sample, population, DELTA)
                    .expect("audit estimates cannot fail");
                bound_sum += est.err_b();
                if true_relative_error(aggregate, &est, outputs) <= est.err_b() {
                    covered_perturbed += 1;
                }
                if true_relative_error(aggregate, &est, clean_outputs) <= est.err_b() {
                    covered_clean += 1;
                }
                let strict = estimate_from_outputs(aggregate, sample, population, STRICT_DELTA)
                    .expect("audit estimates cannot fail");
                if true_relative_error(aggregate, &strict, outputs) > strict.err_b() {
                    strict_violations += 1;
                }
            }
            let coverage_perturbed = covered_perturbed as f64 / cfg.trials as f64;
            let coverage_clean = covered_clean as f64 / cfg.trials as f64;
            cells.push(AuditCell {
                corpus: corpus.to_string(),
                kind: kind.to_string(),
                rate,
                aggregate: agg_name.to_string(),
                fraction,
                trials: cfg.trials,
                coverage_perturbed,
                coverage_clean,
                strict_violations,
                mean_err_bound: bound_sum / cfg.trials as f64,
                degraded: coverage_clean < nominal,
            });
        }
    }
    cells
}

/// Verifies the audit's hard invariants; returns the violations (empty =
/// sound). Degraded `coverage_clean` regimes are *expected* — they are
/// flagged in the cells, and full runs must exhibit at least one (a matrix
/// that never degrades is not measuring anything).
pub fn check(audit: &RobustAudit) -> Vec<String> {
    let nominal = 1.0 - audit.delta - COVERAGE_SLACK;
    let mut violations = Vec::new();
    for c in &audit.cells {
        let id = format!(
            "{}/{}@{}/{}/f={}",
            c.corpus, c.kind, c.rate, c.aggregate, c.fraction
        );
        if c.strict_violations > 0 {
            violations.push(format!(
                "{id}: {} bound violations at δ={} vs the perturbed truth — broken math",
                c.strict_violations, audit.strict_delta
            ));
        }
        if c.coverage_perturbed < nominal {
            violations.push(format!(
                "{id}: coverage_perturbed {} < {nominal} — sampling over a fixed \
                 perturbed population must stay nominal",
                c.coverage_perturbed
            ));
        }
        if c.kind == "none" && c.coverage_clean < nominal {
            violations.push(format!(
                "{id}: unperturbed coverage_clean {} < {nominal}",
                c.coverage_clean
            ));
        }
        if c.degraded != (c.coverage_clean < nominal) {
            violations.push(format!("{id}: degraded flag inconsistent with coverage"));
        }
    }
    for s in &audit.streams {
        let id = format!("{}/{}@{}", s.corpus, s.kind, s.rate);
        if s.kind == "none" && s.flagged {
            violations.push(format!(
                "{id}: drift scorer false positive on an unperturbed stream \
                 (max_score {})",
                s.max_score
            ));
        }
        if s.kind == "drift" && !s.flagged {
            violations.push(format!(
                "{id}: drift scorer missed a prevalence-drift stream \
                 (max_score {})",
                s.max_score
            ));
        }
    }
    if !audit.smoke && !audit.cells.iter().any(|c| c.degraded) {
        violations.push(
            "full matrix exhibits no degraded regime — the audit is not \
             exercising the assumption it exists to test"
                .to_string(),
        );
    }
    violations
}
