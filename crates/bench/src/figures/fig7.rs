//! Figure 7 — the YOLOv4 384×384 anomaly on night-street.
//!
//! Paper shape: for AVG(cars) with YOLOv4 on night-street, the true
//! relative error at 384×384 is *larger* than at lower resolutions
//! (320×320) — error is non-monotone in resolution because of a model
//! pathology, which only a measured profile can reveal.

use smokescreen_video::synth::DatasetPreset;
use smokescreen_video::Resolution;

use crate::figures::Experiment;
use crate::table::{fmt, Table};
use crate::workloads::{Bench, ModelKind};
use crate::RunConfig;

/// Figure 7 reproduction.
pub struct Fig7;

impl Experiment for Fig7 {
    fn id(&self) -> &'static str {
        "fig7"
    }

    fn describe(&self) -> &'static str {
        "YOLOv4 on night-street: anomalously large AVG error at 384x384"
    }

    fn run(&self, cfg: &RunConfig) -> Vec<Table> {
        let bench = Bench::new(DatasetPreset::NightStreet, ModelKind::Yolo, cfg);
        let truth = mean(&bench.population());

        let mut table = Table::new(
            "Figure 7: true relative error of AVG(cars), YOLOv4 / night-street",
            &["resolution", "true_err"],
        );
        // The YOLO grid is multiples of 32; include the anomaly band.
        for side in [128u32, 192, 256, 320, 352, 384, 416, 448, 512, 608] {
            let res = Resolution::square(side);
            let err = if truth == 0.0 {
                0.0
            } else {
                (mean(&bench.outputs_at(res)) - truth).abs() / truth
            };
            table.push_row(vec![res.to_string(), fmt(err)]);
        }
        vec![table]
    }
}

fn mean(v: &[f64]) -> f64 {
    if v.is_empty() {
        0.0
    } else {
        v.iter().sum::<f64>() / v.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_at_384_exceeds_lower_resolutions() {
        let t = &Fig7.run(&RunConfig::quick())[0];
        let dir = std::env::temp_dir().join("fig7-test");
        let path = t.write_csv(&dir, "fig7").unwrap();
        let mut err_at = std::collections::HashMap::new();
        for line in std::fs::read_to_string(path).unwrap().lines().skip(1) {
            let (res, err) = line.split_once(',').unwrap();
            err_at.insert(res.to_string(), err.parse::<f64>().unwrap());
        }
        let e384 = err_at["384x384"];
        let e320 = err_at["320x320"];
        let e416 = err_at["416x416"];
        assert!(
            e384 > e320 && e384 > e416,
            "non-monotone anomaly expected: 320={e320} 384={e384} 416={e416}"
        );
    }
}
