//! Figure 5 — how often the CLT "bound" is smaller than the true error
//! on UA-DETRAC, per aggregate type, across 100 trials.
//!
//! Paper shape: violations concentrate at small sample fractions and can
//! far exceed the nominal 5% — the CLT interval is not a guarantee, which
//! is why Smokescreen refuses to use it despite its tightness.

use smokescreen_core::Aggregate;
use smokescreen_rt::pool::Pool;
use smokescreen_video::synth::DatasetPreset;

use crate::figures::baselines::run_mean_methods;
use crate::figures::Experiment;
use crate::table::{fmt, Table};
use crate::workloads::{fraction_sweep, Bench, ModelKind};
use crate::RunConfig;

/// Figure 5 reproduction.
pub struct Fig5;

impl Experiment for Fig5 {
    fn id(&self) -> &'static str {
        "fig5"
    }

    fn describe(&self) -> &'static str {
        "Fraction of trials where the CLT bound undercuts the true error (UA-DETRAC)"
    }

    fn run(&self, cfg: &RunConfig) -> Vec<Table> {
        let bench = Bench::new(DatasetPreset::Detrac, ModelKind::Yolo, cfg);
        let population = bench.population();
        let mut table = Table::new(
            "Figure 5: CLT violation rate (fraction of trials with bound < true error)",
            &["fraction", "AVG", "SUM", "COUNT"],
        );

        let aggs = [
            ("AVG", Aggregate::Avg),
            ("SUM", Aggregate::Sum),
            ("COUNT", Aggregate::Count { at_least: 1.0 }),
        ];
        // Use the AVG sweep; all three mean aggregates share its range.
        // Trials fan out per `(seed, trial-index)` stream; the violation
        // count is a sum over trial order, so it is thread-count
        // independent.
        let pool = Pool::new();
        let trials: Vec<u64> = (0..cfg.trials as u64).collect();
        for fraction in fraction_sweep(DatasetPreset::Detrac, "AVG", cfg.quick) {
            let n = ((bench.n() as f64 * fraction).round() as usize).max(2);
            let mut cells = vec![format!("{fraction:.5}")];
            for (_, aggregate) in aggs {
                let violated = pool.parallel_map(&trials, |_, &t| {
                    let sample = bench.sample_outputs(bench.native(), n, cfg.seed + t);
                    let m = run_mean_methods(aggregate, &sample, &population, 0.05);
                    m.clt.bound < m.clt.true_error
                });
                let violations = violated.iter().filter(|&&v| v).count();
                cells.push(fmt(violations as f64 / cfg.trials as f64));
            }
            table.push_row(cells);
        }
        vec![table]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clt_violates_more_at_small_fractions() {
        let cfg = RunConfig {
            trials: 40,
            ..RunConfig::quick()
        };
        let t = &Fig5.run(&cfg)[0];
        let dir = std::env::temp_dir().join("fig5-test");
        let path = t.write_csv(&dir, "fig5").unwrap();
        let rows: Vec<Vec<f64>> = std::fs::read_to_string(path)
            .unwrap()
            .lines()
            .skip(1)
            .map(|l| l.split(',').map(|c| c.parse().unwrap()).collect())
            .collect();
        // Some violation mass must exist somewhere in the sweep for AVG.
        let total: f64 = rows.iter().map(|r| r[1]).sum();
        assert!(total > 0.0, "CLT should violate at least once: {rows:?}");
        // Violations should be at least as common at the smallest fraction
        // as at the largest (within noise we just require non-zero start).
        assert!(rows[0][1] >= rows[rows.len() - 1][1] - 0.2);
    }
}
