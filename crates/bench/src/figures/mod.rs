//! One module per reproduced table/figure.

pub mod ablation;
pub mod baselines;
pub mod fig10;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod headline;
pub mod timing;

use crate::table::Table;
use crate::RunConfig;

/// An experiment that regenerates one paper artifact.
///
/// `Send + Sync` so `repro all` can fan experiments out across
/// `rt::pool` workers (every implementor is a stateless unit struct).
pub trait Experiment: Send + Sync {
    /// Experiment id (e.g. `"fig4"`).
    fn id(&self) -> &'static str;
    /// One-line description.
    fn describe(&self) -> &'static str;
    /// Runs the experiment, producing one table per panel.
    fn run(&self, cfg: &RunConfig) -> Vec<Table>;
}

/// All experiments, in paper order.
pub fn all_experiments() -> Vec<Box<dyn Experiment>> {
    vec![
        Box::new(fig3::Fig3),
        Box::new(fig4::Fig4),
        Box::new(fig5::Fig5),
        Box::new(fig6::Fig6),
        Box::new(fig7::Fig7),
        Box::new(fig8::Fig8),
        Box::new(fig9::Fig9),
        Box::new(fig10::Fig10),
        Box::new(headline::Headline),
        Box::new(ablation::Ablation),
        Box::new(timing::Timing),
    ]
}

/// Looks up an experiment by id.
pub fn by_id(id: &str) -> Option<Box<dyn Experiment>> {
    all_experiments().into_iter().find(|e| e.id() == id)
}
