//! Figure 10 — profile similarity between similar videos (§5.3.2).
//!
//! Video A (MVI_40771-like, 1720 frames) is the sensitive query video;
//! video B (MVI_40775-like, 975 frames) is captured by the same camera at
//! another time. Paper shape:
//!
//! * with only 50 accessible frames, video A's own profile is loose —
//!   its bound differences against the 500-frame target profile are
//!   large (left panel, orange line);
//! * a profile computed from 500 frames of *video B* tracks A's target
//!   profile closely (left panel red line near zero; right panel
//!   differences within ~5%).

use std::collections::HashMap;

use smokescreen_core::{corrected_bound, Aggregate};
use smokescreen_core::correction::CorrectionSet;
use smokescreen_models::{Detector, SimYoloV4};
use smokescreen_stats::sample::sample_indices;
use smokescreen_video::synth::detrac_sequence_pair;
use smokescreen_video::{ObjectClass, Resolution, VideoCorpus};

use crate::figures::baselines::smokescreen_estimate;
use crate::figures::Experiment;
use crate::table::{fmt, Table};
use crate::RunConfig;

/// Figure 10 reproduction.
pub struct Fig10;

/// Lightweight per-corpus output cache (the corpora here are small
/// sequences, not the preset fixtures).
struct SeqBench {
    corpus: VideoCorpus,
    detector: SimYoloV4,
    outputs: HashMap<Resolution, Vec<f64>>,
}

impl SeqBench {
    fn new(corpus: VideoCorpus, seed: u64) -> Self {
        SeqBench {
            corpus,
            detector: SimYoloV4::new(seed),
            outputs: HashMap::new(),
        }
    }

    fn outputs_at(&mut self, res: Resolution) -> &Vec<f64> {
        let corpus = &self.corpus;
        let detector = &self.detector;
        self.outputs.entry(res).or_insert_with(|| {
            corpus
                .frames()
                .iter()
                .map(|f| detector.count(f, res, ObjectClass::Car))
                .collect()
        })
    }

    fn sample(&mut self, res: Resolution, n: usize, seed: u64) -> Vec<f64> {
        let outs = self.outputs_at(res).clone();
        sample_indices(outs.len(), n.clamp(1, outs.len()), seed)
            .expect("valid sample")
            .into_iter()
            .map(|i| outs[i])
            .collect()
    }

    fn n(&self) -> usize {
        self.corpus.len()
    }

    /// Best bound for a random-sampling profile point with a correction
    /// set of `m` frames: min(direct, corrected), as §5.2.2 prescribes
    /// for random interventions.
    fn sampling_bound(&mut self, n: usize, m: usize, seed: u64) -> f64 {
        let native = Resolution::square(608);
        let sample = self.sample(native, n, seed);
        let est = smokescreen_estimate(Aggregate::Avg, &sample, self.n(), 0.05);
        let cs = self.correction(m, seed + 70_000);
        let corrected = corrected_bound(&est, &cs).expect("mean metrics");
        est.err_b().min(corrected)
    }

    /// Corrected bound for a resolution profile point.
    fn resolution_bound(&mut self, res: Resolution, n: usize, m: usize, seed: u64) -> f64 {
        let sample = self.sample(res, n, seed);
        let est = smokescreen_estimate(Aggregate::Avg, &sample, self.n(), 0.05);
        let cs = self.correction(m, seed + 70_000);
        corrected_bound(&est, &cs).expect("mean metrics")
    }

    fn correction(&mut self, m: usize, seed: u64) -> CorrectionSet {
        let native = Resolution::square(608);
        let values = self.sample(native, m, seed);
        CorrectionSet {
            estimate: smokescreen_estimate(Aggregate::Avg, &values, self.n(), 0.05),
            fraction: m as f64 / self.n() as f64,
            values,
            growth_curve: Vec::new(),
        }
    }
}

impl Experiment for Fig10 {
    fn id(&self) -> &'static str {
        "fig10"
    }

    fn describe(&self) -> &'static str {
        "Profile similarity between similar videos: bound differences vs sample size and resolution"
    }

    fn run(&self, cfg: &RunConfig) -> Vec<Table> {
        let (corpus_a, corpus_b) = detrac_sequence_pair(cfg.seed);
        let mut a = SeqBench::new(corpus_a, cfg.seed);
        let mut b = SeqBench::new(corpus_b, cfg.seed);
        let trials = cfg.trials.min(30);

        // Left panel: sampling intervention at 608², x = sample size.
        let mut left = Table::new(
            "Figure 10 (left): |bound − target| vs sample size (target: video A, 500-frame correction)",
            &["sample_size", "diff_A_limited_50", "diff_B_500"],
        );
        for n in (10..=100).step_by(10) {
            let (mut d_lim, mut d_b) = (0.0, 0.0);
            for t in 0..trials {
                let seed = cfg.seed + t as u64;
                let target = a.sampling_bound(n, 500, seed);
                let limited = a.sampling_bound(n.min(50), 50, seed + 1);
                let from_b = b.sampling_bound(n, 500, seed + 2);
                d_lim += (limited - target).abs();
                d_b += (from_b - target).abs();
            }
            left.push_row(vec![
                n.to_string(),
                fmt(d_lim / trials as f64),
                fmt(d_b / trials as f64),
            ]);
        }

        // Right panel: resolution intervention, fixed sample size 500.
        let mut right = Table::new(
            "Figure 10 (right): |bound_A − bound_B| vs resolution (sample size 500)",
            &["resolution", "bound_A", "bound_B", "abs_diff"],
        );
        for side in [128u32, 192, 256, 320, 384, 448, 512, 608] {
            let res = Resolution::square(side);
            let (mut ba, mut bb) = (0.0, 0.0);
            for t in 0..trials {
                let seed = cfg.seed + t as u64;
                ba += a.resolution_bound(res, 500, 500, seed);
                bb += b.resolution_bound(res, 500, 500, seed + 3);
            }
            let (ba, bb) = (ba / trials as f64, bb / trials as f64);
            right.push_row(vec![res.to_string(), fmt(ba), fmt(bb), fmt((ba - bb).abs())]);
        }

        vec![left, right]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn similar_video_tracks_target_better_than_limited_access() {
        let cfg = RunConfig::quick();
        let tables = Fig10.run(&cfg);
        let dir = std::env::temp_dir().join("fig10-test");
        let path = tables[0].write_csv(&dir, "left").unwrap();
        let rows: Vec<Vec<f64>> = std::fs::read_to_string(path)
            .unwrap()
            .lines()
            .skip(1)
            .map(|l| l.split(',').map(|c| c.parse().unwrap()).collect())
            .collect();
        // Averaged over the sweep, the B-based profile is closer to the
        // target than the 50-frame-limited profile.
        let mean_lim: f64 = rows.iter().map(|r| r[1]).sum::<f64>() / rows.len() as f64;
        let mean_b: f64 = rows.iter().map(|r| r[2]).sum::<f64>() / rows.len() as f64;
        assert!(
            mean_b < mean_lim,
            "B(500) should track the target better: B={mean_b} limited={mean_lim}"
        );

        // Right panel: A and B bounds agree within 0.12 absolute at every
        // resolution (the paper reports within 5% on real video).
        let path = tables[1].write_csv(&dir, "right").unwrap();
        for line in std::fs::read_to_string(path).unwrap().lines().skip(1) {
            let diff: f64 = line.split(',').nth(3).unwrap().parse().unwrap();
            assert!(diff < 0.12, "bound gap too large: {line}");
        }
    }
}
