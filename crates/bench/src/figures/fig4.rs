//! Figure 4 — true error and error bounds of Smokescreen vs. baselines for
//! every aggregate type on both datasets, varying the frame-sampling
//! fraction. Eight panels (4 aggregates × 2 datasets), 100 trials each.
//!
//! Paper shape: all guaranteed bounds sit above the true error;
//! Smokescreen's bound is the tightest guaranteed one (EBGS > Hoeffding >
//! Hoeffding–Serfling > Smokescreen at small fractions); CLT is tighter
//! still but unreliable (Figure 5). For MAX, Smokescreen beats Stein at
//! small fractions.

use smokescreen_rt::pool::Pool;
use smokescreen_video::synth::DatasetPreset;

use crate::figures::baselines::{
    average, run_mean_methods, run_quantile_methods, MethodOutcome,
};
use crate::figures::Experiment;
use crate::table::{fmt, Table};
use crate::workloads::{fraction_sweep, paper_aggregates, Bench, ModelKind};
use crate::RunConfig;

/// Clip applied to unbounded baseline values before averaging (the paper
/// clips its y-axes the same way).
pub const BOUND_CLIP: f64 = 5.0;

/// Figure 4 reproduction.
pub struct Fig4;

impl Experiment for Fig4 {
    fn id(&self) -> &'static str {
        "fig4"
    }

    fn describe(&self) -> &'static str {
        "True error + bounds for Smokescreen vs EBGS/Hoeffding/H-Serfling/CLT/Stein, by aggregate and dataset"
    }

    fn run(&self, cfg: &RunConfig) -> Vec<Table> {
        // Trials are independent given their `(seed, trial-index)` stream,
        // so each sweep point fans its 100 trials out on the pool; results
        // come back in trial order, keeping the averages bit-identical to
        // the sequential loop for any thread count.
        let pool = Pool::new();
        let trials: Vec<u64> = (0..cfg.trials as u64).collect();
        let mut tables = Vec::new();
        for dataset in [DatasetPreset::NightStreet, DatasetPreset::Detrac] {
            let bench = Bench::new(dataset, ModelKind::paper_default(dataset), cfg);
            let population = bench.population();
            for (agg_name, aggregate) in paper_aggregates() {
                let mut table = if agg_name == "MAX" {
                    Table::new(
                        format!("Figure 4 [{} / MAX]: rank-error, 0.99-quantile", dataset.name()),
                        &["fraction", "true_err", "smokescreen", "stein"],
                    )
                } else {
                    Table::new(
                        format!("Figure 4 [{} / {agg_name}]", dataset.name()),
                        &[
                            "fraction",
                            "smk_true",
                            "smk_bound",
                            "ebgs_true",
                            "ebgs_bound",
                            "hs_bound",
                            "hoeffding_bound",
                            "clt_bound",
                        ],
                    )
                };

                for fraction in fraction_sweep(dataset, agg_name, cfg.quick) {
                    let n = ((bench.n() as f64 * fraction).round() as usize).max(2);
                    if agg_name == "MAX" {
                        let outcomes = pool.parallel_map(&trials, |_, &t| {
                            let sample = bench.sample_outputs(bench.native(), n, cfg.seed + t);
                            run_quantile_methods(aggregate, &sample, &population, 0.05)
                        });
                        let ours: Vec<MethodOutcome> =
                            outcomes.iter().map(|q| q.smokescreen).collect();
                        let stein: Vec<MethodOutcome> =
                            outcomes.iter().map(|q| q.stein).collect();
                        let (o, s) = (average(&ours, BOUND_CLIP), average(&stein, BOUND_CLIP));
                        table.push_row(vec![
                            format!("{fraction:.5}"),
                            fmt(o.true_error),
                            fmt(o.bound),
                            fmt(s.bound),
                        ]);
                    } else {
                        let outcomes = pool.parallel_map(&trials, |_, &t| {
                            let sample = bench.sample_outputs(bench.native(), n, cfg.seed + t);
                            run_mean_methods(aggregate, &sample, &population, 0.05)
                        });
                        let mut acc: [Vec<MethodOutcome>; 5] = Default::default();
                        for m in &outcomes {
                            acc[0].push(m.smokescreen);
                            acc[1].push(m.ebgs);
                            acc[2].push(m.hoeffding_serfling);
                            acc[3].push(m.hoeffding);
                            acc[4].push(m.clt);
                        }
                        let a: Vec<MethodOutcome> =
                            acc.iter().map(|v| average(v, BOUND_CLIP)).collect();
                        table.push_row(vec![
                            format!("{fraction:.5}"),
                            fmt(a[0].true_error),
                            fmt(a[0].bound),
                            fmt(a[1].true_error),
                            fmt(a[1].bound),
                            fmt(a[2].bound),
                            fmt(a[3].bound),
                            fmt(a[4].bound),
                        ]);
                    }
                }
                tables.push(table);
            }
        }
        tables
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Parses a rendered CSV cell grid back to floats.
    fn grid(t: &Table, stem: &str) -> Vec<Vec<f64>> {
        let dir = std::env::temp_dir().join("fig4-test");
        let path = t.write_csv(&dir, stem).unwrap();
        std::fs::read_to_string(path)
            .unwrap()
            .lines()
            .skip(1)
            .map(|l| l.split(',').map(|c| c.parse().unwrap_or(f64::NAN)).collect())
            .collect()
    }

    #[test]
    fn smokescreen_bound_valid_and_tighter_than_ebgs() {
        let cfg = RunConfig::quick();
        let tables = Fig4.run(&cfg);
        assert_eq!(tables.len(), 8);
        // Check the first AVG panel (night-street).
        let rows = grid(&tables[0], "avg-ns");
        for r in &rows {
            let (smk_true, smk_bound, _ebgs_true, ebgs_bound) = (r[1], r[2], r[3], r[4]);
            assert!(
                smk_bound >= smk_true,
                "bound must cover averaged true error: {r:?}"
            );
            assert!(
                smk_bound <= ebgs_bound + 1e-9,
                "smokescreen must be tighter than EBGS: {r:?}"
            );
        }
        // Error decreases with fraction.
        assert!(rows.first().unwrap()[1] >= rows.last().unwrap()[1]);
    }

    #[test]
    fn max_panel_smokescreen_tighter_than_stein_at_small_fractions() {
        let cfg = RunConfig::quick();
        let tables = Fig4.run(&cfg);
        // MAX panels are at indices 3 (night-street) and 7 (UA-DETRAC).
        // The comparison is meaningful once the sample holds a few dozen
        // frames (quick mode caps the corpus at 4,000, so the smallest
        // sweep fractions yield single-digit n where the quantile value's
        // own frequency dominates Algorithm 2's bound); require the win
        // from the first row with n ≥ 25 onward, which is still the
        // "small fraction" regime of the §5.2.1 claim.
        for &i in &[3usize, 7] {
            let rows = grid(&tables[i], &format!("max-{i}"));
            let meaningful: Vec<&Vec<f64>> =
                rows.iter().filter(|r| r[0] * 4_000.0 >= 25.0).collect();
            assert!(!meaningful.is_empty(), "sweep too coarse");
            for r in meaningful {
                assert!(
                    r[2] <= r[3] + 1e-9,
                    "smokescreen MAX bound should beat Stein (panel {i}): {r:?}"
                );
            }
        }
    }
}
