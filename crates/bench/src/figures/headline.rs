//! The §5.2.1 headline numbers:
//!
//! * "our error bound can be up to **154.70% tighter** than baselines" —
//!   reproduced as the maximum of `(baseline_bound − our_bound) /
//!   our_bound` over the Figure 4 grid, per baseline;
//! * "the tight bound can enable tradeoffs that are **88% more
//!   accurate**" — reproduced by the Figure 2 thought experiment: given
//!   an error threshold, how much *less* degradation does an
//!   administrator accept when guided by each method's curve, relative
//!   to the true curve's optimum?

use smokescreen_core::Aggregate;
use smokescreen_video::synth::DatasetPreset;

use crate::figures::baselines::{average, run_mean_methods, MethodOutcome};
use crate::figures::Experiment;
use crate::table::{fmt, Table};
use crate::workloads::{Bench, ModelKind};
use crate::RunConfig;

/// Headline-number reproduction.
pub struct Headline;

impl Experiment for Headline {
    fn id(&self) -> &'static str {
        "headline"
    }

    fn describe(&self) -> &'static str {
        "§5.2.1 headline numbers: bound tightness vs baselines, tradeoff accuracy improvement"
    }

    fn run(&self, cfg: &RunConfig) -> Vec<Table> {
        let mut tightness = Table::new(
            "Headline: maximum bound tightness advantage over each baseline (%)",
            &["dataset", "vs_ebgs", "vs_hoeffding", "vs_hoeffding_serfling"],
        );
        let mut tradeoff = Table::new(
            "Headline: tradeoff accuracy at the per-dataset error threshold (AVG)",
            &[
                "dataset",
                "threshold",
                "optimal_fraction",
                "ours_fraction",
                "ebgs_fraction",
                "gap_reduction_pct",
            ],
        );

        for dataset in [DatasetPreset::NightStreet, DatasetPreset::Detrac] {
            let bench = Bench::new(dataset, ModelKind::paper_default(dataset), cfg);
            let population = bench.population();

            // Dense fraction sweep for both analyses, wide enough that
            // every method's bound eventually meets the threshold.
            let step = if cfg.quick { 0.03 } else { 0.015 };
            let points = if cfg.quick { 20 } else { 40 };
            let fractions: Vec<f64> = (1..=points).map(|i| i as f64 * step).collect();
            let mut curve: Vec<(f64, MethodOutcome, MethodOutcome, MethodOutcome, MethodOutcome)> =
                Vec::new();
            for &f in &fractions {
                let n = ((bench.n() as f64 * f).round() as usize).max(2);
                let mut acc: [Vec<MethodOutcome>; 4] = Default::default();
                for t in 0..cfg.trials {
                    let sample = bench.sample_outputs(bench.native(), n, cfg.seed + t as u64);
                    let m = run_mean_methods(Aggregate::Avg, &sample, &population, 0.05);
                    acc[0].push(m.smokescreen);
                    acc[1].push(m.ebgs);
                    acc[2].push(m.hoeffding);
                    acc[3].push(m.hoeffding_serfling);
                }
                curve.push((
                    f,
                    average(&acc[0], 10.0),
                    average(&acc[1], 10.0),
                    average(&acc[2], 10.0),
                    average(&acc[3], 10.0),
                ));
            }

            // Tightness: max (baseline/ours − 1) · 100 over the sweep.
            let pct = |ours: f64, other: f64| -> f64 {
                if ours <= 0.0 {
                    0.0
                } else {
                    (other - ours) / ours * 100.0
                }
            };
            let max_vs = |pick: fn(&(f64, MethodOutcome, MethodOutcome, MethodOutcome, MethodOutcome)) -> f64| {
                curve
                    .iter()
                    .map(|row| pct(row.1.bound, pick(row)))
                    .fold(0.0, f64::max)
            };
            tightness.push_row(vec![
                dataset.name().to_string(),
                fmt(max_vs(|r| r.2.bound)),
                fmt(max_vs(|r| r.3.bound)),
                fmt(max_vs(|r| r.4.bound)),
            ]);

            // Tradeoff accuracy: smallest fraction whose curve value meets
            // the threshold. Thresholds are per-dataset so they are
            // attainable: night-street's sparse counts (mean ≈ 0.4
            // cars/frame) keep every guaranteed bound far looser than
            // UA-DETRAC's dense ones.
            let threshold = match (dataset, cfg.quick) {
                (DatasetPreset::NightStreet, false) => 0.40,
                (DatasetPreset::Detrac, false) => 0.10,
                // Quick mode caps the corpus at 4,000 frames, so no
                // guaranteed bound can get as tight as on the full corpus;
                // relax the thresholds accordingly.
                (DatasetPreset::NightStreet, true) => 0.50,
                (DatasetPreset::Detrac, true) => 0.20,
            };
            let pick_fraction = |value: fn(&(f64, MethodOutcome, MethodOutcome, MethodOutcome, MethodOutcome)) -> f64| -> f64 {
                curve
                    .iter()
                    .find(|row| value(row) <= threshold)
                    .map(|row| row.0)
                    .unwrap_or_else(|| fractions[fractions.len() - 1])
            };
            let optimal = pick_fraction(|r| r.1.true_error);
            let ours = pick_fraction(|r| r.1.bound);
            let ebgs = pick_fraction(|r| r.2.bound);
            let gap_ours = (ours - optimal).max(0.0);
            let gap_ebgs = (ebgs - optimal).max(0.0);
            let reduction = if gap_ebgs > 0.0 {
                (gap_ebgs - gap_ours) / gap_ebgs * 100.0
            } else {
                0.0
            };
            tradeoff.push_row(vec![
                dataset.name().to_string(),
                fmt(threshold),
                fmt(optimal),
                fmt(ours),
                fmt(ebgs),
                fmt(reduction),
            ]);
        }

        vec![tightness, tradeoff]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn our_bound_is_materially_tighter_and_enables_better_tradeoffs() {
        let cfg = RunConfig::quick();
        let tables = Headline.run(&cfg);
        let dir = std::env::temp_dir().join("headline-test");

        let path = tables[0].write_csv(&dir, "tightness").unwrap();
        for line in std::fs::read_to_string(path).unwrap().lines().skip(1) {
            let cells: Vec<&str> = line.split(',').collect();
            let vs_ebgs: f64 = cells[1].parse().unwrap();
            assert!(vs_ebgs > 20.0, "EBGS advantage should be material: {line}");
        }

        let path = tables[1].write_csv(&dir, "tradeoff").unwrap();
        for line in std::fs::read_to_string(path).unwrap().lines().skip(1) {
            let cells: Vec<&str> = line.split(',').collect();
            let optimal: f64 = cells[2].parse().unwrap();
            let ours: f64 = cells[3].parse().unwrap();
            let ebgs: f64 = cells[4].parse().unwrap();
            assert!(ours >= optimal - 1e-9, "{line}");
            assert!(
                ours <= ebgs + 1e-9,
                "our curve must allow at least as much degradation: {line}"
            );
            if line.starts_with("ua-detrac") {
                let reduction: f64 = cells[5].parse().unwrap();
                assert!(
                    reduction > 0.0,
                    "the tighter bound must buy a better tradeoff on detrac: {line}"
                );
            }
        }
    }
}
