//! Ablations of Smokescreen's two design choices in Algorithm 1/2
//! (Table 1's "our novelty" column):
//!
//! 1. **Which concentration inequality feeds Algorithm 1** — the paper
//!    replaces EBGS's empirical Bernstein interval with Hoeffding–Serfling
//!    and drops the anytime union bound. We swap the interval back to
//!    plain Hoeffding and to empirical Bernstein (both at terminal `n`,
//!    keeping the harmonic estimator) to isolate the inequality's
//!    contribution.
//! 2. **Sampling without replacement in Algorithm 2** — the paper's
//!    hypergeometric variance carries the finite-population correction
//!    `√((N−n)/(N−1))`; prior work assumed with-replacement sampling
//!    (factor 1). We compute both.

use smokescreen_stats::bounds::{empirical_bernstein, hoeffding, hoeffding_serfling};
use smokescreen_stats::hypergeometric::fraction_std_err_factor;
use smokescreen_stats::normal::two_sided_z;
use smokescreen_stats::{quantile_estimate, Extreme, MeanEstimate};
use smokescreen_video::synth::DatasetPreset;

use crate::figures::Experiment;
use crate::table::{fmt, Table};
use crate::workloads::{Bench, ModelKind};
use crate::RunConfig;

/// The ablation experiment (`repro ablate`).
pub struct Ablation;

/// Algorithm 1 with a swapped-in mean interval.
fn alg1_with(
    interval: smokescreen_stats::bounds::MeanInterval,
) -> MeanEstimate {
    let mean_abs = interval.estimate.abs();
    let lb = (mean_abs - interval.half_width).max(0.0);
    let ub = mean_abs + interval.half_width;
    MeanEstimate::from_interval(interval.estimate.signum(), lb, ub, interval.n)
}

impl Experiment for Ablation {
    fn id(&self) -> &'static str {
        "ablate"
    }

    fn describe(&self) -> &'static str {
        "Ablate Algorithm 1's inequality choice and Algorithm 2's without-replacement correction"
    }

    fn run(&self, cfg: &RunConfig) -> Vec<Table> {
        let bench = Bench::new(DatasetPreset::Detrac, ModelKind::Yolo, cfg);
        let clip = 5.0;

        // Ablation 1: inequality inside Algorithm 1 (AVG on UA-DETRAC).
        let mut t1 = Table::new(
            "Ablation: Algorithm 1's interval (mean err_b over trials, AVG / UA-DETRAC)",
            &["fraction", "hoeffding_serfling(ours)", "hoeffding", "empirical_bernstein"],
        );
        for fraction in [0.002, 0.005, 0.01, 0.02, 0.05, 0.1] {
            let n = ((bench.n() as f64 * fraction).round() as usize).max(2);
            let (mut hs_acc, mut h_acc, mut eb_acc) = (0.0, 0.0, 0.0);
            for t in 0..cfg.trials {
                let sample = bench.sample_outputs(bench.native(), n, cfg.seed + t as u64);
                let hs = alg1_with(
                    hoeffding_serfling::interval(&sample, bench.n(), 0.05).unwrap(),
                );
                let h = alg1_with(hoeffding::interval(&sample, bench.n(), 0.05).unwrap());
                let eb = alg1_with(
                    empirical_bernstein::interval(&sample, bench.n(), 0.05).unwrap(),
                );
                hs_acc += hs.err_b.min(clip);
                h_acc += h.err_b.min(clip);
                eb_acc += eb.err_b.min(clip);
            }
            let n_t = cfg.trials as f64;
            t1.push_row(vec![
                format!("{fraction:.3}"),
                fmt(hs_acc / n_t),
                fmt(h_acc / n_t),
                fmt(eb_acc / n_t),
            ]);
        }

        // Ablation 2: FPC in Algorithm 2 (MAX / 0.99-quantile).
        let mut t2 = Table::new(
            "Ablation: Algorithm 2 with vs without the finite-population correction (MAX)",
            &["fraction", "with_fpc(ours)", "without_fpc", "fpc_factor"],
        );
        let r = 0.99;
        let z = two_sided_z(0.05);
        for fraction in [0.005, 0.02, 0.1, 0.3, 0.6, 0.9] {
            let n = ((bench.n() as f64 * fraction).round() as usize).max(2);
            let (mut with_acc, mut without_acc, mut factor_acc) = (0.0, 0.0, 0.0);
            for t in 0..cfg.trials {
                let sample = bench.sample_outputs(bench.native(), n, cfg.seed + t as u64);
                let ours =
                    quantile_estimate(&sample, bench.n(), r, 0.05, Extreme::Max).unwrap();
                // Same formula with the with-replacement standard error
                // 1/√n in place of the hypergeometric factor.
                let fpc = fraction_std_err_factor(bench.n(), n);
                let no_fpc_se = 1.0 / (n as f64).sqrt();
                let spread = (r * (1.0 - r)).sqrt();
                let without = ((z * spread * no_fpc_se + ours.f_hat) / ours.f_hat + 1.0)
                    * (ours.f_hat / r);
                with_acc += ours.err_b.min(clip);
                without_acc += without.min(clip);
                factor_acc += fpc * (n as f64).sqrt(); // = √((N−n)/(N−1))
            }
            let n_t = cfg.trials as f64;
            t2.push_row(vec![
                format!("{fraction:.3}"),
                fmt(with_acc / n_t),
                fmt(without_acc / n_t),
                fmt(factor_acc / n_t),
            ]);
        }

        vec![t1, t2]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows(t: &Table, stem: &str) -> Vec<Vec<f64>> {
        let dir = std::env::temp_dir().join("ablate-test");
        let path = t.write_csv(&dir, stem).unwrap();
        std::fs::read_to_string(path)
            .unwrap()
            .lines()
            .skip(1)
            .map(|l| l.split(',').map(|c| c.parse().unwrap()).collect())
            .collect()
    }

    #[test]
    fn hoeffding_serfling_wins_the_inequality_ablation() {
        let cfg = RunConfig::quick();
        let tables = Ablation.run(&cfg);
        for r in rows(&tables[0], "alg1") {
            assert!(
                r[1] <= r[2] + 1e-9,
                "HS must beat Hoeffding inside Algorithm 1: {r:?}"
            );
        }
    }

    #[test]
    fn fpc_only_matters_at_large_fractions() {
        let cfg = RunConfig::quick();
        let tables = Ablation.run(&cfg);
        let r = rows(&tables[1], "alg2");
        // With-FPC is never looser, and the advantage grows with the
        // fraction (the factor √((N−n)/(N−1)) falls toward 0).
        for row in &r {
            assert!(row[1] <= row[2] + 1e-9, "{row:?}");
        }
        let first_gap = r[0][2] - r[0][1];
        let last_gap = r[r.len() - 1][2] - r[r.len() - 1][1];
        assert!(
            last_gap >= first_gap,
            "FPC advantage should grow with the fraction: {first_gap} vs {last_gap}"
        );
    }
}
