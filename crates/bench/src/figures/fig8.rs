//! Figure 8 — predicted car-count distributions at 608/384/320 on
//! night-street with YOLOv4.
//!
//! Paper shape: the 320×320 histogram tracks the 608×608 (ground-truth)
//! histogram closely, while 384×384 deviates substantially — explaining
//! Figure 7's anomaly at the distribution level.

use smokescreen_stats::describe::Histogram;
use smokescreen_video::synth::DatasetPreset;
use smokescreen_video::Resolution;

use crate::figures::Experiment;
use crate::table::{fmt, Table};
use crate::workloads::{Bench, ModelKind};
use crate::RunConfig;

const BINS: usize = 12;

/// Figure 8 reproduction.
pub struct Fig8;

impl Experiment for Fig8 {
    fn id(&self) -> &'static str {
        "fig8"
    }

    fn describe(&self) -> &'static str {
        "Predicted car-count histograms at 608/384/320 (YOLOv4, night-street)"
    }

    fn run(&self, cfg: &RunConfig) -> Vec<Table> {
        let bench = Bench::new(DatasetPreset::NightStreet, ModelKind::Yolo, cfg);
        let hist = |side: u32| -> Histogram {
            let mut h = Histogram::new(BINS);
            for &v in bench.outputs_at(Resolution::square(side)).iter() {
                h.record(v);
            }
            h
        };
        let (h608, h384, h320) = (hist(608), hist(384), hist(320));

        let mut table = Table::new(
            "Figure 8: frames per predicted car count (608 = ground truth)",
            &["cars", "608x608", "384x384", "320x320"],
        );
        for bin in 0..BINS {
            table.push_row(vec![
                bin.to_string(),
                h608.counts()[bin].to_string(),
                h384.counts()[bin].to_string(),
                h320.counts()[bin].to_string(),
            ]);
        }

        let mut tv = Table::new(
            "Figure 8 (summary): total-variation distance to the 608x608 distribution",
            &["resolution", "tv_distance"],
        );
        tv.push_row(vec!["384x384".into(), fmt(h608.total_variation(&h384))]);
        tv.push_row(vec!["320x320".into(), fmt(h608.total_variation(&h320))]);

        vec![table, tv]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distribution_at_384_deviates_more_than_320() {
        let tables = Fig8.run(&RunConfig::quick());
        let dir = std::env::temp_dir().join("fig8-test");
        let path = tables[1].write_csv(&dir, "fig8-tv").unwrap();
        let content = std::fs::read_to_string(path).unwrap();
        let rows: Vec<&str> = content.lines().skip(1).collect();
        let tv384: f64 = rows[0].split(',').nth(1).unwrap().parse().unwrap();
        let tv320: f64 = rows[1].split(',').nth(1).unwrap().parse().unwrap();
        assert!(
            tv384 > tv320,
            "384 should deviate more from truth than 320: tv384={tv384} tv320={tv320}"
        );
    }
}
