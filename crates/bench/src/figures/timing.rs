//! §5.3.1 — profile generation time.
//!
//! Paper setup: YOLOv4 computing AVG(cars) on UA-DETRAC, ten resolution
//! candidates, loosest image-removal (none), correction-set fraction 0.04
//! doubling as the highest sample fraction. YOLOv4 is invoked 6084 times
//! (4% of 15,210 frames × 10 resolutions) for a total of about three
//! minutes of model time; the estimation stage costs tens of
//! milliseconds per intervention set. Without a GPU we reproduce the
//! breakdown with the simulated per-frame cost model and the measured
//! estimation wall-clock, and verify model time ≫ estimation time.

use smokescreen_core::{Aggregate, GeneratorConfig, ProfileGenerator};
use smokescreen_degrade::CandidateGrid;
use smokescreen_rt::fault::FaultPlan;
use smokescreen_rt::journal::checkpoint_dir_from_env;
use smokescreen_video::synth::DatasetPreset;

use crate::figures::Experiment;
use crate::table::{fmt, Table};
use crate::workloads::{resolution_sweep, Bench, ModelKind};
use crate::RunConfig;

/// Profile-generation timing reproduction.
pub struct Timing;

impl Experiment for Timing {
    fn id(&self) -> &'static str {
        "time"
    }

    fn describe(&self) -> &'static str {
        "§5.3.1 profile generation time: model invocations dominate, estimation is milliseconds"
    }

    fn run(&self, cfg: &RunConfig) -> Vec<Table> {
        let bench = Bench::new(DatasetPreset::Detrac, ModelKind::Yolo, cfg);
        let workload = bench.workload(Aggregate::Avg);

        // Ten resolutions; sample fractions at 1% steps up to 4%.
        let grid = CandidateGrid::explicit(
            (1..=4).map(|i| i as f64 / 100.0).collect(),
            resolution_sweep(ModelKind::Yolo, 608),
            vec![vec![]],
        );
        let generator = ProfileGenerator::new(
            &workload,
            &bench.restrictions,
            GeneratorConfig {
                seed: cfg.seed,
                early_stop_improvement: None, // measure the full grid
                // Chaos replay knobs: SMOKESCREEN_FAULT_SEED /
                // SMOKESCREEN_FAULT_RATE arm deterministic fault
                // injection; unset (the default, and the golden
                // configuration) runs fault-free.
                faults: FaultPlan::from_env(),
                // Crash-consistent checkpointing (repro --resume DIR or
                // SMOKESCREEN_CHECKPOINT_DIR): journals each completed
                // cell; a rerun resumes with byte-identical output.
                checkpoint: checkpoint_dir_from_env(),
                ..GeneratorConfig::default()
            },
        );
        let (profile, report) = generator.generate(&grid, None).expect("generation succeeds");

        let mut table = Table::new(
            "Profile generation time (YOLOv4 / UA-DETRAC / AVG, 10 resolutions, f ≤ 0.04)",
            &["metric", "value"],
        );
        table.push_row(vec!["points_profiled".into(), profile.len().to_string()]);
        table.push_row(vec!["model_invocations".into(), report.model_runs.to_string()]);
        table.push_row(vec!["cache_hits".into(), report.cache_hits.to_string()]);
        table.push_row(vec![
            "simulated_model_time_s".into(),
            fmt(report.model_time_ms / 1e3),
        ]);
        table.push_row(vec![
            "measured_estimation_time_ms".into(),
            fmt(report.estimation_time_ms),
        ]);
        // Incremental-kernel breakdown: per-cell sweep totals for pulling
        // Δn sample outputs into the kernels vs. computing bounds from
        // kernel state.
        table.push_row(vec![
            "estimation_ingest_ms".into(),
            fmt(report.estimation_ingest_ms),
        ]);
        table.push_row(vec![
            "estimation_bound_ms".into(),
            fmt(report.estimation_bound_ms),
        ]);
        table.push_row(vec!["cells_swept".into(), report.cells.to_string()]);
        table.push_row(vec![
            "estimation_ms_per_candidate".into(),
            fmt(report.estimation_time_ms / profile.len().max(1) as f64),
        ]);
        table.push_row(vec![
            "model_vs_estimation_ratio".into(),
            fmt(report.model_time_ms / report.estimation_time_ms.max(1e-9)),
        ]);
        // Chaos accounting: all zero in the fault-free golden
        // configuration; under SMOKESCREEN_FAULT_RATE they record the
        // retry work and any quarantined cells.
        table.push_row(vec!["retries".into(), report.retries.to_string()]);
        table.push_row(vec![
            "degraded_cells".into(),
            report.degraded_cells.len().to_string(),
        ]);
        // Checkpoint accounting: all zero without --resume; with it they
        // record how much of the run was spliced from the journal and the
        // journal's (deterministic) on-disk footprint.
        table.push_row(vec![
            "cells_resumed".into(),
            report.cells_resumed.to_string(),
        ]);
        table.push_row(vec![
            "journal_bytes".into(),
            report.journal_bytes.to_string(),
        ]);
        table.push_row(vec![
            "journal_corrupt_records".into(),
            report.journal_corrupt_records.to_string(),
        ]);
        vec![table]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_time_dominates_estimation_time() {
        let cfg = RunConfig::quick();
        let t = &Timing.run(&cfg)[0];
        let dir = std::env::temp_dir().join("timing-test");
        let path = t.write_csv(&dir, "timing").unwrap();
        let content = std::fs::read_to_string(path).unwrap();
        let get = |key: &str| -> f64 {
            content
                .lines()
                .find(|l| l.starts_with(key))
                .unwrap()
                .split(',')
                .nth(1)
                .unwrap()
                .parse()
                .unwrap()
        };
        let model_s = get("simulated_model_time_s");
        let est_ms = get("measured_estimation_time_ms");
        let runs = get("model_invocations");
        assert!(runs > 100.0);
        assert!(
            model_s * 1e3 > 10.0 * est_ms,
            "model time must dominate: model={model_s}s est={est_ms}ms"
        );
        // The incremental breakdown partitions the estimation total.
        let ingest = get("estimation_ingest_ms");
        let bound = get("estimation_bound_ms");
        assert!(
            (ingest + bound - est_ms).abs() < 0.05,
            "ingest {ingest} + bound {bound} must sum to {est_ms}"
        );
        assert_eq!(get("cells_swept"), 10.0, "ten resolutions, one combo");
        // Fault-free run: no retry work, no quarantined cells.
        assert_eq!(get("retries"), 0.0);
        assert_eq!(get("degraded_cells"), 0.0);
        // No checkpoint dir in the test environment: the feature is inert.
        assert_eq!(get("cells_resumed"), 0.0);
        assert_eq!(get("journal_bytes"), 0.0);
        assert_eq!(get("journal_corrupt_records"), 0.0);
    }

    #[test]
    fn full_run_matches_paper_invocation_count() {
        // At full corpus size (15,210 frames), 4% × 10 resolutions is the
        // paper's 6,084 invocations. The count scales linearly with the
        // quick-mode cap, so check the ratio instead of the absolute.
        let cfg = RunConfig::quick(); // 4,000-frame cap
        let t = &Timing.run(&cfg)[0];
        let content = t.render();
        // 4% of 4,000 = 160 frames × 10 resolutions = 1,600 invocations.
        assert!(content.contains("1600"), "{content}");
    }
}
