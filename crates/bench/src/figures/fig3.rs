//! Figure 3 — real degradation-accuracy tradeoff curves for the AVG query
//! on the two datasets, varying frame resolution.
//!
//! Paper shape: both curves rise as resolution falls, but with clearly
//! different shapes — the curves are video-dependent, which is the whole
//! argument for per-video profiles. Both datasets use YOLOv4 here (as the
//! paper's Figure 3 caption states).

use smokescreen_video::synth::DatasetPreset;

use crate::figures::Experiment;
use crate::table::{fmt, Table};
use crate::workloads::{resolution_sweep, Bench, ModelKind};
use crate::RunConfig;

/// Figure 3 reproduction.
pub struct Fig3;

impl Experiment for Fig3 {
    fn id(&self) -> &'static str {
        "fig3"
    }

    fn describe(&self) -> &'static str {
        "True AVG tradeoff curves vs resolution on night-street and UA-DETRAC (YOLOv4)"
    }

    fn run(&self, cfg: &RunConfig) -> Vec<Table> {
        let mut table = Table::new(
            "Figure 3: true relative error of AVG(cars) vs resolution",
            &["resolution", "night-street", "ua-detrac"],
        );

        let ns = Bench::new(DatasetPreset::NightStreet, ModelKind::Yolo, cfg);
        let dt = Bench::new(DatasetPreset::Detrac, ModelKind::Yolo, cfg);

        // Shared sweep on the YOLO grid up to 608 (both corpora processed
        // by YOLOv4 whose native input is 608²).
        let sweep = resolution_sweep(ModelKind::Yolo, 608);
        for res in sweep {
            let row: Vec<f64> = [&ns, &dt]
                .iter()
                .map(|b| {
                    let truth = mean(&b.outputs_at(b.native()));
                    let at_res = mean(&b.outputs_at(res));
                    if truth == 0.0 {
                        0.0
                    } else {
                        (at_res - truth).abs() / truth
                    }
                })
                .collect();
            table.push_row(vec![res.to_string(), fmt(row[0]), fmt(row[1])]);
        }
        vec![table]
    }
}

fn mean(v: &[f64]) -> f64 {
    if v.is_empty() {
        0.0
    } else {
        v.iter().sum::<f64>() / v.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn curves_differ_across_datasets_and_degrade_at_low_res() {
        let tables = Fig3.run(&RunConfig::quick());
        let t = &tables[0];
        assert!(t.len() >= 8);
        let rendered = t.render();
        assert!(rendered.contains("608x608"));
        // Parse first data row (lowest resolution): errors should be
        // larger there than at native for at least one dataset.
        let csv_dir = std::env::temp_dir().join("fig3-test");
        let path = t.write_csv(&csv_dir, "fig3").unwrap();
        let content = std::fs::read_to_string(path).unwrap();
        let rows: Vec<&str> = content.lines().skip(1).collect();
        let first: Vec<&str> = rows[0].split(',').collect();
        let last: Vec<&str> = rows[rows.len() - 1].split(',').collect();
        let low_err: f64 = first[1].parse().unwrap();
        let native_err: f64 = last[1].parse().unwrap();
        assert!(low_err > native_err, "low={low_err} native={native_err}");
        assert!(native_err < 0.15, "native error should be small: {native_err}");
    }
}
