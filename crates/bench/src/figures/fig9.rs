//! Figure 9 — corrected error bound vs. correction-set size for two
//! randomly chosen intervention sets, AVG and MAX, on UA-DETRAC; plus the
//! fraction the §3.3.1 elbow heuristic actually picks.
//!
//! Paper shape: bounds fall steeply as the correction set grows, then
//! flatten; the heuristically determined fraction lands at/after the
//! elbow for *both* intervention sets, so one correction set serves every
//! set of interventions.

use smokescreen_core::correction::{build_correction_set, CorrectionConfig, CorrectionSet};
use smokescreen_core::{corrected_bound, true_relative_error, Aggregate};
use smokescreen_video::synth::DatasetPreset;
use smokescreen_video::{ObjectClass, Resolution};

use crate::figures::baselines::smokescreen_estimate;
use crate::figures::Experiment;
use crate::table::{fmt, Table};
use crate::workloads::{Bench, ModelKind};
use crate::RunConfig;

/// Figure 9 reproduction.
pub struct Fig9;

/// The two §5.2.3 intervention sets: (fraction, resolution side,
/// restricted class).
const SETS: [(f64, u32, ObjectClass); 2] =
    [(0.1, 256, ObjectClass::Person), (0.05, 320, ObjectClass::Face)];

impl Experiment for Fig9 {
    fn id(&self) -> &'static str {
        "fig9"
    }

    fn describe(&self) -> &'static str {
        "Corrected bound vs correction-set fraction, two intervention sets (UA-DETRAC)"
    }

    fn run(&self, cfg: &RunConfig) -> Vec<Table> {
        let bench = Bench::new(DatasetPreset::Detrac, ModelKind::Yolo, cfg);
        let population = bench.population();
        let mut tables = Vec::new();

        for aggregate in [Aggregate::Avg, Aggregate::Max { r: 0.99 }] {
            let mut table = Table::new(
                format!(
                    "Figure 9 [{} on UA-DETRAC]: corrected bound vs correction fraction",
                    aggregate.name()
                ),
                &["cs_fraction", "set1_bound", "set1_true", "set2_bound", "set2_true"],
            );

            // Fixed degraded samples per trial for each intervention set.
            let degraded: Vec<Vec<(smokescreen_core::Estimate, f64)>> = SETS
                .iter()
                .map(|&(f, side, class)| {
                    (0..cfg.trials)
                        .map(|t| {
                            let n = ((bench.n() as f64 * f).round() as usize).max(2);
                            let sample = bench.sample_outputs_after_removal(
                                Resolution::square(side),
                                &[class],
                                n,
                                cfg.seed + t as u64,
                            );
                            let est = smokescreen_estimate(aggregate, &sample, bench.n(), 0.05);
                            let te = true_relative_error(aggregate, &est, &population);
                            (est, te)
                        })
                        .collect()
                })
                .collect();

            let fractions: Vec<f64> = (1..=12).map(|i| i as f64 / 100.0).collect();
            for &cs_fraction in &fractions {
                let mut cells = vec![format!("{cs_fraction:.2}")];
                for (set_idx, trials) in degraded.iter().enumerate() {
                    let (mut bound_acc, mut true_acc) = (0.0, 0.0);
                    for (t, (est, te)) in trials.iter().enumerate() {
                        let m = ((bench.n() as f64 * cs_fraction).round() as usize).max(2);
                        let values = bench.sample_outputs(
                            bench.native(),
                            m,
                            cfg.seed + t as u64 + 90_000 + set_idx as u64,
                        );
                        let cs = CorrectionSet {
                            estimate: smokescreen_estimate(aggregate, &values, bench.n(), 0.05),
                            values,
                            fraction: cs_fraction,
                            growth_curve: Vec::new(),
                        };
                        bound_acc += corrected_bound(est, &cs).expect("matching metrics").min(5.0);
                        true_acc += te.min(5.0);
                    }
                    cells.push(fmt(bound_acc / cfg.trials as f64));
                    cells.push(fmt(true_acc / cfg.trials as f64));
                }
                table.push_row(cells);
            }
            tables.push(table);

            // The fraction the elbow heuristic determines.
            let w = bench.workload(aggregate);
            let cs = build_correction_set(
                &w,
                &bench.restrictions,
                &CorrectionConfig::default(),
                cfg.seed,
                None,
            )
            .expect("correction set");
            let mut chosen = Table::new(
                format!("Figure 9 [{}]: heuristically determined fraction", aggregate.name()),
                &["determined_fraction", "set_size"],
            );
            chosen.push_row(vec![fmt(cs.fraction), cs.len().to_string()]);
            tables.push(chosen);
        }
        tables
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounds_fall_then_flatten_and_heuristic_lands_after_steep_part() {
        let cfg = RunConfig::quick();
        let tables = Fig9.run(&cfg);
        assert_eq!(tables.len(), 4);
        let dir = std::env::temp_dir().join("fig9-test");
        let path = tables[0].write_csv(&dir, "avg").unwrap();
        let rows: Vec<Vec<f64>> = std::fs::read_to_string(path)
            .unwrap()
            .lines()
            .skip(1)
            .map(|l| l.split(',').map(|c| c.parse().unwrap()).collect())
            .collect();
        // Bound at 1% >> bound at 12% for both sets.
        assert!(rows[0][1] > rows[rows.len() - 1][1]);
        assert!(rows[0][3] > rows[rows.len() - 1][3]);
        // Corrected bounds cover the true error at the largest fraction.
        let last = &rows[rows.len() - 1];
        assert!(last[1] >= last[2] - 1e-9, "{last:?}");
        assert!(last[3] >= last[4] - 1e-9, "{last:?}");

        // Determined fraction is positive and below the admin cap.
        let path = tables[1].write_csv(&dir, "chosen").unwrap();
        let line = std::fs::read_to_string(path).unwrap();
        let chosen: f64 = line
            .lines()
            .nth(1)
            .unwrap()
            .split(',')
            .next()
            .unwrap()
            .parse()
            .unwrap();
        assert!(chosen >= 0.01 && chosen <= 0.25, "chosen={chosen}");
    }
}
