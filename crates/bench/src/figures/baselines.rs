//! Baseline estimators evaluated side-by-side with Smokescreen (§5.1).

use smokescreen_core::{estimate_from_outputs, true_relative_error, Aggregate, Estimate};
use smokescreen_stats::bounds::{clt, ebgs, hoeffding, hoeffding_serfling};
use smokescreen_stats::estimators::quantile::stein_estimate;

/// One method's outcome on one sample: its estimate's true relative error
/// (value- or rank-metric per the aggregate) and its claimed bound.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MethodOutcome {
    /// True relative error of the method's point estimate.
    pub true_error: f64,
    /// The method's `1 − δ` upper bound on that error.
    pub bound: f64,
}

/// All methods applicable to a mean-style aggregate (AVG/SUM/COUNT).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeanMethods {
    /// Smokescreen (Algorithm 1).
    pub smokescreen: MethodOutcome,
    /// Empirical Bernstein geometric stopping (Mnih et al.).
    pub ebgs: MethodOutcome,
    /// Hoeffding–Serfling interval around the sample mean.
    pub hoeffding_serfling: MethodOutcome,
    /// Hoeffding interval around the sample mean.
    pub hoeffding: MethodOutcome,
    /// CLT normal interval (no guarantee).
    pub clt: MethodOutcome,
}

/// Runs all mean-style methods on one sampled output vector.
///
/// `raw_sample` are the raw per-frame outputs; COUNT's indicator transform
/// is applied internally. `population_raw` is the full oracle output array
/// used only to score true errors.
pub fn run_mean_methods(
    aggregate: Aggregate,
    raw_sample: &[f64],
    population_raw: &[f64],
    delta: f64,
) -> MeanMethods {
    let n_pop = population_raw.len();
    let sample = aggregate.transform(raw_sample);
    let population = aggregate.transform(population_raw);
    // For AVG the target is the mean; SUM/COUNT scale by N, which leaves
    // relative errors unchanged — score everything on the mean scale.
    let mu = population.iter().sum::<f64>() / population.len().max(1) as f64;

    let smokescreen_est =
        estimate_from_outputs(aggregate, raw_sample, n_pop, delta).expect("valid inputs");
    let smokescreen = MethodOutcome {
        true_error: true_relative_error(aggregate, &smokescreen_est, population_raw),
        bound: smokescreen_est.err_b(),
    };

    let ebgs_out = ebgs::run(&sample, n_pop, delta).expect("valid inputs");
    let ebgs_err = if mu == 0.0 {
        0.0
    } else {
        (ebgs_out.estimate.y_approx - mu).abs() / mu.abs()
    };
    let ebgs = MethodOutcome {
        true_error: ebgs_err,
        bound: ebgs_out.estimate.err_b,
    };

    let mean_outcome = |iv: smokescreen_stats::bounds::MeanInterval| MethodOutcome {
        true_error: if mu == 0.0 {
            0.0
        } else {
            (iv.estimate - mu).abs() / mu.abs()
        },
        bound: iv.relative_error_bound(),
    };

    MeanMethods {
        smokescreen,
        ebgs,
        hoeffding_serfling: mean_outcome(
            hoeffding_serfling::interval(&sample, n_pop, delta).expect("valid inputs"),
        ),
        hoeffding: mean_outcome(hoeffding::interval(&sample, n_pop, delta).expect("valid inputs")),
        clt: mean_outcome(clt::interval(&sample, n_pop, delta).expect("valid inputs")),
    }
}

/// Methods for MAX (rank metric): Smokescreen's Algorithm 2 vs. the Stein
/// baseline (identical point estimates, different bounds).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuantileMethods {
    /// Smokescreen (Algorithm 2).
    pub smokescreen: MethodOutcome,
    /// Stein-lemma baseline (Manku et al. 1999).
    pub stein: MethodOutcome,
}

/// Runs the quantile methods on one sampled output vector.
pub fn run_quantile_methods(
    aggregate: Aggregate,
    raw_sample: &[f64],
    population_raw: &[f64],
    delta: f64,
) -> QuantileMethods {
    let r = aggregate.quantile_r().expect("rank aggregate");
    let n_pop = population_raw.len();
    let est = estimate_from_outputs(aggregate, raw_sample, n_pop, delta).expect("valid inputs");
    let true_error = true_relative_error(aggregate, &est, population_raw);
    let stein = stein_estimate(raw_sample, n_pop, r, delta).expect("valid inputs");
    QuantileMethods {
        smokescreen: MethodOutcome {
            true_error,
            bound: est.err_b(),
        },
        stein: MethodOutcome {
            // Same point estimate, same true error (§5.2.1).
            true_error,
            bound: stein.err_b,
        },
    }
}

/// Averages outcomes across trials component-wise, clipping infinite
/// bounds to the clip value first (mirrors the paper's clipped y-axes).
pub fn average(outcomes: &[MethodOutcome], clip: f64) -> MethodOutcome {
    let n = outcomes.len().max(1) as f64;
    MethodOutcome {
        true_error: outcomes.iter().map(|o| o.true_error.min(clip)).sum::<f64>() / n,
        bound: outcomes.iter().map(|o| o.bound.min(clip)).sum::<f64>() / n,
    }
}

/// Convenience: mean-style estimate for a sample (used by several
/// figures).
pub fn smokescreen_estimate(
    aggregate: Aggregate,
    raw_sample: &[f64],
    n_pop: usize,
    delta: f64,
) -> Estimate {
    estimate_from_outputs(aggregate, raw_sample, n_pop, delta).expect("valid inputs")
}

#[cfg(test)]
mod tests {
    use super::*;
    use smokescreen_rt::rng::StdRng;
    use smokescreen_stats::sample::sample_indices;

    fn population(n: usize) -> Vec<f64> {
        // Long-tailed, car-count-like: the 0.99-quantile value is rare,
        // which is the regime Algorithm 2's bound is designed for.
        let mut rng = StdRng::seed_from_u64(9);
        (0..n)
            .map(|_| {
                let base: f64 = rng.gen_range(0.0..4.0_f64).floor();
                if rng.gen_bool(0.03) {
                    base + rng.gen_range(2.0..10.0_f64).floor()
                } else {
                    base
                }
            })
            .collect()
    }

    #[test]
    fn smokescreen_tighter_than_ebgs_and_range_bounds() {
        let pop = population(10_000);
        let idx = sample_indices(pop.len(), 300, 4).unwrap();
        let sample: Vec<f64> = idx.iter().map(|&i| pop[i]).collect();
        let m = run_mean_methods(Aggregate::Avg, &sample, &pop, 0.05);
        assert!(m.smokescreen.bound <= m.ebgs.bound);
        assert!(m.smokescreen.bound <= m.hoeffding.bound);
        assert!(m.smokescreen.bound <= m.hoeffding_serfling.bound + 1e-9);
    }

    #[test]
    fn quantile_methods_share_true_error() {
        let pop = population(8_000);
        let idx = sample_indices(pop.len(), 200, 5).unwrap();
        let sample: Vec<f64> = idx.iter().map(|&i| pop[i]).collect();
        let q = run_quantile_methods(Aggregate::Max { r: 0.99 }, &sample, &pop, 0.05);
        assert_eq!(q.smokescreen.true_error, q.stein.true_error);
        assert!(q.smokescreen.bound < q.stein.bound);
    }

    #[test]
    fn average_clips_infinities() {
        let a = MethodOutcome {
            true_error: 0.1,
            bound: f64::INFINITY,
        };
        let b = MethodOutcome {
            true_error: 0.3,
            bound: 1.0,
        };
        let avg = average(&[a, b], 2.0);
        assert!((avg.bound - 1.5).abs() < 1e-12);
        assert!((avg.true_error - 0.2).abs() < 1e-12);
    }
}
