//! Figure 6 — error bounds with and without the correction set vs. the
//! true error, under each intervention type, for AVG and MAX on both
//! datasets.
//!
//! Paper shape, row by row:
//!
//! * **frame sampling** (random): both bounds are valid; the corrected
//!   bound can be tighter when the correction set carries more frames
//!   than the degraded sample;
//! * **frame resolution** (non-random): at low resolutions the
//!   uncorrected bound dips *below* the true error (the red-circled
//!   region) — it is wrong and would mislead an administrator; the
//!   corrected bound stays above the truth;
//! * **image removal** (non-random): restricting `person` biases samples
//!   (person and car occurrences correlate), again breaking the
//!   uncorrected bound; the corrected bound holds.
//!
//! Correction-set sizes follow §5.2.2: night-street 6% (AVG) / 2% (MAX);
//! UA-DETRAC 4% (AVG) / 2% (MAX). The sample fraction is 0.5 while
//! varying non-random knobs, except 0.1 for UA-DETRAC removal (fewer than
//! half its frames survive `person` removal).

use smokescreen_core::correction::CorrectionSet;
use smokescreen_core::{corrected_bound, true_relative_error, Aggregate};
use smokescreen_video::synth::DatasetPreset;
use smokescreen_video::ObjectClass;

use crate::figures::baselines::smokescreen_estimate;
use crate::figures::Experiment;
use crate::table::{fmt, Table};
use crate::workloads::{resolution_sweep, Bench, ModelKind};
use crate::RunConfig;

const CLIP: f64 = 5.0;

/// Figure 6 reproduction.
pub struct Fig6;

/// Correction-set fraction per §5.2.2.
pub fn correction_fraction(dataset: DatasetPreset, aggregate: Aggregate) -> f64 {
    match (dataset, aggregate) {
        (DatasetPreset::NightStreet, Aggregate::Avg) => 0.06,
        (DatasetPreset::Detrac, Aggregate::Avg) => 0.04,
        _ => 0.02, // MAX on both datasets
    }
}

/// Builds a correction set directly from sampled native outputs.
fn correction_set(bench: &Bench, aggregate: Aggregate, fraction: f64, seed: u64) -> CorrectionSet {
    let m = ((bench.n() as f64 * fraction).round() as usize).max(2);
    let values = bench.sample_outputs(bench.native(), m, seed);
    let estimate = smokescreen_estimate(aggregate, &values, bench.n(), 0.05);
    CorrectionSet {
        values,
        fraction,
        estimate,
        growth_curve: Vec::new(),
    }
}

/// One averaged data point: true error, bound without correction, bound
/// with correction.
fn run_point(
    bench: &Bench,
    aggregate: Aggregate,
    sample_at: smokescreen_video::Resolution,
    restricted: &[ObjectClass],
    sample_n: usize,
    cfg: &RunConfig,
) -> (f64, f64, f64) {
    let population = bench.population();
    let cs_fraction = correction_fraction(bench.dataset, aggregate);
    let (mut te, mut without, mut with) = (0.0, 0.0, 0.0);
    for t in 0..cfg.trials {
        let seed = cfg.seed + t as u64;
        let sample = if restricted.is_empty() {
            bench.sample_outputs(sample_at, sample_n, seed)
        } else {
            bench.sample_outputs_after_removal(sample_at, restricted, sample_n, seed)
        };
        let est = smokescreen_estimate(aggregate, &sample, bench.n(), 0.05);
        let cs = correction_set(bench, aggregate, cs_fraction, seed.wrapping_add(50_000));
        let corrected = corrected_bound(&est, &cs).expect("matching metrics");
        te += true_relative_error(aggregate, &est, &population).min(CLIP);
        without += est.err_b().min(CLIP);
        with += corrected.min(CLIP);
    }
    let n = cfg.trials as f64;
    (te / n, without / n, with / n)
}

impl Experiment for Fig6 {
    fn id(&self) -> &'static str {
        "fig6"
    }

    fn describe(&self) -> &'static str {
        "Bounds with/without correction set vs true error under sampling, resolution, and removal"
    }

    fn run(&self, cfg: &RunConfig) -> Vec<Table> {
        let mut tables = Vec::new();
        for dataset in [DatasetPreset::NightStreet, DatasetPreset::Detrac] {
            let model = ModelKind::paper_default(dataset);
            let bench = Bench::new(dataset, model, cfg);
            let native = bench.native();
            for aggregate in [Aggregate::Avg, Aggregate::Max { r: 0.99 }] {
                let agg_name = aggregate.name();

                // Row 1: random sampling sweep.
                let mut t1 = Table::new(
                    format!("Figure 6 [{} / {agg_name} / sampling]", dataset.name()),
                    &["fraction", "true_err", "bound_no_cs", "bound_cs"],
                );
                for fraction in [0.005, 0.01, 0.02, 0.05, 0.1] {
                    let n = ((bench.n() as f64 * fraction).round() as usize).max(2);
                    let (te, wo, wi) = run_point(&bench, aggregate, native, &[], n, cfg);
                    t1.push_row(vec![format!("{fraction:.4}"), fmt(te), fmt(wo), fmt(wi)]);
                }
                tables.push(t1);

                // Row 2: resolution sweep at f = 0.5.
                let mut t2 = Table::new(
                    format!("Figure 6 [{} / {agg_name} / resolution]", dataset.name()),
                    &["resolution", "true_err", "bound_no_cs", "bound_cs"],
                );
                let n_half = bench.n() / 2;
                for res in resolution_sweep(model, native.width) {
                    let (te, wo, wi) = run_point(&bench, aggregate, res, &[], n_half, cfg);
                    t2.push_row(vec![res.to_string(), fmt(te), fmt(wo), fmt(wi)]);
                }
                tables.push(t2);

                // Row 3: image removal at f = 0.5 (0.1 for DETRAC, whose
                // person-free frames are a minority).
                let removal_fraction = if dataset == DatasetPreset::Detrac {
                    0.1
                } else {
                    0.5
                };
                let n_rem = ((bench.n() as f64 * removal_fraction).round() as usize).max(2);
                let mut t3 = Table::new(
                    format!(
                        "Figure 6 [{} / {agg_name} / removal, f={removal_fraction}]",
                        dataset.name()
                    ),
                    &["restricted", "true_err", "bound_no_cs", "bound_cs"],
                );
                for (label, classes) in [
                    ("none", vec![]),
                    ("face", vec![ObjectClass::Face]),
                    ("person", vec![ObjectClass::Person]),
                ] {
                    let (te, wo, wi) = run_point(&bench, aggregate, native, &classes, n_rem, cfg);
                    t3.push_row(vec![label.to_string(), fmt(te), fmt(wo), fmt(wi)]);
                }
                tables.push(t3);
            }
        }
        tables
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows(t: &Table, stem: &str) -> Vec<Vec<String>> {
        let dir = std::env::temp_dir().join("fig6-test");
        let path = t.write_csv(&dir, stem).unwrap();
        std::fs::read_to_string(path)
            .unwrap()
            .lines()
            .skip(1)
            .map(|l| l.split(',').map(str::to_string).collect())
            .collect()
    }

    #[test]
    fn corrected_bound_always_covers_true_error() {
        let cfg = RunConfig::quick();
        let tables = Fig6.run(&cfg);
        assert_eq!(tables.len(), 12);
        for (i, t) in tables.iter().enumerate() {
            for r in rows(t, &format!("panel-{i}")) {
                let te: f64 = r[1].parse().unwrap();
                let with: f64 = r[3].parse().unwrap();
                assert!(
                    with >= te - 1e-9,
                    "panel {i}: corrected bound below averaged true error: {r:?}"
                );
            }
        }
    }

    #[test]
    fn uncorrected_bound_fails_at_low_resolution() {
        let cfg = RunConfig::quick();
        let tables = Fig6.run(&cfg);
        // Panel index 1 is night-street / AVG / resolution.
        let panel = rows(&tables[1], "res-panel");
        let lowest = &panel[0];
        let te: f64 = lowest[1].parse().unwrap();
        let without: f64 = lowest[2].parse().unwrap();
        assert!(
            without < te,
            "the uncorrected bound should mislead at the lowest resolution: {lowest:?}"
        );
    }
}
