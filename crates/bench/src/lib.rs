//! Experiment harness reproducing every table and figure of the paper's
//! evaluation (Section 5).
//!
//! Each `figures::figN` module regenerates the data series behind one
//! figure; the `repro` binary dispatches on experiment ids and writes both
//! human-readable tables (stdout) and CSV files (`bench_results/`).
//! Absolute values differ from the paper (our substrate is a calibrated
//! simulator, not a GPU testbed) but the *shapes* — who wins, where bounds
//! fail without correction, where the elbow falls — are the reproduction
//! targets; `EXPERIMENTS.md` records paper-vs-measured for each.

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod figures;
pub mod robust;
pub mod serve_client;
pub mod table;
pub mod trajectory;
pub mod workloads;

/// Experiment-wide configuration.
#[derive(Debug, Clone, Copy)]
pub struct RunConfig {
    /// Trials per data point (the paper uses 100).
    pub trials: usize,
    /// Quick mode: smaller corpora and fewer trials, for CI.
    pub quick: bool,
    /// Base seed; trial `t` uses `seed + t`.
    pub seed: u64,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            trials: 100,
            quick: false,
            seed: 42,
        }
    }
}

impl RunConfig {
    /// Quick-mode preset (used by integration tests).
    pub fn quick() -> Self {
        RunConfig {
            trials: 12,
            quick: true,
            seed: 42,
        }
    }

    /// Corpus length cap for the current mode (`None` = full corpus).
    pub fn corpus_cap(&self) -> Option<usize> {
        if self.quick {
            Some(4_000)
        } else {
            None
        }
    }
}
