//! Shared workload setup for the experiment harness.
//!
//! Experiments run hundreds of trials per data point; re-running the
//! detector every trial would dominate wall-clock for no statistical
//! benefit (detectors are deterministic per frame/resolution). The
//! [`Bench`] fixture therefore materializes the per-frame output arrays
//! once per resolution and lets trials re-sample from them — exactly the
//! separation the paper's reuse strategy (§3.3.2) exploits.

use std::collections::HashMap;
use std::sync::Arc;

use smokescreen_core::{Aggregate, Workload};
use smokescreen_degrade::RestrictionIndex;
use smokescreen_models::{Detector, SimMaskRcnn, SimYoloV4};
use smokescreen_rt::sync::RwLock;
use smokescreen_stats::sample::sample_indices;
use smokescreen_video::synth::DatasetPreset;
use smokescreen_video::{ObjectClass, Resolution, VideoCorpus};

use crate::RunConfig;

/// Which detector a workload uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelKind {
    /// Mask R-CNN analogue (the paper's night-street model).
    MaskRcnn,
    /// YOLOv4 analogue (the paper's UA-DETRAC model; also applied to
    /// night-street in Figures 7–8).
    Yolo,
}

impl ModelKind {
    /// Instantiates the detector.
    pub fn build(self, seed: u64) -> Box<dyn Detector> {
        match self {
            ModelKind::MaskRcnn => Box::new(SimMaskRcnn::new(seed)),
            ModelKind::Yolo => Box::new(SimYoloV4::new(seed)),
        }
    }

    /// The paper's model for a dataset.
    pub fn paper_default(dataset: DatasetPreset) -> ModelKind {
        match dataset {
            DatasetPreset::NightStreet => ModelKind::MaskRcnn,
            DatasetPreset::Detrac => ModelKind::Yolo,
        }
    }
}

/// A fully materialized experiment fixture.
pub struct Bench {
    /// Dataset identity.
    pub dataset: DatasetPreset,
    /// The corpus (full size, or capped in quick mode).
    pub corpus: VideoCorpus,
    /// The detector.
    pub detector: Box<dyn Detector>,
    /// Ground-truth restriction prior.
    pub restrictions: RestrictionIndex,
    /// Memoized per-resolution output arrays; lock-guarded so trial
    /// fan-out on `rt::pool` can share one fixture across workers.
    outputs: RwLock<HashMap<Resolution, Arc<Vec<f64>>>>,
}

impl Bench {
    /// Builds the fixture for a dataset/model pair.
    ///
    /// Honors the `SMOKESCREEN_PERTURB_*` content-fault knobs: with a
    /// plan configured in the environment, every experiment fixture is
    /// built over the perturbed corpus — which is what makes the env
    /// knobs real end to end, and what the zero-rate golden re-diff in
    /// `ci.sh` proves inert.
    pub fn new(dataset: DatasetPreset, model: ModelKind, cfg: &RunConfig) -> Self {
        let mut corpus = dataset.generate(cfg.seed);
        if let Some(cap) = cfg.corpus_cap() {
            corpus = corpus.slice(0, cap);
        }
        if let Some(plan) = smokescreen_video::PerturbPlan::from_env() {
            corpus = plan.apply(&corpus);
        }
        let detector = model.build(cfg.seed);
        let restrictions = RestrictionIndex::from_ground_truth(
            &corpus,
            &[ObjectClass::Person, ObjectClass::Face],
        );
        Bench {
            dataset,
            corpus,
            detector,
            restrictions,
            outputs: RwLock::new(HashMap::new()),
        }
    }

    /// The model's processing resolution when no intervention applies.
    pub fn native(&self) -> Resolution {
        self.corpus
            .native_resolution
            .min(self.detector.native_resolution())
    }

    /// Per-frame detector outputs (car counts) at a resolution, computed
    /// once and memoized.
    pub fn outputs_at(&self, res: Resolution) -> Arc<Vec<f64>> {
        if let Some(hit) = self.outputs.read().get(&res) {
            return Arc::clone(hit);
        }
        // Compute outside the write lock; detectors are deterministic per
        // (frame, resolution), so a racing duplicate is identical and the
        // entry API keeps a single canonical array.
        let outs: Vec<f64> = self
            .corpus
            .frames()
            .iter()
            .map(|f| self.detector.count(f, res, ObjectClass::Car))
            .collect();
        let mut guard = self.outputs.write();
        Arc::clone(guard.entry(res).or_insert_with(|| Arc::new(outs)))
    }

    /// Ground-truth population: outputs at the native resolution.
    pub fn population(&self) -> Arc<Vec<f64>> {
        self.outputs_at(self.native())
    }

    /// Population size `N`.
    pub fn n(&self) -> usize {
        self.corpus.len()
    }

    /// Samples `n` outputs (without replacement) from the array at `res`.
    pub fn sample_outputs(&self, res: Resolution, n: usize, seed: u64) -> Vec<f64> {
        let outs = self.outputs_at(res);
        sample_indices(outs.len(), n.clamp(1, outs.len()), seed)
            .expect("valid sample")
            .into_iter()
            .map(|i| outs[i])
            .collect()
    }

    /// Samples `n` outputs at `res` from frames that survive removal of
    /// the restricted classes (the biased population image removal
    /// induces). `n` is clamped to the survivors.
    pub fn sample_outputs_after_removal(
        &self,
        res: Resolution,
        restricted: &[ObjectClass],
        n: usize,
        seed: u64,
    ) -> Vec<f64> {
        let outs = self.outputs_at(res);
        let eligible = self.restrictions.surviving_indices(restricted);
        let n = n.clamp(1, eligible.len());
        sample_indices(eligible.len(), n, seed)
            .expect("valid sample")
            .into_iter()
            .map(|i| outs[eligible[i]])
            .collect()
    }

    /// A core `Workload` view over this fixture.
    pub fn workload(&self, aggregate: Aggregate) -> Workload<'_> {
        Workload {
            corpus: &self.corpus,
            detector: self.detector.as_ref(),
            class: ObjectClass::Car,
            aggregate,
            delta: 0.05,
        }
    }
}

/// The four paper aggregates with their §5.1 parameters.
pub fn paper_aggregates() -> [(&'static str, Aggregate); 4] {
    [
        ("AVG", Aggregate::Avg),
        ("SUM", Aggregate::Sum),
        ("COUNT", Aggregate::Count { at_least: 1.0 }),
        ("MAX", Aggregate::Max { r: 0.99 }),
    ]
}

/// The paper's per-dataset fraction sweep endpoints (§5.2.1: the fractions
/// at which each query's true-error curve has flattened).
pub fn fraction_sweep(dataset: DatasetPreset, aggregate: &str, quick: bool) -> Vec<f64> {
    let end: f64 = match (dataset, aggregate) {
        (DatasetPreset::NightStreet, "AVG" | "SUM") => 0.1,
        (DatasetPreset::NightStreet, "MAX") => 0.05,
        (DatasetPreset::NightStreet, "COUNT") => 0.0015,
        (DatasetPreset::Detrac, "AVG" | "SUM") => 0.06,
        (DatasetPreset::Detrac, "MAX") => 0.02,
        (DatasetPreset::Detrac, "COUNT") => 0.003,
        _ => 0.1,
    };
    let points = if quick { 5 } else { 10 };
    // Geometric spacing from end/50 to end: resolves the small-fraction
    // regime where the methods separate.
    let start = end / 50.0;
    (0..points)
        .map(|i| start * (end / start).powf(i as f64 / (points - 1) as f64))
        .collect()
}

/// Resolution sweep for a dataset/model pair: roughly ten steps between a
/// small side and native, on the model's supported grid.
pub fn resolution_sweep(model: ModelKind, native_side: u32) -> Vec<Resolution> {
    let step = match model {
        ModelKind::MaskRcnn => 64,
        ModelKind::Yolo => 64, // multiples of 64 are also multiples of 32
    };
    let mut out = Vec::new();
    let mut side = 64;
    while side <= native_side {
        out.push(Resolution::square(side));
        side += step;
    }
    if out.last().map(|r| r.width) != Some(native_side) {
        out.push(Resolution::square(native_side));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_builds_and_memoizes_outputs() {
        let cfg = RunConfig::quick();
        let b = Bench::new(DatasetPreset::Detrac, ModelKind::Yolo, &cfg);
        assert_eq!(b.n(), 4_000);
        let a = b.outputs_at(Resolution::square(320));
        let a2 = b.outputs_at(Resolution::square(320));
        assert!(Arc::ptr_eq(&a, &a2));
        assert_eq!(a.len(), 4_000);
    }

    #[test]
    fn removal_sampling_comes_from_survivors() {
        let cfg = RunConfig::quick();
        let b = Bench::new(DatasetPreset::Detrac, ModelKind::Yolo, &cfg);
        let survivors = b
            .restrictions
            .surviving_indices(&[ObjectClass::Person])
            .len();
        let s = b.sample_outputs_after_removal(
            b.native(),
            &[ObjectClass::Person],
            survivors + 500,
            1,
        );
        assert_eq!(s.len(), survivors);
    }

    #[test]
    fn sweeps_match_paper_shape() {
        let f = fraction_sweep(DatasetPreset::NightStreet, "COUNT", false);
        assert_eq!(f.len(), 10);
        assert!(f.last().unwrap() - 0.0015 < 1e-12);
        assert!(f[0] < f[9]);

        let rs = resolution_sweep(ModelKind::Yolo, 608);
        assert!(rs.contains(&Resolution::square(608)));
        assert!(rs.iter().all(|r| r.is_multiple_of(32)));
        assert!(rs.len() >= 8);
    }

    #[test]
    fn paper_model_mapping() {
        assert_eq!(
            ModelKind::paper_default(DatasetPreset::NightStreet),
            ModelKind::MaskRcnn
        );
        assert_eq!(ModelKind::paper_default(DatasetPreset::Detrac), ModelKind::Yolo);
    }
}
