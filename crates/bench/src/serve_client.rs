//! Seeded load generation against a running `smokescreen-serve` daemon.
//!
//! The serving client half of the daemon story: [`run_load`] drives a
//! fleet of deterministic clients (each its own connection, schedule
//! derived from `seed × client`) against a [`ServeAddr`], counts every
//! response by type, and reports wall time plus request-latency
//! percentiles. Both `ci.sh` (via the `serve_load` bin) and the
//! trajectory harness's `serve_*_throughput` benches sit on this module.
//!
//! Determinism: the request *schedule* is a pure function of the config.
//! Profile payloads come from [`sample_profile`], which is a pure
//! function of `(grid, points)` — so a put-only load produces a store
//! whose compacted bytes are independent of client interleaving (the
//! store's per-key sequence numbers and key-ordered compaction do the
//! rest).
//!
//! The fault-tolerant half is [`FaultClient`]: idempotent puts keyed on
//! `expected_seq` (a resent ack-lost put dedups instead of
//! double-applying), hedged gets, deterministic [`RetryPolicy`] backoff
//! (simulated — counted, not slept — so chaos runs stay fast and
//! replayable), and request ids stamped on every frame so the server's
//! seeded `NetFaultPlan` makes per-request fault decisions that replay
//! bit-for-bit. `run_load` drives it when [`LoadConfig::retry`] is set.

use std::collections::BTreeMap;
use std::time::{Duration, Instant};

use smokescreen_core::{Aggregate, Profile, ProfilePoint};
use smokescreen_degrade::InterventionSet;
use smokescreen_rt::journal::checksum64;
use smokescreen_rt::pool::Pool;
use smokescreen_serve::protocol::{read_frame, write_frame, FrameError};
use smokescreen_serve::{
    stamp_rid, Connection, ErrorCode, Request, Response, ServeAddr, StoreKey,
};
use smokescreen_video::ObjectClass;

/// What the generated requests do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadMix {
    /// `put_profile` only (seeds the key space).
    Puts,
    /// `get_profile` only (expects a seeded store).
    Gets,
    /// `query_tradeoff` only (expects a seeded store).
    Queries,
    /// Deterministic blend: ~50% gets, ~30% puts, ~20% queries.
    Mixed,
}

impl LoadMix {
    /// Parses a CLI name.
    pub fn parse(s: &str) -> Result<LoadMix, String> {
        match s {
            "put" | "puts" => Ok(LoadMix::Puts),
            "get" | "gets" => Ok(LoadMix::Gets),
            "query" | "queries" => Ok(LoadMix::Queries),
            "mixed" => Ok(LoadMix::Mixed),
            other => Err(format!("unknown mix {other:?} (put|get|query|mixed)")),
        }
    }
}

/// One load run's shape.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Daemon address.
    pub addr: ServeAddr,
    /// Concurrent clients, each with its own connection.
    pub clients: usize,
    /// Total requests, split evenly across clients (remainder to the
    /// lowest client indices).
    pub requests: usize,
    /// Distinct grids (store keys) per client.
    pub grids: usize,
    /// Points per generated profile.
    pub points: usize,
    /// Request mix.
    pub mix: LoadMix,
    /// Schedule seed.
    pub seed: u64,
    /// When set, clients run through [`FaultClient`] — idempotent
    /// retried puts, hedged gets, reconnect-on-failure — instead of the
    /// plain fail-fast connection. Required for any run against a daemon
    /// with armed fault plans.
    pub retry: Option<RetryPolicy>,
}

impl LoadConfig {
    /// A small default against `addr`: 4 clients, 8 grids each.
    pub fn new(addr: ServeAddr, requests: usize) -> LoadConfig {
        LoadConfig {
            addr,
            clients: 4,
            requests,
            grids: 8,
            points: 12,
            mix: LoadMix::Mixed,
            seed: 1,
            retry: None,
        }
    }
}

/// Aggregated outcome of a load run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LoadReport {
    /// Requests sent (== responses received; every request is answered).
    pub requests: usize,
    /// `ok` responses to puts.
    pub puts: u64,
    /// `profile` responses.
    pub gets: u64,
    /// `tradeoff` responses.
    pub queries: u64,
    /// `not_found` errors (expected for gets racing ahead of puts).
    pub not_found: u64,
    /// Every other error response (unexpected under a healthy daemon).
    pub errors: u64,
    /// Wall time of the whole run, ms.
    pub wall_ms: f64,
    /// Median request latency, µs (nearest-rank over all requests).
    pub p50_us: f64,
    /// 95th-percentile request latency, µs.
    pub p95_us: f64,
    /// 99th-percentile request latency, µs.
    pub p99_us: f64,
    /// Slowest request, µs.
    pub max_us: f64,
    /// Re-sent attempts beyond the first, across all ops (retry mode).
    pub retries: u64,
    /// Connections re-established after a timeout, reset, or refused
    /// connect (retry mode).
    pub reconnects: u64,
    /// Gets re-issued on a fresh connection after the hedge deadline
    /// (retry mode).
    pub hedged_gets: u64,
    /// Total *simulated* backoff the retry policy charged, ms. Counted
    /// deterministically instead of slept, so it never shows up in
    /// `wall_ms`.
    pub sim_backoff_ms: f64,
}

impl LoadReport {
    /// Requests per second over the whole run.
    pub fn throughput_per_s(&self) -> f64 {
        if self.wall_ms > 0.0 {
            self.requests as f64 / (self.wall_ms / 1_000.0)
        } else {
            0.0
        }
    }
}

/// The stable camera id for load-gen client `c` — the same name-derived
/// checksum `camera::fleet::CameraId` uses, so load-gen keys are
/// reproducible and disjoint per client.
pub fn client_camera(client: usize) -> u64 {
    checksum64(format!("load-client-{client}").as_bytes())
}

/// A deterministic profile for `(grid, points)`: a plausible fraction
/// ladder with shrinking error bounds. Pure function — every put of the
/// same key carries identical bytes.
pub fn sample_profile(grid: u64, points: usize) -> Profile {
    let points = points.max(1);
    Profile {
        corpus: format!("load-grid-{grid}"),
        model: "sim-yolov4".into(),
        class: ObjectClass::Car,
        aggregate: Aggregate::Avg,
        delta: 0.05,
        points: (0..points)
            .map(|i| {
                let fraction = (i + 1) as f64 / points as f64;
                ProfilePoint {
                    set: InterventionSet::sampling(fraction),
                    y_approx: 1.0 + grid as f64 / 7.0 + fraction,
                    err_b: 0.5 / (1.0 + 9.0 * fraction),
                    corrected: i % 3 == 0,
                    n: 64 * (i + 1),
                }
            })
            .collect(),
    }
}

/// Splitmix-style step used for the per-client schedule stream.
fn next_rand(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *state >> 16
}

/// Deterministic retry schedule for [`FaultClient`].
///
/// Backoff is *simulated*: the client charges `backoff_ms` to a counter
/// and retries immediately, so a chaos run's wall time stays bounded by
/// real work while the charged schedule is still a pure function of
/// `(rid, attempt)` — replayable and assertable. The only real sleeps
/// are short waits for a refused connect (a restarting daemon), capped
/// at [`RetryPolicy::CONNECT_SLEEP_CAP_MS`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Attempts per logical op before giving up.
    pub max_attempts: u32,
    /// First-retry backoff, ms.
    pub base_ms: f64,
    /// Exponential growth per retry.
    pub multiplier: f64,
    /// Jitter half-width as a fraction of the exponential term
    /// (0.2 → ±20%), derived deterministically from the attempt's rid.
    pub jitter: f64,
    /// Read deadline per attempt, ms. A response that misses it is
    /// abandoned — the connection is dropped (a late frame would desync
    /// the request/response pairing) and the op re-sent.
    pub read_deadline_ms: u64,
    /// First-attempt read deadline for gets, ms. On expiry the read is
    /// hedged: re-issued on a fresh connection rather than waiting out
    /// the full deadline.
    pub hedge_after_ms: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 8,
            base_ms: 10.0,
            multiplier: 2.0,
            jitter: 0.2,
            read_deadline_ms: 200,
            hedge_after_ms: 50,
        }
    }
}

impl RetryPolicy {
    /// Longest single real sleep while waiting for a daemon to come
    /// back, ms.
    pub const CONNECT_SLEEP_CAP_MS: u64 = 50;

    /// The simulated backoff charged before retry `attempt` (1-based)
    /// of the op whose request id is `rid`. Pure function.
    pub fn backoff_ms(&self, rid: u64, attempt: u32) -> f64 {
        let exp = self.base_ms * self.multiplier.powi(attempt.min(16) as i32 - 1);
        let mut state = rid ^ u64::from(attempt).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        let unit = (next_rand(&mut state) % 1_000_000) as f64 / 1e6;
        exp * (1.0 - self.jitter + 2.0 * self.jitter * unit)
    }
}

/// The request id stamped on attempt `attempt` of logical op `op` from
/// the client owning `camera`. Pure function — the same schedule always
/// stamps the same rids, so the server's seeded `NetFaultPlan` (a pure
/// function of rid) makes identical fault decisions on every replay.
pub fn request_id(camera: u64, op: u64, attempt: u32) -> u64 {
    let mut z = camera
        .wrapping_add(op.wrapping_mul(0x9e37_79b9_7f4a_7c15))
        .wrapping_add(u64::from(attempt).wrapping_mul(0xbf58_476d_1ce4_e5b9));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Counters a [`FaultClient`] accumulates across its ops.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RetryStats {
    /// Frames sent (first attempts + retries).
    pub attempts: u64,
    /// Attempts beyond the first, across all ops.
    pub retries: u64,
    /// Connections re-established.
    pub reconnects: u64,
    /// Gets re-issued after the hedge deadline.
    pub hedged_gets: u64,
    /// Simulated backoff charged, ms.
    pub sim_backoff_ms: f64,
}

/// A successful `get_profile` through the retry layer.
#[derive(Debug, Clone, PartialEq)]
pub struct GetReply {
    /// Per-key sequence number of the served record.
    pub seq: u64,
    /// The profile.
    pub profile: Profile,
    /// Latched drift staleness (served anyway, bounds widened).
    pub stale: bool,
    /// Degraded-mode marker: quarantine pending somewhere in the store.
    pub degraded: bool,
}

/// What one framed exchange produced.
enum Recv {
    Response(Response),
    /// The read deadline elapsed at a frame boundary. The connection has
    /// been dropped: a response that arrives after we stop waiting would
    /// otherwise be mis-paired with the *next* request.
    TimedOut,
    /// Send failed, stream reset, or frame torn; connection dropped.
    Disconnected(String),
}

/// Is this error response worth re-sending the same op for?
fn retryable(code: ErrorCode) -> bool {
    matches!(
        code,
        ErrorCode::Overloaded | ErrorCode::ShuttingDown | ErrorCode::Quarantined | ErrorCode::Store
    )
}

/// A serving client that survives injected disk/net faults and daemon
/// restarts without ever double-applying a write.
///
/// * **Idempotent puts** — every put carries `expected_seq`, the next
///   sequence number after the last the client *observed* for the key
///   (shadow map, lazily synced with a get on first touch). If the put
///   applied but the ack was dropped, the retry's `expected_seq` equals
///   the server's current seq and the server acks without re-applying.
/// * **Hedged gets** — the first attempt waits only
///   [`RetryPolicy::hedge_after_ms`]; on expiry the read is re-issued on
///   a fresh connection instead of waiting out a dropped response.
/// * **Deterministic rids** — [`request_id`] stamps every frame, so the
///   server's seeded net-fault decisions are a pure function of the
///   schedule.
pub struct FaultClient {
    addr: ServeAddr,
    policy: RetryPolicy,
    camera: u64,
    conn: Option<Connection>,
    ops: u64,
    shadow: BTreeMap<StoreKey, u64>,
    /// Counters; read them out after the run.
    pub stats: RetryStats,
}

impl FaultClient {
    /// A client for `camera`'s key space against `addr`.
    pub fn new(addr: ServeAddr, camera: u64, policy: RetryPolicy) -> FaultClient {
        FaultClient {
            addr,
            policy,
            camera,
            conn: None,
            ops: 0,
            shadow: BTreeMap::new(),
            stats: RetryStats::default(),
        }
    }

    /// The load-gen client for slot `client` (camera from
    /// [`client_camera`]).
    pub fn for_client(addr: ServeAddr, client: usize, policy: RetryPolicy) -> FaultClient {
        FaultClient::new(addr, client_camera(client), policy)
    }

    fn next_op(&mut self) -> u64 {
        self.ops += 1;
        self.ops
    }

    /// Connects (or reuses the live connection), sleeping briefly when
    /// the daemon refuses — the one place real time is spent, because a
    /// restarting supervisor generation genuinely is not there yet.
    fn connection(&mut self) -> Result<&mut Connection, String> {
        if self.conn.is_none() {
            let budget = self.policy.max_attempts.max(1) * 4;
            let mut last = String::new();
            for attempt in 0..budget {
                match self.addr.connect() {
                    Ok(conn) => {
                        if attempt > 0 || self.stats.attempts > 0 {
                            self.stats.reconnects += 1;
                        }
                        self.conn = Some(conn);
                        break;
                    }
                    Err(e) => {
                        last = e.to_string();
                        let ms = self
                            .policy
                            .backoff_ms(self.camera, attempt + 1)
                            .min(RetryPolicy::CONNECT_SLEEP_CAP_MS as f64);
                        std::thread::sleep(Duration::from_micros((ms * 1_000.0) as u64));
                    }
                }
            }
            if self.conn.is_none() {
                return Err(format!("connect to {:?} kept failing: {last}", self.addr));
            }
        }
        Ok(self.conn.as_mut().expect("connection populated above"))
    }

    /// One framed exchange under a read deadline. Any outcome other than
    /// a parsed response drops the connection.
    fn exchange(&mut self, frame: &smokescreen_rt::json::Json, deadline_ms: u64) -> Recv {
        let conn = match self.connection() {
            Ok(c) => c,
            Err(e) => return Recv::Disconnected(e),
        };
        if let Err(e) = conn.set_read_timeout(Some(Duration::from_millis(deadline_ms.max(1)))) {
            self.conn = None;
            return Recv::Disconnected(format!("set deadline: {e}"));
        }
        if let Err(e) = write_frame(conn, frame) {
            self.conn = None;
            return Recv::Disconnected(format!("send: {e}"));
        }
        match read_frame(conn) {
            Ok(Some(json)) => match Response::from_json(&json) {
                Ok(response) => Recv::Response(response),
                Err(e) => {
                    self.conn = None;
                    Recv::Disconnected(format!("bad response frame: {e}"))
                }
            },
            Ok(None) => {
                self.conn = None;
                Recv::Disconnected("server closed the connection".into())
            }
            Err(FrameError::Idle) => {
                self.conn = None;
                Recv::TimedOut
            }
            Err(e) => {
                self.conn = None;
                Recv::Disconnected(format!("frame error: {e:?}"))
            }
        }
    }

    /// Charges simulated backoff for retry `attempt` of `rid`.
    fn charge_backoff(&mut self, rid: u64, attempt: u32) {
        if attempt > 0 {
            self.stats.retries += 1;
            self.stats.sim_backoff_ms += self.policy.backoff_ms(rid, attempt);
        }
    }

    /// Idempotent durable write. Returns the acked sequence number; a
    /// retry whose previous attempt applied-but-lost-the-ack dedups on
    /// the server and still lands here with the same seq.
    pub fn put(&mut self, key: StoreKey, profile: &Profile) -> Result<u64, String> {
        if !self.shadow.contains_key(&key) {
            let seq = self.get(key)?.map_or(0, |reply| reply.seq);
            self.shadow.insert(key, seq);
        }
        let op = self.next_op();
        let mut last = String::new();
        for attempt in 0..self.policy.max_attempts {
            let expected = self.shadow[&key] + 1;
            let rid = request_id(self.camera, op, attempt);
            let frame = stamp_rid(
                &Request::PutProfile {
                    key,
                    profile: profile.clone(),
                    expected_seq: Some(expected),
                }
                .to_json(),
                rid,
            );
            self.stats.attempts += 1;
            self.charge_backoff(rid, attempt);
            match self.exchange(&frame, self.policy.read_deadline_ms) {
                Recv::Response(Response::Ok { seq }) => {
                    self.shadow.insert(key, seq.max(expected));
                    return Ok(seq);
                }
                Recv::Response(Response::Error { code, message }) => match code {
                    // `expected_seq` disagreed with the store (e.g. the
                    // key advanced underneath a restart): resync the
                    // shadow and re-derive, same op.
                    ErrorCode::BadRequest => {
                        let seq = self.get(key)?.map_or(0, |reply| reply.seq);
                        self.shadow.insert(key, seq);
                        last = message;
                    }
                    code if retryable(code) => last = format!("{}: {message}", code.as_str()),
                    code => {
                        return Err(format!("put: fatal {} error: {message}", code.as_str()))
                    }
                },
                Recv::Response(other) => {
                    return Err(format!("put: unexpected response {other:?}"))
                }
                Recv::TimedOut => last = "read deadline elapsed".into(),
                Recv::Disconnected(e) => last = e,
            }
        }
        Err(format!(
            "put gave up after {} attempts: {last}",
            self.policy.max_attempts
        ))
    }

    /// Hedged read. `Ok(None)` means the key has no record.
    pub fn get(&mut self, key: StoreKey) -> Result<Option<GetReply>, String> {
        let op = self.next_op();
        let mut last = String::new();
        for attempt in 0..self.policy.max_attempts {
            let rid = request_id(self.camera, op, attempt);
            let frame = stamp_rid(&Request::GetProfile { key }.to_json(), rid);
            let deadline = if attempt == 0 {
                self.policy.hedge_after_ms
            } else {
                self.policy.read_deadline_ms
            };
            self.stats.attempts += 1;
            self.charge_backoff(rid, attempt);
            match self.exchange(&frame, deadline) {
                Recv::Response(Response::Profile {
                    seq,
                    profile,
                    stale,
                    degraded,
                    ..
                }) => {
                    self.shadow.insert(key, seq);
                    return Ok(Some(GetReply {
                        seq,
                        profile,
                        stale,
                        degraded,
                    }));
                }
                Recv::Response(Response::Error {
                    code: ErrorCode::NotFound,
                    ..
                }) => {
                    self.shadow.insert(key, 0);
                    return Ok(None);
                }
                Recv::Response(Response::Error { code, message }) if retryable(code) => {
                    last = format!("{}: {message}", code.as_str());
                }
                Recv::Response(Response::Error { code, message }) => {
                    return Err(format!("get: fatal {} error: {message}", code.as_str()));
                }
                Recv::Response(other) => {
                    return Err(format!("get: unexpected response {other:?}"))
                }
                Recv::TimedOut => {
                    if attempt == 0 {
                        self.stats.hedged_gets += 1;
                    }
                    last = "read deadline elapsed".into();
                }
                Recv::Disconnected(e) => last = e,
            }
        }
        Err(format!(
            "get gave up after {} attempts: {last}",
            self.policy.max_attempts
        ))
    }

    /// Retried tradeoff query. `Ok(None)` means the key has no record.
    pub fn query(
        &mut self,
        key: StoreKey,
        max_err: f64,
        max_fraction: Option<f64>,
        max_bytes: Option<u64>,
        max_energy_j: Option<f64>,
    ) -> Result<Option<Vec<ProfilePoint>>, String> {
        let op = self.next_op();
        let mut last = String::new();
        for attempt in 0..self.policy.max_attempts {
            let rid = request_id(self.camera, op, attempt);
            let frame = stamp_rid(
                &Request::QueryTradeoff {
                    key,
                    max_err,
                    max_fraction,
                    max_bytes,
                    max_energy_j,
                }
                .to_json(),
                rid,
            );
            self.stats.attempts += 1;
            self.charge_backoff(rid, attempt);
            match self.exchange(&frame, self.policy.read_deadline_ms) {
                Recv::Response(Response::Tradeoff { matches }) => return Ok(Some(matches)),
                Recv::Response(Response::Error {
                    code: ErrorCode::NotFound,
                    ..
                }) => return Ok(None),
                Recv::Response(Response::Error { code, message }) if retryable(code) => {
                    last = format!("{}: {message}", code.as_str());
                }
                Recv::Response(Response::Error { code, message }) => {
                    return Err(format!("query: fatal {} error: {message}", code.as_str()));
                }
                Recv::Response(other) => {
                    return Err(format!("query: unexpected response {other:?}"))
                }
                Recv::TimedOut => last = "read deadline elapsed".into(),
                Recv::Disconnected(e) => last = e,
            }
        }
        Err(format!(
            "query gave up after {} attempts: {last}",
            self.policy.max_attempts
        ))
    }

    /// The last sequence number this client observed for `key` (acked
    /// put or served get), if any. The chaos audit compares these against
    /// a cold reopen of the store: every acked write must still be there.
    pub fn shadow_seq(&self, key: StoreKey) -> Option<u64> {
        self.shadow.get(&key).copied()
    }
}

struct ClientOutcome {
    report: LoadReport,
    latencies_us: Vec<f64>,
    failure: Option<String>,
}

/// Runs one client's schedule to completion, through the retry layer
/// when the config asks for it.
fn run_client(config: &LoadConfig, client: usize, requests: usize) -> ClientOutcome {
    match config.retry {
        Some(policy) => run_client_retry(config, client, requests, policy),
        None => run_client_plain(config, client, requests),
    }
}

/// One step of the shared schedule: which op, against which key. Both
/// client modes consume the rng identically so a retry run answers the
/// same logical schedule as a plain run.
fn schedule_step(config: &LoadConfig, rng: &mut u64, camera: u64) -> (StoreKey, LoadMix) {
    let grid = 1 + (next_rand(rng) % config.grids.max(1) as u64);
    let key = StoreKey::new(camera, grid);
    let op = match config.mix {
        LoadMix::Mixed => match next_rand(rng) % 10 {
            0..=4 => LoadMix::Gets,
            5..=7 => LoadMix::Puts,
            _ => LoadMix::Queries,
        },
        fixed => fixed,
    };
    (key, op)
}

/// Retry-mode client: same schedule, every op through [`FaultClient`].
/// An op that still fails after the retry budget is a run failure — under
/// the seeded fault plans the budget is sized to always win.
fn run_client_retry(
    config: &LoadConfig,
    client: usize,
    requests: usize,
    policy: RetryPolicy,
) -> ClientOutcome {
    let mut report = LoadReport::default();
    let mut latencies_us = Vec::with_capacity(requests);
    let camera = client_camera(client);
    let mut rng = config
        .seed
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(client as u64);
    let mut fc = FaultClient::new(config.addr.clone(), camera, policy);

    let mut failure = None;
    for step in 0..requests {
        let (key, op) = schedule_step(config, &mut rng, camera);
        let t0 = Instant::now();
        let outcome = match op {
            LoadMix::Puts | LoadMix::Mixed => fc
                .put(key, &sample_profile(key.grid, config.points))
                .map(|_| report.puts += 1),
            LoadMix::Gets => fc.get(key).map(|reply| match reply {
                Some(_) => report.gets += 1,
                None => report.not_found += 1,
            }),
            LoadMix::Queries => fc
                .query(key, 0.2, Some(0.8), None, None)
                .map(|matches| match matches {
                    Some(_) => report.queries += 1,
                    None => report.not_found += 1,
                }),
        };
        latencies_us.push(t0.elapsed().as_secs_f64() * 1e6);
        report.requests += 1;
        if let Err(e) = outcome {
            report.errors += 1;
            failure = Some(format!("client {client} step {step}: {e}"));
            break;
        }
    }
    report.retries = fc.stats.retries;
    report.reconnects = fc.stats.reconnects;
    report.hedged_gets = fc.stats.hedged_gets;
    report.sim_backoff_ms = fc.stats.sim_backoff_ms;
    ClientOutcome {
        report,
        latencies_us,
        failure,
    }
}

/// Plain fail-fast client (the pre-chaos path; still what the latency
/// benches measure, since retries would fold fault noise into the
/// percentiles).
fn run_client_plain(config: &LoadConfig, client: usize, requests: usize) -> ClientOutcome {
    let mut report = LoadReport::default();
    let mut latencies_us = Vec::with_capacity(requests);
    let camera = client_camera(client);
    let mut rng = config
        .seed
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(client as u64);

    let mut conn = match config.addr.connect() {
        Ok(c) => c,
        Err(e) => {
            return ClientOutcome {
                report,
                latencies_us,
                failure: Some(format!("client {client}: connect: {e}")),
            }
        }
    };
    for step in 0..requests {
        let (key, op) = schedule_step(config, &mut rng, camera);
        let request = match op {
            LoadMix::Puts | LoadMix::Mixed => Request::PutProfile {
                key,
                profile: sample_profile(key.grid, config.points),
                expected_seq: None,
            },
            LoadMix::Gets => Request::GetProfile { key },
            LoadMix::Queries => Request::QueryTradeoff {
                key,
                max_err: 0.2,
                max_fraction: Some(0.8),
                max_bytes: None,
                max_energy_j: None,
            },
        };
        let t0 = Instant::now();
        let response = conn.request(&request);
        latencies_us.push(t0.elapsed().as_secs_f64() * 1e6);
        report.requests += 1;
        match response {
            Ok(Response::Ok { .. }) => report.puts += 1,
            Ok(Response::Profile { .. }) => report.gets += 1,
            Ok(Response::Tradeoff { .. }) => report.queries += 1,
            Ok(Response::Error {
                code: ErrorCode::NotFound,
                ..
            }) => report.not_found += 1,
            Ok(Response::Error { code, message }) => {
                report.errors += 1;
                return ClientOutcome {
                    report,
                    latencies_us,
                    failure: Some(format!(
                        "client {client} step {step}: {} error: {message}",
                        code.as_str()
                    )),
                };
            }
            Ok(other) => {
                report.errors += 1;
                return ClientOutcome {
                    report,
                    latencies_us,
                    failure: Some(format!(
                        "client {client} step {step}: unexpected response {other:?}"
                    )),
                };
            }
            Err(e) => {
                report.errors += 1;
                return ClientOutcome {
                    report,
                    latencies_us,
                    failure: Some(format!("client {client} step {step}: {e}")),
                };
            }
        }
    }
    ClientOutcome {
        report,
        latencies_us,
        failure: None,
    }
}

/// Nearest-rank percentile over a sorted slice.
fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((p * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Drives the configured load and merges per-client outcomes. Fails fast
/// on the first unexpected error response or transport failure.
pub fn run_load(config: &LoadConfig) -> Result<LoadReport, String> {
    let clients = config.clients.max(1);
    let base = config.requests / clients;
    let extra = config.requests % clients;
    let shares: Vec<(usize, usize)> = (0..clients)
        .map(|c| (c, base + usize::from(c < extra)))
        .collect();

    let t0 = Instant::now();
    let outcomes =
        Pool::with_threads(clients).parallel_map(&shares, |_, &(c, n)| run_client(config, c, n));
    let wall_ms = t0.elapsed().as_secs_f64() * 1_000.0;

    let mut merged = LoadReport {
        wall_ms,
        ..LoadReport::default()
    };
    let mut latencies: Vec<f64> = Vec::with_capacity(config.requests);
    let mut failures = Vec::new();
    for outcome in outcomes {
        merged.requests += outcome.report.requests;
        merged.puts += outcome.report.puts;
        merged.gets += outcome.report.gets;
        merged.queries += outcome.report.queries;
        merged.not_found += outcome.report.not_found;
        merged.errors += outcome.report.errors;
        merged.retries += outcome.report.retries;
        merged.reconnects += outcome.report.reconnects;
        merged.hedged_gets += outcome.report.hedged_gets;
        merged.sim_backoff_ms += outcome.report.sim_backoff_ms;
        latencies.extend(outcome.latencies_us);
        if let Some(f) = outcome.failure {
            failures.push(f);
        }
    }
    if !failures.is_empty() {
        return Err(failures.join("; "));
    }
    latencies.sort_by(f64::total_cmp);
    merged.p50_us = percentile(&latencies, 0.50);
    merged.p95_us = percentile(&latencies, 0.95);
    merged.p99_us = percentile(&latencies, 0.99);
    merged.max_us = latencies.last().copied().unwrap_or(0.0);
    Ok(merged)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_profile_is_pure_and_valid() {
        let a = sample_profile(3, 12);
        let b = sample_profile(3, 12);
        assert_eq!(a, b, "same inputs, same profile");
        assert_ne!(a, sample_profile(4, 12));
        assert_eq!(a.points.len(), 12);
        assert!(a.points.iter().all(|p| p.err_b > 0.0 && p.err_b.is_finite()));
        // Encodable through the store's columnar codec.
        let bytes = smokescreen_serve::store::encode_profile(&a);
        let back = smokescreen_serve::store::decode_profile(&bytes).unwrap();
        assert_eq!(a, back);
    }

    #[test]
    fn client_cameras_are_disjoint_and_stable() {
        let ids: Vec<u64> = (0..16).map(client_camera).collect();
        let mut unique = ids.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), ids.len());
        assert_eq!(client_camera(0), client_camera(0));
    }

    #[test]
    fn percentile_is_nearest_rank() {
        let sorted = vec![1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&sorted, 0.50), 2.0);
        assert_eq!(percentile(&sorted, 0.95), 4.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
    }

    #[test]
    fn retry_schedule_is_deterministic_and_exponential() {
        let policy = RetryPolicy::default();
        // Same (rid, attempt) → same backoff; jitter stays within ±20%.
        for attempt in 1..policy.max_attempts {
            let rid = request_id(client_camera(3), 7, attempt);
            let ms = policy.backoff_ms(rid, attempt);
            assert_eq!(ms, policy.backoff_ms(rid, attempt), "pure function");
            let exp = policy.base_ms * policy.multiplier.powi(attempt as i32 - 1);
            assert!(
                ms >= exp * 0.8 - 1e-9 && ms <= exp * 1.2 + 1e-9,
                "attempt {attempt}: {ms} outside jitter band around {exp}"
            );
        }
        // rids are pure and distinct across attempts of one op.
        let a = request_id(client_camera(0), 1, 0);
        assert_eq!(a, request_id(client_camera(0), 1, 0));
        assert_ne!(a, request_id(client_camera(0), 1, 1));
        assert_ne!(a, request_id(client_camera(0), 2, 0));
        assert_ne!(a, request_id(client_camera(1), 1, 0));
    }

    #[test]
    fn fault_client_survives_armed_net_faults_without_double_applies() {
        use smokescreen_rt::fault::NetFaultPlan;
        use smokescreen_serve::{Server, ServerConfig};
        let dir = std::env::temp_dir().join(format!("smk-retrygen-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let sock = std::env::temp_dir().join(format!("smk-retrygen-{}.sock", std::process::id()));
        let _ = std::fs::remove_file(&sock);
        // A third of rid-stamped frames get a fault decision: drops,
        // resets, partial frames, delays. The retry layer must still land
        // every op exactly once.
        let server = Server::new(
            ServerConfig::new(ServeAddr::Unix(sock), &dir)
                .with_threads(2)
                .with_net_faults(Some(NetFaultPlan::new(0x4E7, 0.35))),
        )
        .spawn()
        .unwrap();

        let policy = RetryPolicy::default();
        let mut fc = FaultClient::for_client(server.addr().clone(), 0, policy);
        let camera = client_camera(0);
        // Three puts per key: per-key seqs must come back exactly 1, 2, 3
        // even when acks are dropped and the put is re-sent.
        for round in 1..=3u64 {
            for grid in 1..=4u64 {
                let key = StoreKey::new(camera, grid);
                let seq = fc.put(key, &sample_profile(grid, 6)).unwrap();
                assert_eq!(seq, round, "grid {grid}: no double-apply, no gap");
            }
        }
        for grid in 1..=4u64 {
            let key = StoreKey::new(camera, grid);
            let reply = fc.get(key).unwrap().expect("seeded key");
            assert_eq!(reply.seq, 3);
            assert_eq!(reply.profile, sample_profile(grid, 6));
            let matches = fc.query(key, 0.2, Some(0.8), None, None).unwrap();
            assert!(matches.is_some());
        }
        assert!(
            fc.stats.retries > 0,
            "a 35% fault rate over {} attempts must force retries",
            fc.stats.attempts
        );
        assert!(fc.stats.sim_backoff_ms > 0.0);

        let report = server.shutdown().unwrap();
        assert!(report.graceful);
        assert!(report.stats.net_faults > 0, "plan was armed and hit");
        assert_eq!(report.stats.quarantined_records, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn load_round_trips_against_a_live_daemon() {
        use smokescreen_serve::{Server, ServerConfig};
        let dir = std::env::temp_dir().join(format!("smk-loadgen-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let sock = std::env::temp_dir().join(format!("smk-loadgen-{}.sock", std::process::id()));
        let _ = std::fs::remove_file(&sock);
        let server = Server::new(
            ServerConfig::new(ServeAddr::Unix(sock), &dir).with_threads(2),
        )
        .spawn()
        .unwrap();

        let mut config = LoadConfig::new(server.addr().clone(), 64);
        config.clients = 2;
        config.grids = 4;
        config.mix = LoadMix::Puts;
        let seeded = run_load(&config).unwrap();
        assert_eq!(seeded.requests, 64);
        assert_eq!(seeded.puts, 64);
        assert_eq!(seeded.errors, 0);

        config.mix = LoadMix::Gets;
        let gets = run_load(&config).unwrap();
        assert_eq!(gets.gets + gets.not_found, 64);
        assert_eq!(gets.not_found, 0, "every key was seeded");
        assert!(gets.p50_us > 0.0 && gets.p95_us >= gets.p50_us);

        config.mix = LoadMix::Mixed;
        let mixed = run_load(&config).unwrap();
        assert_eq!(mixed.errors, 0);
        assert!(mixed.throughput_per_s() > 0.0);

        let report = server.shutdown().unwrap();
        assert!(report.graceful);
        assert_eq!(report.stats.quarantined_records, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
