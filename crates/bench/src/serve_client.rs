//! Seeded load generation against a running `smokescreen-serve` daemon.
//!
//! The serving client half of the daemon story: [`run_load`] drives a
//! fleet of deterministic clients (each its own connection, schedule
//! derived from `seed × client`) against a [`ServeAddr`], counts every
//! response by type, and reports wall time plus request-latency
//! percentiles. Both `ci.sh` (via the `serve_load` bin) and the
//! trajectory harness's `serve_*_throughput` benches sit on this module.
//!
//! Determinism: the request *schedule* is a pure function of the config.
//! Profile payloads come from [`sample_profile`], which is a pure
//! function of `(grid, points)` — so a put-only load produces a store
//! whose compacted bytes are independent of client interleaving (the
//! store's per-key sequence numbers and key-ordered compaction do the
//! rest).

use std::time::Instant;

use smokescreen_core::{Aggregate, Profile, ProfilePoint};
use smokescreen_degrade::InterventionSet;
use smokescreen_rt::journal::checksum64;
use smokescreen_rt::pool::Pool;
use smokescreen_serve::{ErrorCode, Request, Response, ServeAddr, StoreKey};
use smokescreen_video::ObjectClass;

/// What the generated requests do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadMix {
    /// `put_profile` only (seeds the key space).
    Puts,
    /// `get_profile` only (expects a seeded store).
    Gets,
    /// `query_tradeoff` only (expects a seeded store).
    Queries,
    /// Deterministic blend: ~50% gets, ~30% puts, ~20% queries.
    Mixed,
}

impl LoadMix {
    /// Parses a CLI name.
    pub fn parse(s: &str) -> Result<LoadMix, String> {
        match s {
            "put" | "puts" => Ok(LoadMix::Puts),
            "get" | "gets" => Ok(LoadMix::Gets),
            "query" | "queries" => Ok(LoadMix::Queries),
            "mixed" => Ok(LoadMix::Mixed),
            other => Err(format!("unknown mix {other:?} (put|get|query|mixed)")),
        }
    }
}

/// One load run's shape.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Daemon address.
    pub addr: ServeAddr,
    /// Concurrent clients, each with its own connection.
    pub clients: usize,
    /// Total requests, split evenly across clients (remainder to the
    /// lowest client indices).
    pub requests: usize,
    /// Distinct grids (store keys) per client.
    pub grids: usize,
    /// Points per generated profile.
    pub points: usize,
    /// Request mix.
    pub mix: LoadMix,
    /// Schedule seed.
    pub seed: u64,
}

impl LoadConfig {
    /// A small default against `addr`: 4 clients, 8 grids each.
    pub fn new(addr: ServeAddr, requests: usize) -> LoadConfig {
        LoadConfig {
            addr,
            clients: 4,
            requests,
            grids: 8,
            points: 12,
            mix: LoadMix::Mixed,
            seed: 1,
        }
    }
}

/// Aggregated outcome of a load run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LoadReport {
    /// Requests sent (== responses received; every request is answered).
    pub requests: usize,
    /// `ok` responses to puts.
    pub puts: u64,
    /// `profile` responses.
    pub gets: u64,
    /// `tradeoff` responses.
    pub queries: u64,
    /// `not_found` errors (expected for gets racing ahead of puts).
    pub not_found: u64,
    /// Every other error response (unexpected under a healthy daemon).
    pub errors: u64,
    /// Wall time of the whole run, ms.
    pub wall_ms: f64,
    /// Median request latency, µs (nearest-rank over all requests).
    pub p50_us: f64,
    /// 95th-percentile request latency, µs.
    pub p95_us: f64,
    /// 99th-percentile request latency, µs.
    pub p99_us: f64,
    /// Slowest request, µs.
    pub max_us: f64,
}

impl LoadReport {
    /// Requests per second over the whole run.
    pub fn throughput_per_s(&self) -> f64 {
        if self.wall_ms > 0.0 {
            self.requests as f64 / (self.wall_ms / 1_000.0)
        } else {
            0.0
        }
    }
}

/// The stable camera id for load-gen client `c` — the same name-derived
/// checksum `camera::fleet::CameraId` uses, so load-gen keys are
/// reproducible and disjoint per client.
pub fn client_camera(client: usize) -> u64 {
    checksum64(format!("load-client-{client}").as_bytes())
}

/// A deterministic profile for `(grid, points)`: a plausible fraction
/// ladder with shrinking error bounds. Pure function — every put of the
/// same key carries identical bytes.
pub fn sample_profile(grid: u64, points: usize) -> Profile {
    let points = points.max(1);
    Profile {
        corpus: format!("load-grid-{grid}"),
        model: "sim-yolov4".into(),
        class: ObjectClass::Car,
        aggregate: Aggregate::Avg,
        delta: 0.05,
        points: (0..points)
            .map(|i| {
                let fraction = (i + 1) as f64 / points as f64;
                ProfilePoint {
                    set: InterventionSet::sampling(fraction),
                    y_approx: 1.0 + grid as f64 / 7.0 + fraction,
                    err_b: 0.5 / (1.0 + 9.0 * fraction),
                    corrected: i % 3 == 0,
                    n: 64 * (i + 1),
                }
            })
            .collect(),
    }
}

/// Splitmix-style step used for the per-client schedule stream.
fn next_rand(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *state >> 16
}

struct ClientOutcome {
    report: LoadReport,
    latencies_us: Vec<f64>,
    failure: Option<String>,
}

/// Runs one client's schedule to completion.
fn run_client(config: &LoadConfig, client: usize, requests: usize) -> ClientOutcome {
    let mut report = LoadReport::default();
    let mut latencies_us = Vec::with_capacity(requests);
    let camera = client_camera(client);
    let mut rng = config
        .seed
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(client as u64);

    let mut conn = match config.addr.connect() {
        Ok(c) => c,
        Err(e) => {
            return ClientOutcome {
                report,
                latencies_us,
                failure: Some(format!("client {client}: connect: {e}")),
            }
        }
    };
    for step in 0..requests {
        let grid = 1 + (next_rand(&mut rng) % config.grids.max(1) as u64);
        let key = StoreKey::new(camera, grid);
        let request = match config.mix {
            LoadMix::Puts => Request::PutProfile {
                key,
                profile: sample_profile(grid, config.points),
            },
            LoadMix::Gets => Request::GetProfile { key },
            LoadMix::Queries => Request::QueryTradeoff {
                key,
                max_err: 0.2,
                max_fraction: Some(0.8),
            },
            LoadMix::Mixed => match next_rand(&mut rng) % 10 {
                0..=4 => Request::GetProfile { key },
                5..=7 => Request::PutProfile {
                    key,
                    profile: sample_profile(grid, config.points),
                },
                _ => Request::QueryTradeoff {
                    key,
                    max_err: 0.2,
                    max_fraction: Some(0.8),
                },
            },
        };
        let t0 = Instant::now();
        let response = conn.request(&request);
        latencies_us.push(t0.elapsed().as_secs_f64() * 1e6);
        report.requests += 1;
        match response {
            Ok(Response::Ok { .. }) => report.puts += 1,
            Ok(Response::Profile { .. }) => report.gets += 1,
            Ok(Response::Tradeoff { .. }) => report.queries += 1,
            Ok(Response::Error {
                code: ErrorCode::NotFound,
                ..
            }) => report.not_found += 1,
            Ok(Response::Error { code, message }) => {
                report.errors += 1;
                return ClientOutcome {
                    report,
                    latencies_us,
                    failure: Some(format!(
                        "client {client} step {step}: {} error: {message}",
                        code.as_str()
                    )),
                };
            }
            Ok(other) => {
                report.errors += 1;
                return ClientOutcome {
                    report,
                    latencies_us,
                    failure: Some(format!(
                        "client {client} step {step}: unexpected response {other:?}"
                    )),
                };
            }
            Err(e) => {
                report.errors += 1;
                return ClientOutcome {
                    report,
                    latencies_us,
                    failure: Some(format!("client {client} step {step}: {e}")),
                };
            }
        }
    }
    ClientOutcome {
        report,
        latencies_us,
        failure: None,
    }
}

/// Nearest-rank percentile over a sorted slice.
fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((p * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Drives the configured load and merges per-client outcomes. Fails fast
/// on the first unexpected error response or transport failure.
pub fn run_load(config: &LoadConfig) -> Result<LoadReport, String> {
    let clients = config.clients.max(1);
    let base = config.requests / clients;
    let extra = config.requests % clients;
    let shares: Vec<(usize, usize)> = (0..clients)
        .map(|c| (c, base + usize::from(c < extra)))
        .collect();

    let t0 = Instant::now();
    let outcomes =
        Pool::with_threads(clients).parallel_map(&shares, |_, &(c, n)| run_client(config, c, n));
    let wall_ms = t0.elapsed().as_secs_f64() * 1_000.0;

    let mut merged = LoadReport {
        wall_ms,
        ..LoadReport::default()
    };
    let mut latencies: Vec<f64> = Vec::with_capacity(config.requests);
    let mut failures = Vec::new();
    for outcome in outcomes {
        merged.requests += outcome.report.requests;
        merged.puts += outcome.report.puts;
        merged.gets += outcome.report.gets;
        merged.queries += outcome.report.queries;
        merged.not_found += outcome.report.not_found;
        merged.errors += outcome.report.errors;
        latencies.extend(outcome.latencies_us);
        if let Some(f) = outcome.failure {
            failures.push(f);
        }
    }
    if !failures.is_empty() {
        return Err(failures.join("; "));
    }
    latencies.sort_by(f64::total_cmp);
    merged.p50_us = percentile(&latencies, 0.50);
    merged.p95_us = percentile(&latencies, 0.95);
    merged.p99_us = percentile(&latencies, 0.99);
    merged.max_us = latencies.last().copied().unwrap_or(0.0);
    Ok(merged)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_profile_is_pure_and_valid() {
        let a = sample_profile(3, 12);
        let b = sample_profile(3, 12);
        assert_eq!(a, b, "same inputs, same profile");
        assert_ne!(a, sample_profile(4, 12));
        assert_eq!(a.points.len(), 12);
        assert!(a.points.iter().all(|p| p.err_b > 0.0 && p.err_b.is_finite()));
        // Encodable through the store's columnar codec.
        let bytes = smokescreen_serve::store::encode_profile(&a);
        let back = smokescreen_serve::store::decode_profile(&bytes).unwrap();
        assert_eq!(a, back);
    }

    #[test]
    fn client_cameras_are_disjoint_and_stable() {
        let ids: Vec<u64> = (0..16).map(client_camera).collect();
        let mut unique = ids.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), ids.len());
        assert_eq!(client_camera(0), client_camera(0));
    }

    #[test]
    fn percentile_is_nearest_rank() {
        let sorted = vec![1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&sorted, 0.50), 2.0);
        assert_eq!(percentile(&sorted, 0.95), 4.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
    }

    #[test]
    fn load_round_trips_against_a_live_daemon() {
        use smokescreen_serve::{Server, ServerConfig};
        let dir = std::env::temp_dir().join(format!("smk-loadgen-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let sock = std::env::temp_dir().join(format!("smk-loadgen-{}.sock", std::process::id()));
        let _ = std::fs::remove_file(&sock);
        let server = Server::new(
            ServerConfig::new(ServeAddr::Unix(sock), &dir).with_threads(2),
        )
        .spawn()
        .unwrap();

        let mut config = LoadConfig::new(server.addr().clone(), 64);
        config.clients = 2;
        config.grids = 4;
        config.mix = LoadMix::Puts;
        let seeded = run_load(&config).unwrap();
        assert_eq!(seeded.requests, 64);
        assert_eq!(seeded.puts, 64);
        assert_eq!(seeded.errors, 0);

        config.mix = LoadMix::Gets;
        let gets = run_load(&config).unwrap();
        assert_eq!(gets.gets + gets.not_found, 64);
        assert_eq!(gets.not_found, 0, "every key was seeded");
        assert!(gets.p50_us > 0.0 && gets.p95_us >= gets.p50_us);

        config.mix = LoadMix::Mixed;
        let mixed = run_load(&config).unwrap();
        assert_eq!(mixed.errors, 0);
        assert!(mixed.throughput_per_s() > 0.0);

        let report = server.shutdown().unwrap();
        assert!(report.graceful);
        assert_eq!(report.stats.quarantined_records, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
