//! Machine-readable perf trajectory — `BENCH_<n>.json` emission and
//! cross-commit regression comparison.
//!
//! PRs 2–5 reported speedups (3.8× at 4 workers, 8.5×/7.6× kernel wins)
//! that nothing tracked across commits. This module closes that loop: it
//! re-runs the parallel-speedup and estimator-kernel benches plus an
//! end-to-end generation bench under the deterministic
//! [`bench_repeated`] timer, persists per-bench median/p95 wall times and
//! throughput into a versioned JSON file via `rt::json`, and compares any
//! two trajectory files under a configurable regression threshold.
//!
//! The file format is `smokescreen-trajectory/2`: a flat object with run
//! provenance (git revision, thread count, corpus) plus one entry per
//! bench and a `derived` block of cross-bench speedup ratios. Every bench
//! entry carries the same keys (`model_runs` is 0 where not applicable;
//! `alloc_count`/`alloc_bytes` record the steady-state heap traffic of
//! the final timed repetition) so the schema golden in
//! `tests/golden/trajectory_schema.json` pins the shape, not the values.
//! `/1` files (PR ≤ 6) still load — their missing fields default to zero
//! — so `trajectory check` can gate a `/2` run against a committed `/1`
//! baseline.

use std::fs;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use smokescreen_core::{
    Aggregate, AggregateKernel, GenerationReport, GeneratorConfig, ProfileGenerator, Workload,
};
use smokescreen_degrade::{
    CandidateGrid, DegradedView, InterventionSet, RangeOutputs, RestrictionIndex,
};
use smokescreen_models::{Detections, Detector, OutputCache, SimYoloV4};
use smokescreen_rt::bench::{bench_repeated, RepeatedMeasurement};
use smokescreen_rt::json::{FromJson, Json, JsonError, ToJson};
use smokescreen_serve::{ServeAddr, Server, ServerConfig};
use smokescreen_video::synth::DatasetPreset;
use smokescreen_video::{Frame, ObjectClass, Resolution, VideoCorpus};

use crate::serve_client::{run_load, LoadConfig, LoadMix};
use crate::table::{fmt, Table};

/// Schema tag written into every trajectory file; bump on shape changes.
pub const SCHEMA: &str = "smokescreen-trajectory/2";

/// The previous schema tag. [`Trajectory::load`] still accepts it so the
/// regression gate can compare against baselines recorded before the
/// alloc-count and scaling-curve fields existed; absent fields default
/// to zero on read.
pub const SCHEMA_V1: &str = "smokescreen-trajectory/1";

/// Environment variable overriding the timed repetition count.
pub const REPS_ENV: &str = "SMOKESCREEN_BENCH_REPS";

/// Environment variable overriding the regression threshold (a fraction:
/// `0.25` = fail when a median grows, or a derived ratio shrinks, by more
/// than 25%).
pub const THRESHOLD_ENV: &str = "SMOKESCREEN_BENCH_THRESHOLD";

/// Default regression threshold when neither flag nor env is set. Wall
/// times on shared CI hosts are noisy; 25% catches real slope changes
/// without tripping on scheduler jitter.
pub const DEFAULT_THRESHOLD: f64 = 0.25;

/// Knobs for one trajectory run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrajectoryConfig {
    /// Smoke mode: tiny corpus and ladder, for CI schema/plumbing checks.
    /// Smoke numbers are not comparable to full-run numbers.
    pub smoke: bool,
    /// Timed repetitions per bench (deterministic, not adaptive).
    pub reps: usize,
    /// Worker threads for the generation benches.
    pub threads: usize,
    /// Sampling-permutation seed shared by every bench.
    pub seed: u64,
}

impl TrajectoryConfig {
    /// Full paper-scale configuration (UA-DETRAC 15,210 frames, 100-rung
    /// fraction ladder).
    pub fn full() -> Self {
        TrajectoryConfig {
            smoke: false,
            reps: reps_from_env().unwrap_or(5),
            threads: 4,
            seed: 1,
        }
    }

    /// Smoke configuration: 1,200 frames, 12-rung ladder, 2 reps.
    pub fn smoke() -> Self {
        TrajectoryConfig {
            smoke: true,
            reps: reps_from_env().unwrap_or(2),
            threads: 4,
            seed: 1,
        }
    }

    fn corpus(&self) -> VideoCorpus {
        let full = DatasetPreset::Detrac.generate(1);
        if self.smoke {
            full.slice(0, 1_200)
        } else {
            full
        }
    }

    fn ladder(&self) -> Vec<f64> {
        let steps = if self.smoke { 12 } else { 100 };
        (1..=steps).map(|i| i as f64 / steps as f64).collect()
    }
}

/// Reads [`REPS_ENV`], ignoring unset or malformed values.
pub fn reps_from_env() -> Option<usize> {
    std::env::var(REPS_ENV).ok()?.parse().ok().filter(|&r| r > 0)
}

/// Reads [`THRESHOLD_ENV`], ignoring unset or malformed values.
pub fn threshold_from_env() -> Option<f64> {
    std::env::var(THRESHOLD_ENV)
        .ok()?
        .parse()
        .ok()
        .filter(|t: &f64| t.is_finite())
}

/// One bench's record in a trajectory file. Every record carries the same
/// keys (`model_runs` is 0 where the bench runs no model) so the schema is
/// uniform across entries.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchResult {
    /// Stable bench identifier (compared by name across commits).
    pub name: String,
    /// Timed repetitions behind the percentiles.
    pub reps: usize,
    /// Median wall time per repetition, ms (nearest-rank).
    pub median_wall_ms: f64,
    /// 95th-percentile wall time, ms (nearest-rank).
    pub p95_wall_ms: f64,
    /// Fastest repetition, ms.
    pub min_wall_ms: f64,
    /// Work units per second at the median repetition.
    pub throughput_per_s: f64,
    /// What one work unit is (`samples`, `candidates`, `points`).
    pub throughput_unit: String,
    /// Model invocations per repetition (0 when the bench runs no model).
    pub model_runs: usize,
    /// Heap allocations on the bench thread during the final (steady-
    /// state) timed repetition — the number the zero-alloc cell-path
    /// contract gates on.
    pub alloc_count: u64,
    /// Bytes requested by those steady-state allocations.
    pub alloc_bytes: u64,
}

impl BenchResult {
    fn from_measurement(
        name: &str,
        m: &RepeatedMeasurement,
        work_per_rep: usize,
        unit: &str,
        model_runs: usize,
    ) -> Self {
        let median = m.median_ms();
        BenchResult {
            name: name.to_string(),
            reps: m.reps(),
            median_wall_ms: median,
            p95_wall_ms: m.p95_ms(),
            min_wall_ms: m.min_ms(),
            throughput_per_s: if median > 0.0 {
                work_per_rep as f64 / (median / 1_000.0)
            } else {
                0.0
            },
            throughput_unit: unit.to_string(),
            model_runs,
            alloc_count: m.steady_allocs.count,
            alloc_bytes: m.steady_allocs.bytes,
        }
    }
}

impl ToJson for BenchResult {
    fn to_json(&self) -> Json {
        Json::obj([
            ("name", self.name.to_json()),
            ("reps", self.reps.to_json()),
            ("median_wall_ms", self.median_wall_ms.to_json()),
            ("p95_wall_ms", self.p95_wall_ms.to_json()),
            ("min_wall_ms", self.min_wall_ms.to_json()),
            ("throughput_per_s", self.throughput_per_s.to_json()),
            ("throughput_unit", self.throughput_unit.to_json()),
            ("model_runs", self.model_runs.to_json()),
            ("alloc_count", self.alloc_count.to_json()),
            ("alloc_bytes", self.alloc_bytes.to_json()),
        ])
    }
}

impl FromJson for BenchResult {
    fn from_json(value: &Json) -> smokescreen_rt::json::Result<Self> {
        Ok(BenchResult {
            name: String::from_json(value.get("name")?)?,
            reps: value.get("reps")?.as_usize()?,
            median_wall_ms: value.get("median_wall_ms")?.as_f64()?,
            p95_wall_ms: value.get("p95_wall_ms")?.as_f64()?,
            min_wall_ms: value.get("min_wall_ms")?.as_f64()?,
            throughput_per_s: value.get("throughput_per_s")?.as_f64()?,
            throughput_unit: String::from_json(value.get("throughput_unit")?)?,
            model_runs: value.get("model_runs")?.as_usize()?,
            // Absent in `/1` files: the counting-allocator hook postdates
            // them, and "unrecorded" is indistinguishable from zero for
            // gating purposes (the threshold only fires on growth).
            alloc_count: match value.get_opt("alloc_count") {
                Some(v) => v.as_u64()?,
                None => 0,
            },
            alloc_bytes: match value.get_opt("alloc_bytes") {
                Some(v) => v.as_u64()?,
                None => 0,
            },
        })
    }
}

/// Cross-bench speedup ratios — the headline numbers earlier PRs claimed
/// in prose, now pinned as fields (higher is better for all of them).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Derived {
    /// Latency-bound generation wall time at 1 worker over 4 workers.
    pub parallel_speedup_4w: f64,
    /// Scaling-curve generation wall time at 1 worker over 8 workers.
    pub parallel_speedup_8w: f64,
    /// Scaling-curve generation wall time at 1 worker over 16 workers.
    pub parallel_speedup_16w: f64,
    /// Scalar-push over slice-path ingest wall time, AVG kernel.
    pub ingest_speedup_avg: f64,
    /// Scalar-push over slice-path ingest wall time, MAX(r=0.99) kernel.
    pub ingest_speedup_max: f64,
    /// Scalar-push over slice-path ingest wall time, MEDIAN(r=0.5) kernel.
    pub ingest_speedup_median: f64,
    /// Batch per-candidate sweep over incremental kernel sweep, MAX.
    pub sweep_speedup_max: f64,
}

impl Derived {
    /// `(metric, value)` pairs, in file order.
    pub fn entries(&self) -> [(&'static str, f64); 7] {
        [
            ("parallel_speedup_4w", self.parallel_speedup_4w),
            ("parallel_speedup_8w", self.parallel_speedup_8w),
            ("parallel_speedup_16w", self.parallel_speedup_16w),
            ("ingest_speedup_avg", self.ingest_speedup_avg),
            ("ingest_speedup_max", self.ingest_speedup_max),
            ("ingest_speedup_median", self.ingest_speedup_median),
            ("sweep_speedup_max", self.sweep_speedup_max),
        ]
    }
}

impl ToJson for Derived {
    fn to_json(&self) -> Json {
        Json::Obj(
            self.entries()
                .into_iter()
                .map(|(k, v)| (k.to_string(), v.to_json()))
                .collect(),
        )
    }
}

impl FromJson for Derived {
    fn from_json(value: &Json) -> smokescreen_rt::json::Result<Self> {
        // The 8w/16w ratios are absent in `/1` files; they default to 0,
        // which `compare` treats as "no prior value" (a zero `pv` yields a
        // zero delta), so a `/2` run never regresses against their absence.
        let opt = |key: &str| -> smokescreen_rt::json::Result<f64> {
            match value.get_opt(key) {
                Some(v) => v.as_f64(),
                None => Ok(0.0),
            }
        };
        Ok(Derived {
            parallel_speedup_4w: value.get("parallel_speedup_4w")?.as_f64()?,
            parallel_speedup_8w: opt("parallel_speedup_8w")?,
            parallel_speedup_16w: opt("parallel_speedup_16w")?,
            ingest_speedup_avg: value.get("ingest_speedup_avg")?.as_f64()?,
            ingest_speedup_max: value.get("ingest_speedup_max")?.as_f64()?,
            ingest_speedup_median: value.get("ingest_speedup_median")?.as_f64()?,
            sweep_speedup_max: value.get("sweep_speedup_max")?.as_f64()?,
        })
    }
}

/// One trajectory file: provenance plus all bench records.
#[derive(Debug, Clone, PartialEq)]
pub struct Trajectory {
    /// Format tag ([`SCHEMA`]).
    pub schema: String,
    /// PR number this file belongs to (`BENCH_<pr>.json`).
    pub pr: u64,
    /// Git revision the run was taken at (short hash, or `unknown`).
    pub git_rev: String,
    /// Worker threads used by the generation benches.
    pub threads: usize,
    /// Corpus identifier.
    pub corpus: String,
    /// Frames in the corpus the benches ran over.
    pub corpus_frames: usize,
    /// Whether this was a smoke run (not comparable to full runs).
    pub smoke: bool,
    /// Per-bench records, in run order.
    pub benches: Vec<BenchResult>,
    /// Cross-bench speedup ratios.
    pub derived: Derived,
}

impl Trajectory {
    /// Looks up a bench record by name.
    pub fn bench(&self, name: &str) -> Option<&BenchResult> {
        self.benches.iter().find(|b| b.name == name)
    }

    /// Writes the pretty-encoded file; returns the path.
    pub fn save(&self, dir: &Path) -> std::io::Result<PathBuf> {
        fs::create_dir_all(dir)?;
        let path = dir.join(bench_file_name(self.pr));
        fs::write(&path, self.to_json().encode_pretty())?;
        Ok(path)
    }

    /// Parses a trajectory file, validating the schema tag.
    pub fn load(path: &Path) -> Result<Self, String> {
        let text = fs::read_to_string(path)
            .map_err(|e| format!("{}: {e}", path.display()))?;
        let json = Json::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
        let t = Trajectory::from_json(&json).map_err(|e| format!("{}: {e}", path.display()))?;
        if t.schema != SCHEMA && t.schema != SCHEMA_V1 {
            return Err(format!(
                "{}: schema {:?}, expected {SCHEMA:?} (or the legacy {SCHEMA_V1:?})",
                path.display(),
                t.schema
            ));
        }
        Ok(t)
    }
}

impl ToJson for Trajectory {
    fn to_json(&self) -> Json {
        Json::obj([
            ("schema", self.schema.to_json()),
            ("pr", self.pr.to_json()),
            ("git_rev", self.git_rev.to_json()),
            ("threads", self.threads.to_json()),
            ("corpus", self.corpus.to_json()),
            ("corpus_frames", self.corpus_frames.to_json()),
            ("smoke", self.smoke.to_json()),
            (
                "benches",
                Json::Arr(self.benches.iter().map(ToJson::to_json).collect()),
            ),
            ("derived", self.derived.to_json()),
        ])
    }
}

impl FromJson for Trajectory {
    fn from_json(value: &Json) -> smokescreen_rt::json::Result<Self> {
        let benches = value
            .get("benches")?
            .as_arr()?
            .iter()
            .map(BenchResult::from_json)
            .collect::<smokescreen_rt::json::Result<Vec<_>>>()?;
        if benches.is_empty() {
            return Err(JsonError::new("trajectory has no benches"));
        }
        Ok(Trajectory {
            schema: String::from_json(value.get("schema")?)?,
            pr: value.get("pr")?.as_u64()?,
            git_rev: String::from_json(value.get("git_rev")?)?,
            threads: value.get("threads")?.as_usize()?,
            corpus: String::from_json(value.get("corpus")?)?,
            corpus_frames: value.get("corpus_frames")?.as_usize()?,
            smoke: value.get("smoke")?.as_bool()?,
            benches,
            derived: Derived::from_json(value.get("derived")?)?,
        })
    }
}

/// The canonical trajectory file name for a PR number.
pub fn bench_file_name(pr: u64) -> String {
    format!("BENCH_{pr}.json")
}

/// Scans `dir` for `BENCH_<n>.json` files; returns the highest `n` below
/// `before` and its path (the comparison baseline for PR `before`).
/// Files with other names (`ROBUST_*.json`, CSVs) are skipped, not
/// treated as scan failures.
pub fn latest_bench_below(dir: &Path, before: u64) -> Option<(u64, PathBuf)> {
    let mut best: Option<(u64, PathBuf)> = None;
    for entry in fs::read_dir(dir).ok()? {
        let Ok(entry) = entry else { continue };
        let name = entry.file_name();
        let name = name.to_string_lossy();
        let Some(n) = name
            .strip_prefix("BENCH_")
            .and_then(|s| s.strip_suffix(".json"))
            .and_then(|s| s.parse::<u64>().ok())
        else {
            continue;
        };
        if n < before && best.as_ref().is_none_or(|(b, _)| n > *b) {
            best = Some((n, entry.path()));
        }
    }
    best
}

/// Scans `dir` for the highest existing `BENCH_<n>.json` number.
pub fn highest_bench_number(dir: &Path) -> Option<u64> {
    latest_bench_below(dir, u64::MAX).map(|(n, _)| n)
}

/// Best-effort short git revision: walks up from `start` to a `.git`
/// directory, resolves `HEAD` one symbolic-ref level deep. `unknown` when
/// anything is missing — the trajectory file must not require git.
pub fn git_rev(start: &Path) -> String {
    let mut dir = Some(start);
    while let Some(d) = dir {
        let git = d.join(".git");
        if git.is_dir() {
            let head = match fs::read_to_string(git.join("HEAD")) {
                Ok(h) => h,
                Err(_) => return "unknown".into(),
            };
            let head = head.trim();
            let hash = match head.strip_prefix("ref: ") {
                Some(reference) => match fs::read_to_string(git.join(reference)) {
                    Ok(h) => h.trim().to_string(),
                    Err(_) => return "unknown".into(),
                },
                None => head.to_string(),
            };
            if hash.len() >= 12 && hash.bytes().all(|b| b.is_ascii_hexdigit()) {
                return hash[..12].to_string();
            }
            return "unknown".into();
        }
        dir = d.parent();
    }
    "unknown".into()
}

/// Result of comparing two trajectory files.
#[derive(Debug, Clone)]
pub struct Comparison {
    /// Human-readable delta table (one row per compared metric).
    pub table: Table,
    /// Descriptions of every metric past the threshold.
    pub regressions: Vec<String>,
}

impl Comparison {
    /// Whether any metric regressed past the threshold.
    pub fn regressed(&self) -> bool {
        !self.regressions.is_empty()
    }
}

/// Compares `cur` against `prev` under `threshold`. A bench regresses when
/// its median wall time grows by more than the threshold fraction; a
/// derived ratio regresses when it shrinks by more than the threshold. A
/// bench present in `prev` but missing from `cur` is a regression
/// (coverage must not silently shrink); a new bench in `cur` is reported
/// but never fails. Comparing a smoke run against a full run (or vice
/// versa) is refused via the `regressions` list — the numbers are not
/// commensurable.
pub fn compare(prev: &Trajectory, cur: &Trajectory, threshold: f64) -> Comparison {
    let mut table = Table::new(
        format!(
            "Trajectory: BENCH_{} ({}) vs BENCH_{} ({}) — threshold {:.0}%",
            prev.pr,
            prev.git_rev,
            cur.pr,
            cur.git_rev,
            threshold * 100.0
        ),
        &["metric", "prev", "cur", "delta_pct", "status"],
    );
    let mut regressions = Vec::new();
    if prev.smoke != cur.smoke {
        regressions.push(format!(
            "smoke={} vs smoke={}: smoke and full runs are not comparable",
            prev.smoke, cur.smoke
        ));
        return Comparison { table, regressions };
    }

    for pb in &prev.benches {
        let Some(cb) = cur.bench(&pb.name) else {
            regressions.push(format!("{}: bench missing from current run", pb.name));
            table.push_row(vec![
                format!("{}.median_ms", pb.name),
                fmt(pb.median_wall_ms),
                "-".into(),
                "-".into(),
                "MISSING".into(),
            ]);
            continue;
        };
        let delta = if pb.median_wall_ms > 0.0 {
            (cb.median_wall_ms - pb.median_wall_ms) / pb.median_wall_ms
        } else {
            0.0
        };
        let regressed = delta > threshold;
        if regressed {
            regressions.push(format!(
                "{}: median {:.3} ms → {:.3} ms (+{:.0}%)",
                pb.name,
                pb.median_wall_ms,
                cb.median_wall_ms,
                delta * 100.0
            ));
        }
        table.push_row(vec![
            format!("{}.median_ms", pb.name),
            fmt(pb.median_wall_ms),
            fmt(cb.median_wall_ms),
            fmt(delta * 100.0),
            if regressed { "REGRESSED" } else { "ok" }.into(),
        ]);
    }
    for cb in &cur.benches {
        if prev.bench(&cb.name).is_none() {
            table.push_row(vec![
                format!("{}.median_ms", cb.name),
                "-".into(),
                fmt(cb.median_wall_ms),
                "-".into(),
                "new".into(),
            ]);
        }
    }

    for ((name, pv), (_, cv)) in prev.derived.entries().into_iter().zip(cur.derived.entries()) {
        let delta = if pv > 0.0 { (cv - pv) / pv } else { 0.0 };
        // Derived ratios are higher-is-better: regression is shrinkage.
        let regressed = delta < -threshold;
        if regressed {
            regressions.push(format!(
                "derived.{name}: {pv:.2}× → {cv:.2}× ({:.0}%)",
                delta * 100.0
            ));
        }
        table.push_row(vec![
            format!("derived.{name}"),
            fmt(pv),
            fmt(cv),
            fmt(delta * 100.0),
            if regressed { "REGRESSED" } else { "ok" }.into(),
        ]);
    }
    Comparison { table, regressions }
}

/// Structural schema of a JSON value: objects map each key to its value's
/// schema, arrays reduce to the first element's schema (benches share one
/// shape), scalars reduce to their type name. Comparing `schema_of`
/// outputs pins field names and types while letting values drift.
pub fn schema_of(value: &Json) -> Json {
    match value {
        Json::Null => Json::Str("null".into()),
        Json::Bool(_) => Json::Str("bool".into()),
        Json::Num(_) => Json::Str("number".into()),
        Json::Str(_) => Json::Str("string".into()),
        Json::Arr(items) => Json::Arr(items.first().map(schema_of).into_iter().collect()),
        Json::Obj(map) => Json::Obj(
            map.iter()
                .map(|(k, v)| (k.clone(), schema_of(v)))
                .collect(),
        ),
    }
}

/// A detector with a simulated fixed per-inference latency, standing in
/// for the GPU round trips that dominate real deployments (the simulated
/// detectors answer in nanoseconds, which would make thread scaling
/// invisible).
struct LatencyDetector {
    inner: SimYoloV4,
    latency: Duration,
}

impl Detector for LatencyDetector {
    fn name(&self) -> &str {
        "sim-yolov4-latency"
    }

    fn native_resolution(&self) -> Resolution {
        self.inner.native_resolution()
    }

    fn supports(&self, res: Resolution) -> bool {
        self.inner.supports(res)
    }

    fn detect(&self, frame: &Frame, res: Resolution) -> Detections {
        std::thread::sleep(self.latency);
        self.inner.detect(frame, res)
    }

    fn inference_cost_ms(&self, res: Resolution) -> f64 {
        self.inner.inference_cost_ms(res)
    }
}

/// Repeats a self-timing closure (returning one sample in ms) after one
/// untimed warm-up, mirroring [`bench_repeated`] for benches whose sample
/// is an internally measured duration rather than closure wall time.
fn repeat_samples(name: &str, reps: usize, mut f: impl FnMut() -> f64) -> RepeatedMeasurement {
    std::hint::black_box(f());
    let samples_ms: Vec<f64> = (0..reps.max(1)).map(|_| f()).collect();
    // Self-timing benches measure an internal span, not the closure, so
    // an alloc count over the whole closure would mix setup into the
    // number; they report zero rather than a misleading total.
    let m = RepeatedMeasurement {
        samples_ms,
        steady_allocs: Default::default(),
    };
    println!(
        "bench {name:<48} median {:>10.3} ms p95 {:>10.3} ms min {:>10.3} ms ({} reps)",
        m.median_ms(),
        m.p95_ms(),
        m.min_ms(),
        m.reps()
    );
    m
}

/// Runs the whole trajectory suite and assembles the file contents.
///
/// The benches, in run order:
/// 1. `generation_end_to_end` — full `ProfileGenerator::generate` over the
///    fraction ladder, cold cache each repetition.
/// 2. `generation_threads{1,4}_latency` — generation under a 300 µs
///    simulated inference latency at 1 vs. 4 workers (the ROADMAP
///    parallel-speedup claim).
/// 3. `generation_scaling_threads{1,2,8,16}` — generation under the same
///    simulated latency over a resolution-rich grid, at the four worker
///    counts the persistent-pool scaling claim is made for.
/// 4. `ingest_{scalar,slice}_{avg,max,median}` — per-element
///    `AggregateKernel::push` vs. batched `extend` over the same
///    pre-fetched ladder rungs (the SIMD-width slice-path claim).
/// 5. `cell_path_steady_ingest` — the fraction-ladder hot loop (range
///    fetch into reused scratch → slice ingest → estimate) on a warm
///    cache; its `alloc_count` is the zero-alloc cell-path proof.
/// 6. `sweep_{batch,incremental}_max` — per-candidate `profile_point`
///    re-estimation vs. the kernel-backed sweep inside `generate`.
pub fn run(config: &TrajectoryConfig, pr: u64, rev: String) -> Trajectory {
    let corpus = config.corpus();
    let ladder = config.ladder();
    let mut benches = Vec::new();

    // --- 1. End-to-end generation over the fraction ladder. ---
    let yolo = SimYoloV4::new(1);
    let restrictions = RestrictionIndex::from_ground_truth(&corpus, &[]);
    let grid = CandidateGrid::explicit(ladder.clone(), vec![], vec![]);
    let workload = Workload {
        corpus: &corpus,
        detector: &yolo,
        class: ObjectClass::Car,
        aggregate: Aggregate::Avg,
        delta: 0.05,
    };
    let gen = ProfileGenerator::new(
        &workload,
        &restrictions,
        GeneratorConfig {
            early_stop_improvement: None,
            threads: config.threads,
            seed: config.seed,
            ..GeneratorConfig::default()
        },
    );
    let mut last_report = GenerationReport::default();
    let m = bench_repeated("generation_end_to_end", config.reps, || {
        let (profile, report) = gen.generate(&grid, None).expect("generation succeeds");
        last_report = report;
        profile.points.len()
    });
    benches.push(BenchResult::from_measurement(
        "generation_end_to_end",
        &m,
        last_report.points,
        "points",
        last_report.model_runs,
    ));

    // --- 2. Latency-bound generation at 1 vs. 4 workers. ---
    let (lat_corpus, lat_latency_us, lat_resolutions) = if config.smoke {
        (corpus.slice(0, 300), 100u64, 2u32)
    } else {
        (corpus.slice(0, 1_000), 300u64, 6u32)
    };
    let lat_detector = LatencyDetector {
        inner: SimYoloV4::new(1),
        latency: Duration::from_micros(lat_latency_us),
    };
    let lat_restrictions = RestrictionIndex::from_ground_truth(
        &lat_corpus,
        &[ObjectClass::Person, ObjectClass::Face],
    );
    let lat_workload = Workload {
        corpus: &lat_corpus,
        detector: &lat_detector,
        class: ObjectClass::Car,
        aggregate: Aggregate::Avg,
        delta: 0.05,
    };
    let lat_grid = CandidateGrid::explicit(
        vec![0.02, 0.05, 0.1],
        (1..=lat_resolutions).map(|i| Resolution::square(i * 96)).collect(),
        vec![vec![], vec![ObjectClass::Person]],
    );
    let mut latency_medians = [0.0f64; 2];
    for (slot, threads) in [1usize, 4].into_iter().enumerate() {
        let lat_gen = ProfileGenerator::new(
            &lat_workload,
            &lat_restrictions,
            GeneratorConfig {
                early_stop_improvement: None,
                threads,
                seed: config.seed,
                ..GeneratorConfig::default()
            },
        );
        let name = format!("generation_threads{threads}_latency");
        let mut report = GenerationReport::default();
        let m = bench_repeated(&name, config.reps, || {
            let (profile, r) = lat_gen.generate(&lat_grid, None).expect("generation succeeds");
            report = r;
            profile.points.len()
        });
        latency_medians[slot] = m.median_ms();
        benches.push(BenchResult::from_measurement(
            &name,
            &m,
            report.points,
            "points",
            report.model_runs,
        ));
    }
    let parallel_speedup_4w = latency_medians[0] / latency_medians[1].max(1e-9);

    // --- 3. Scaling curve at 1/2/8/16 workers. ---
    // A wider grid than bench 2 — sixteen resolution candidates — so 16
    // workers still have enough candidate-level parallelism to express a
    // slope; per-candidate frame loops parallelize too, so the curve is
    // latency-bound end to end. Kept separate from bench 2 so the
    // `/1`-era `generation_threads{1,4}_latency` medians stay comparable
    // across the schema bump.
    let scale_res_hi = if config.smoke { 5u32 } else { 17u32 };
    let scale_grid = CandidateGrid::explicit(
        vec![0.02, 0.05, 0.1],
        // Multiples of the 32-pixel detector stride, all below the
        // 608-native ceiling.
        (2..=scale_res_hi).map(|i| Resolution::square(i * 32)).collect(),
        vec![vec![]],
    );
    let mut scaling_medians = [0.0f64; 4];
    for (slot, threads) in [1usize, 2, 8, 16].into_iter().enumerate() {
        let scale_gen = ProfileGenerator::new(
            &lat_workload,
            &lat_restrictions,
            GeneratorConfig {
                early_stop_improvement: None,
                threads,
                seed: config.seed,
                ..GeneratorConfig::default()
            },
        );
        let name = format!("generation_scaling_threads{threads}");
        let mut report = GenerationReport::default();
        let m = bench_repeated(&name, config.reps, || {
            let (profile, r) = scale_gen.generate(&scale_grid, None).expect("generation succeeds");
            report = r;
            profile.points.len()
        });
        scaling_medians[slot] = m.median_ms();
        benches.push(BenchResult::from_measurement(
            &name,
            &m,
            report.points,
            "points",
            report.model_runs,
        ));
    }
    let parallel_speedup_8w = scaling_medians[0] / scaling_medians[2].max(1e-9);
    let parallel_speedup_16w = scaling_medians[0] / scaling_medians[3].max(1e-9);

    // --- 4. Scalar vs. slice-path kernel ingest over the ladder rungs. ---
    // Outputs are fetched once, untimed, through the full-fraction view;
    // the bench then times pure ingestion of the identical rung slices.
    let full_view = DegradedView::new(
        &corpus,
        InterventionSet::sampling(1.0),
        &restrictions,
        config.seed,
    )
    .expect("full view");
    let ingest_cache = OutputCache::new(&yolo);
    let outputs = full_view.outputs_cached(&ingest_cache, ObjectClass::Car);
    let rung_bounds: Vec<usize> = std::iter::once(0)
        .chain(ladder.iter().map(|f| {
            ((f * outputs.len() as f64).round() as usize).min(outputs.len())
        }))
        .collect();
    let ingest_cases = [
        ("avg", Aggregate::Avg),
        ("max", Aggregate::Max { r: 0.99 }),
        ("median", Aggregate::Quantile { r: 0.5 }),
    ];
    let mut ingest_speedups = [0.0f64; 3];
    for (idx, (label, aggregate)) in ingest_cases.into_iter().enumerate() {
        let scalar_name = format!("ingest_scalar_{label}");
        let scalar = bench_repeated(&scalar_name, config.reps, || {
            let mut kernel = AggregateKernel::with_capacity(aggregate, outputs.len());
            for w in rung_bounds.windows(2) {
                for &v in &outputs[w[0]..w[1]] {
                    kernel.push(v);
                }
            }
            kernel.n()
        });
        let slice_name = format!("ingest_slice_{label}");
        let sliced = bench_repeated(&slice_name, config.reps, || {
            let mut kernel = AggregateKernel::with_capacity(aggregate, outputs.len());
            for w in rung_bounds.windows(2) {
                kernel.extend(&outputs[w[0]..w[1]]);
            }
            kernel.n()
        });
        ingest_speedups[idx] = scalar.median_ms() / sliced.median_ms().max(1e-9);
        benches.push(BenchResult::from_measurement(
            &scalar_name,
            &scalar,
            outputs.len(),
            "samples",
            0,
        ));
        benches.push(BenchResult::from_measurement(
            &slice_name,
            &sliced,
            outputs.len(),
            "samples",
            0,
        ));
    }

    // --- 5. Steady-state cell path: range fetch → slice ingest. ---
    // Replays the fraction-ladder hot loop exactly as `profile_cell`
    // runs it — reused `RangeOutputs` scratch, memo-warm cache, slice
    // ingest, estimate per rung — and records its steady-state heap
    // traffic. After the first repetition warms the scratch, the
    // counting allocator must see zero allocations (gated in full runs
    // by the `trajectory` binary).
    let mut cell_scratch = RangeOutputs::default();
    let cell = bench_repeated("cell_path_steady_ingest", config.reps, || {
        let mut kernel = AggregateKernel::new(Aggregate::Avg);
        for w in rung_bounds.windows(2) {
            full_view.try_outputs_cached_range_into(
                &ingest_cache,
                ObjectClass::Car,
                w[0]..w[1],
                &mut cell_scratch,
            );
            kernel.extend(&cell_scratch.values);
            std::hint::black_box(kernel.estimate(corpus.len(), 0.05).ok());
        }
        kernel.n()
    });
    benches.push(BenchResult::from_measurement(
        "cell_path_steady_ingest",
        &cell,
        outputs.len(),
        "samples",
        0,
    ));

    // --- 6. Batch vs. incremental fraction sweep (MAX). ---
    let sweep_workload = Workload {
        corpus: &corpus,
        detector: &yolo,
        class: ObjectClass::Car,
        aggregate: Aggregate::Max { r: 0.99 },
        delta: 0.05,
    };
    let sweep_gen = ProfileGenerator::new(
        &sweep_workload,
        &restrictions,
        GeneratorConfig {
            early_stop_improvement: None,
            threads: 1,
            seed: config.seed,
            ..GeneratorConfig::default()
        },
    );
    let batch = repeat_samples("sweep_batch_max", config.reps, || {
        // Cold cache per repetition, exactly as `generate` starts — both
        // paths pay the same one-miss-per-frame model cost.
        let cache = OutputCache::new(&yolo);
        let t0 = Instant::now();
        for &f in &ladder {
            let set = InterventionSet::sampling(f);
            std::hint::black_box(
                sweep_gen.profile_point(&set, None, &cache).expect("profile point"),
            );
        }
        t0.elapsed().as_secs_f64() * 1_000.0
    });
    let mut sweep_runs = 0usize;
    let incremental = repeat_samples("sweep_incremental_max", config.reps, || {
        let (_, report) = sweep_gen.generate(&grid, None).expect("generation succeeds");
        sweep_runs = report.model_runs;
        report.estimation_time_ms
    });
    let sweep_speedup_max = batch.median_ms() / incremental.median_ms().max(1e-9);
    benches.push(BenchResult::from_measurement(
        "sweep_batch_max",
        &batch,
        ladder.len(),
        "candidates",
        outputs.len(),
    ));
    benches.push(BenchResult::from_measurement(
        "sweep_incremental_max",
        &incremental,
        ladder.len(),
        "candidates",
        sweep_runs,
    ));

    // --- 7. Serving throughput: the daemon under framed load. ---
    // A live server on a Unix socket with `config.threads` workers; every
    // repetition replays the same seeded schedule through
    // `serve_client::run_load`, so the medians measure the full framed
    // protocol + admission queue + columnar store path. Puts run first
    // (seeding every key), so the get/query benches never see not_found.
    let serve_requests = if config.smoke { 200 } else { 1_000 };
    let serve_dir = std::env::temp_dir().join(format!("smk-traj-serve-{}", std::process::id()));
    let _ = fs::remove_dir_all(&serve_dir);
    fs::create_dir_all(&serve_dir).expect("serve bench store dir");
    let serve_sock =
        std::env::temp_dir().join(format!("smk-traj-serve-{}.sock", std::process::id()));
    let server = Server::new(
        ServerConfig::new(ServeAddr::Unix(serve_sock), &serve_dir).with_threads(config.threads),
    )
    .spawn()
    .expect("serve bench daemon");
    let mut load = LoadConfig::new(server.addr().clone(), serve_requests);
    load.seed = config.seed;
    for (name, mix) in [
        ("serve_put_throughput", LoadMix::Puts),
        ("serve_get_throughput", LoadMix::Gets),
        ("serve_query_throughput", LoadMix::Queries),
    ] {
        load.mix = mix;
        let m = bench_repeated(name, config.reps, || {
            let report = run_load(&load).expect("serve load succeeds");
            assert_eq!(report.errors, 0, "daemon answered with unexpected errors");
            report.requests
        });
        benches.push(BenchResult::from_measurement(
            name,
            &m,
            serve_requests,
            "requests",
            0,
        ));
    }
    let serve_report = server.shutdown().expect("serve bench shutdown");
    assert_eq!(
        serve_report.stats.quarantined_records, 0,
        "serve bench store must stay clean"
    );
    let _ = fs::remove_dir_all(&serve_dir);

    Trajectory {
        schema: SCHEMA.to_string(),
        pr,
        git_rev: rev,
        threads: config.threads,
        corpus: "ua-detrac-sim".to_string(),
        corpus_frames: corpus.len(),
        smoke: config.smoke,
        benches,
        derived: Derived {
            parallel_speedup_4w,
            parallel_speedup_8w,
            parallel_speedup_16w,
            ingest_speedup_avg: ingest_speedups[0],
            ingest_speedup_max: ingest_speedups[1],
            ingest_speedup_median: ingest_speedups[2],
            sweep_speedup_max,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trajectory(pr: u64, median: f64, speedup: f64) -> Trajectory {
        Trajectory {
            schema: SCHEMA.to_string(),
            pr,
            git_rev: "0123456789ab".into(),
            threads: 4,
            corpus: "ua-detrac-sim".into(),
            corpus_frames: 100,
            smoke: true,
            benches: vec![BenchResult {
                name: "generation_end_to_end".into(),
                reps: 2,
                median_wall_ms: median,
                p95_wall_ms: median * 1.2,
                min_wall_ms: median * 0.9,
                throughput_per_s: 1_000.0 / median,
                throughput_unit: "points".into(),
                model_runs: 42,
                alloc_count: 7,
                alloc_bytes: 1_024,
            }],
            derived: Derived {
                parallel_speedup_4w: speedup,
                parallel_speedup_8w: speedup,
                parallel_speedup_16w: speedup,
                ingest_speedup_avg: speedup,
                ingest_speedup_max: speedup,
                ingest_speedup_median: speedup,
                sweep_speedup_max: speedup,
            },
        }
    }

    #[test]
    fn trajectory_json_round_trips() {
        let t = sample_trajectory(6, 12.5, 3.0);
        let json = t.to_json();
        let back = Trajectory::from_json(&json).unwrap();
        assert_eq!(t, back);
        // Deterministic encoding: same value, same bytes.
        assert_eq!(json.encode_pretty(), back.to_json().encode_pretty());
    }

    #[test]
    fn compare_flags_median_growth_and_ratio_shrinkage() {
        let prev = sample_trajectory(5, 10.0, 4.0);
        let same = sample_trajectory(6, 10.5, 4.0);
        assert!(!compare(&prev, &same, 0.25).regressed());

        let slow = sample_trajectory(6, 14.0, 4.0);
        let c = compare(&prev, &slow, 0.25);
        assert!(c.regressed());
        assert!(c.regressions[0].contains("generation_end_to_end"));

        let worse_ratio = sample_trajectory(6, 10.0, 2.0);
        let c = compare(&prev, &worse_ratio, 0.25);
        assert!(c.regressed());
        assert!(c.regressions.iter().any(|r| r.contains("derived.")));

        // Tighter threshold flips the borderline case.
        assert!(compare(&prev, &same, 0.01).regressed());
    }

    #[test]
    fn compare_flags_missing_bench_and_smoke_mismatch() {
        let prev = sample_trajectory(5, 10.0, 4.0);
        let mut cur = sample_trajectory(6, 10.0, 4.0);
        cur.benches[0].name = "renamed".into();
        let c = compare(&prev, &cur, 0.25);
        assert!(c.regressions.iter().any(|r| r.contains("missing")));

        let mut full = sample_trajectory(6, 10.0, 4.0);
        full.smoke = false;
        let c = compare(&prev, &full, 0.25);
        assert!(c.regressed());
        assert!(c.regressions[0].contains("not comparable"));
    }

    #[test]
    fn schema_of_reduces_values_to_types() {
        let t = sample_trajectory(6, 10.0, 4.0);
        let schema = schema_of(&t.to_json());
        assert_eq!(schema.get("pr").unwrap(), &Json::Str("number".into()));
        assert_eq!(schema.get("smoke").unwrap(), &Json::Str("bool".into()));
        let benches = schema.get("benches").unwrap().as_arr().unwrap();
        assert_eq!(benches.len(), 1, "array schema is the first element's");
        assert_eq!(
            benches[0].get("name").unwrap(),
            &Json::Str("string".into())
        );
        // Values never appear: two different runs share one schema.
        let other = sample_trajectory(7, 99.0, 1.0);
        assert_eq!(schema, schema_of(&other.to_json()));
    }

    #[test]
    fn bench_file_discovery() {
        let dir = std::env::temp_dir().join("smokescreen-trajectory-discovery");
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        for pr in [3u64, 5, 6] {
            sample_trajectory(pr, 10.0, 4.0).save(&dir).unwrap();
        }
        // Unrelated artifacts share the directory in practice
        // (ROBUST_*.json audits, CSV tables); discovery must skip them
        // rather than abort the scan.
        fs::write(dir.join("ROBUST_7.json"), "{}").unwrap();
        fs::write(dir.join("parallel_speedup.csv"), "threads,wall_ms\n").unwrap();
        assert_eq!(highest_bench_number(&dir), Some(6));
        let (n, path) = latest_bench_below(&dir, 6).unwrap();
        assert_eq!(n, 5);
        let loaded = Trajectory::load(&path).unwrap();
        assert_eq!(loaded.pr, 5);
        let _ = fs::remove_dir_all(&dir);
    }

    /// Recursively drops the named keys from every object — used to
    /// reconstruct a faithful `/1` file from a `/2` value.
    fn strip_keys(value: &Json, keys: &[&str]) -> Json {
        match value {
            Json::Obj(map) => Json::Obj(
                map.iter()
                    .filter(|(k, _)| !keys.contains(&k.as_str()))
                    .map(|(k, v)| (k.clone(), strip_keys(v, keys)))
                    .collect(),
            ),
            Json::Arr(items) => Json::Arr(items.iter().map(|v| strip_keys(v, keys)).collect()),
            other => other.clone(),
        }
    }

    #[test]
    fn load_accepts_legacy_v1_files_and_defaults_new_fields() {
        let dir = std::env::temp_dir().join("smokescreen-trajectory-v1-compat");
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let mut t = sample_trajectory(6, 10.0, 4.0);
        t.schema = SCHEMA_V1.into();
        let v1 = strip_keys(
            &t.to_json(),
            &[
                "alloc_count",
                "alloc_bytes",
                "parallel_speedup_8w",
                "parallel_speedup_16w",
            ],
        );
        let path = dir.join(bench_file_name(6));
        fs::write(&path, v1.encode_pretty()).unwrap();

        let loaded = Trajectory::load(&path).unwrap();
        assert_eq!(loaded.schema, SCHEMA_V1);
        assert_eq!(loaded.benches[0].alloc_count, 0);
        assert_eq!(loaded.benches[0].alloc_bytes, 0);
        assert_eq!(loaded.derived.parallel_speedup_8w, 0.0);
        assert_eq!(loaded.derived.parallel_speedup_16w, 0.0);

        // A `/2` run compared against the `/1` baseline must not regress
        // on the fields the baseline never recorded.
        let cur = sample_trajectory(8, 10.0, 4.0);
        assert!(!compare(&loaded, &cur, 0.25).regressed());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn load_rejects_wrong_schema_tag() {
        let dir = std::env::temp_dir().join("smokescreen-trajectory-schema-tag");
        let _ = fs::remove_dir_all(&dir);
        let mut t = sample_trajectory(6, 10.0, 4.0);
        t.schema = "smokescreen-trajectory/99".into();
        let path = t.save(&dir).unwrap();
        let err = Trajectory::load(&path).unwrap_err();
        assert!(err.contains("schema"), "{err}");
        let _ = fs::remove_dir_all(&dir);
    }
}
