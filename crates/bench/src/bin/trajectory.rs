//! `trajectory` — run the perf-trajectory suite, emit `BENCH_<n>.json`,
//! and gate on regressions against the previous trajectory file.
//!
//! ```text
//! trajectory run [--smoke] [--out DIR] [--baseline FILE] [--threshold X]
//!                [--reps N] [--threads N] [--pr N] [--schema-golden FILE]
//! trajectory check --prev FILE --cur FILE [--threshold X]
//! ```
//!
//! `run` executes the suite, writes `BENCH_<pr>.json` under `--out`
//! (default `bench_results/`), optionally validates its structural schema
//! against a golden, compares against `--baseline` (default: the highest
//! `BENCH_<m>.json` with `m < pr` in the out dir), and on full (non-smoke)
//! runs asserts the slice-path ingest floors. `check` compares two
//! existing files. Exit codes: 0 ok, 1 regression or floor failure, 2
//! usage/schema/IO error.
//!
//! Knobs: `SMOKESCREEN_BENCH_REPS` (repetitions), `SMOKESCREEN_BENCH_THRESHOLD`
//! (regression threshold, overridden by `--threshold`).

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use smokescreen_bench::trajectory::{
    compare, git_rev, highest_bench_number, latest_bench_below, reps_from_env, run, schema_of,
    threshold_from_env, Trajectory, TrajectoryConfig, DEFAULT_THRESHOLD,
};
use smokescreen_rt::json::Json;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("run") => cmd_run(&args[1..]),
        Some("check") => cmd_check(&args[1..]),
        _ => {
            eprintln!("usage: trajectory run [flags] | trajectory check --prev F --cur F");
            ExitCode::from(2)
        }
    }
}

/// Pulls the value of `--flag VALUE` out of `args`, if present.
fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn has_flag(args: &[String], flag: &str) -> bool {
    args.iter().any(|a| a == flag)
}

fn threshold(args: &[String]) -> Result<f64, String> {
    match flag_value(args, "--threshold") {
        Some(raw) => raw
            .parse::<f64>()
            .map_err(|_| format!("--threshold {raw:?} is not a number")),
        None => Ok(threshold_from_env().unwrap_or(DEFAULT_THRESHOLD)),
    }
}

fn cmd_run(args: &[String]) -> ExitCode {
    let mut config = if has_flag(args, "--smoke") {
        TrajectoryConfig::smoke()
    } else {
        TrajectoryConfig::full()
    };
    if let Some(reps) = flag_value(args, "--reps").and_then(|r| r.parse().ok()) {
        config.reps = reps;
    } else if let Some(reps) = reps_from_env() {
        config.reps = reps;
    }
    if let Some(threads) = flag_value(args, "--threads").and_then(|t| t.parse().ok()) {
        config.threads = threads;
    }
    let out_dir = flag_value(args, "--out")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("bench_results"));
    let threshold = match threshold(args) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("trajectory: {e}");
            return ExitCode::from(2);
        }
    };
    let pr = flag_value(args, "--pr")
        .and_then(|p| p.parse().ok())
        .unwrap_or_else(|| highest_bench_number(&out_dir).map_or(6, |n| n + 1));

    let rev = git_rev(&std::env::current_dir().unwrap_or_else(|_| PathBuf::from(".")));
    eprintln!(
        "trajectory: {} run, {} reps, {} threads, rev {rev}, PR {pr}",
        if config.smoke { "smoke" } else { "full" },
        config.reps,
        config.threads
    );
    let trajectory = run(&config, pr, rev);
    let path = match trajectory.save(&out_dir) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("trajectory: writing {}: {e}", out_dir.display());
            return ExitCode::from(2);
        }
    };
    println!("wrote {}", path.display());

    if let Some(golden) = flag_value(args, "--schema-golden") {
        if let Err(e) = check_schema(&trajectory, Path::new(&golden)) {
            eprintln!("trajectory: schema mismatch: {e}");
            return ExitCode::from(2);
        }
        println!("schema matches {golden}");
    }

    // Full runs must demonstrate the slice-path ingest win (ISSUE 6
    // acceptance floor) and the persistent-pool scaling curve plus the
    // zero-alloc cell path (ISSUE 8) in the same file that records them.
    // Smoke corpora are too small for stable ratios.
    if !config.smoke {
        let d = trajectory.derived;
        for (name, v, floor) in [
            ("ingest_speedup_max", d.ingest_speedup_max, 1.5),
            ("ingest_speedup_median", d.ingest_speedup_median, 1.5),
            ("parallel_speedup_8w", d.parallel_speedup_8w, 2.8),
            ("parallel_speedup_16w", d.parallel_speedup_16w, 5.0),
        ] {
            if v < floor {
                eprintln!("trajectory: floor failed: {name} = {v:.2}× < {floor:.1}×");
                return ExitCode::from(1);
            }
        }
        if let Some(cell) = trajectory.bench("cell_path_steady_ingest") {
            if cell.alloc_count != 0 {
                eprintln!(
                    "trajectory: floor failed: cell_path_steady_ingest made {} steady-state \
                     allocations ({} B); the cell path must be zero-alloc",
                    cell.alloc_count, cell.alloc_bytes
                );
                return ExitCode::from(1);
            }
        } else {
            eprintln!("trajectory: cell_path_steady_ingest bench missing from run");
            return ExitCode::from(1);
        }
    }

    let baseline = flag_value(args, "--baseline").map(PathBuf::from).or_else(|| {
        latest_bench_below(&out_dir, pr).map(|(n, p)| {
            eprintln!("trajectory: baseline {} (PR {n})", p.display());
            p
        })
    });
    match baseline {
        Some(prev_path) => {
            let prev = match Trajectory::load(&prev_path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("trajectory: {e}");
                    return ExitCode::from(2);
                }
            };
            report_comparison(&prev, &trajectory, threshold)
        }
        None => {
            println!("no baseline trajectory found — nothing to compare");
            ExitCode::SUCCESS
        }
    }
}

fn cmd_check(args: &[String]) -> ExitCode {
    let (Some(prev_path), Some(cur_path)) =
        (flag_value(args, "--prev"), flag_value(args, "--cur"))
    else {
        eprintln!("usage: trajectory check --prev FILE --cur FILE [--threshold X]");
        return ExitCode::from(2);
    };
    let threshold = match threshold(args) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("trajectory: {e}");
            return ExitCode::from(2);
        }
    };
    let (prev, cur) = match (
        Trajectory::load(Path::new(&prev_path)),
        Trajectory::load(Path::new(&cur_path)),
    ) {
        (Ok(p), Ok(c)) => (p, c),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("trajectory: {e}");
            return ExitCode::from(2);
        }
    };
    report_comparison(&prev, &cur, threshold)
}

fn report_comparison(prev: &Trajectory, cur: &Trajectory, threshold: f64) -> ExitCode {
    let comparison = compare(prev, cur, threshold);
    println!("{}", comparison.table.render());
    if comparison.regressed() {
        for r in &comparison.regressions {
            eprintln!("trajectory: REGRESSION: {r}");
        }
        ExitCode::from(1)
    } else {
        println!("no regressions past {:.0}%", threshold * 100.0);
        ExitCode::SUCCESS
    }
}

fn check_schema(trajectory: &Trajectory, golden_path: &Path) -> Result<(), String> {
    use smokescreen_rt::json::ToJson;
    let golden_text = std::fs::read_to_string(golden_path)
        .map_err(|e| format!("{}: {e}", golden_path.display()))?;
    let golden =
        Json::parse(&golden_text).map_err(|e| format!("{}: {e}", golden_path.display()))?;
    let actual = schema_of(&trajectory.to_json());
    if actual == golden {
        Ok(())
    } else {
        Err(format!(
            "schema drift vs {} — regen with UPDATE_GOLDEN=1 cargo test -p smokescreen \
             --test trajectory_schema\nactual: {}",
            golden_path.display(),
            actual.encode_pretty()
        ))
    }
}
