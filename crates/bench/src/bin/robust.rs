//! `robust` — run the content-fault bound-soundness audit matrix, emit
//! `ROBUST_<n>.json`, and gate on the audit's hard invariants.
//!
//! ```text
//! robust run [--smoke] [--out DIR] [--pr N] [--trials N] [--frames N]
//!            [--schema-golden FILE]
//! robust check --file FILE
//! ```
//!
//! `run` sweeps the perturbation matrix (kinds × rates × aggregates ×
//! sample fractions on both corpora), writes `ROBUST_<pr>.json` under
//! `--out` (default `bench_results/`), optionally validates its structural
//! schema against a golden, and fails on any hard-invariant violation
//! (strict-δ bound violation, sub-nominal `coverage_perturbed`, drift
//! false positive / miss). `check` re-verifies the invariants of an
//! existing file. Exit codes: 0 ok, 1 invariant violation, 2
//! usage/schema/IO error.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use smokescreen_bench::robust::{check, robust_file_name, run, AuditConfig, RobustAudit};
use smokescreen_bench::trajectory::{git_rev, schema_of};
use smokescreen_rt::json::Json;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("run") => cmd_run(&args[1..]),
        Some("check") => cmd_check(&args[1..]),
        _ => {
            eprintln!("usage: robust run [flags] | robust check --file FILE");
            ExitCode::from(2)
        }
    }
}

/// Pulls the value of `--flag VALUE` out of `args`, if present.
fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn has_flag(args: &[String], flag: &str) -> bool {
    args.iter().any(|a| a == flag)
}

fn cmd_run(args: &[String]) -> ExitCode {
    let mut config = if has_flag(args, "--smoke") {
        AuditConfig::smoke()
    } else {
        AuditConfig::full()
    };
    if let Some(trials) = flag_value(args, "--trials").and_then(|t| t.parse().ok()) {
        config.trials = trials;
    }
    if let Some(frames) = flag_value(args, "--frames").and_then(|f| f.parse().ok()) {
        config.frames = frames;
    }
    let out_dir = flag_value(args, "--out")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("bench_results"));
    let pr = flag_value(args, "--pr").and_then(|p| p.parse().ok()).unwrap_or(7);

    let rev = git_rev(&std::env::current_dir().unwrap_or_else(|_| PathBuf::from(".")));
    eprintln!(
        "robust: {} run, {} trials/cell, {} frames, rev {rev}, PR {pr}",
        if config.smoke { "smoke" } else { "full" },
        config.trials,
        config.frames
    );
    let audit = run(&config, pr, rev);
    let path = match audit.save(&out_dir) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("robust: writing {}: {e}", out_dir.display());
            return ExitCode::from(2);
        }
    };
    println!(
        "wrote {} ({} cells, {} streams, {} degraded regimes)",
        path.display(),
        audit.cells.len(),
        audit.streams.len(),
        audit.cells.iter().filter(|c| c.degraded).count()
    );

    if let Some(golden) = flag_value(args, "--schema-golden") {
        if let Err(e) = check_schema(&audit, Path::new(&golden)) {
            eprintln!("robust: schema mismatch: {e}");
            return ExitCode::from(2);
        }
        println!("schema matches {golden}");
    }

    report_audit(&audit)
}

fn cmd_check(args: &[String]) -> ExitCode {
    let Some(file) = flag_value(args, "--file") else {
        eprintln!("usage: robust check --file FILE");
        return ExitCode::from(2);
    };
    let audit = match RobustAudit::load(Path::new(&file)) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("robust: {e}");
            return ExitCode::from(2);
        }
    };
    println!(
        "{} — {} cells, {} streams (expected file name {})",
        file,
        audit.cells.len(),
        audit.streams.len(),
        robust_file_name(audit.pr)
    );
    report_audit(&audit)
}

fn report_audit(audit: &RobustAudit) -> ExitCode {
    for s in &audit.streams {
        println!(
            "stream {:12} {:10} rate {:>4}: max drift score {:8.2}  {}",
            s.corpus,
            s.kind,
            s.rate,
            s.max_score,
            if s.flagged { "FLAGGED" } else { "clean" }
        );
    }
    for c in audit.cells.iter().filter(|c| c.degraded) {
        println!(
            "degraded {:12} {:10} rate {:>4} {:6} f={:<5}: clean coverage {:.2} \
             (perturbed {:.2})",
            c.corpus, c.kind, c.rate, c.aggregate, c.fraction, c.coverage_clean,
            c.coverage_perturbed
        );
    }
    let violations = check(audit);
    if violations.is_empty() {
        println!("audit sound: all hard invariants hold");
        ExitCode::SUCCESS
    } else {
        for v in &violations {
            eprintln!("robust: VIOLATION: {v}");
        }
        ExitCode::from(1)
    }
}

fn check_schema(audit: &RobustAudit, golden_path: &Path) -> Result<(), String> {
    use smokescreen_rt::json::ToJson;
    let golden_text = std::fs::read_to_string(golden_path)
        .map_err(|e| format!("{}: {e}", golden_path.display()))?;
    let golden =
        Json::parse(&golden_text).map_err(|e| format!("{}: {e}", golden_path.display()))?;
    let actual = schema_of(&audit.to_json());
    if actual == golden {
        Ok(())
    } else {
        Err(format!(
            "schema drift vs {} — regen with UPDATE_GOLDEN=1 cargo test -p smokescreen \
             --test content_shift\nactual: {}",
            golden_path.display(),
            actual.encode_pretty()
        ))
    }
}
