//! `serve_load` — deterministic load generator for the serving daemon.
//!
//! ```text
//! serve_load --addr unix:PATH|tcp:HOST:PORT --requests N
//!            [--clients K] [--mix put|get|query|mixed]
//!            [--grids G] [--points P] [--seed S] [--retry]
//!            [--shutdown] [--expect-no-not-found]
//! ```
//!
//! Drives `--requests` framed requests across `--clients` connections
//! with a seed-derived schedule (see `smokescreen_bench::serve_client`)
//! and prints counts, throughput, and latency percentiles. With
//! `--retry`, every op goes through the fault-tolerant client —
//! idempotent puts, hedged gets, reconnects — which is required against
//! a daemon running armed fault plans (the chaos CI slice). With
//! `--shutdown`, sends a graceful `shutdown` after the load completes —
//! the daemon flushes and compacts before exiting. Exit codes: 0 ok,
//! 1 unexpected error responses (or `not_found` under
//! `--expect-no-not-found`), 2 usage errors.

use std::process::ExitCode;

use smokescreen_bench::serve_client::{run_load, LoadConfig, LoadMix, RetryPolicy};
use smokescreen_serve::{Request, Response, ServeAddr};

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn has_flag(args: &[String], flag: &str) -> bool {
    args.iter().any(|a| a == flag)
}

fn parse_addr(spec: &str) -> Result<ServeAddr, String> {
    if let Some(path) = spec.strip_prefix("unix:") {
        Ok(ServeAddr::Unix(path.into()))
    } else if let Some(addr) = spec.strip_prefix("tcp:") {
        Ok(ServeAddr::Tcp(addr.into()))
    } else {
        Err(format!("--addr {spec:?} must be unix:PATH or tcp:HOST:PORT"))
    }
}

fn run() -> Result<ExitCode, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let addr = parse_addr(
        &flag_value(&args, "--addr").ok_or("missing --addr unix:PATH|tcp:HOST:PORT")?,
    )?;
    let requests: usize = flag_value(&args, "--requests")
        .ok_or("missing --requests N")?
        .parse()
        .map_err(|_| "--requests must be an integer")?;
    let mut config = LoadConfig::new(addr.clone(), requests);
    if let Some(raw) = flag_value(&args, "--clients") {
        config.clients = raw.parse().map_err(|_| "--clients must be an integer")?;
    }
    if let Some(raw) = flag_value(&args, "--mix") {
        config.mix = LoadMix::parse(&raw)?;
    }
    if let Some(raw) = flag_value(&args, "--grids") {
        config.grids = raw.parse().map_err(|_| "--grids must be an integer")?;
    }
    if let Some(raw) = flag_value(&args, "--points") {
        config.points = raw.parse().map_err(|_| "--points must be an integer")?;
    }
    if let Some(raw) = flag_value(&args, "--seed") {
        config.seed = raw.parse().map_err(|_| "--seed must be an integer")?;
    }
    if has_flag(&args, "--retry") {
        config.retry = Some(RetryPolicy::default());
    }

    let report = run_load(&config)?;
    println!(
        "serve_load: {} requests over {} clients in {:.1} ms ({:.0} req/s)",
        report.requests,
        config.clients,
        report.wall_ms,
        report.throughput_per_s()
    );
    println!(
        "serve_load: puts {} gets {} queries {} not_found {} errors {}",
        report.puts, report.gets, report.queries, report.not_found, report.errors
    );
    println!(
        "serve_load: latency p50 {:.0} us p95 {:.0} us p99 {:.0} us max {:.0} us",
        report.p50_us, report.p95_us, report.p99_us, report.max_us
    );
    if config.retry.is_some() {
        println!(
            "serve_load: retries {} reconnects {} hedged_gets {} sim_backoff {:.1} ms",
            report.retries, report.reconnects, report.hedged_gets, report.sim_backoff_ms
        );
    }

    if has_flag(&args, "--shutdown") {
        let mut conn = addr.connect().map_err(|e| format!("shutdown connect: {e}"))?;
        match conn.request(&Request::Shutdown)? {
            Response::Bye => println!("serve_load: daemon acknowledged shutdown"),
            other => return Err(format!("shutdown: expected bye, got {other:?}")),
        }
    }

    if report.errors > 0 {
        eprintln!("serve_load: {} unexpected error responses", report.errors);
        return Ok(ExitCode::from(1));
    }
    if has_flag(&args, "--expect-no-not-found") && report.not_found > 0 {
        eprintln!(
            "serve_load: {} not_found responses on a store expected to be fully seeded",
            report.not_found
        );
        return Ok(ExitCode::from(1));
    }
    Ok(ExitCode::SUCCESS)
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(e) => {
            eprintln!("serve_load: {e}");
            ExitCode::from(2)
        }
    }
}
