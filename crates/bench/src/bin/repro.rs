//! `repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! repro <experiment>... [--trials N] [--quick] [--out DIR] [--threads N]
//!                       [--resume DIR]
//! repro all
//! repro list
//! ```
//!
//! `--resume DIR` arms crash-consistent checkpointing: profile generation
//! journals each completed cell under DIR and a rerun after an
//! interruption resumes from the journal, recomputing only missing cells
//! — with byte-identical profile output (only the `cells_resumed`
//! bookkeeping row records that a splice happened).
//!
//! Each experiment prints aligned tables to stdout and writes CSVs under
//! the output directory (default `bench_results/`). Experiments fan out
//! across `rt::pool` workers (and fan their own trials out below that);
//! `--threads` pins the worker count, which changes only wall-clock —
//! every table and CSV is byte-identical for any thread count.

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

use smokescreen_bench::figures::{all_experiments, by_id};
use smokescreen_bench::table::{results_dir, Table};
use smokescreen_bench::RunConfig;
use smokescreen_rt::journal::CHECKPOINT_DIR_ENV;
use smokescreen_rt::pool::{Pool, THREADS_ENV};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!("usage: repro <experiment>...|all|list [--trials N] [--quick] [--out DIR]");
        return ExitCode::FAILURE;
    }

    let mut cfg = RunConfig::default();
    let mut out_dir: PathBuf = results_dir();
    let mut ids: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--trials" => {
                i += 1;
                match args.get(i).and_then(|v| v.parse().ok()) {
                    Some(n) if n > 0 => cfg.trials = n,
                    _ => {
                        eprintln!("--trials expects a positive integer");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--quick" => {
                let trials = cfg.trials.min(RunConfig::quick().trials);
                cfg = RunConfig {
                    trials,
                    ..RunConfig::quick()
                };
            }
            "--out" => {
                i += 1;
                match args.get(i) {
                    Some(dir) => out_dir = PathBuf::from(dir),
                    None => {
                        eprintln!("--out expects a directory");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--seed" => {
                i += 1;
                match args.get(i).and_then(|v| v.parse().ok()) {
                    Some(s) => cfg.seed = s,
                    None => {
                        eprintln!("--seed expects an integer");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--threads" => {
                i += 1;
                match args.get(i).and_then(|v| v.parse::<usize>().ok()) {
                    // The pool reads the env var at construction; setting
                    // it here (before any pool exists) configures every
                    // fan-out layer at once. Single-threaded at this
                    // point, so the set is race-free.
                    Some(n) if n > 0 => std::env::set_var(THREADS_ENV, n.to_string()),
                    _ => {
                        eprintln!("--threads expects a positive integer");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--resume" => {
                i += 1;
                match args.get(i) {
                    // Experiments arm checkpointing from the env var (the
                    // same pattern as --threads); still single-threaded
                    // here, so the set is race-free.
                    Some(dir) if !dir.is_empty() => {
                        std::env::set_var(CHECKPOINT_DIR_ENV, dir)
                    }
                    _ => {
                        eprintln!("--resume expects a checkpoint directory");
                        return ExitCode::FAILURE;
                    }
                }
            }
            other => ids.push(other.to_string()),
        }
        i += 1;
    }

    if ids.iter().any(|i| i == "list") {
        for e in all_experiments() {
            println!("{:10}  {}", e.id(), e.describe());
        }
        return ExitCode::SUCCESS;
    }

    let experiments: Vec<_> = if ids.iter().any(|i| i == "all") {
        all_experiments()
    } else {
        let mut found = Vec::new();
        for id in &ids {
            match by_id(id) {
                Some(e) => found.push(e),
                None => {
                    eprintln!("unknown experiment {id:?}; try `repro list`");
                    return ExitCode::FAILURE;
                }
            }
        }
        found
    };

    // Fan the experiment list out across the pool, then render and write
    // strictly in request order so stdout and bench_results/ are identical
    // to a sequential run.
    let pool = Pool::new();
    eprintln!(
        "=== running {} experiment(s) on {} worker thread(s) (trials={}, quick={}) ===",
        experiments.len(),
        pool.threads(),
        cfg.trials,
        cfg.quick
    );
    let outcomes: Vec<(Vec<Table>, f64)> = pool.parallel_map(&experiments, |_, experiment| {
        let start = Instant::now();
        let tables = experiment.run(&cfg);
        (tables, start.elapsed().as_secs_f64())
    });

    for (experiment, (tables, secs)) in experiments.iter().zip(&outcomes) {
        eprintln!("=== {} — {} ===", experiment.id(), experiment.describe());
        for (i, table) in tables.iter().enumerate() {
            println!("{}", table.render());
            let stem = format!("{}_{i}", experiment.id());
            match table.write_csv(&out_dir, &stem) {
                Ok(path) => eprintln!("wrote {}", path.display()),
                Err(e) => eprintln!("csv write failed for {stem}: {e}"),
            }
        }
        eprintln!("=== {} done in {secs:.1}s ===\n", experiment.id());
    }
    ExitCode::SUCCESS
}
