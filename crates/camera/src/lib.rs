//! Networked camera fleet simulation.
//!
//! The paper's motivation (§1) is that interventions buy *policy goods*:
//! lower bandwidth and energy at the camera, and less private imagery
//! shipped off-device. This crate quantifies those goods so an example or
//! administrator can see exactly what a chosen tradeoff purchases:
//!
//! * [`cost`] — transmission bytes, link time, and a camera energy model;
//! * [`privacy`] — exposure scoring: how many sensitive objects shipped
//!   off-camera remain *recognizable* at the transmitted resolution;
//! * [`fleet`] — cameras, transmission plans, and before/after reports.

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod cost;
pub mod fleet;
pub mod privacy;

pub use cost::{EnergyModel, Link, TransmissionCost};
pub use fleet::{Camera, CameraId, Fleet, FleetReport};
pub use privacy::{PrivacyAuditor, PrivacyReport};
