//! Bandwidth and energy cost models.

use smokescreen_degrade::InterventionSet;
use smokescreen_video::codec::{frame_bytes, Quality};
use smokescreen_video::Resolution;

/// A wireless uplink from a camera.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Link {
    /// Sustained uplink bandwidth in bits per second.
    pub bandwidth_bps: u64,
}

impl Link {
    /// A constrained sensor-network uplink (≈2 Mbit/s).
    pub const SENSOR_NET: Link = Link {
        bandwidth_bps: 2_000_000,
    };

    /// Seconds needed to ship the given bytes.
    pub fn transmit_seconds(&self, bytes: u64) -> f64 {
        if self.bandwidth_bps == 0 {
            return f64::INFINITY;
        }
        bytes as f64 * 8.0 / self.bandwidth_bps as f64
    }
}

/// Per-camera energy model (capture + encode + radio).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyModel {
    /// Millijoules to capture one frame (sensor + ISP).
    pub capture_mj_per_frame: f64,
    /// Nanojoules to encode one pixel.
    pub encode_nj_per_pixel: f64,
    /// Nanojoules to transmit one byte over the radio.
    pub transmit_nj_per_byte: f64,
}

impl Default for EnergyModel {
    fn default() -> Self {
        // Representative figures for an embedded smart camera.
        EnergyModel {
            capture_mj_per_frame: 2.0,
            encode_nj_per_pixel: 4.0,
            transmit_nj_per_byte: 200.0,
        }
    }
}

/// The cost of shipping one camera's degraded video.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransmissionCost {
    /// Frames actually transmitted (after sampling and removal).
    pub frames: usize,
    /// Encoded bytes on the wire.
    pub bytes: u64,
    /// Total camera-side energy in joules.
    pub energy_j: f64,
}

/// Computes the transmission cost for `frames_shipped` frames at the
/// intervention's resolution/quality under the energy model.
///
/// `native` is the camera's capture resolution (used when the intervention
/// leaves resolution untouched). Capture energy is charged for every
/// *captured* frame (`frames_total` — the sensor runs regardless), while
/// encode/transmit energy only accrues for shipped frames: that asymmetry
/// is why frame sampling saves so much more energy than resolution alone.
pub fn transmission_cost(
    set: &InterventionSet,
    frames_total: usize,
    frames_shipped: usize,
    native: Resolution,
    energy: &EnergyModel,
) -> TransmissionCost {
    let res = set.resolution.unwrap_or(native);
    let quality = set.quality.unwrap_or(Quality::LOSSLESS_ISH);
    let per_frame = frame_bytes(res, quality);
    let bytes = per_frame * frames_shipped as u64;

    let capture_j = energy.capture_mj_per_frame * frames_total as f64 / 1e3;
    let encode_j =
        energy.encode_nj_per_pixel * res.pixels() as f64 * frames_shipped as f64 / 1e9;
    let transmit_j = energy.transmit_nj_per_byte * bytes as f64 / 1e9;

    TransmissionCost {
        frames: frames_shipped,
        bytes,
        energy_j: capture_j + encode_j + transmit_j,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn link_time_scales_with_bytes() {
        let l = Link {
            bandwidth_bps: 8_000_000,
        };
        assert!((l.transmit_seconds(1_000_000) - 1.0).abs() < 1e-9);
        assert_eq!(Link { bandwidth_bps: 0 }.transmit_seconds(1), f64::INFINITY);
    }

    #[test]
    fn lower_resolution_cuts_bytes_and_energy() {
        let native = Resolution::square(608);
        let e = EnergyModel::default();
        let full = transmission_cost(&InterventionSet::none(), 1_000, 1_000, native, &e);
        let small = transmission_cost(
            &InterventionSet::none().with_resolution(Resolution::square(128)),
            1_000,
            1_000,
            native,
            &e,
        );
        assert!(small.bytes < full.bytes / 10);
        assert!(small.energy_j < full.energy_j);
    }

    #[test]
    fn sampling_cuts_transmit_but_not_capture() {
        let native = Resolution::square(608);
        let e = EnergyModel::default();
        let full = transmission_cost(&InterventionSet::none(), 1_000, 1_000, native, &e);
        let sampled =
            transmission_cost(&InterventionSet::sampling(0.1), 1_000, 100, native, &e);
        assert!((sampled.bytes as f64 / full.bytes as f64 - 0.1).abs() < 0.01);
        // Capture energy floor keeps the ratio above 10%.
        assert!(sampled.energy_j > full.energy_j * 0.1);
        assert!(sampled.energy_j < full.energy_j);
    }

    #[test]
    fn compression_quality_reduces_bytes() {
        let native = Resolution::square(608);
        let e = EnergyModel::default();
        let hq = transmission_cost(&InterventionSet::none(), 100, 100, native, &e);
        let lq = transmission_cost(
            &InterventionSet::none().with_quality(Quality::new(0.2)),
            100,
            100,
            native,
            &e,
        );
        assert!(lq.bytes < hq.bytes);
    }
}
