//! Privacy-exposure scoring.
//!
//! A sensitive object that leaves the camera is only a privacy loss if it
//! is still *recognizable* at the transmitted resolution — the very
//! assumption behind the paper's resolution intervention ("objects like
//! faces that can be recognized from high-resolution images will not be
//! revealed", §2.1). We reuse the logistic resolution-response machinery:
//! recognizability of an object is the detection probability of a strong
//! recognizer at the shipped resolution.

use smokescreen_degrade::DegradedView;
use smokescreen_models::response::ResponseCurve;
use smokescreen_video::{Frame, ObjectClass, Resolution};

/// Scores how much sensitive imagery a degraded transmission exposes.
#[derive(Debug, Clone, Copy)]
pub struct PrivacyAuditor {
    face_recognizer: ResponseCurve,
    person_recognizer: ResponseCurve,
}

impl Default for PrivacyAuditor {
    fn default() -> Self {
        PrivacyAuditor {
            // A strong face recognizer: crisper threshold than MTCNN
            // detection because identification needs more pixels.
            face_recognizer: ResponseCurve {
                area50: 120.0,
                slope: 1.8,
                p_max: 0.995,
                contrast_gamma: 1.0,
            },
            // Re-identification of whole persons (gait/clothing).
            person_recognizer: ResponseCurve {
                area50: 450.0,
                slope: 1.4,
                p_max: 0.98,
                contrast_gamma: 1.0,
            },
        }
    }
}

/// The exposure report for one transmission plan.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PrivacyReport {
    /// Sensitive objects shipped, regardless of recognizability.
    pub sensitive_objects_shipped: usize,
    /// Expected number of *recognizable* faces shipped.
    pub recognizable_faces: f64,
    /// Expected number of *recognizable* persons shipped.
    pub recognizable_persons: f64,
    /// Frames shipped that contained any sensitive object.
    pub sensitive_frames: usize,
}

impl PrivacyReport {
    /// Aggregate exposure score (recognizable faces weighted 3× persons —
    /// facial identity is the sharper legal risk under GDPR-style rules).
    pub fn exposure_score(&self) -> f64 {
        3.0 * self.recognizable_faces + self.recognizable_persons
    }
}

impl PrivacyAuditor {
    /// Scores one frame at a transmitted resolution.
    pub fn score_frame(&self, frame: &Frame, res: Resolution) -> PrivacyReport {
        let mut report = PrivacyReport::default();
        let mut any = false;
        for obj in &frame.objects {
            match obj.class {
                ObjectClass::Face => {
                    report.sensitive_objects_shipped += 1;
                    report.recognizable_faces += self.face_recognizer.detect_probability(obj, res);
                    any = true;
                }
                ObjectClass::Person => {
                    report.sensitive_objects_shipped += 1;
                    report.recognizable_persons +=
                        self.person_recognizer.detect_probability(obj, res);
                    any = true;
                }
                _ => {}
            }
        }
        if any {
            report.sensitive_frames = 1;
        }
        report
    }

    /// Scores everything a degraded view would transmit.
    pub fn score_view(&self, view: &DegradedView<'_>) -> PrivacyReport {
        let res = view.resolution();
        let mut total = PrivacyReport::default();
        for i in 0..view.len() {
            if let Some(frame) = view.frame(i) {
                let r = self.score_frame(&frame, res);
                total.sensitive_objects_shipped += r.sensitive_objects_shipped;
                total.recognizable_faces += r.recognizable_faces;
                total.recognizable_persons += r.recognizable_persons;
                total.sensitive_frames += r.sensitive_frames;
            }
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smokescreen_degrade::{InterventionSet, RestrictionIndex};
    use smokescreen_video::synth::DatasetPreset;

    fn view_report(set: InterventionSet) -> PrivacyReport {
        let corpus = DatasetPreset::NightStreet.generate(70).slice(0, 4_000);
        let idx = RestrictionIndex::from_ground_truth(
            &corpus,
            &[ObjectClass::Person, ObjectClass::Face],
        );
        let view = DegradedView::new(&corpus, set, &idx, 1).unwrap();
        PrivacyAuditor::default().score_view(&view)
    }

    #[test]
    fn full_transmission_exposes_sensitive_objects() {
        let r = view_report(InterventionSet::none());
        assert!(r.sensitive_objects_shipped > 0);
        assert!(r.recognizable_faces > 0.0);
        assert!(r.exposure_score() > 0.0);
    }

    #[test]
    fn lower_resolution_reduces_recognizability_not_shipment() {
        let full = view_report(InterventionSet::none());
        let tiny = view_report(
            InterventionSet::none().with_resolution(Resolution::square(96)),
        );
        assert_eq!(
            tiny.sensitive_objects_shipped,
            full.sensitive_objects_shipped
        );
        assert!(
            tiny.recognizable_faces < full.recognizable_faces * 0.5,
            "tiny={} full={}",
            tiny.recognizable_faces,
            full.recognizable_faces
        );
    }

    #[test]
    fn image_removal_zeroes_exposure() {
        let r = view_report(
            InterventionSet::sampling(0.5)
                .with_restricted(&[ObjectClass::Person, ObjectClass::Face]),
        );
        assert_eq!(r.sensitive_objects_shipped, 0);
        assert_eq!(r.exposure_score(), 0.0);
    }

    #[test]
    fn blur_eliminates_recognizability_without_dropping_frames() {
        let full = view_report(InterventionSet::none());
        let blurred = view_report(
            InterventionSet::none().with_blur(&[ObjectClass::Person, ObjectClass::Face]),
        );
        // Frames (and their sensitive objects) still ship…
        assert_eq!(
            blurred.sensitive_objects_shipped,
            full.sensitive_objects_shipped
        );
        // …but nothing is recognizable any more.
        assert!(
            blurred.exposure_score() < full.exposure_score() * 0.01,
            "blur should zero exposure: {} vs {}",
            blurred.exposure_score(),
            full.exposure_score()
        );
    }

    #[test]
    fn sampling_scales_exposure_proportionally() {
        let full = view_report(InterventionSet::none());
        let tenth = view_report(InterventionSet::sampling(0.1));
        let ratio = tenth.sensitive_objects_shipped as f64
            / full.sensitive_objects_shipped.max(1) as f64;
        assert!((0.02..0.3).contains(&ratio), "ratio={ratio}");
    }
}
