//! Cameras, fleets, and transmission reports.

use smokescreen_degrade::{DegradedView, InterventionSet, RestrictionIndex};
use smokescreen_video::{ObjectClass, VideoCorpus};

use crate::cost::{transmission_cost, EnergyModel, Link};
use crate::privacy::{PrivacyAuditor, PrivacyReport};

/// Stable 64-bit camera identity, derived from the camera name by the
/// same FNV-1a checksum the durability layer uses — so the id a profile
/// store keys records by is reproducible on any machine without a central
/// id allocator. This is the store-key seam the serving daemon builds on:
/// `StoreKey { camera: id.value(), grid }`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CameraId(u64);

impl CameraId {
    /// Derives the id for a camera name.
    pub fn from_name(name: &str) -> CameraId {
        CameraId(smokescreen_rt::journal::checksum64(name.as_bytes()))
    }

    /// The raw 64-bit value (what goes into a store key).
    pub fn value(self) -> u64 {
        self.0
    }
}

impl std::fmt::Display for CameraId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// One configurable networked camera.
pub struct Camera {
    /// Camera name (e.g. `"intersection-7"`).
    pub name: String,
    /// The video this camera captures.
    pub corpus: VideoCorpus,
    /// Uplink to the central system.
    pub link: Link,
    /// Energy model of the device.
    pub energy: EnergyModel,
    restrictions: RestrictionIndex,
}

impl Camera {
    /// Creates a camera; the restriction prior is derived from the corpus
    /// ground truth.
    pub fn new(name: impl Into<String>, corpus: VideoCorpus, link: Link) -> Self {
        let restrictions = RestrictionIndex::from_ground_truth(
            &corpus,
            &[ObjectClass::Person, ObjectClass::Face],
        );
        Camera {
            name: name.into(),
            corpus,
            link,
            energy: EnergyModel::default(),
            restrictions,
        }
    }

    /// The camera's stable store-key identity.
    pub fn stable_id(&self) -> CameraId {
        CameraId::from_name(&self.name)
    }

    /// Simulates applying the intervention at-source and shipping the
    /// degraded video to the central system.
    pub fn transmit(&self, set: &InterventionSet, seed: u64) -> Result<CameraReport, String> {
        let view = DegradedView::new(&self.corpus, set.clone(), &self.restrictions, seed)?;
        let cost = transmission_cost(
            set,
            self.corpus.len(),
            view.len(),
            self.corpus.native_resolution,
            &self.energy,
        );
        let privacy = PrivacyAuditor::default().score_view(&view);
        Ok(CameraReport {
            camera: self.name.clone(),
            frames_shipped: view.len(),
            bytes: cost.bytes,
            energy_j: cost.energy_j,
            transmit_seconds: self.link.transmit_seconds(cost.bytes),
            privacy,
        })
    }
}

/// Per-camera transmission report.
#[derive(Debug, Clone, PartialEq)]
pub struct CameraReport {
    /// Camera name.
    pub camera: String,
    /// Frames on the wire.
    pub frames_shipped: usize,
    /// Bytes on the wire.
    pub bytes: u64,
    /// Camera-side energy in joules.
    pub energy_j: f64,
    /// Wall-clock seconds the uplink is busy.
    pub transmit_seconds: f64,
    /// Privacy exposure.
    pub privacy: PrivacyReport,
}

/// A set of cameras feeding one central system.
pub struct Fleet {
    /// The cameras.
    pub cameras: Vec<Camera>,
}

/// Fleet-wide totals.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetReport {
    /// Per-camera breakdown.
    pub cameras: Vec<CameraReport>,
}

impl FleetReport {
    /// Total bytes across the fleet.
    pub fn total_bytes(&self) -> u64 {
        self.cameras.iter().map(|c| c.bytes).sum()
    }

    /// Total energy in joules.
    pub fn total_energy_j(&self) -> f64 {
        self.cameras.iter().map(|c| c.energy_j).sum()
    }

    /// Total privacy exposure score.
    pub fn total_exposure(&self) -> f64 {
        self.cameras.iter().map(|c| c.privacy.exposure_score()).sum()
    }
}

impl Fleet {
    /// Stable ids for every camera, in fleet order.
    pub fn camera_ids(&self) -> Vec<CameraId> {
        self.cameras.iter().map(Camera::stable_id).collect()
    }

    /// Applies one intervention set fleet-wide and reports totals.
    pub fn transmit_all(&self, set: &InterventionSet, seed: u64) -> Result<FleetReport, String> {
        let cameras = self
            .cameras
            .iter()
            .enumerate()
            .map(|(i, c)| c.transmit(set, seed.wrapping_add(i as u64)))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(FleetReport { cameras })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smokescreen_video::synth::DatasetPreset;
    use smokescreen_video::Resolution;

    fn fleet() -> Fleet {
        Fleet {
            cameras: vec![
                Camera::new(
                    "ns-1",
                    DatasetPreset::NightStreet.generate(80).slice(0, 2_000),
                    Link::SENSOR_NET,
                ),
                Camera::new(
                    "dt-1",
                    DatasetPreset::Detrac.generate(80).slice(0, 2_000),
                    Link::SENSOR_NET,
                ),
            ],
        }
    }

    #[test]
    fn degradation_buys_policy_goods() {
        let f = fleet();
        let full = f.transmit_all(&InterventionSet::none(), 1).unwrap();
        let degraded = f
            .transmit_all(
                &InterventionSet::sampling(0.1).with_resolution(Resolution::square(128)),
                1,
            )
            .unwrap();
        assert!(degraded.total_bytes() < full.total_bytes() / 50);
        assert!(degraded.total_energy_j() < full.total_energy_j());
        assert!(degraded.total_exposure() < full.total_exposure() / 2.0);
    }

    #[test]
    fn camera_ids_are_stable_name_derived_and_distinct() {
        let f = fleet();
        let ids = f.camera_ids();
        assert_eq!(ids.len(), 2);
        assert_ne!(ids[0], ids[1]);
        assert_eq!(ids[0], CameraId::from_name("ns-1"), "pure function of the name");
        assert_eq!(ids[0], f.cameras[0].stable_id());
        assert_eq!(format!("{}", ids[0]).len(), 16, "fixed-width hex rendering");
        assert_eq!(
            ids[0].value(),
            smokescreen_rt::journal::checksum64(b"ns-1"),
            "same checksum the durability layer uses"
        );
    }

    #[test]
    fn per_camera_reports_are_labelled() {
        let f = fleet();
        let r = f.transmit_all(&InterventionSet::sampling(0.5), 2).unwrap();
        assert_eq!(r.cameras.len(), 2);
        assert_eq!(r.cameras[0].camera, "ns-1");
        assert!(r.cameras[1].frames_shipped > 0);
        assert!(r.cameras[0].transmit_seconds.is_finite());
    }
}
