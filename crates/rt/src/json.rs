//! A small JSON value model with encode/decode, replacing the
//! `serde`/`serde_json` dependency for the handful of artifacts the system
//! actually serializes (degradation profiles, bench result files).
//!
//! Types opt in by implementing [`ToJson`]/[`FromJson`] by hand — there is
//! no derive machinery, which keeps the surface auditable and the build
//! hermetic. Numbers are `f64` (like JSON itself); integers round-trip
//! exactly up to 2^53, far beyond any counter in this codebase.

use std::collections::BTreeMap;
use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. Keys are kept sorted (BTreeMap) so encoding is
    /// deterministic — byte-identical output for equal values.
    Obj(BTreeMap<String, Json>),
}

/// Error from parsing or mapping JSON.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    msg: String,
}

impl JsonError {
    /// Creates an error with the given message.
    pub fn new(msg: impl Into<String>) -> Self {
        JsonError { msg: msg.into() }
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json: {}", self.msg)
    }
}

impl std::error::Error for JsonError {}

/// Result alias for JSON operations.
pub type Result<T> = std::result::Result<T, JsonError>;

impl Json {
    /// Builds an object from key/value pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(
            pairs
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Member lookup on an object; errors on missing keys or non-objects.
    pub fn get(&self, key: &str) -> Result<&Json> {
        match self {
            Json::Obj(map) => map
                .get(key)
                .ok_or_else(|| JsonError::new(format!("missing key {key:?}"))),
            other => Err(JsonError::new(format!(
                "expected object with key {key:?}, got {}",
                other.kind()
            ))),
        }
    }

    /// Member lookup that treats a missing key as `None`.
    pub fn get_opt(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// The value as a number.
    pub fn as_f64(&self) -> Result<f64> {
        match self {
            Json::Num(n) => Ok(*n),
            other => Err(JsonError::new(format!("expected number, got {}", other.kind()))),
        }
    }

    /// The value as a non-negative integer (exact).
    pub fn as_u64(&self) -> Result<u64> {
        let n = self.as_f64()?;
        if n >= 0.0 && n.fract() == 0.0 && n <= 2f64.powi(53) {
            Ok(n as u64)
        } else {
            Err(JsonError::new(format!("expected unsigned integer, got {n}")))
        }
    }

    /// The value as a `usize` (exact).
    pub fn as_usize(&self) -> Result<usize> {
        Ok(self.as_u64()? as usize)
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Result<bool> {
        match self {
            Json::Bool(b) => Ok(*b),
            other => Err(JsonError::new(format!("expected bool, got {}", other.kind()))),
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Result<&str> {
        match self {
            Json::Str(s) => Ok(s),
            other => Err(JsonError::new(format!("expected string, got {}", other.kind()))),
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Result<&[Json]> {
        match self {
            Json::Arr(items) => Ok(items),
            other => Err(JsonError::new(format!("expected array, got {}", other.kind()))),
        }
    }

    /// Whether the value is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }

    fn kind(&self) -> &'static str {
        match self {
            Json::Null => "null",
            Json::Bool(_) => "bool",
            Json::Num(_) => "number",
            Json::Str(_) => "string",
            Json::Arr(_) => "array",
            Json::Obj(_) => "object",
        }
    }

    /// Parses a JSON document.
    ///
    /// Hardened against corrupted input (this is the parser journal
    /// replay runs through): nesting is capped at [`MAX_PARSE_DEPTH`] so
    /// adversarially deep documents error instead of overflowing the
    /// stack, and numbers that overflow `f64` (`1e999`) are rejected
    /// instead of decoding to infinity.
    pub fn parse(input: &str) -> Result<Json> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
            depth: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(JsonError::new(format!(
                "trailing characters at byte {}",
                p.pos
            )));
        }
        Ok(value)
    }

    /// Compact encoding.
    pub fn encode(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Pretty encoding with two-space indentation.
    pub fn encode_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(n) => write_number(out, *n),
            Json::Str(s) => write_string(out, s),
            Json::Arr(items) => write_seq(out, indent, depth, '[', ']', items.len(), |out, i| {
                items[i].write(out, indent, depth + 1);
            }),
            Json::Obj(map) => {
                let entries: Vec<(&String, &Json)> = map.iter().collect();
                write_seq(out, indent, depth, '{', '}', entries.len(), |out, i| {
                    write_string(out, entries[i].0);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    entries[i].1.write(out, indent, depth + 1);
                });
            }
        }
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.extend(std::iter::repeat(' ').take(width * (depth + 1)));
        }
        item(out, i);
    }
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat(' ').take(width * depth));
    }
    out.push(close);
}

fn write_number(out: &mut String, n: f64) {
    if !n.is_finite() {
        // JSON has no NaN/Inf; encode as null like serde_json's lossy mode.
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < 2f64.powi(53) {
        out.push_str(&format!("{}", n as i64));
    } else {
        // `{}` on f64 is the shortest representation that round-trips.
        out.push_str(&format!("{n}"));
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Maximum container nesting depth [`Json::parse`] accepts. Real
/// artifacts in this workspace nest a handful of levels; the cap exists
/// so corrupted or hostile input cannot overflow the parser's stack.
pub const MAX_PARSE_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(JsonError::new(format!(
                "expected {:?} at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(JsonError::new(format!(
                "invalid literal at byte {}",
                self.pos
            )))
        }
    }

    fn value(&mut self) -> Result<Json> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(JsonError::new(format!(
                "unexpected character {:?} at byte {}",
                other as char, self.pos
            ))),
            None => Err(JsonError::new("unexpected end of input")),
        }
    }

    /// Bumps the container nesting depth, erroring past the cap. The
    /// matching decrement happens only on success paths — a failed parse
    /// aborts the whole document, so the counter never needs unwinding.
    fn descend(&mut self) -> Result<()> {
        self.depth += 1;
        if self.depth > MAX_PARSE_DEPTH {
            return Err(JsonError::new(format!(
                "nesting deeper than {MAX_PARSE_DEPTH} at byte {}",
                self.pos
            )));
        }
        Ok(())
    }

    fn array(&mut self) -> Result<Json> {
        self.expect(b'[')?;
        self.descend()?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(JsonError::new(format!("expected ',' or ']' at byte {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Json> {
        self.expect(b'{')?;
        self.descend()?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(JsonError::new(format!("expected ',' or '}}' at byte {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(JsonError::new("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| JsonError::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(JsonError::new("invalid low surrogate"));
                                    }
                                    0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                                } else {
                                    return Err(JsonError::new("lone high surrogate"));
                                }
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| JsonError::new("invalid \\u escape"))?,
                            );
                        }
                        other => {
                            return Err(JsonError::new(format!(
                                "invalid escape \\{}",
                                other as char
                            )))
                        }
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 character (input came from &str, so
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| JsonError::new("invalid utf-8 in string"))?;
                    let c = s.chars().next().expect("non-empty checked above");
                    if (c as u32) < 0x20 {
                        return Err(JsonError::new("unescaped control character in string"));
                    }
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32> {
        if self.pos + 4 > self.bytes.len() {
            return Err(JsonError::new("truncated \\u escape"));
        }
        let chunk = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| JsonError::new("invalid \\u escape"))?;
        let code =
            u32::from_str_radix(chunk, 16).map_err(|_| JsonError::new("invalid \\u escape"))?;
        self.pos += 4;
        Ok(code)
    }

    fn number(&mut self) -> Result<Json> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| JsonError::new("invalid number"))?;
        let n: f64 = text
            .parse()
            .map_err(|_| JsonError::new(format!("invalid number {text:?} at byte {start}")))?;
        // `"1e999".parse::<f64>()` succeeds as infinity; JSON has no
        // non-finite numbers, and letting one in would poison every
        // downstream bound computation. Reject instead.
        if !n.is_finite() {
            return Err(JsonError::new(format!(
                "number {text:?} at byte {start} overflows f64"
            )));
        }
        Ok(Json::Num(n))
    }
}

/// Conversion into a [`Json`] value.
pub trait ToJson {
    /// Converts `self` into a JSON value.
    fn to_json(&self) -> Json;
}

/// Conversion from a [`Json`] value.
pub trait FromJson: Sized {
    /// Reads `Self` back out of a JSON value.
    fn from_json(value: &Json) -> Result<Self>;
}

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::Num(*self)
    }
}

impl FromJson for f64 {
    fn from_json(value: &Json) -> Result<f64> {
        value.as_f64()
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl FromJson for bool {
    fn from_json(value: &Json) -> Result<bool> {
        value.as_bool()
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl FromJson for String {
    fn from_json(value: &Json) -> Result<String> {
        Ok(value.as_str()?.to_string())
    }
}

macro_rules! json_uint {
    ($($t:ty),* $(,)?) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json {
                Json::Num(*self as f64)
            }
        }

        impl FromJson for $t {
            fn from_json(value: &Json) -> Result<$t> {
                let n = value.as_u64()?;
                <$t>::try_from(n).map_err(|_| JsonError::new(format!("{n} out of range")))
            }
        }
    )*};
}

json_uint!(u8, u16, u32, u64, usize);

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: FromJson> FromJson for Vec<T> {
    fn from_json(value: &Json) -> Result<Vec<T>> {
        value.as_arr()?.iter().map(T::from_json).collect()
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

impl<T: FromJson> FromJson for Option<T> {
    fn from_json(value: &Json) -> Result<Option<T>> {
        if value.is_null() {
            Ok(None)
        } else {
            Ok(Some(T::from_json(value)?))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse("true").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse(" -12.5e2 ").unwrap(), Json::Num(-1250.0));
        assert_eq!(
            Json::parse(r#""a\nb\u00e9\u0041""#).unwrap(),
            Json::Str("a\nbéA".into())
        );
    }

    #[test]
    fn parse_structures() {
        let v = Json::parse(r#"{"a": [1, 2, {"b": null}], "c": "x"}"#).unwrap();
        assert_eq!(v.get("c").unwrap().as_str().unwrap(), "x");
        let arr = v.get("a").unwrap().as_arr().unwrap();
        assert_eq!(arr.len(), 3);
        assert!(arr[2].get("b").unwrap().is_null());
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "", "{", "[1,", "{\"a\":}", "nul", "01x", "\"unterminated",
            "[1] trailing", "{\"a\" 1}", "\"\\q\"",
        ] {
            assert!(Json::parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn encode_round_trips() {
        let v = Json::obj([
            ("pi", Json::Num(3.141592653589793)),
            ("n", Json::Num(42.0)),
            ("s", Json::Str("line\n\"quote\"".into())),
            ("arr", Json::Arr(vec![Json::Bool(false), Json::Null])),
            ("nested", Json::obj([("k", Json::Num(-7.0))])),
        ]);
        for text in [v.encode(), v.encode_pretty()] {
            assert_eq!(Json::parse(&text).unwrap(), v);
        }
    }

    #[test]
    fn encoding_is_deterministic() {
        let make = || {
            Json::obj([
                ("z", Json::Num(1.0)),
                ("a", Json::Num(2.0)),
                ("m", Json::Arr(vec![Json::Str("x".into())])),
            ])
        };
        assert_eq!(make().encode_pretty(), make().encode_pretty());
        // Keys come out sorted regardless of insertion order.
        assert!(make().encode().starts_with(r#"{"a":"#));
    }

    #[test]
    fn deep_nesting_errors_instead_of_overflowing() {
        // Just inside the cap parses; just past it errors. Far past it
        // (a would-be stack overflow) also errors — that's the point.
        let ok = format!("{}null{}", "[".repeat(MAX_PARSE_DEPTH), "]".repeat(MAX_PARSE_DEPTH));
        assert!(Json::parse(&ok).is_ok());
        for depth in [MAX_PARSE_DEPTH + 1, 200_000] {
            let deep = "[".repeat(depth);
            assert!(Json::parse(&deep).is_err(), "depth {depth} must error");
            let objs = "{\"k\":".repeat(depth);
            assert!(Json::parse(&objs).is_err(), "object depth {depth} must error");
        }
    }

    #[test]
    fn overflowing_numbers_are_rejected() {
        for bad in ["1e999", "-1e999", "1e309", "123456789e400"] {
            assert!(Json::parse(bad).is_err(), "should reject {bad:?}");
        }
        // Large-but-finite still parses.
        assert_eq!(Json::parse("1e308").unwrap(), Json::Num(1e308));
    }

    #[test]
    fn surrogate_pairs() {
        let v = Json::parse(r#""\ud83d\ude00""#).unwrap();
        assert_eq!(v, Json::Str("😀".into()));
        assert!(Json::parse(r#""\ud83d""#).is_err());
    }

    #[test]
    fn typed_conversions() {
        assert_eq!(u32::from_json(&Json::Num(7.0)).unwrap(), 7);
        assert!(u32::from_json(&Json::Num(7.5)).is_err());
        assert!(u32::from_json(&Json::Num(-1.0)).is_err());
        assert_eq!(
            Vec::<f64>::from_json(&Json::parse("[1, 2]").unwrap()).unwrap(),
            vec![1.0, 2.0]
        );
        assert_eq!(Option::<f64>::from_json(&Json::Null).unwrap(), None);
    }
}
