//! Seeded pseudo-random number generation and distribution samplers.
//!
//! This replaces the `rand`/`rand_distr` dependency with an in-tree,
//! fully deterministic implementation so the workspace builds offline and
//! every sampled quantity is byte-reproducible across platforms:
//!
//! * [`StdRng`] — xoshiro256\*\* seeded through SplitMix64. The generator
//!   passes BigCrush in its published form and is more than adequate for
//!   the simulation workloads here (it is *not* cryptographic).
//! * [`StandardNormal`] (Box–Muller), [`LogNormal`], and [`Poisson`]
//!   (Knuth multiplication below λ = 10, Hörmann's PTRS transformed
//!   rejection above) matching the `rand_distr` sampler API shape.
//!
//! Unlike `rand`, the method set is inherent on [`StdRng`] — call sites
//! need no `Rng`/`SeedableRng` trait imports.

use std::ops::{Range, RangeInclusive};

/// A seeded xoshiro256\*\* generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl StdRng {
    /// Expands a 64-bit seed into the full 256-bit state via SplitMix64
    /// (the initialization the xoshiro authors recommend).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut sm);
        }
        // All-zero state is a fixed point; SplitMix64 cannot produce four
        // consecutive zeros, but guard anyway.
        if s == [0; 4] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        StdRng { s }
    }

    /// Next raw 64-bit output (xoshiro256\*\* step).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1]
            .wrapping_mul(5)
            .rotate_left(7)
            .wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Next 32-bit output (upper half of the 64-bit stream).
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw with success probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p.clamp(0.0, 1.0)
    }

    /// Uniform value from a half-open or inclusive range, e.g.
    /// `rng.gen_range(0..n)`, `rng.gen_range(0.0..1.0)`,
    /// `rng.gen_range(-amp..=amp)`.
    #[inline]
    pub fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }

    /// A value of the "standard" distribution for `T` — `[0, 1)` for
    /// floats, full range for integers (`rng.gen::<f64>()`).
    #[inline]
    pub fn gen<T: Standard>(&mut self) -> T {
        T::standard(self)
    }

    /// Uniform `u64` in `[0, span)` via Lemire's multiply-shift reduction.
    #[inline]
    fn bounded_u64(&mut self, span: u64) -> u64 {
        debug_assert!(span > 0);
        ((u128::from(self.next_u64()) * u128::from(span)) >> 64) as u64
    }
}

/// Types that can be drawn from a range by [`StdRng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a uniform value from the range.
    fn sample_from(self, rng: &mut StdRng) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_from(self, rng: &mut StdRng) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = if span > u64::MAX as u128 {
                    rng.next_u64()
                } else {
                    rng.bounded_u64(span as u64)
                };
                (self.start as i128 + off as i128) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_from(self, rng: &mut StdRng) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = if span > u64::MAX as u128 {
                    rng.next_u64()
                } else {
                    rng.bounded_u64(span as u64)
                };
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_from(self, rng: &mut StdRng) -> $t {
                assert!(
                    self.start < self.end && self.start.is_finite() && self.end.is_finite(),
                    "gen_range: invalid float range"
                );
                let v = self.start + (rng.gen_f64() as $t) * (self.end - self.start);
                // Rounding can push the product up to `end`; fold the
                // boundary back into the half-open interval.
                if v < self.end { v } else { self.start }
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_from(self, rng: &mut StdRng) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(
                    lo <= hi && lo.is_finite() && hi.is_finite(),
                    "gen_range: invalid float range"
                );
                (lo + (rng.gen_f64() as $t) * (hi - lo)).clamp(lo, hi)
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// The "standard" distribution drawn by [`StdRng::gen`].
pub trait Standard {
    /// Draws one value.
    fn standard(rng: &mut StdRng) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn standard(rng: &mut StdRng) -> f64 {
        rng.gen_f64()
    }
}

impl Standard for f32 {
    #[inline]
    fn standard(rng: &mut StdRng) -> f32 {
        rng.gen_f64() as f32
    }
}

impl Standard for u64 {
    #[inline]
    fn standard(rng: &mut StdRng) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    #[inline]
    fn standard(rng: &mut StdRng) -> u32 {
        rng.next_u32()
    }
}

impl Standard for bool {
    #[inline]
    fn standard(rng: &mut StdRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Error constructing a distribution from invalid parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DistError(&'static str);

impl std::fmt::Display for DistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.0)
    }
}

impl std::error::Error for DistError {}

/// A distribution that can be sampled with an [`StdRng`].
pub trait Distribution<T> {
    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> T;
}

/// The standard normal `N(0, 1)`, sampled by Box–Muller.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StandardNormal;

impl Distribution<f64> for StandardNormal {
    fn sample(&self, rng: &mut StdRng) -> f64 {
        // u1 ∈ (0, 1] so the log is finite; u2 ∈ [0, 1).
        let u1 = 1.0 - rng.gen_f64();
        let u2 = rng.gen_f64();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }
}

/// Log-normal: `exp(μ + σ · N(0, 1))`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
}

impl LogNormal {
    /// Creates the distribution; `σ` must be finite and non-negative.
    pub fn new(mu: f64, sigma: f64) -> Result<Self, DistError> {
        if !mu.is_finite() || !sigma.is_finite() || sigma < 0.0 {
            return Err(DistError("LogNormal requires finite mu and sigma >= 0"));
        }
        Ok(LogNormal { mu, sigma })
    }
}

impl Distribution<f64> for LogNormal {
    fn sample(&self, rng: &mut StdRng) -> f64 {
        (self.mu + self.sigma * StandardNormal.sample(rng)).exp()
    }
}

/// Poisson with rate `λ > 0`; samples are returned as `f64` counts
/// (matching the `rand_distr` API the call sites were written against).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Poisson {
    lambda: f64,
}

impl Poisson {
    /// Creates the distribution; `λ` must be finite and positive.
    pub fn new(lambda: f64) -> Result<Self, DistError> {
        if !(lambda > 0.0) || !lambda.is_finite() {
            return Err(DistError("Poisson requires finite lambda > 0"));
        }
        Ok(Poisson { lambda })
    }

    /// Knuth's multiplication method — O(λ), exact, fine for small rates.
    fn sample_knuth(&self, rng: &mut StdRng) -> f64 {
        let limit = (-self.lambda).exp();
        let mut product = 1.0;
        let mut k: u64 = 0;
        loop {
            product *= rng.gen_f64();
            if product <= limit {
                return k as f64;
            }
            k += 1;
        }
    }

    /// Hörmann's PTRS transformed-rejection sampler, valid for λ ≥ 10.
    fn sample_ptrs(&self, rng: &mut StdRng) -> f64 {
        let lambda = self.lambda;
        let log_lambda = lambda.ln();
        let b = 0.931 + 2.53 * lambda.sqrt();
        let a = -0.059 + 0.024_83 * b;
        let inv_alpha = 1.1239 + 1.1328 / (b - 3.4);
        let v_r = 0.9277 - 3.6224 / (b - 2.0);
        loop {
            let u = rng.gen_f64() - 0.5;
            let v = rng.gen_f64();
            let us = 0.5 - u.abs();
            let k = ((2.0 * a / us + b) * u + lambda + 0.43).floor();
            if us >= 0.07 && v <= v_r {
                return k;
            }
            if k < 0.0 || (us < 0.013 && v > us) {
                continue;
            }
            if v.ln() + inv_alpha.ln() - (a / (us * us) + b).ln()
                <= k * log_lambda - lambda - ln_gamma(k + 1.0)
            {
                return k;
            }
        }
    }
}

impl Distribution<f64> for Poisson {
    fn sample(&self, rng: &mut StdRng) -> f64 {
        if self.lambda < 10.0 {
            self.sample_knuth(rng)
        } else {
            self.sample_ptrs(rng)
        }
    }
}

/// `ln Γ(x)` for `x > 0` via the Lanczos approximation (g = 7, n = 9),
/// accurate to ~1e-13 over the range the Poisson sampler needs.
pub fn ln_gamma(x: f64) -> f64 {
    const G: f64 = 7.0;
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_93,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_13,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_571_6e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection: Γ(x)Γ(1−x) = π / sin(πx).
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = COEF[0];
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + G + 0.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_reproducible_and_seed_sensitive() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..64).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn gen_f64_is_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn int_ranges_cover_and_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            let v: usize = rng.gen_range(3..13);
            assert!((3..13).contains(&v));
            seen[v - 3] = true;
        }
        assert!(seen.iter().all(|&s| s), "every bucket should be hit");
        for _ in 0..1_000 {
            let v: i16 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&v));
        }
        // Inclusive endpoints are reachable.
        let mut hit_hi = false;
        for _ in 0..200 {
            if rng.gen_range(0u32..=1) == 1 {
                hit_hi = true;
            }
        }
        assert!(hit_hi);
    }

    #[test]
    fn float_range_half_open() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v = rng.gen_range(2.0..4.0);
            assert!((2.0..4.0).contains(&v));
            let w = rng.gen_range(-0.5..=0.5);
            assert!((-0.5..=0.5).contains(&w));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(4);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.25)).count();
        let rate = hits as f64 / 20_000.0;
        assert!((rate - 0.25).abs() < 0.02, "rate={rate}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn standard_normal_moments() {
        let mut rng = StdRng::seed_from_u64(5);
        let n = 100_000;
        let xs: Vec<f64> = (0..n).map(|_| StandardNormal.sample(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean={mean}");
        assert!((var - 1.0).abs() < 0.03, "var={var}");
    }

    #[test]
    fn lognormal_moments() {
        // E[X] = exp(μ + σ²/2) for X ~ LogNormal(μ, σ).
        let d = LogNormal::new(-2.3, 0.4).unwrap();
        let mut rng = StdRng::seed_from_u64(6);
        let n = 100_000;
        let mean = (0..n).map(|_| d.sample(&mut rng)).sum::<f64>() / n as f64;
        let expected = (-2.3f64 + 0.4f64 * 0.4 / 2.0).exp();
        assert!(
            (mean / expected - 1.0).abs() < 0.02,
            "mean={mean} expected={expected}"
        );
        assert!(LogNormal::new(0.0, -1.0).is_err());
        assert!(LogNormal::new(f64::NAN, 1.0).is_err());
    }

    #[test]
    fn poisson_moments_small_and_large_lambda() {
        // Mean and variance both equal λ; exercise both sampler branches.
        for &lambda in &[0.3, 2.5, 9.9, 10.1, 47.0, 300.0] {
            let d = Poisson::new(lambda).unwrap();
            let mut rng = StdRng::seed_from_u64(7);
            let n = 60_000;
            let xs: Vec<f64> = (0..n).map(|_| d.sample(&mut rng)).collect();
            let mean = xs.iter().sum::<f64>() / n as f64;
            let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
            let tol = 0.05 * lambda.max(1.0);
            assert!((mean - lambda).abs() < tol, "λ={lambda} mean={mean}");
            assert!((var - lambda).abs() < 3.0 * tol, "λ={lambda} var={var}");
            assert!(xs.iter().all(|&x| x >= 0.0 && x.fract() == 0.0));
        }
        assert!(Poisson::new(0.0).is_err());
        assert!(Poisson::new(-1.0).is_err());
    }

    #[test]
    fn ln_gamma_matches_factorials() {
        let mut fact = 1.0f64;
        for k in 1u32..=20 {
            fact *= f64::from(k);
            let err = (ln_gamma(f64::from(k) + 1.0) - fact.ln()).abs();
            assert!(err < 1e-10, "k={k} err={err}");
        }
        // Γ(0.5) = √π.
        assert!((ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-10);
    }
}
