//! Deterministic fault injection — seeded chaos for the model substrate.
//!
//! In production, detectors time out, workers die mid-cell, and cache
//! shards get poisoned by partial writes. The paper's error bounds are
//! only trustworthy if the system stays *sound* under such failures, so
//! the workspace injects them on purpose — but, like every other
//! stochastic component here, deterministically: a [`FaultPlan`] is a
//! pure function from a 64-bit call key to a fault decision, derived from
//! a seeded xoshiro256\*\* stream ([`crate::rng::StdRng`]). Two runs with
//! the same plan observe byte-identical fault schedules regardless of
//! thread count or interleaving, which is what makes chaos runs
//! replayable bit-for-bit and lets the determinism suite compare 1-, 2-,
//! and 8-worker profiles under injected failures.
//!
//! The plan schedules four failure modes:
//!
//! * **Timeout** — the call fails on every attempt; retries cannot save
//!   it (a hung detector process).
//! * **Transient** — the call fails for a deterministic number of
//!   attempts, then succeeds (a briefly overloaded worker). Retry with
//!   backoff clears it.
//! * **Slow** — the call succeeds but costs deterministic extra
//!   simulated latency (a degraded accelerator).
//! * **CachePoison** — the call succeeds but its cache shard is poisoned:
//!   the output must never be stored, so every future request re-runs the
//!   model (an evicting / corrupted shard).
//!
//! Replay recipe: set `SMOKESCREEN_FAULT_SEED` and
//! `SMOKESCREEN_FAULT_RATE` and build the plan with
//! [`FaultPlan::from_env`]; any failure observed in a chaos run can then
//! be replayed exactly.

use crate::rng::StdRng;

/// Environment variable carrying the fault-plan seed (decimal `u64`).
pub const FAULT_SEED_ENV: &str = "SMOKESCREEN_FAULT_SEED";

/// Environment variable carrying the total fault rate in `[0, 1]`.
pub const FAULT_RATE_ENV: &str = "SMOKESCREEN_FAULT_RATE";

/// One scheduled fault for a model call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Fails on every attempt; only a circuit breaker stops the bleeding.
    Timeout,
    /// Fails until the given 1-based attempt succeeds (attempt indices
    /// `0..clears_after` fail, attempt `clears_after` succeeds).
    Transient {
        /// Number of failed attempts before the call clears.
        clears_after: u32,
    },
    /// Succeeds, but the response costs this much extra simulated
    /// latency in milliseconds.
    Slow {
        /// Extra simulated latency, ms.
        extra_ms: u32,
    },
    /// Succeeds, but the result's cache shard is poisoned: the output
    /// must not be cached, so every request for this key re-runs the
    /// model.
    CachePoison,
}

/// A seeded, replayable fault schedule.
///
/// The plan is plain data (`Copy`): decisions are *pure functions* of
/// `(plan, call key)`, never of shared mutable state, so any thread can
/// evaluate them in any order and observe the identical schedule. The
/// per-key decision stream is xoshiro256\*\* seeded from a SplitMix-style
/// avalanche of the plan seed and the key.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    /// Probability a call hangs (fails every attempt).
    pub timeout_rate: f64,
    /// Probability a call fails transiently (cleared by retries).
    pub transient_rate: f64,
    /// Probability a call is slow (succeeds with extra latency).
    pub slow_rate: f64,
    /// Probability a call's cache shard is poisoned (uncacheable).
    pub poison_rate: f64,
}

impl FaultPlan {
    /// A plan splitting `rate` over the four failure modes with the
    /// default chaos mix: 40% transient, 25% timeout, 20% slow, 15%
    /// cache poisoning. `rate` is clamped to `[0, 1]`.
    pub fn new(seed: u64, rate: f64) -> Self {
        let rate = rate.clamp(0.0, 1.0);
        FaultPlan {
            seed,
            timeout_rate: 0.25 * rate,
            transient_rate: 0.40 * rate,
            slow_rate: 0.20 * rate,
            poison_rate: 0.15 * rate,
        }
    }

    /// A plan with explicit per-mode rates (each clamped to `[0, 1]`;
    /// their sum is treated as the total fault probability and should not
    /// exceed 1).
    pub fn with_rates(
        seed: u64,
        timeout_rate: f64,
        transient_rate: f64,
        slow_rate: f64,
        poison_rate: f64,
    ) -> Self {
        FaultPlan {
            seed,
            timeout_rate: timeout_rate.clamp(0.0, 1.0),
            transient_rate: transient_rate.clamp(0.0, 1.0),
            slow_rate: slow_rate.clamp(0.0, 1.0),
            poison_rate: poison_rate.clamp(0.0, 1.0),
        }
    }

    /// Builds a plan from `SMOKESCREEN_FAULT_SEED` /
    /// `SMOKESCREEN_FAULT_RATE`. Returns `None` when the rate is unset,
    /// unparsable, or zero — the faults-disabled configuration.
    pub fn from_env() -> Option<Self> {
        let rate: f64 = std::env::var(FAULT_RATE_ENV).ok()?.parse().ok()?;
        if !(rate > 0.0) {
            return None;
        }
        let seed: u64 = std::env::var(FAULT_SEED_ENV)
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(0);
        Some(FaultPlan::new(seed, rate))
    }

    /// The plan seed (for replay reporting).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Total probability that a call faults at all.
    pub fn total_rate(&self) -> f64 {
        self.timeout_rate + self.transient_rate + self.slow_rate + self.poison_rate
    }

    /// The fault scheduled for a call key, or `None` for a clean call.
    ///
    /// Pure in `(self, key)`: the same plan and key always return the
    /// same decision, on any thread, in any order.
    pub fn fault_for(&self, key: u64) -> Option<FaultKind> {
        if self.total_rate() <= 0.0 {
            return None;
        }
        let mut rng = StdRng::seed_from_u64(mix(self.seed, key));
        let u = rng.gen_f64();
        let mut edge = self.timeout_rate;
        if u < edge {
            return Some(FaultKind::Timeout);
        }
        edge += self.transient_rate;
        if u < edge {
            // 1–3 failed attempts before clearing: within the default
            // retry budget sometimes, beyond it sometimes, so both the
            // retry-success and retry-exhausted paths get exercised.
            return Some(FaultKind::Transient {
                clears_after: rng.gen_range(1u32..=3),
            });
        }
        edge += self.slow_rate;
        if u < edge {
            return Some(FaultKind::Slow {
                extra_ms: rng.gen_range(5u32..=250),
            });
        }
        edge += self.poison_rate;
        if u < edge {
            return Some(FaultKind::CachePoison);
        }
        None
    }
}

/// Avalanches `(seed, key)` into one well-mixed 64-bit stream seed
/// (SplitMix64 finalizer over both words).
fn mix(seed: u64, key: u64) -> u64 {
    let mut x = seed ^ key.rotate_left(32) ^ 0x9E37_79B9_7F4A_7C15;
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_pure_and_seed_sensitive() {
        let plan = FaultPlan::new(7, 0.3);
        let other = FaultPlan::new(8, 0.3);
        let a: Vec<Option<FaultKind>> = (0..4_000).map(|k| plan.fault_for(k)).collect();
        let b: Vec<Option<FaultKind>> = (0..4_000).map(|k| plan.fault_for(k)).collect();
        assert_eq!(a, b, "same plan must replay the same schedule");
        let c: Vec<Option<FaultKind>> = (0..4_000).map(|k| other.fault_for(k)).collect();
        assert_ne!(a, c, "different seeds must schedule differently");
    }

    #[test]
    fn decisions_are_order_and_thread_independent() {
        let plan = FaultPlan::new(3, 0.25);
        let forward: Vec<Option<FaultKind>> = (0..1_000).map(|k| plan.fault_for(k)).collect();
        let mut backward: Vec<Option<FaultKind>> =
            (0..1_000).rev().map(|k| plan.fault_for(k)).collect();
        backward.reverse();
        assert_eq!(forward, backward);
        let threaded: Vec<Option<FaultKind>> = crate::pool::Pool::with_threads(8)
            .parallel_map(&(0..1_000u64).collect::<Vec<_>>(), |_, &k| plan.fault_for(k));
        assert_eq!(forward, threaded);
    }

    #[test]
    fn fault_frequency_tracks_rate() {
        for &rate in &[0.0, 0.05, 0.2, 0.5] {
            let plan = FaultPlan::new(11, rate);
            let n = 20_000u64;
            let faults = (0..n).filter(|&k| plan.fault_for(k).is_some()).count();
            let observed = faults as f64 / n as f64;
            assert!(
                (observed - rate).abs() < 0.02,
                "rate={rate} observed={observed}"
            );
        }
    }

    #[test]
    fn all_fault_kinds_appear_at_moderate_rates() {
        let plan = FaultPlan::new(5, 0.4);
        let (mut timeout, mut transient, mut slow, mut poison) = (0, 0, 0, 0);
        for k in 0..10_000 {
            match plan.fault_for(k) {
                Some(FaultKind::Timeout) => timeout += 1,
                Some(FaultKind::Transient { clears_after }) => {
                    assert!((1..=3).contains(&clears_after));
                    transient += 1;
                }
                Some(FaultKind::Slow { extra_ms }) => {
                    assert!((5..=250).contains(&extra_ms));
                    slow += 1;
                }
                Some(FaultKind::CachePoison) => poison += 1,
                None => {}
            }
        }
        assert!(timeout > 0 && transient > 0 && slow > 0 && poison > 0);
        assert!(transient > timeout, "default mix is transient-heavy");
    }

    #[test]
    fn zero_rate_plan_is_silent() {
        let plan = FaultPlan::new(1, 0.0);
        assert!((0..5_000).all(|k| plan.fault_for(k).is_none()));
        assert_eq!(plan.total_rate(), 0.0);
    }

    #[test]
    fn env_round_trip() {
        // from_env is documented to return None when the rate variable is
        // missing; exercised here without mutating process env (other
        // tests run concurrently), by checking the parse contract alone.
        assert!(FaultPlan::new(0, 2.0).total_rate() <= 1.0 + 1e-12);
        assert_eq!(FaultPlan::new(9, 0.3), FaultPlan::new(9, 0.3));
    }
}
