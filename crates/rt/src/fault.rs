//! Deterministic fault injection — seeded chaos for the model substrate.
//!
//! In production, detectors time out, workers die mid-cell, and cache
//! shards get poisoned by partial writes. The paper's error bounds are
//! only trustworthy if the system stays *sound* under such failures, so
//! the workspace injects them on purpose — but, like every other
//! stochastic component here, deterministically: a [`FaultPlan`] is a
//! pure function from a 64-bit call key to a fault decision, derived from
//! a seeded xoshiro256\*\* stream ([`crate::rng::StdRng`]). Two runs with
//! the same plan observe byte-identical fault schedules regardless of
//! thread count or interleaving, which is what makes chaos runs
//! replayable bit-for-bit and lets the determinism suite compare 1-, 2-,
//! and 8-worker profiles under injected failures.
//!
//! The plan schedules four failure modes:
//!
//! * **Timeout** — the call fails on every attempt; retries cannot save
//!   it (a hung detector process).
//! * **Transient** — the call fails for a deterministic number of
//!   attempts, then succeeds (a briefly overloaded worker). Retry with
//!   backoff clears it.
//! * **Slow** — the call succeeds but costs deterministic extra
//!   simulated latency (a degraded accelerator).
//! * **CachePoison** — the call succeeds but its cache shard is poisoned:
//!   the output must never be stored, so every future request re-runs the
//!   model (an evicting / corrupted shard).
//!
//! Replay recipe: set `SMOKESCREEN_FAULT_SEED` and
//! `SMOKESCREEN_FAULT_RATE` and build the plan with
//! [`FaultPlan::from_env`]; any failure observed in a chaos run can then
//! be replayed exactly. Malformed values in any of these variables are a
//! *loud* startup error (a panic naming the variable and the offending
//! string) — a typo in a chaos knob must never silently run the
//! faults-disabled configuration.
//!
//! Beyond per-call faults, [`CrashPlan`] schedules whole-*process* deaths
//! for the checkpoint/resume suite: a pure function of `(seed, cell
//! index)` decides whether generation dies right after durably journaling
//! a cell ([`CrashKind::AfterAppend`]) or mid-append, leaving a torn
//! record ([`CrashKind::TornAppend`]). Because the decision is pure,
//! crash→resume→compare is replayable bit-for-bit, composing with any
//! [`FaultPlan`].
//!
//! The serving stack gets its own two plan families with the same
//! contract. [`DiskFaultPlan`] schedules storage-level failures against
//! the profile store — short writes, torn syncs, transient read bit-flips
//! and outright `EIO` — keyed on a per-operation id, with *separate*
//! write and read decision streams so an append and the read-back of the
//! same record never share a fate. [`NetFaultPlan`] schedules wire-level
//! failures against the daemon — dropped requests, dropped or truncated
//! responses, simulated delay and connection resets — keyed on the
//! client-stamped request id (`rid`), so a retried request (new rid) rolls
//! a fresh decision. Both arm from `SMOKESCREEN_DISKFAULT_SEED` /
//! `SMOKESCREEN_DISKFAULT_RATE` and `SMOKESCREEN_NETFAULT_SEED` /
//! `SMOKESCREEN_NETFAULT_RATE` under the same strict-parse-or-panic
//! contract as the generation knobs.

use crate::rng::StdRng;

/// Environment variable carrying the fault-plan seed (decimal `u64`).
pub const FAULT_SEED_ENV: &str = "SMOKESCREEN_FAULT_SEED";

/// Environment variable carrying the total fault rate in `[0, 1]`.
pub const FAULT_RATE_ENV: &str = "SMOKESCREEN_FAULT_RATE";

/// Environment variable carrying the crash-plan seed (decimal `u64`).
pub const CRASH_SEED_ENV: &str = "SMOKESCREEN_CRASH_SEED";

/// Environment variable carrying the per-cell crash rate in `[0, 1]`.
pub const CRASH_RATE_ENV: &str = "SMOKESCREEN_CRASH_RATE";

/// Environment variable carrying the disk-fault-plan seed (decimal `u64`).
pub const DISKFAULT_SEED_ENV: &str = "SMOKESCREEN_DISKFAULT_SEED";

/// Environment variable carrying the per-operation disk-fault rate in `[0, 1]`.
pub const DISKFAULT_RATE_ENV: &str = "SMOKESCREEN_DISKFAULT_RATE";

/// Environment variable carrying the net-fault-plan seed (decimal `u64`).
pub const NETFAULT_SEED_ENV: &str = "SMOKESCREEN_NETFAULT_SEED";

/// Environment variable carrying the per-request net-fault rate in `[0, 1]`.
pub const NETFAULT_RATE_ENV: &str = "SMOKESCREEN_NETFAULT_RATE";

/// One scheduled fault for a model call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Fails on every attempt; only a circuit breaker stops the bleeding.
    Timeout,
    /// Fails until the given 1-based attempt succeeds (attempt indices
    /// `0..clears_after` fail, attempt `clears_after` succeeds).
    Transient {
        /// Number of failed attempts before the call clears.
        clears_after: u32,
    },
    /// Succeeds, but the response costs this much extra simulated
    /// latency in milliseconds.
    Slow {
        /// Extra simulated latency, ms.
        extra_ms: u32,
    },
    /// Succeeds, but the result's cache shard is poisoned: the output
    /// must not be cached, so every request for this key re-runs the
    /// model.
    CachePoison,
}

/// A seeded, replayable fault schedule.
///
/// The plan is plain data (`Copy`): decisions are *pure functions* of
/// `(plan, call key)`, never of shared mutable state, so any thread can
/// evaluate them in any order and observe the identical schedule. The
/// per-key decision stream is xoshiro256\*\* seeded from a SplitMix-style
/// avalanche of the plan seed and the key.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    /// Probability a call hangs (fails every attempt).
    pub timeout_rate: f64,
    /// Probability a call fails transiently (cleared by retries).
    pub transient_rate: f64,
    /// Probability a call is slow (succeeds with extra latency).
    pub slow_rate: f64,
    /// Probability a call's cache shard is poisoned (uncacheable).
    pub poison_rate: f64,
}

impl FaultPlan {
    /// A plan splitting `rate` over the four failure modes with the
    /// default chaos mix: 40% transient, 25% timeout, 20% slow, 15%
    /// cache poisoning. `rate` is clamped to `[0, 1]`.
    pub fn new(seed: u64, rate: f64) -> Self {
        let rate = rate.clamp(0.0, 1.0);
        FaultPlan {
            seed,
            timeout_rate: 0.25 * rate,
            transient_rate: 0.40 * rate,
            slow_rate: 0.20 * rate,
            poison_rate: 0.15 * rate,
        }
    }

    /// A plan with explicit per-mode rates (each clamped to `[0, 1]`;
    /// their sum is treated as the total fault probability and should not
    /// exceed 1).
    pub fn with_rates(
        seed: u64,
        timeout_rate: f64,
        transient_rate: f64,
        slow_rate: f64,
        poison_rate: f64,
    ) -> Self {
        FaultPlan {
            seed,
            timeout_rate: timeout_rate.clamp(0.0, 1.0),
            transient_rate: transient_rate.clamp(0.0, 1.0),
            slow_rate: slow_rate.clamp(0.0, 1.0),
            poison_rate: poison_rate.clamp(0.0, 1.0),
        }
    }

    /// Builds a plan from `SMOKESCREEN_FAULT_SEED` /
    /// `SMOKESCREEN_FAULT_RATE`. Returns `None` when the rate is unset or
    /// zero — the faults-disabled configuration. A malformed seed or rate
    /// is a loud startup error (panic naming the variable and the raw
    /// string): a typo must never silently disable chaos.
    pub fn from_env() -> Option<Self> {
        match Self::parse_env(
            std::env::var(FAULT_SEED_ENV).ok().as_deref(),
            std::env::var(FAULT_RATE_ENV).ok().as_deref(),
        ) {
            Ok(plan) => plan,
            Err(msg) => panic!("{msg}"),
        }
    }

    /// Parse layer behind [`FaultPlan::from_env`], exposed for tests.
    /// `Err` carries a message naming the offending variable and value.
    pub fn parse_env(seed: Option<&str>, rate: Option<&str>) -> Result<Option<Self>, String> {
        let seed = parse_seed(FAULT_SEED_ENV, seed)?;
        match parse_rate(FAULT_RATE_ENV, rate)? {
            Some(rate) if rate > 0.0 => Ok(Some(FaultPlan::new(seed, rate))),
            _ => Ok(None),
        }
    }

    /// The plan seed (for replay reporting).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Total probability that a call faults at all.
    pub fn total_rate(&self) -> f64 {
        self.timeout_rate + self.transient_rate + self.slow_rate + self.poison_rate
    }

    /// The fault scheduled for a call key, or `None` for a clean call.
    ///
    /// Pure in `(self, key)`: the same plan and key always return the
    /// same decision, on any thread, in any order.
    pub fn fault_for(&self, key: u64) -> Option<FaultKind> {
        if self.total_rate() <= 0.0 {
            return None;
        }
        let mut rng = StdRng::seed_from_u64(mix(self.seed, key));
        let u = rng.gen_f64();
        let mut edge = self.timeout_rate;
        if u < edge {
            return Some(FaultKind::Timeout);
        }
        edge += self.transient_rate;
        if u < edge {
            // 1–3 failed attempts before clearing: within the default
            // retry budget sometimes, beyond it sometimes, so both the
            // retry-success and retry-exhausted paths get exercised.
            return Some(FaultKind::Transient {
                clears_after: rng.gen_range(1u32..=3),
            });
        }
        edge += self.slow_rate;
        if u < edge {
            return Some(FaultKind::Slow {
                extra_ms: rng.gen_range(5u32..=250),
            });
        }
        edge += self.poison_rate;
        if u < edge {
            return Some(FaultKind::CachePoison);
        }
        None
    }
}

/// How a scheduled process death interacts with the cell journal.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CrashKind {
    /// The process dies immediately *after* the cell's journal record is
    /// durably appended and synced: resume must splice the cell back in
    /// without recomputing it.
    AfterAppend,
    /// The process dies *mid-append*, leaving a torn record on disk (the
    /// frame plus `keep_frac` of the payload): resume must quarantine the
    /// tail and recompute the cell.
    TornAppend {
        /// Fraction of the record payload that reached disk, in `[0, 1)`.
        keep_frac: f64,
    },
}

/// A seeded, replayable schedule of process deaths during generation.
///
/// Like [`FaultPlan`], decisions are pure functions of `(plan, cell
/// index)` — same plan, same cells, same crashes, at any thread count.
/// The decision stream is keyed with a different avalanche constant than
/// the fault stream, so crash and fault schedules built from the same
/// seed are statistically independent.
///
/// A crash plan only makes *progress* when paired with a checkpoint
/// directory: the crash fires at journal-commit time, so without a
/// journal an identical rerun dies at the same cell forever. That is by
/// design — the plan simulates death, the journal supplies durability,
/// and the tests assert the pair converges.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CrashPlan {
    seed: u64,
    rate: f64,
}

/// Domain-separation constant keeping crash decisions independent of
/// fault decisions derived from the same seed.
const CRASH_STREAM_SALT: u64 = 0x5C1A_11ED_C4A5_D00D;

impl CrashPlan {
    /// A plan killing generation at each cell's journal commit with
    /// probability `rate` (clamped to `[0, 1]`).
    pub fn new(seed: u64, rate: f64) -> Self {
        CrashPlan {
            seed,
            rate: rate.clamp(0.0, 1.0),
        }
    }

    /// The plan seed (for replay reporting).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Per-cell crash probability.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// The death scheduled at `cell`'s journal commit, or `None` if the
    /// commit completes. Pure in `(self, cell)`. Roughly half the
    /// scheduled deaths are clean ([`CrashKind::AfterAppend`]) and half
    /// tear the record ([`CrashKind::TornAppend`]).
    pub fn crash_at(&self, cell: u64) -> Option<CrashKind> {
        if self.rate <= 0.0 {
            return None;
        }
        let mut rng = StdRng::seed_from_u64(mix(self.seed ^ CRASH_STREAM_SALT, cell));
        if rng.gen_f64() >= self.rate {
            return None;
        }
        if rng.gen_f64() < 0.5 {
            Some(CrashKind::AfterAppend)
        } else {
            Some(CrashKind::TornAppend {
                // Strictly below 1 so the record is always actually torn.
                keep_frac: rng.gen_f64() * 0.95,
            })
        }
    }

    /// Builds a plan from `SMOKESCREEN_CRASH_SEED` /
    /// `SMOKESCREEN_CRASH_RATE`. Returns `None` when the rate is unset or
    /// zero; malformed values are a loud startup error, matching
    /// [`FaultPlan::from_env`].
    pub fn from_env() -> Option<Self> {
        match Self::parse_env(
            std::env::var(CRASH_SEED_ENV).ok().as_deref(),
            std::env::var(CRASH_RATE_ENV).ok().as_deref(),
        ) {
            Ok(plan) => plan,
            Err(msg) => panic!("{msg}"),
        }
    }

    /// Parse layer behind [`CrashPlan::from_env`], exposed for tests.
    pub fn parse_env(seed: Option<&str>, rate: Option<&str>) -> Result<Option<Self>, String> {
        let seed = parse_seed(CRASH_SEED_ENV, seed)?;
        match parse_rate(CRASH_RATE_ENV, rate)? {
            Some(rate) if rate > 0.0 => Ok(Some(CrashPlan::new(seed, rate))),
            _ => Ok(None),
        }
    }
}

/// One scheduled storage-level failure in the profile store's I/O path.
///
/// Disk faults model the path between the store and the platter, not rot
/// on the platter itself: a short write or torn sync leaves an *unacked*
/// torn tail (truncate-repaired before the next append), a read bit-flip
/// corrupts only the in-memory read buffer (the on-disk bytes stay good,
/// so a later attempt heals), and `EIO` fails before any byte moves.
/// That is what keeps "no acked write is ever lost" and "every injected
/// corruption is repairable" jointly satisfiable under any plan.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DiskFaultKind {
    /// The append persists only `keep_frac` of the record frame before
    /// failing — a torn tail past the last durable offset.
    ShortWrite {
        /// Fraction of the frame that reached disk, in `[0, 1)`.
        keep_frac: f64,
    },
    /// The full frame is written but the sync fails: the bytes are not
    /// durable, so the store must treat the whole frame as a torn tail.
    TornSync,
    /// The read buffer comes back with a flipped bit for this many
    /// attempts, then reads clean — the on-disk record was never damaged.
    ReadBitFlip {
        /// Number of corrupted read attempts before the path heals.
        heals_after: u32,
    },
    /// The operation fails outright with an I/O error before any byte
    /// is transferred.
    Eio,
}

/// A seeded, replayable schedule of storage faults for the profile store.
///
/// Decisions are pure functions of `(plan, operation key)` like every
/// other plan here, with one refinement: writes and reads draw from
/// *separate* decision streams (distinct domain salts), so the append of
/// a record and later reads of the same record fault independently. The
/// store keys write operations on `(key, seq, attempt)` — a retried
/// append rolls a fresh decision — and read operations on `(key, seq)`,
/// so a scheduled bit-flip hits every reader of that record until the
/// per-record attempt counter passes `heals_after`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiskFaultPlan {
    seed: u64,
    rate: f64,
}

/// Domain-separation constant for the disk *write* decision stream.
const DISK_WRITE_STREAM_SALT: u64 = 0xD15C_F417_B10C_4EA1;

/// Domain-separation constant for the disk *read* decision stream.
const DISK_READ_STREAM_SALT: u64 = 0xD15C_0F11_D47A_0B0E;

impl DiskFaultPlan {
    /// A plan faulting each disk operation with probability `rate`
    /// (clamped to `[0, 1]`). Scheduled write faults split 40% short
    /// write / 30% torn sync / 30% `EIO`; scheduled read faults are
    /// always transient bit-flips.
    pub fn new(seed: u64, rate: f64) -> Self {
        DiskFaultPlan {
            seed,
            rate: rate.clamp(0.0, 1.0),
        }
    }

    /// The plan seed (for replay reporting).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Per-operation fault probability.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// The fault scheduled for write operation `op`, or `None` for a
    /// clean append. Pure in `(self, op)`; never returns
    /// [`DiskFaultKind::ReadBitFlip`].
    pub fn write_fault(&self, op: u64) -> Option<DiskFaultKind> {
        if self.rate <= 0.0 {
            return None;
        }
        let mut rng = StdRng::seed_from_u64(mix(self.seed ^ DISK_WRITE_STREAM_SALT, op));
        if rng.gen_f64() >= self.rate {
            return None;
        }
        let u = rng.gen_f64();
        if u < 0.40 {
            Some(DiskFaultKind::ShortWrite {
                // Strictly below 1 so the frame is always actually torn.
                keep_frac: rng.gen_f64() * 0.95,
            })
        } else if u < 0.70 {
            Some(DiskFaultKind::TornSync)
        } else {
            Some(DiskFaultKind::Eio)
        }
    }

    /// The fault scheduled for read operation `op`, or `None` for a
    /// clean read. Pure in `(self, op)`; always a
    /// [`DiskFaultKind::ReadBitFlip`] when scheduled.
    pub fn read_fault(&self, op: u64) -> Option<DiskFaultKind> {
        if self.rate <= 0.0 {
            return None;
        }
        let mut rng = StdRng::seed_from_u64(mix(self.seed ^ DISK_READ_STREAM_SALT, op));
        if rng.gen_f64() >= self.rate {
            return None;
        }
        Some(DiskFaultKind::ReadBitFlip {
            heals_after: rng.gen_range(1u32..=2),
        })
    }

    /// Builds a plan from `SMOKESCREEN_DISKFAULT_SEED` /
    /// `SMOKESCREEN_DISKFAULT_RATE`. Returns `None` when the rate is
    /// unset or zero; malformed values are a loud startup error, matching
    /// [`FaultPlan::from_env`].
    pub fn from_env() -> Option<Self> {
        match Self::parse_env(
            std::env::var(DISKFAULT_SEED_ENV).ok().as_deref(),
            std::env::var(DISKFAULT_RATE_ENV).ok().as_deref(),
        ) {
            Ok(plan) => plan,
            Err(msg) => panic!("{msg}"),
        }
    }

    /// Parse layer behind [`DiskFaultPlan::from_env`], exposed for tests.
    pub fn parse_env(seed: Option<&str>, rate: Option<&str>) -> Result<Option<Self>, String> {
        let seed = parse_seed(DISKFAULT_SEED_ENV, seed)?;
        match parse_rate(DISKFAULT_RATE_ENV, rate)? {
            Some(rate) if rate > 0.0 => Ok(Some(DiskFaultPlan::new(seed, rate))),
            _ => Ok(None),
        }
    }
}

/// One scheduled wire-level failure for a served request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum NetFaultKind {
    /// The request is silently eaten before processing — the client sees
    /// a read timeout and must retry (the server never applied it).
    DropRequest,
    /// The request is processed but its response never leaves — the
    /// dangerous half of at-most-once, which idempotent retries must
    /// absorb without double-applying.
    DropResponse,
    /// The response frame is truncated to `keep_frac` of its bytes and
    /// the connection closed — the client sees a torn frame.
    PartialResponse {
        /// Fraction of the encoded frame that is sent, in `[0, 1)`.
        keep_frac: f64,
    },
    /// The response is delivered after this much simulated extra latency
    /// (accounted, not slept).
    Delay {
        /// Extra simulated latency, ms.
        extra_ms: u32,
    },
    /// The connection is reset before the request is processed.
    Reset,
}

/// A seeded, replayable schedule of wire faults for the serving daemon.
///
/// Decisions are pure functions of `(plan, rid)` where `rid` is the
/// request id the client stamps into each attempt — so a retry (fresh
/// rid) rolls a fresh decision, and replaying a load with the same
/// client seeds replays the identical fault schedule at any server
/// width. Requests without a rid (control operations like `stats` and
/// `shutdown`) are never faulted.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetFaultPlan {
    seed: u64,
    rate: f64,
}

/// Domain-separation constant for the net decision stream.
const NET_STREAM_SALT: u64 = 0x4E7F_A017_C0FF_EE00;

impl NetFaultPlan {
    /// A plan faulting each rid-stamped request with probability `rate`
    /// (clamped to `[0, 1]`). Scheduled faults split 25% dropped request
    /// / 25% dropped response / 20% partial response / 20% delay / 10%
    /// reset.
    pub fn new(seed: u64, rate: f64) -> Self {
        NetFaultPlan {
            seed,
            rate: rate.clamp(0.0, 1.0),
        }
    }

    /// The plan seed (for replay reporting).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Per-request fault probability.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// The fault scheduled for request id `rid`, or `None` for clean
    /// delivery. Pure in `(self, rid)`.
    pub fn fault_for(&self, rid: u64) -> Option<NetFaultKind> {
        if self.rate <= 0.0 {
            return None;
        }
        let mut rng = StdRng::seed_from_u64(mix(self.seed ^ NET_STREAM_SALT, rid));
        if rng.gen_f64() >= self.rate {
            return None;
        }
        let u = rng.gen_f64();
        if u < 0.25 {
            Some(NetFaultKind::DropRequest)
        } else if u < 0.50 {
            Some(NetFaultKind::DropResponse)
        } else if u < 0.70 {
            Some(NetFaultKind::PartialResponse {
                // Strictly below 1 so the frame is always actually torn.
                keep_frac: rng.gen_f64() * 0.95,
            })
        } else if u < 0.90 {
            Some(NetFaultKind::Delay {
                extra_ms: rng.gen_range(1u32..=50),
            })
        } else {
            Some(NetFaultKind::Reset)
        }
    }

    /// Builds a plan from `SMOKESCREEN_NETFAULT_SEED` /
    /// `SMOKESCREEN_NETFAULT_RATE`. Returns `None` when the rate is
    /// unset or zero; malformed values are a loud startup error, matching
    /// [`FaultPlan::from_env`].
    pub fn from_env() -> Option<Self> {
        match Self::parse_env(
            std::env::var(NETFAULT_SEED_ENV).ok().as_deref(),
            std::env::var(NETFAULT_RATE_ENV).ok().as_deref(),
        ) {
            Ok(plan) => plan,
            Err(msg) => panic!("{msg}"),
        }
    }

    /// Parse layer behind [`NetFaultPlan::from_env`], exposed for tests.
    pub fn parse_env(seed: Option<&str>, rate: Option<&str>) -> Result<Option<Self>, String> {
        let seed = parse_seed(NETFAULT_SEED_ENV, seed)?;
        match parse_rate(NETFAULT_RATE_ENV, rate)? {
            Some(rate) if rate > 0.0 => Ok(Some(NetFaultPlan::new(seed, rate))),
            _ => Ok(None),
        }
    }
}

/// Strictly parses a seed variable: unset defaults to 0, anything set
/// must be a decimal `u64`.
fn parse_seed(var: &str, raw: Option<&str>) -> Result<u64, String> {
    match raw {
        None => Ok(0),
        Some(s) => s.trim().parse().map_err(|_| {
            format!("{var} must be a decimal u64 seed, got {s:?}")
        }),
    }
}

/// Strictly parses a rate variable: unset means disabled, anything set
/// must be a finite `f64` in `[0, 1]`.
fn parse_rate(var: &str, raw: Option<&str>) -> Result<Option<f64>, String> {
    match raw {
        None => Ok(None),
        Some(s) => {
            let rate: f64 = s
                .trim()
                .parse()
                .map_err(|_| format!("{var} must be a rate in [0, 1], got {s:?}"))?;
            if !rate.is_finite() || !(0.0..=1.0).contains(&rate) {
                return Err(format!("{var} must be a rate in [0, 1], got {s:?}"));
            }
            Ok(Some(rate))
        }
    }
}

/// Avalanches `(seed, key)` into one well-mixed 64-bit stream seed
/// (SplitMix64 finalizer over both words).
fn mix(seed: u64, key: u64) -> u64 {
    let mut x = seed ^ key.rotate_left(32) ^ 0x9E37_79B9_7F4A_7C15;
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_pure_and_seed_sensitive() {
        let plan = FaultPlan::new(7, 0.3);
        let other = FaultPlan::new(8, 0.3);
        let a: Vec<Option<FaultKind>> = (0..4_000).map(|k| plan.fault_for(k)).collect();
        let b: Vec<Option<FaultKind>> = (0..4_000).map(|k| plan.fault_for(k)).collect();
        assert_eq!(a, b, "same plan must replay the same schedule");
        let c: Vec<Option<FaultKind>> = (0..4_000).map(|k| other.fault_for(k)).collect();
        assert_ne!(a, c, "different seeds must schedule differently");
    }

    #[test]
    fn decisions_are_order_and_thread_independent() {
        let plan = FaultPlan::new(3, 0.25);
        let forward: Vec<Option<FaultKind>> = (0..1_000).map(|k| plan.fault_for(k)).collect();
        let mut backward: Vec<Option<FaultKind>> =
            (0..1_000).rev().map(|k| plan.fault_for(k)).collect();
        backward.reverse();
        assert_eq!(forward, backward);
        let threaded: Vec<Option<FaultKind>> = crate::pool::Pool::with_threads(8)
            .parallel_map(&(0..1_000u64).collect::<Vec<_>>(), |_, &k| plan.fault_for(k));
        assert_eq!(forward, threaded);
    }

    #[test]
    fn fault_frequency_tracks_rate() {
        for &rate in &[0.0, 0.05, 0.2, 0.5] {
            let plan = FaultPlan::new(11, rate);
            let n = 20_000u64;
            let faults = (0..n).filter(|&k| plan.fault_for(k).is_some()).count();
            let observed = faults as f64 / n as f64;
            assert!(
                (observed - rate).abs() < 0.02,
                "rate={rate} observed={observed}"
            );
        }
    }

    #[test]
    fn all_fault_kinds_appear_at_moderate_rates() {
        let plan = FaultPlan::new(5, 0.4);
        let (mut timeout, mut transient, mut slow, mut poison) = (0, 0, 0, 0);
        for k in 0..10_000 {
            match plan.fault_for(k) {
                Some(FaultKind::Timeout) => timeout += 1,
                Some(FaultKind::Transient { clears_after }) => {
                    assert!((1..=3).contains(&clears_after));
                    transient += 1;
                }
                Some(FaultKind::Slow { extra_ms }) => {
                    assert!((5..=250).contains(&extra_ms));
                    slow += 1;
                }
                Some(FaultKind::CachePoison) => poison += 1,
                None => {}
            }
        }
        assert!(timeout > 0 && transient > 0 && slow > 0 && poison > 0);
        assert!(transient > timeout, "default mix is transient-heavy");
    }

    #[test]
    fn zero_rate_plan_is_silent() {
        let plan = FaultPlan::new(1, 0.0);
        assert!((0..5_000).all(|k| plan.fault_for(k).is_none()));
        assert_eq!(plan.total_rate(), 0.0);
    }

    #[test]
    fn env_round_trip() {
        // from_env is documented to return None when the rate variable is
        // missing; exercised here without mutating process env (other
        // tests run concurrently), by checking the parse contract alone.
        assert!(FaultPlan::new(0, 2.0).total_rate() <= 1.0 + 1e-12);
        assert_eq!(FaultPlan::new(9, 0.3), FaultPlan::new(9, 0.3));
    }

    #[test]
    fn env_parsing_is_strict_and_loud() {
        // Valid configurations.
        assert_eq!(FaultPlan::parse_env(None, None), Ok(None));
        assert_eq!(FaultPlan::parse_env(Some("7"), None), Ok(None));
        assert_eq!(FaultPlan::parse_env(None, Some("0")), Ok(None));
        assert_eq!(
            FaultPlan::parse_env(Some("7"), Some("0.05")),
            Ok(Some(FaultPlan::new(7, 0.05)))
        );
        assert_eq!(
            CrashPlan::parse_env(Some("11"), Some("0.5")),
            Ok(Some(CrashPlan::new(11, 0.5)))
        );
        assert_eq!(CrashPlan::parse_env(None, Some("0.0")), Ok(None));

        // Malformed values surface the variable name and raw string.
        for (seed, rate, bad) in [
            (Some("banana"), Some("0.1"), "banana"),
            (Some("-3"), Some("0.1"), "-3"),
            (None, Some("lots"), "lots"),
            (None, Some("1.5"), "1.5"),
            (None, Some("-0.1"), "-0.1"),
            (None, Some("NaN"), "NaN"),
            (None, Some("inf"), "inf"),
        ] {
            let err = FaultPlan::parse_env(seed, rate).unwrap_err();
            assert!(err.contains("SMOKESCREEN_FAULT_"), "{err}");
            assert!(err.contains(bad), "{err} should quote {bad:?}");
            let err = CrashPlan::parse_env(seed, rate).unwrap_err();
            assert!(err.contains("SMOKESCREEN_CRASH_"), "{err}");
            assert!(err.contains(bad), "{err} should quote {bad:?}");
        }
        // A malformed seed is loud even when the rate leaves the plan
        // disabled — the typo is still a configuration bug.
        assert!(FaultPlan::parse_env(Some("oops"), None).is_err());
    }

    #[test]
    fn crash_decisions_are_pure_and_seed_sensitive() {
        let plan = CrashPlan::new(4, 0.3);
        let a: Vec<Option<CrashKind>> = (0..2_000).map(|c| plan.crash_at(c)).collect();
        let b: Vec<Option<CrashKind>> = (0..2_000).map(|c| plan.crash_at(c)).collect();
        assert_eq!(a, b, "same plan must replay the same crashes");
        let other: Vec<Option<CrashKind>> =
            (0..2_000).map(|c| CrashPlan::new(5, 0.3).crash_at(c)).collect();
        assert_ne!(a, other, "different seeds must crash differently");
    }

    #[test]
    fn crash_frequency_tracks_rate_and_mixes_kinds() {
        let plan = CrashPlan::new(2, 0.25);
        let n = 20_000u64;
        let (mut clean, mut torn) = (0usize, 0usize);
        for c in 0..n {
            match plan.crash_at(c) {
                Some(CrashKind::AfterAppend) => clean += 1,
                Some(CrashKind::TornAppend { keep_frac }) => {
                    assert!((0.0..1.0).contains(&keep_frac));
                    torn += 1;
                }
                None => {}
            }
        }
        let observed = (clean + torn) as f64 / n as f64;
        assert!((observed - 0.25).abs() < 0.02, "observed={observed}");
        assert!(clean > 0 && torn > 0, "both crash kinds must appear");
    }

    #[test]
    fn crash_stream_is_independent_of_fault_stream() {
        // Same seed, same keys: the two plans must not fire on the same
        // key set (domain separation), or chaos runs would correlate
        // model faults with process deaths.
        let faults = FaultPlan::new(42, 0.2);
        let crashes = CrashPlan::new(42, 0.2);
        let both = (0..20_000u64)
            .filter(|&k| faults.fault_for(k).is_some() && crashes.crash_at(k).is_some())
            .count();
        // Independent 20% streams co-fire on ~4% of keys; identical
        // streams would co-fire on 20%.
        assert!((both as f64 / 20_000.0) < 0.08, "co-fire={both}");
    }

    #[test]
    fn zero_rate_crash_plan_is_silent() {
        let plan = CrashPlan::new(9, 0.0);
        assert!((0..5_000).all(|c| plan.crash_at(c).is_none()));
    }

    #[test]
    fn disk_decisions_are_pure_and_seed_sensitive() {
        let plan = DiskFaultPlan::new(7, 0.3);
        let a: Vec<_> = (0..4_000)
            .map(|op| (plan.write_fault(op), plan.read_fault(op)))
            .collect();
        let b: Vec<_> = (0..4_000)
            .map(|op| (plan.write_fault(op), plan.read_fault(op)))
            .collect();
        assert_eq!(a, b, "same plan must replay the same schedule");
        let other = DiskFaultPlan::new(8, 0.3);
        let c: Vec<_> = (0..4_000)
            .map(|op| (other.write_fault(op), other.read_fault(op)))
            .collect();
        assert_ne!(a, c, "different seeds must schedule differently");
    }

    #[test]
    fn disk_decisions_are_order_and_thread_independent() {
        let plan = DiskFaultPlan::new(3, 0.25);
        let forward: Vec<_> = (0..1_000).map(|op| plan.write_fault(op)).collect();
        let threaded: Vec<_> = crate::pool::Pool::with_threads(8)
            .parallel_map(&(0..1_000u64).collect::<Vec<_>>(), |_, &op| {
                plan.write_fault(op)
            });
        assert_eq!(forward, threaded);
    }

    #[test]
    fn disk_fault_frequency_tracks_rate_on_both_streams() {
        for &rate in &[0.0, 0.05, 0.2] {
            let plan = DiskFaultPlan::new(11, rate);
            let n = 20_000u64;
            let writes = (0..n).filter(|&op| plan.write_fault(op).is_some()).count();
            let reads = (0..n).filter(|&op| plan.read_fault(op).is_some()).count();
            for observed in [writes as f64 / n as f64, reads as f64 / n as f64] {
                assert!(
                    (observed - rate).abs() < 0.02,
                    "rate={rate} observed={observed}"
                );
            }
        }
    }

    #[test]
    fn disk_streams_partition_kinds_and_are_independent() {
        let plan = DiskFaultPlan::new(5, 0.4);
        let (mut short, mut torn, mut eio, mut flip) = (0, 0, 0, 0);
        for op in 0..10_000 {
            match plan.write_fault(op) {
                Some(DiskFaultKind::ShortWrite { keep_frac }) => {
                    assert!((0.0..1.0).contains(&keep_frac));
                    short += 1;
                }
                Some(DiskFaultKind::TornSync) => torn += 1,
                Some(DiskFaultKind::Eio) => eio += 1,
                Some(DiskFaultKind::ReadBitFlip { .. }) => {
                    panic!("write stream must never schedule a read fault")
                }
                None => {}
            }
            match plan.read_fault(op) {
                Some(DiskFaultKind::ReadBitFlip { heals_after }) => {
                    assert!((1..=2).contains(&heals_after));
                    flip += 1;
                }
                Some(other) => panic!("read stream scheduled {other:?}"),
                None => {}
            }
        }
        assert!(short > 0 && torn > 0 && eio > 0 && flip > 0);
        // Same seed, same op keys: the write and read streams must not
        // co-fire like a single shared stream would.
        let co = (0..20_000u64)
            .filter(|&op| plan.write_fault(op).is_some() && plan.read_fault(op).is_some())
            .count();
        assert!((co as f64 / 20_000.0) < 0.25, "co-fire={co}");
    }

    #[test]
    fn net_decisions_are_pure_and_cover_every_kind() {
        let plan = NetFaultPlan::new(6, 0.4);
        let a: Vec<_> = (0..4_000).map(|rid| plan.fault_for(rid)).collect();
        let b: Vec<_> = (0..4_000).map(|rid| plan.fault_for(rid)).collect();
        assert_eq!(a, b, "same plan must replay the same schedule");
        let (mut dreq, mut dresp, mut partial, mut delay, mut reset) = (0, 0, 0, 0, 0);
        for rid in 0..10_000 {
            match plan.fault_for(rid) {
                Some(NetFaultKind::DropRequest) => dreq += 1,
                Some(NetFaultKind::DropResponse) => dresp += 1,
                Some(NetFaultKind::PartialResponse { keep_frac }) => {
                    assert!((0.0..1.0).contains(&keep_frac));
                    partial += 1;
                }
                Some(NetFaultKind::Delay { extra_ms }) => {
                    assert!((1..=50).contains(&extra_ms));
                    delay += 1;
                }
                Some(NetFaultKind::Reset) => reset += 1,
                None => {}
            }
        }
        assert!(dreq > 0 && dresp > 0 && partial > 0 && delay > 0 && reset > 0);
        assert!(reset < dreq, "resets are the rarest kind in the mix");
    }

    #[test]
    fn net_fault_frequency_tracks_rate() {
        for &rate in &[0.0, 0.05, 0.2] {
            let plan = NetFaultPlan::new(13, rate);
            let n = 20_000u64;
            let faults = (0..n).filter(|&rid| plan.fault_for(rid).is_some()).count();
            let observed = faults as f64 / n as f64;
            assert!(
                (observed - rate).abs() < 0.02,
                "rate={rate} observed={observed}"
            );
        }
    }

    #[test]
    fn serving_env_parsing_is_strict_and_loud() {
        assert_eq!(DiskFaultPlan::parse_env(None, None), Ok(None));
        assert_eq!(DiskFaultPlan::parse_env(Some("7"), Some("0")), Ok(None));
        assert_eq!(
            DiskFaultPlan::parse_env(Some("7"), Some("0.1")),
            Ok(Some(DiskFaultPlan::new(7, 0.1)))
        );
        assert_eq!(NetFaultPlan::parse_env(None, Some("0.0")), Ok(None));
        assert_eq!(
            NetFaultPlan::parse_env(Some("9"), Some("0.15")),
            Ok(Some(NetFaultPlan::new(9, 0.15)))
        );
        for (seed, rate, bad) in [
            (Some("banana"), Some("0.1"), "banana"),
            (None, Some("lots"), "lots"),
            (None, Some("1.5"), "1.5"),
            (None, Some("NaN"), "NaN"),
        ] {
            let err = DiskFaultPlan::parse_env(seed, rate).unwrap_err();
            assert!(err.contains("SMOKESCREEN_DISKFAULT_"), "{err}");
            assert!(err.contains(bad), "{err} should quote {bad:?}");
            let err = NetFaultPlan::parse_env(seed, rate).unwrap_err();
            assert!(err.contains("SMOKESCREEN_NETFAULT_"), "{err}");
            assert!(err.contains(bad), "{err} should quote {bad:?}");
        }
        assert!(DiskFaultPlan::parse_env(Some("oops"), None).is_err());
        assert!(NetFaultPlan::parse_env(Some("oops"), None).is_err());
    }
}
