//! A minimal in-tree benchmark timer replacing Criterion.
//!
//! Bench targets compile under the ordinary libtest harness
//! (`harness = true`) and run as `#[test]` functions, so `cargo test -q`
//! builds and exercises them on every commit; `cargo test -- --nocapture`
//! (or `cargo bench`) shows the timings. [`bench`] reports min/mean for
//! order-of-magnitude claims (§5.3.1's "tens of milliseconds");
//! [`bench_repeated`] keeps every sample and reports median/p95, which is
//! what the `trajectory` harness persists into `BENCH_*.json` for
//! regression gating.
//!
//! The [`alloc`] submodule installs a counting global allocator whose
//! thread-local counters are armed only inside [`alloc::measure`]; every
//! [`bench_repeated`] repetition runs under it, and the *last* repetition's
//! counts are reported as the steady-state allocation profile (warm caches,
//! warm scratch buffers) — the number the zero-alloc hot-path claims in
//! `BENCH_*.json` are gated on.

use std::time::{Duration, Instant};

pub mod alloc {
    //! Steady-state allocation counting.
    //!
    //! [`CountingAllocator`] wraps the system allocator and is installed as
    //! the workspace's `#[global_allocator]` here (the workspace is
    //! zero-dependency, so this is the only candidate). Counting is
    //! *opt-in per thread*: outside [`measure`] the hook is a single
    //! thread-local load per allocation, and nothing is ever recorded.
    //! Counters are thread-local, so a measurement covers exactly the
    //! calling thread — which is the point: the zero-alloc contract is a
    //! statement about the worker running the hot loop, not about
    //! whatever background threads do meanwhile.

    use std::alloc::{GlobalAlloc, Layout, System};
    use std::cell::Cell;

    /// Allocation counts observed by one [`measure`] call.
    #[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
    pub struct AllocStats {
        /// Heap allocations (`alloc`, `alloc_zeroed`, and growing
        /// `realloc` calls each count once).
        pub count: u64,
        /// Total bytes requested across those allocations.
        pub bytes: u64,
    }

    thread_local! {
        static ENABLED: Cell<bool> = const { Cell::new(false) };
        static COUNT: Cell<u64> = const { Cell::new(0) };
        static BYTES: Cell<u64> = const { Cell::new(0) };
    }

    /// A pass-through allocator that tallies per-thread allocation counts
    /// while a [`measure`] call has them armed.
    pub struct CountingAllocator;

    #[global_allocator]
    static GLOBAL: CountingAllocator = CountingAllocator;

    #[inline]
    fn record(bytes: usize) {
        // `try_with`: the allocator can be re-entered during TLS teardown,
        // where touching a destroyed thread-local would abort the process.
        let _ = ENABLED.try_with(|e| {
            if e.get() {
                let _ = COUNT.try_with(|c| c.set(c.get() + 1));
                let _ = BYTES.try_with(|b| b.set(b.get() + bytes as u64));
            }
        });
    }

    // SAFETY: defers entirely to `System` for memory management; the
    // counting side channel never touches the returned pointers.
    unsafe impl GlobalAlloc for CountingAllocator {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            record(layout.size());
            System.alloc(layout)
        }

        unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
            record(layout.size());
            System.alloc_zeroed(layout)
        }

        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            record(new_size);
            System.realloc(ptr, layout, new_size)
        }

        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            System.dealloc(ptr, layout)
        }
    }

    /// Runs `f` with this thread's allocation counters armed and returns
    /// what it allocated alongside its result. Nested measurements are
    /// supported: the inner call's allocations are reported by the inner
    /// call *and* folded back into the outer one's totals.
    pub fn measure<R>(f: impl FnOnce() -> R) -> (AllocStats, R) {
        let prev_enabled = ENABLED.with(|e| e.replace(true));
        let prev_count = COUNT.with(|c| c.replace(0));
        let prev_bytes = BYTES.with(|b| b.replace(0));
        let out = f();
        let stats = AllocStats {
            count: COUNT.with(|c| c.get()),
            bytes: BYTES.with(|b| b.get()),
        };
        COUNT.with(|c| c.set(prev_count + stats.count));
        BYTES.with(|b| b.set(prev_bytes + stats.bytes));
        ENABLED.with(|e| e.set(prev_enabled));
        (stats, out)
    }
}

/// One benchmark measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Measurement {
    /// Iterations timed.
    pub iters: u32,
    /// Total wall time across all iterations.
    pub total: Duration,
    /// Fastest single iteration.
    pub min: Duration,
}

impl Measurement {
    /// Mean time per iteration.
    pub fn mean(&self) -> Duration {
        self.total / self.iters.max(1)
    }
}

/// Times `f` for `iters` iterations (after one untimed warm-up), prints a
/// `name  mean  min` line, and returns the measurement. The closure's
/// return value is consumed through `std::hint::black_box` so the work
/// cannot be optimized away.
pub fn bench<R>(name: &str, iters: u32, mut f: impl FnMut() -> R) -> Measurement {
    std::hint::black_box(f());
    let mut total = Duration::ZERO;
    let mut min = Duration::MAX;
    for _ in 0..iters.max(1) {
        let start = Instant::now();
        std::hint::black_box(f());
        let elapsed = start.elapsed();
        total += elapsed;
        min = min.min(elapsed);
    }
    let m = Measurement {
        iters: iters.max(1),
        total,
        min,
    };
    println!(
        "bench {name:<48} mean {:>12} min {:>12} ({} iters)",
        fmt_duration(m.mean()),
        fmt_duration(m.min),
        m.iters
    );
    m
}

/// A benchmark measurement that keeps every per-repetition sample, so
/// order statistics (median/p95) survive into machine-readable output.
#[derive(Debug, Clone, PartialEq)]
pub struct RepeatedMeasurement {
    /// Wall time of each timed repetition, in milliseconds, in run order.
    pub samples_ms: Vec<f64>,
    /// Allocations made by the *last* timed repetition on the bench
    /// thread — the steady-state profile, after caches and scratch
    /// buffers have warmed through the warm-up and earlier repetitions.
    pub steady_allocs: alloc::AllocStats,
}

impl RepeatedMeasurement {
    /// Nearest-rank percentile (`p` in `(0, 100]`): the smallest sample
    /// such that at least `p`% of samples are ≤ it — `sorted[⌈p/100·n⌉−1]`.
    /// Never interpolates, so the result is always an observed sample.
    /// Returns 0.0 when empty.
    pub fn percentile_ms(&self, p: f64) -> f64 {
        let n = self.samples_ms.len();
        if n == 0 {
            return 0.0;
        }
        let mut sorted = self.samples_ms.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite wall times"));
        let rank = ((p / 100.0) * n as f64).ceil() as usize;
        sorted[rank.clamp(1, n) - 1]
    }

    /// Median wall time (nearest-rank 50th percentile).
    pub fn median_ms(&self) -> f64 {
        self.percentile_ms(50.0)
    }

    /// 95th-percentile wall time (nearest-rank).
    pub fn p95_ms(&self) -> f64 {
        self.percentile_ms(95.0)
    }

    /// Fastest repetition (0.0 when empty).
    pub fn min_ms(&self) -> f64 {
        if self.samples_ms.is_empty() {
            return 0.0;
        }
        self.samples_ms.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Repetitions timed.
    pub fn reps(&self) -> usize {
        self.samples_ms.len()
    }
}

/// Times `f` for `reps` repetitions (after one untimed warm-up), keeping
/// every sample. Prints a `name  median  p95  min` line and returns the
/// measurement. The repetition count is the caller's — deterministic, not
/// adaptive — so trajectory runs are comparable across commits.
pub fn bench_repeated<R>(name: &str, reps: usize, mut f: impl FnMut() -> R) -> RepeatedMeasurement {
    std::hint::black_box(f());
    let mut samples_ms = Vec::with_capacity(reps.max(1));
    let mut steady_allocs = alloc::AllocStats::default();
    for _ in 0..reps.max(1) {
        let start = Instant::now();
        let (stats, out) = alloc::measure(&mut f);
        std::hint::black_box(out);
        samples_ms.push(start.elapsed().as_secs_f64() * 1_000.0);
        steady_allocs = stats;
    }
    let m = RepeatedMeasurement {
        samples_ms,
        steady_allocs,
    };
    println!(
        "bench {name:<48} median {:>10.3} ms p95 {:>10.3} ms min {:>10.3} ms ({} reps, steady allocs {}/{} B)",
        m.median_ms(),
        m.p95_ms(),
        m.min_ms(),
        m.reps(),
        m.steady_allocs.count,
        m.steady_allocs.bytes,
    );
    m
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 10_000 {
        format!("{nanos} ns")
    } else if nanos < 10_000_000 {
        format!("{:.1} µs", nanos as f64 / 1_000.0)
    } else if nanos < 10_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", nanos as f64 / 1_000_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_measures() {
        let mut calls = 0u32;
        let m = bench("noop", 5, || {
            calls += 1;
            calls
        });
        assert_eq!(m.iters, 5);
        assert_eq!(calls, 6, "one warm-up plus five timed iterations");
        assert!(m.min <= m.mean());
    }

    #[test]
    fn bench_repeated_runs_and_measures() {
        let mut calls = 0u32;
        let m = bench_repeated("noop-repeated", 7, || {
            calls += 1;
            calls
        });
        assert_eq!(m.reps(), 7);
        assert_eq!(calls, 8, "one warm-up plus seven timed repetitions");
        assert!(m.min_ms() <= m.median_ms());
        assert!(m.median_ms() <= m.p95_ms());
    }

    #[test]
    fn percentiles_match_hand_computed_nearest_rank() {
        // Ten samples 10..=100: nearest-rank median = ⌈0.5·10⌉ = 5th
        // smallest = 50; p95 = ⌈0.95·10⌉ = 10th = 100; p90 = 9th = 90.
        let m = RepeatedMeasurement {
            samples_ms: vec![70.0, 10.0, 90.0, 30.0, 50.0, 100.0, 20.0, 40.0, 80.0, 60.0],
            steady_allocs: alloc::AllocStats::default(),
        };
        assert_eq!(m.median_ms(), 50.0);
        assert_eq!(m.p95_ms(), 100.0);
        assert_eq!(m.percentile_ms(90.0), 90.0);
        assert_eq!(m.percentile_ms(100.0), 100.0);
        assert_eq!(m.percentile_ms(1.0), 10.0);
        assert_eq!(m.min_ms(), 10.0);

        // Odd count: 5 samples, median = ⌈0.5·5⌉ = 3rd smallest.
        let m = RepeatedMeasurement {
            samples_ms: vec![5.0, 1.0, 4.0, 2.0, 3.0],
            steady_allocs: alloc::AllocStats::default(),
        };
        assert_eq!(m.median_ms(), 3.0);
        assert_eq!(m.p95_ms(), 5.0);

        // Single sample: every percentile is that sample.
        let m = RepeatedMeasurement {
            samples_ms: vec![42.0],
            steady_allocs: alloc::AllocStats::default(),
        };
        assert_eq!(m.median_ms(), 42.0);
        assert_eq!(m.p95_ms(), 42.0);

        // Empty: all zeros, no panic.
        let m = RepeatedMeasurement {
            samples_ms: vec![],
            steady_allocs: alloc::AllocStats::default(),
        };
        assert_eq!(m.median_ms(), 0.0);
        assert_eq!(m.p95_ms(), 0.0);
        assert_eq!(m.min_ms(), 0.0);
        assert_eq!(m.reps(), 0);
    }

    #[test]
    fn alloc_measure_counts_heap_traffic_on_this_thread() {
        let (stats, v) = alloc::measure(|| vec![1u8; 4096]);
        assert!(stats.count >= 1, "a Vec allocation must be counted");
        assert!(stats.bytes >= 4096, "bytes track the requested size");
        drop(v);

        // A heap-free closure measures clean zero.
        let (stats, x) = alloc::measure(|| {
            let mut acc = 0u64;
            for i in 0..100u64 {
                acc = acc.wrapping_add(i * i);
            }
            acc
        });
        assert_eq!(stats, alloc::AllocStats::default(), "no-alloc closure");
        assert_eq!(x, 328350);

        // Nested measurements fold inner counts into the outer total.
        let (outer, inner) = alloc::measure(|| alloc::measure(|| vec![0u8; 128]).0);
        assert!(inner.count >= 1);
        assert!(outer.count >= inner.count);
    }

    #[test]
    fn bench_repeated_reports_steady_state_allocs() {
        // Allocating closure: the last rep's traffic is recorded.
        let m = bench_repeated("alloc-steady", 3, || vec![0u8; 256]);
        assert!(m.steady_allocs.count >= 1);
        assert!(m.steady_allocs.bytes >= 256);

        // Steady-state-clean closure: warm-up allocates, timed reps reuse.
        let mut buf: Vec<u8> = Vec::new();
        let m = bench_repeated("alloc-warm", 3, || {
            if buf.capacity() == 0 {
                buf.reserve(512);
            }
            buf.clear();
            buf.extend(std::iter::repeat_n(7u8, 512));
            buf.len()
        });
        assert_eq!(
            m.steady_allocs,
            alloc::AllocStats::default(),
            "warm reps must be allocation-free"
        );
    }

    #[test]
    fn durations_format_in_sane_units() {
        assert!(fmt_duration(Duration::from_nanos(120)).ends_with("ns"));
        assert!(fmt_duration(Duration::from_micros(120)).ends_with("µs"));
        assert!(fmt_duration(Duration::from_millis(120)).ends_with("ms"));
        assert!(fmt_duration(Duration::from_secs(12)).ends_with(" s"));
    }
}
