//! A minimal in-tree benchmark timer replacing Criterion.
//!
//! Bench targets compile under the ordinary libtest harness
//! (`harness = true`) and run as `#[test]` functions, so `cargo test -q`
//! builds and exercises them on every commit; `cargo test -- --nocapture`
//! (or `cargo bench`) shows the timings. No statistics beyond min/mean —
//! the workspace uses these numbers for order-of-magnitude claims
//! (§5.3.1's "tens of milliseconds"), not for regression gating.

use std::time::{Duration, Instant};

/// One benchmark measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Measurement {
    /// Iterations timed.
    pub iters: u32,
    /// Total wall time across all iterations.
    pub total: Duration,
    /// Fastest single iteration.
    pub min: Duration,
}

impl Measurement {
    /// Mean time per iteration.
    pub fn mean(&self) -> Duration {
        self.total / self.iters.max(1)
    }
}

/// Times `f` for `iters` iterations (after one untimed warm-up), prints a
/// `name  mean  min` line, and returns the measurement. The closure's
/// return value is consumed through `std::hint::black_box` so the work
/// cannot be optimized away.
pub fn bench<R>(name: &str, iters: u32, mut f: impl FnMut() -> R) -> Measurement {
    std::hint::black_box(f());
    let mut total = Duration::ZERO;
    let mut min = Duration::MAX;
    for _ in 0..iters.max(1) {
        let start = Instant::now();
        std::hint::black_box(f());
        let elapsed = start.elapsed();
        total += elapsed;
        min = min.min(elapsed);
    }
    let m = Measurement {
        iters: iters.max(1),
        total,
        min,
    };
    println!(
        "bench {name:<48} mean {:>12} min {:>12} ({} iters)",
        fmt_duration(m.mean()),
        fmt_duration(m.min),
        m.iters
    );
    m
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 10_000 {
        format!("{nanos} ns")
    } else if nanos < 10_000_000 {
        format!("{:.1} µs", nanos as f64 / 1_000.0)
    } else if nanos < 10_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", nanos as f64 / 1_000_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_measures() {
        let mut calls = 0u32;
        let m = bench("noop", 5, || {
            calls += 1;
            calls
        });
        assert_eq!(m.iters, 5);
        assert_eq!(calls, 6, "one warm-up plus five timed iterations");
        assert!(m.min <= m.mean());
    }

    #[test]
    fn durations_format_in_sane_units() {
        assert!(fmt_duration(Duration::from_nanos(120)).ends_with("ns"));
        assert!(fmt_duration(Duration::from_micros(120)).ends_with("µs"));
        assert!(fmt_duration(Duration::from_millis(120)).ends_with("ms"));
        assert!(fmt_duration(Duration::from_secs(12)).ends_with(" s"));
    }
}
