//! A zero-dependency scoped thread pool with deterministic results.
//!
//! Profile generation and the experiment harness are embarrassingly
//! parallel — independent `(resolution, removal)` cells, independent
//! trials, independent experiments — but the science demands that the
//! *output* of a parallel run be byte-identical to the sequential one.
//! This pool is built around that contract:
//!
//! * **Order-independent tasks, order-preserving results.** Each task is
//!   identified by its index in the input; [`Pool::parallel_map`] returns
//!   results in input order no matter which worker ran what when. Callers
//!   must derive any randomness from `(seed, index)`, never from execution
//!   order — every call site in this workspace does.
//! * **Work-stealing-lite scheduling.** Workers pull fixed-size index
//!   chunks from a shared atomic counter, so a slow task delays only its
//!   own chunk instead of a statically partitioned stripe.
//! * **Panic propagation, no hangs.** A panicking task flips an abort flag
//!   (other workers stop pulling new chunks) and the panic payload is
//!   re-thrown from the calling thread once the scope joins.
//! * **Configurable width.** Worker count comes from the explicit request,
//!   else `SMOKESCREEN_THREADS`, else `std::thread::available_parallelism`.
//!   Width 1 runs inline on the caller with zero spawns, which is also the
//!   reference path the determinism suite compares against.
//!
//! Threads are scoped (`std::thread::scope`): tasks may borrow from the
//! caller's stack, and the pool never outlives the call.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

use crate::sync::Mutex;

/// Environment variable overriding the automatic worker count.
pub const THREADS_ENV: &str = "SMOKESCREEN_THREADS";

/// A fixed-width scoped thread pool.
#[derive(Debug, Clone, Copy)]
pub struct Pool {
    threads: usize,
}

impl Default for Pool {
    fn default() -> Self {
        Pool::new()
    }
}

/// Resolves the automatic worker count: `SMOKESCREEN_THREADS` when set to
/// a positive integer, else the machine's available parallelism, else 1.
pub fn auto_threads() -> usize {
    if let Some(n) = std::env::var(THREADS_ENV)
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
    {
        return n;
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

impl Pool {
    /// A pool with the automatic width (see [`auto_threads`]).
    pub fn new() -> Self {
        Pool::with_threads(0)
    }

    /// A pool with an explicit width; `0` means automatic.
    pub fn with_threads(request: usize) -> Self {
        let threads = if request == 0 { auto_threads() } else { request };
        Pool { threads }
    }

    /// The worker count this pool runs with.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Maps `f` over `items` on the pool's workers, returning results in
    /// input order. `f` receives `(index, &item)` so per-task randomness
    /// can be derived from the index rather than execution order.
    ///
    /// If any invocation panics, remaining tasks are abandoned and the
    /// panic propagates to the caller.
    pub fn parallel_map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        self.run_indexed(items.len(), |i| f(i, &items[i]))
    }

    /// Collects closures spawned onto a [`TaskScope`] and runs them on the
    /// pool, returning their results in spawn order.
    pub fn scope<'env, T, F>(&self, build: F) -> Vec<T>
    where
        T: Send,
        F: FnOnce(&mut TaskScope<'env, T>),
    {
        let mut scope = TaskScope { tasks: Vec::new() };
        build(&mut scope);
        // FnOnce tasks are consumed exactly once: the index counter hands
        // each slot to a single worker, which takes the closure out.
        let slots: Vec<Mutex<Option<Task<'env, T>>>> = scope
            .tasks
            .into_iter()
            .map(|t| Mutex::new(Some(t)))
            .collect();
        self.run_indexed(slots.len(), |i| {
            let task = slots[i].lock().take().expect("scope task runs once");
            task()
        })
    }

    /// The shared engine: runs `task(0..len)` across the workers and
    /// merges results back into index order.
    fn run_indexed<R, F>(&self, len: usize, task: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        if len == 0 {
            return Vec::new();
        }
        let workers = self.threads.min(len);
        if workers <= 1 {
            return (0..len).map(task).collect();
        }

        // Chunks trade scheduling overhead against balance; 4 chunks per
        // worker keeps the tail short without hammering the counter.
        let chunk = (len / (workers * 4)).max(1);
        let next = AtomicUsize::new(0);
        let abort = AtomicBool::new(false);
        let gathered: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(len));
        // First panic payload; re-thrown on the caller so the original
        // message survives (std::thread::scope would replace it with
        // "a scoped thread panicked").
        let panicked: Mutex<Option<Box<dyn std::any::Any + Send>>> = Mutex::new(None);

        std::thread::scope(|s| {
            for _ in 0..workers {
                s.spawn(|| {
                    let mut local: Vec<(usize, R)> = Vec::new();
                    'pull: loop {
                        if abort.load(Ordering::Relaxed) {
                            break;
                        }
                        let start = next.fetch_add(chunk, Ordering::Relaxed);
                        if start >= len {
                            break;
                        }
                        for i in start..(start + chunk).min(len) {
                            match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                task(i)
                            })) {
                                Ok(r) => local.push((i, r)),
                                Err(payload) => {
                                    abort.store(true, Ordering::Relaxed);
                                    let mut slot = panicked.lock();
                                    if slot.is_none() {
                                        *slot = Some(payload);
                                    }
                                    break 'pull;
                                }
                            }
                        }
                    }
                    gathered.lock().append(&mut local);
                });
            }
        });
        if let Some(payload) = panicked.into_inner() {
            std::panic::resume_unwind(payload);
        }
        let mut merged = gathered.into_inner();
        debug_assert_eq!(merged.len(), len);
        merged.sort_unstable_by_key(|&(i, _)| i);
        merged.into_iter().map(|(_, r)| r).collect()
    }
}

type Task<'env, T> = Box<dyn FnOnce() -> T + Send + 'env>;

/// Collector for [`Pool::scope`] tasks.
pub struct TaskScope<'env, T> {
    tasks: Vec<Task<'env, T>>,
}

impl<'env, T> TaskScope<'env, T> {
    /// Queues a task; it runs when the surrounding [`Pool::scope`] call
    /// executes, and its result lands at this spawn position.
    pub fn spawn<F>(&mut self, task: F)
    where
        F: FnOnce() -> T + Send + 'env,
    {
        self.tasks.push(Box::new(task));
    }

    /// Number of tasks queued so far.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// Whether no task has been queued yet.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proptest::prelude::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::atomic::AtomicU64;

    #[test]
    fn empty_and_singleton_inputs() {
        for threads in [1usize, 2, 8] {
            let pool = Pool::with_threads(threads);
            let empty: Vec<u32> = Vec::new();
            assert_eq!(pool.parallel_map(&empty, |_, &x| x * 2), Vec::<u32>::new());
            assert_eq!(pool.parallel_map(&[7u32], |i, &x| x + i as u32), vec![7]);
        }
    }

    #[test]
    fn results_come_back_in_input_order() {
        let pool = Pool::with_threads(8);
        let items: Vec<usize> = (0..500).collect();
        let out = pool.parallel_map(&items, |i, &x| {
            assert_eq!(i, x);
            x * 3
        });
        assert_eq!(out, (0..500).map(|x| x * 3).collect::<Vec<_>>());
    }

    #[test]
    fn scope_preserves_spawn_order() {
        let pool = Pool::with_threads(4);
        let out: Vec<String> = pool.scope(|s| {
            for i in 0..40 {
                s.spawn(move || format!("task-{i}"));
            }
        });
        assert_eq!(out.len(), 40);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(v, &format!("task-{i}"));
        }
    }

    #[test]
    fn scope_tasks_borrow_from_caller() {
        let data: Vec<u64> = (0..100).collect();
        let total = AtomicU64::new(0);
        let pool = Pool::with_threads(3);
        let parts: Vec<u64> = pool.scope(|s| {
            for chunk in data.chunks(7) {
                let total = &total;
                s.spawn(move || {
                    let sum: u64 = chunk.iter().sum();
                    total.fetch_add(sum, Ordering::Relaxed);
                    sum
                });
            }
        });
        assert_eq!(parts.iter().sum::<u64>(), 4950);
        assert_eq!(total.load(Ordering::Relaxed), 4950);
    }

    #[test]
    fn width_resolution_prefers_explicit_request() {
        assert_eq!(Pool::with_threads(5).threads(), 5);
        assert!(Pool::new().threads() >= 1);
        assert!(auto_threads() >= 1);
    }

    // The determinism and abort contracts, property-tested: parallel maps
    // must equal their sequential reference for arbitrary inputs and
    // widths, and a panicking task must propagate without hanging.
    proptest! {
        #[test]
        fn parallel_map_equals_sequential_map(
            xs in collection::vec(0u64..1_000_000, 0..300),
            threads in 1usize..9,
        ) {
            let pool = Pool::with_threads(threads);
            let par = pool.parallel_map(&xs, |i, &x| x.wrapping_mul(31).wrapping_add(i as u64));
            let seq: Vec<u64> = xs
                .iter()
                .enumerate()
                .map(|(i, &x)| x.wrapping_mul(31).wrapping_add(i as u64))
                .collect();
            prop_assert_eq!(par, seq);
        }

        #[test]
        fn panicking_task_aborts_and_propagates(
            len in 1usize..80,
            threads in 1usize..9,
            offset in 0usize..80,
        ) {
            let pool = Pool::with_threads(threads);
            let items: Vec<usize> = (0..len).collect();
            let bad = offset % len;
            let hook = std::panic::take_hook();
            std::panic::set_hook(Box::new(|_| {})); // silence the expected panic
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                pool.parallel_map(&items, |_, &x| {
                    if x == bad {
                        panic!("task {x} failed");
                    }
                    x
                })
            }));
            std::panic::set_hook(hook);
            prop_assert!(outcome.is_err(), "panic at index {} must propagate", bad);
        }
    }

    #[test]
    fn panic_payload_reaches_caller_intact() {
        let pool = Pool::with_threads(4);
        let items: Vec<u32> = (0..64).collect();
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            pool.parallel_map(&items, |_, &x| {
                if x == 33 {
                    panic!("boom-33");
                }
                x
            })
        }));
        std::panic::set_hook(hook);
        let payload = outcome.expect_err("must propagate");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_default();
        assert!(msg.contains("boom-33"), "payload was {msg:?}");
    }
}
