//! A zero-dependency persistent worker pool with deterministic results.
//!
//! Profile generation and the experiment harness are embarrassingly
//! parallel — independent `(resolution, removal)` cells, independent
//! trials, independent experiments — but the science demands that the
//! *output* of a parallel run be byte-identical to the sequential one.
//! This pool is built around that contract:
//!
//! * **Order-independent tasks, order-preserving results.** Each task is
//!   identified by its index in the input; [`Pool::parallel_map`] returns
//!   results in input order no matter which worker ran what when. Callers
//!   must derive any randomness from `(seed, index)`, never from execution
//!   order — every call site in this workspace does.
//! * **Persistent workers, scoped jobs.** Helper threads are spawned once
//!   (lazily, on demand) and then parked on a condvar between jobs, so a
//!   `parallel_map` call costs a wakeup rather than `workers - 1` thread
//!   spawns. Jobs are generation-stamped slots in a global registry; the
//!   calling thread always participates, publishes its job, and blocks
//!   until every helper has checked out, so tasks may still borrow from
//!   the caller's stack exactly as with `std::thread::scope`.
//! * **Guided chunk claims.** Workers claim index ranges sized to the
//!   *remaining* work (`remaining / (2 · workers)`, floor 1): early chunks
//!   are large enough to amortize the shared counter, trailing chunks
//!   shrink toward 1 so the tail imbalance between workers is bounded by
//!   one leading chunk. `SMOKESCREEN_CHUNK` pins a fixed chunk size.
//! * **Panic propagation, no hangs.** A panicking task flips an abort flag
//!   (other workers stop claiming chunks) and the first panic payload is
//!   re-thrown from the calling thread once the job drains. Helpers catch
//!   task panics and survive to serve later jobs.
//! * **Configurable width.** Worker count comes from the explicit request,
//!   else `SMOKESCREEN_THREADS`, else `std::thread::available_parallelism`.
//!   Width 1 runs inline on the caller with zero spawns, which is also the
//!   reference path the determinism suite compares against.
//!
//! Nested jobs compose: a task may itself call [`Pool::parallel_map`].
//! The inner call publishes a new job slot, idle helpers pick the newest
//! claimable job first, and the inner caller participates in its own job,
//! so progress never depends on a free helper existing.

use std::any::Any;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicIsize, AtomicUsize, Ordering};
use std::sync::{Condvar, OnceLock, PoisonError};

use crate::sync::Mutex;

/// Environment variable overriding the automatic worker count.
pub const THREADS_ENV: &str = "SMOKESCREEN_THREADS";

/// Environment variable pinning the chunk size (items per claim) instead
/// of the adaptive `remaining / (2 · workers)` target. Strictly parsed:
/// anything set must be a positive integer.
pub const CHUNK_ENV: &str = "SMOKESCREEN_CHUNK";

/// Number of distinct slots handed out by [`memo_slot`]. Sized so that any
/// realistic worker count (≤ 16 in every committed configuration) maps
/// each thread to its own slot; beyond that, slots alias and per-slot
/// structures see benign sharing.
pub const MEMO_SLOTS: usize = 64;

/// Hard ceiling on helper threads the global registry will ever spawn.
const MAX_POOL_THREADS: usize = 256;

/// A stable per-thread slot index in `0..MEMO_SLOTS`, assigned on first
/// use and fixed for the thread's lifetime. Per-worker caches (for
/// example the model-output memo layer in `smokescreen-models`) key their
/// thread-affine shards on this so steady-state reads never contend.
pub fn memo_slot() -> usize {
    use std::cell::Cell;
    thread_local! {
        static SLOT: Cell<usize> = const { Cell::new(usize::MAX) };
    }
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    SLOT.with(|s| {
        let mut v = s.get();
        if v == usize::MAX {
            v = NEXT.fetch_add(1, Ordering::Relaxed) % MEMO_SLOTS;
            s.set(v);
        }
        v
    })
}

/// A fixed-width handle onto the shared persistent pool.
#[derive(Debug, Clone, Copy)]
pub struct Pool {
    threads: usize,
}

impl Default for Pool {
    fn default() -> Self {
        Pool::new()
    }
}

/// Resolves the automatic worker count: `SMOKESCREEN_THREADS` when set to
/// a positive integer, else the machine's available parallelism, else 1.
pub fn auto_threads() -> usize {
    if let Some(n) = std::env::var(THREADS_ENV)
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
    {
        return n;
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Reads the `SMOKESCREEN_CHUNK` pin; set-but-malformed values panic, in
/// line with the other strictly-parsed workspace knobs (`rt::fault`).
fn chunk_override() -> Option<usize> {
    let raw = std::env::var(CHUNK_ENV).ok()?;
    match raw.trim().parse::<usize>() {
        Ok(n) if n > 0 => Some(n),
        _ => panic!("{CHUNK_ENV} must be a positive integer, got {raw:?}"),
    }
}

/// Size of the next chunk claim under guided self-scheduling: a
/// `1/(2·workers)` share of the remaining range, clamped to `[1,
/// remaining]`, or the `override_chunk` pin when set. Because `remaining`
/// only shrinks as claims proceed, consecutive claim sizes are
/// non-increasing — the property the balance proptest below leans on.
fn claim_size(remaining: usize, workers: usize, override_chunk: Option<usize>) -> usize {
    let size = match override_chunk {
        Some(c) => c,
        None => {
            let denom = 2 * workers.max(1);
            (remaining + denom - 1) / denom
        }
    };
    size.clamp(1, remaining)
}

/// The type-erased, schedule-visible part of a job. Lives at the head of
/// the concrete [`Job`] (which is `#[repr(C)]`), so a `*const JobCore`
/// published to the registry can be cast back to the full job by the
/// monomorphized `run` entry point stored inside it.
struct JobCore {
    /// Next unclaimed task index; workers CAS guided chunks off it.
    next: AtomicUsize,
    /// Total task count.
    len: usize,
    /// Participant target (caller + helpers) used for chunk sizing.
    workers: usize,
    /// `SMOKESCREEN_CHUNK` pin captured at publish time.
    chunk: Option<usize>,
    /// Set by the first panicking task; stops further claims.
    abort: AtomicBool,
    /// Helper admission tickets remaining (`workers - 1` at publish).
    slots: AtomicIsize,
    /// Helpers currently inside the job. Incremented and decremented only
    /// while holding the registry lock; the publishing caller waits for
    /// zero before its stack frame (and thus this struct) goes away.
    active: AtomicUsize,
    /// Monomorphized worker entry point.
    run: unsafe fn(*const JobCore),
}

/// A concrete job: the erased core plus the typed task and result sinks,
/// all borrowing from the publishing caller's stack.
#[repr(C)]
struct Job<'a, R, F> {
    core: JobCore,
    task: &'a F,
    gathered: &'a Mutex<Vec<(usize, R)>>,
    panicked: &'a Mutex<Option<Box<dyn Any + Send>>>,
}

/// A generation-stamped entry in the registry's published-jobs list.
#[derive(Clone, Copy)]
struct JobHandle {
    id: u64,
    core: *const JobCore,
}

// SAFETY: the pointer is only dereferenced by helpers while the handle is
// published (registry lock held) or after incrementing `active` under
// that lock; the publishing caller keeps the pointee alive until `active`
// returns to zero. See `Registry::retire`.
unsafe impl Send for JobHandle {}

struct RegState {
    /// Published jobs, oldest first; helpers scan newest-first.
    jobs: Vec<JobHandle>,
    /// Helper threads ever spawned.
    spawned: usize,
    /// Helper threads currently parked on `work`.
    idle: usize,
    /// Generation stamp source for job ids.
    next_id: u64,
}

/// The process-wide worker registry: one lock, one wakeup condvar for
/// parked helpers, one completion condvar for publishing callers.
struct Registry {
    state: Mutex<RegState>,
    work: Condvar,
    done: Condvar,
}

fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(|| Registry {
        state: Mutex::new(RegState {
            jobs: Vec::new(),
            spawned: 0,
            idle: 0,
            next_id: 0,
        }),
        work: Condvar::new(),
        done: Condvar::new(),
    })
}

impl Registry {
    /// Publishes a job and ensures enough helpers exist to serve it:
    /// parked helpers are woken, and the spawn count grows (monotonically,
    /// up to [`MAX_POOL_THREADS`]) only when the idle set can't cover the
    /// request. Returns the job's generation stamp.
    fn publish(&self, core: *const JobCore, helpers_wanted: usize) -> u64 {
        let mut st = self.state.lock();
        st.next_id += 1;
        let id = st.next_id;
        st.jobs.push(JobHandle { id, core });
        let deficit = helpers_wanted.saturating_sub(st.idle);
        let budget = MAX_POOL_THREADS.saturating_sub(st.spawned);
        for _ in 0..deficit.min(budget) {
            st.spawned += 1;
            std::thread::Builder::new()
                .name(format!("smokescreen-pool-{}", st.spawned))
                .spawn(|| helper_loop(registry()))
                .expect("rt::pool: failed to spawn worker thread");
        }
        drop(st);
        self.work.notify_all();
        id
    }

    /// Unpublishes the job and blocks until every helper inside it has
    /// checked out. After this returns no thread but the caller can hold
    /// a pointer into the job's stack frame.
    fn retire(&self, id: u64, core: *const JobCore) {
        let mut st = self.state.lock();
        st.jobs.retain(|h| h.id != id);
        // SAFETY: `core` points into the caller's own live stack frame.
        while unsafe { (*core).active.load(Ordering::SeqCst) } > 0 {
            st = self.done.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
    }
}

/// Retires the published job on drop, so the caller's stack frame can't
/// be freed with helpers still inside even if the merge path unwinds.
struct PublishGuard {
    id: u64,
    core: *const JobCore,
}

impl Drop for PublishGuard {
    fn drop(&mut self) {
        registry().retire(self.id, self.core);
    }
}

/// Body of every persistent helper thread: claim a slot on the newest
/// runnable job, run it to exhaustion, check out, repeat; park when no
/// job is claimable. Never exits — helpers die with the process.
fn helper_loop(reg: &'static Registry) {
    let mut st = reg.state.lock();
    loop {
        if let Some(h) = claim_helper_slot(&st) {
            drop(st);
            // SAFETY: `active` was incremented under the registry lock
            // while the handle was published, so the publishing caller is
            // blocked in `retire` until we check out below.
            unsafe { ((*h.core).run)(h.core) };
            st = reg.state.lock();
            unsafe { (*h.core).active.fetch_sub(1, Ordering::SeqCst) };
            reg.done.notify_all();
        } else {
            st.idle += 1;
            st = reg.work.wait(st).unwrap_or_else(PoisonError::into_inner);
            st.idle -= 1;
        }
    }
}

/// Finds the newest published job that still has work and helper tickets,
/// and checks this thread into it (`active += 1`) — all under the
/// registry lock, which is what makes the pointer in the returned handle
/// safe to run. Newest-first ordering lets nested jobs drain promptly.
fn claim_helper_slot(st: &RegState) -> Option<JobHandle> {
    for h in st.jobs.iter().rev() {
        // SAFETY: the handle is published, so the job is alive (lock held).
        let core = unsafe { &*h.core };
        if core.abort.load(Ordering::Relaxed) || core.next.load(Ordering::Relaxed) >= core.len {
            continue;
        }
        if core.slots.fetch_sub(1, Ordering::SeqCst) > 0 {
            core.active.fetch_add(1, Ordering::SeqCst);
            return Some(*h);
        }
        core.slots.fetch_add(1, Ordering::SeqCst);
    }
    None
}

/// CAS-claims the next guided chunk, or `None` when the job is drained.
fn claim(core: &JobCore) -> Option<(usize, usize)> {
    let mut cur = core.next.load(Ordering::Acquire);
    loop {
        if cur >= core.len {
            return None;
        }
        let size = claim_size(core.len - cur, core.workers, core.chunk);
        match core.next.compare_exchange_weak(
            cur,
            cur + size,
            Ordering::AcqRel,
            Ordering::Acquire,
        ) {
            Ok(_) => return Some((cur, cur + size)),
            Err(seen) => cur = seen,
        }
    }
}

/// The monomorphized worker body shared by the caller and every helper:
/// pull guided chunks until the job drains or aborts, batching results
/// locally and publishing them under the gather lock once at the end.
///
/// # Safety
/// `core` must point at the `core` field of a live `Job<'_, R, F>` whose
/// publishing caller outlives this call (guaranteed by the
/// `active`-under-lock protocol in [`Registry`]).
unsafe fn run_erased<R, F>(core: *const JobCore)
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let job = &*(core as *const Job<'_, R, F>);
    let mut local: Vec<(usize, R)> = Vec::new();
    'pull: while !job.core.abort.load(Ordering::Relaxed) {
        let Some((start, end)) = claim(&job.core) else {
            break;
        };
        for i in start..end {
            match catch_unwind(AssertUnwindSafe(|| (job.task)(i))) {
                Ok(r) => local.push((i, r)),
                Err(payload) => {
                    job.core.abort.store(true, Ordering::Relaxed);
                    let mut slot = job.panicked.lock();
                    if slot.is_none() {
                        *slot = Some(payload);
                    }
                    break 'pull;
                }
            }
        }
    }
    if !local.is_empty() {
        job.gathered.lock().append(&mut local);
    }
}

impl Pool {
    /// A pool with the automatic width (see [`auto_threads`]).
    pub fn new() -> Self {
        Pool::with_threads(0)
    }

    /// A pool with an explicit width; `0` means automatic.
    pub fn with_threads(request: usize) -> Self {
        let threads = if request == 0 { auto_threads() } else { request };
        Pool { threads }
    }

    /// The worker count this pool runs with.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Maps `f` over `items` on the pool's workers, returning results in
    /// input order. `f` receives `(index, &item)` so per-task randomness
    /// can be derived from the index rather than execution order.
    ///
    /// If any invocation panics, remaining tasks are abandoned and the
    /// panic propagates to the caller.
    pub fn parallel_map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        self.run_indexed(items.len(), |i| f(i, &items[i]))
    }

    /// Collects closures spawned onto a [`TaskScope`] and runs them on the
    /// pool, returning their results in spawn order.
    pub fn scope<'env, T, F>(&self, build: F) -> Vec<T>
    where
        T: Send,
        F: FnOnce(&mut TaskScope<'env, T>),
    {
        let mut scope = TaskScope { tasks: Vec::new() };
        build(&mut scope);
        // FnOnce tasks are consumed exactly once: the index counter hands
        // each slot to a single worker, which takes the closure out.
        let slots: Vec<Mutex<Option<Task<'env, T>>>> = scope
            .tasks
            .into_iter()
            .map(|t| Mutex::new(Some(t)))
            .collect();
        self.run_indexed(slots.len(), |i| {
            let task = slots[i].lock().take().expect("scope task runs once");
            task()
        })
    }

    /// The shared engine: publishes a job slot on the persistent pool,
    /// participates in draining it, and merges results back into index
    /// order once every helper has checked out.
    fn run_indexed<R, F>(&self, len: usize, task: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        if len == 0 {
            return Vec::new();
        }
        let workers = self.threads.min(len);
        if workers <= 1 {
            return (0..len).map(task).collect();
        }

        let gathered: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(len));
        // First panic payload; re-thrown on the caller so the original
        // message survives the hop across threads.
        let panicked: Mutex<Option<Box<dyn Any + Send>>> = Mutex::new(None);
        let job = Job {
            core: JobCore {
                next: AtomicUsize::new(0),
                len,
                workers,
                chunk: chunk_override(),
                abort: AtomicBool::new(false),
                slots: AtomicIsize::new(workers as isize - 1),
                active: AtomicUsize::new(0),
                run: run_erased::<R, F>,
            },
            task: &task,
            gathered: &gathered,
            panicked: &panicked,
        };
        let core = &job.core as *const JobCore;
        let guard = PublishGuard {
            id: registry().publish(core, workers - 1),
            core,
        };
        // The caller always participates, so the job drains even when
        // every helper is busy elsewhere.
        // SAFETY: `core` points at the live `job` above; the guard keeps
        // this frame pinned until all helpers check out.
        unsafe { run_erased::<R, F>(core) };
        drop(guard);

        if let Some(payload) = panicked.into_inner() {
            resume_unwind(payload);
        }
        let mut merged = gathered.into_inner();
        debug_assert_eq!(merged.len(), len);
        merged.sort_unstable_by_key(|&(i, _)| i);
        merged.into_iter().map(|(_, r)| r).collect()
    }
}

type Task<'env, T> = Box<dyn FnOnce() -> T + Send + 'env>;

/// Collector for [`Pool::scope`] tasks.
pub struct TaskScope<'env, T> {
    tasks: Vec<Task<'env, T>>,
}

impl<'env, T> TaskScope<'env, T> {
    /// Queues a task; it runs when the surrounding [`Pool::scope`] call
    /// executes, and its result lands at this spawn position.
    pub fn spawn<F>(&mut self, task: F)
    where
        F: FnOnce() -> T + Send + 'env,
    {
        self.tasks.push(Box::new(task));
    }

    /// Number of tasks queued so far.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// Whether no task has been queued yet.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proptest::prelude::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::atomic::AtomicU64;

    #[test]
    fn empty_and_singleton_inputs() {
        for threads in [1usize, 2, 8] {
            let pool = Pool::with_threads(threads);
            let empty: Vec<u32> = Vec::new();
            assert_eq!(pool.parallel_map(&empty, |_, &x| x * 2), Vec::<u32>::new());
            assert_eq!(pool.parallel_map(&[7u32], |i, &x| x + i as u32), vec![7]);
        }
    }

    #[test]
    fn results_come_back_in_input_order() {
        let pool = Pool::with_threads(8);
        let items: Vec<usize> = (0..500).collect();
        let out = pool.parallel_map(&items, |i, &x| {
            assert_eq!(i, x);
            x * 3
        });
        assert_eq!(out, (0..500).map(|x| x * 3).collect::<Vec<_>>());
    }

    #[test]
    fn warm_pool_reuse_stays_correct_across_many_jobs() {
        // The first call warms the persistent pool; every later call must
        // reuse the parked helpers and stay byte-correct.
        let pool = Pool::with_threads(8);
        let items: Vec<u64> = (0..257).collect();
        let expect: Vec<u64> = items.iter().map(|&x| x * x).collect();
        for _ in 0..50 {
            assert_eq!(pool.parallel_map(&items, |_, &x| x * x), expect);
        }
    }

    #[test]
    fn nested_parallel_maps_compose() {
        // Figure sweeps run parallel trials whose tasks call generation,
        // which itself parallel_maps over cells — the registry must serve
        // both levels without deadlocking or crossing results.
        let pool = Pool::with_threads(4);
        let outer: Vec<u64> = (0..12).collect();
        let got = pool.parallel_map(&outer, |_, &o| {
            let inner: Vec<u64> = (0..30).collect();
            let inner_pool = Pool::with_threads(4);
            inner_pool
                .parallel_map(&inner, |_, &i| o * 100 + i)
                .iter()
                .sum::<u64>()
        });
        let expect: Vec<u64> = (0..12).map(|o| (0..30).map(|i| o * 100 + i).sum()).collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn scope_preserves_spawn_order() {
        let pool = Pool::with_threads(4);
        let out: Vec<String> = pool.scope(|s| {
            for i in 0..40 {
                s.spawn(move || format!("task-{i}"));
            }
        });
        assert_eq!(out.len(), 40);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(v, &format!("task-{i}"));
        }
    }

    #[test]
    fn scope_tasks_borrow_from_caller() {
        let data: Vec<u64> = (0..100).collect();
        let total = AtomicU64::new(0);
        let pool = Pool::with_threads(3);
        let parts: Vec<u64> = pool.scope(|s| {
            for chunk in data.chunks(7) {
                let total = &total;
                s.spawn(move || {
                    let sum: u64 = chunk.iter().sum();
                    total.fetch_add(sum, Ordering::Relaxed);
                    sum
                });
            }
        });
        assert_eq!(parts.iter().sum::<u64>(), 4950);
        assert_eq!(total.load(Ordering::Relaxed), 4950);
    }

    #[test]
    fn width_resolution_prefers_explicit_request() {
        assert_eq!(Pool::with_threads(5).threads(), 5);
        assert!(Pool::new().threads() >= 1);
        assert!(auto_threads() >= 1);
    }

    #[test]
    fn memo_slots_are_stable_per_thread_and_in_range() {
        let first = memo_slot();
        assert!(first < MEMO_SLOTS);
        assert_eq!(memo_slot(), first, "slot must not move between calls");
        let other = std::thread::spawn(|| (memo_slot(), memo_slot()))
            .join()
            .unwrap();
        assert!(other.0 < MEMO_SLOTS);
        assert_eq!(other.0, other.1);
    }

    #[test]
    fn claim_sizes_shrink_toward_the_tail() {
        let mut remaining = 10_000usize;
        let mut prev = usize::MAX;
        while remaining > 0 {
            let size = claim_size(remaining, 8, None);
            assert!(size >= 1 && size <= remaining);
            assert!(size <= prev, "guided chunks must be non-increasing");
            prev = size;
            remaining -= size;
        }
        // The pin overrides the guided target exactly (clamped to range).
        assert_eq!(claim_size(1000, 8, Some(17)), 17);
        assert_eq!(claim_size(5, 8, Some(17)), 5);
        assert_eq!(claim_size(1, 1, None), 1);
    }

    // The determinism and abort contracts, property-tested: parallel maps
    // must equal their sequential reference for arbitrary inputs and
    // widths, and a panicking task must propagate without hanging.
    proptest! {
        #[test]
        fn parallel_map_equals_sequential_map(
            xs in collection::vec(0u64..1_000_000, 0..300),
            threads in 1usize..9,
        ) {
            let pool = Pool::with_threads(threads);
            let par = pool.parallel_map(&xs, |i, &x| x.wrapping_mul(31).wrapping_add(i as u64));
            let seq: Vec<u64> = xs
                .iter()
                .enumerate()
                .map(|(i, &x)| x.wrapping_mul(31).wrapping_add(i as u64))
                .collect();
            prop_assert_eq!(par, seq);
        }

        #[test]
        fn panicking_task_aborts_and_propagates(
            len in 1usize..80,
            threads in 1usize..9,
            offset in 0usize..80,
        ) {
            let pool = Pool::with_threads(threads);
            let items: Vec<usize> = (0..len).collect();
            let bad = offset % len;
            let hook = std::panic::take_hook();
            std::panic::set_hook(Box::new(|_| {})); // silence the expected panic
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                pool.parallel_map(&items, |_, &x| {
                    if x == bad {
                        panic!("task {x} failed");
                    }
                    x
                })
            }));
            std::panic::set_hook(hook);
            prop_assert!(outcome.is_err(), "panic at index {} must propagate", bad);
        }

        // Satellite: guided chunk claims may not strand the tail on one
        // worker. Simulate round-robin claiming and check the per-worker
        // item spread stays within one leading (largest) chunk, for both
        // the adaptive target and explicit `SMOKESCREEN_CHUNK`-style pins.
        #[test]
        fn guided_chunks_cover_everything_and_stay_balanced(
            len in 1usize..5_000,
            workers in 1usize..17,
            pin_raw in 0usize..600,
        ) {
            // 0 means "no pin": exercise the adaptive guided target.
            let pin = (pin_raw > 0).then_some(pin_raw);
            let mut counts = vec![0usize; workers];
            let mut next = 0usize;
            let mut turn = 0usize;
            let mut first_chunk = 0usize;
            while next < len {
                let size = claim_size(len - next, workers, pin);
                if first_chunk == 0 {
                    first_chunk = size;
                }
                prop_assert!(size >= 1 && size <= len - next);
                counts[turn % workers] += size;
                next += size;
                turn += 1;
            }
            prop_assert_eq!(counts.iter().sum::<usize>(), len, "claims must cover the input");
            let max = *counts.iter().max().unwrap();
            let min = *counts.iter().min().unwrap();
            prop_assert!(
                max - min <= first_chunk,
                "per-worker spread {} exceeds one leading chunk {} (len={}, workers={})",
                max - min, first_chunk, len, workers
            );
        }
    }

    #[test]
    fn panic_payload_reaches_caller_intact() {
        let pool = Pool::with_threads(4);
        let items: Vec<u32> = (0..64).collect();
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            pool.parallel_map(&items, |_, &x| {
                if x == 33 {
                    panic!("boom-33");
                }
                x
            })
        }));
        std::panic::set_hook(hook);
        let payload = outcome.expect_err("must propagate");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_default();
        assert!(msg.contains("boom-33"), "payload was {msg:?}");
    }
}
