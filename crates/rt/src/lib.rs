//! `smokescreen-rt` — the workspace's zero-dependency runtime substrate.
//!
//! Every other crate in the workspace builds on this one instead of
//! crates.io dependencies, so the whole system compiles and tests fully
//! offline (`cargo build --release --offline && cargo test -q --offline`).
//! The modules mirror the external APIs they replaced closely enough that
//! porting a call site is usually a one-line import change:
//!
//! | module        | replaces                | notes                         |
//! |---------------|-------------------------|-------------------------------|
//! | [`rng`]       | `rand`, `rand_distr`    | xoshiro256\*\* + SplitMix64; Poisson (PTRS), LogNormal, Box–Muller normal |
//! | [`json`]      | `serde`, `serde_json`   | value model + hand-written `ToJson`/`FromJson` impls |
//! | [`sync`]      | `parking_lot`           | direct-guard `Mutex`/`RwLock` over `std::sync` |
//! | [`pool`]      | `rayon` (subset)        | persistent, deterministic `parallel_map`/`scope` worker pool |
//! | [`proptest`]  | `proptest`              | seeded case generation, replay via printed seed, no shrinking |
//! | [`bench`]     | `criterion`             | warm-up + min/mean timer + counting allocator under the libtest harness |
//! | [`fault`]     | — (new subsystem)       | seeded, replayable fault + crash schedules for chaos testing |
//! | [`journal`]   | — (new subsystem)       | crash-consistent append-only journal (checksummed framing, atomic repair) |
//!
//! Determinism is a hard requirement here, not a convenience: the paper's
//! bound-validity experiments (PAPER.md §4–5) are only checkable if every
//! sampled scene, sample set, and detector response replays byte-for-byte
//! from a seed. All randomness in the workspace flows through
//! [`rng::StdRng`], which is specified (xoshiro256\*\*) rather than
//! inherited from whatever `rand` ships this year.

#![warn(missing_docs)]

pub mod bench;
pub mod fault;
pub mod journal;
pub mod json;
pub mod pool;
pub mod proptest;
pub mod rng;
pub mod sync;
