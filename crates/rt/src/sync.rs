//! Thin lock wrappers with the `parking_lot` call shape.
//!
//! `parking_lot`'s locks return guards directly (no `Result`); porting its
//! call sites onto `std::sync` naively would sprinkle `.unwrap()` through
//! otherwise-clean code. These wrappers keep the direct-guard API and make
//! an explicit policy decision about poisoning: a panic while holding one
//! of these locks does **not** poison it for other threads — the data the
//! workspace protects under locks (output caches, counters) stays
//! consistent under panic because every critical section is a single
//! insert/read.

use std::sync::{MutexGuard, PoisonError, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock returning its guard directly.
#[derive(Debug, Default)]
pub struct Mutex<T>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new lock.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Acquires the lock, recovering from poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock returning its guards directly.
#[derive(Debug, Default)]
pub struct RwLock<T>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new lock.
    pub fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Acquires a shared read guard, recovering from poisoning.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard, recovering from poisoning.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_counts_across_threads() {
        let m = Arc::new(Mutex::new(0u32));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..100 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 800);
    }

    #[test]
    fn rwlock_readers_see_writes() {
        let l = RwLock::new(vec![1, 2]);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
        assert_eq!(l.into_inner(), vec![1, 2, 3]);
    }

    #[test]
    fn poisoned_locks_recover() {
        let m = Arc::new(Mutex::new(5u32));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 5);
    }
}
