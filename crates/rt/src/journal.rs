//! Crash-consistent append-only journals — the durability substrate for
//! checkpoint/resume.
//!
//! A journal is a single file holding a versioned header followed by a
//! sequence of length-and-checksum framed records. The format is designed
//! around one failure model: **the process can die at any byte**. Every
//! corruption a kill can produce — a torn (half-written) tail record, a
//! file that stops mid-header, a zero-byte file created but never written
//! — is detected on replay and quarantined, never trusted and never
//! panicked on. Bit-rot (a flipped byte in the middle of the file) is
//! caught by per-record checksums; replay keeps the valid prefix and
//! discards everything from the first damaged record onward, because
//! framing downstream of damage cannot be trusted.
//!
//! Layout:
//!
//! ```text
//! header:  MAGIC (8) | format version u32 | identity len u32
//!          | identity checksum u64 | identity bytes
//! record:  index u32 | payload len u32 | payload checksum u64 | payload
//! ```
//!
//! All integers are little-endian. Records must carry strictly
//! consecutive indices starting at 0 — the journal is a *contiguous
//! prefix* of some externally defined task list, which is what makes
//! resume accounting schedule-independent (see `core::generation`). A
//! record with an out-of-sequence index is treated as corruption.
//!
//! Atomicity comes from two mechanisms:
//!
//! * **Append + sync** — each record is written with a single `write_all`
//!   followed by `sync_data`, so a crash leaves at most one torn tail
//!   record, which replay detects by framing.
//! * **Temp-file + rename** — creating a journal and repairing one
//!   (rewriting the valid prefix after quarantining a damaged tail) go
//!   through [`atomic_write`]: the new contents are written to a
//!   temporary file in the same directory, synced, then `rename`d over
//!   the target. POSIX rename is atomic, so the journal is always either
//!   the old bytes or the new bytes, never a mixture.

use std::fs::{File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

/// Environment variable carrying the checkpoint directory for resumable
/// profile generation. Unset disables checkpointing entirely; a set but
/// empty value is a configuration error (see [`checkpoint_dir_from_env`]).
pub const CHECKPOINT_DIR_ENV: &str = "SMOKESCREEN_CHECKPOINT_DIR";

/// On-disk format version. Bumped on any incompatible layout change; a
/// journal with a different version is quarantined wholesale (its cells
/// are simply recomputed) rather than misread.
pub const FORMAT_VERSION: u32 = 1;

/// File magic: identifies a smokescreen journal.
const MAGIC: [u8; 8] = *b"SMKJRNL\0";

/// Fixed-size portion of the header preceding the identity bytes.
const HEADER_FIXED_LEN: usize = 8 + 4 + 4 + 8;

/// Per-record frame: index + payload length + payload checksum.
const RECORD_HEADER_LEN: usize = 4 + 4 + 8;

/// Upper bound on a single record payload (1 GiB); a larger length field
/// can only come from corruption.
const MAX_PAYLOAD_LEN: u32 = 1 << 30;

/// FNV-1a 64-bit checksum. Not cryptographic — it defends against
/// torn writes and bit-rot, not adversaries, and a 64-bit avalanche makes
/// silent acceptance of a damaged record vanishingly unlikely.
pub fn checksum64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Atomically replaces `path` with `bytes`: writes a temporary sibling
/// file, syncs it, and renames it over the target. Readers (and crashes)
/// observe either the old contents or the new, never a torn mixture.
pub fn atomic_write(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let tmp = sibling_tmp_path(path);
    {
        let mut f = File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_data()?;
    }
    match std::fs::rename(&tmp, path) {
        Ok(()) => Ok(()),
        Err(e) => {
            let _ = std::fs::remove_file(&tmp);
            Err(e)
        }
    }
}

fn sibling_tmp_path(path: &Path) -> PathBuf {
    let mut name = path
        .file_name()
        .map(|n| n.to_os_string())
        .unwrap_or_else(|| ".journal".into());
    name.push(".tmp");
    path.with_file_name(name)
}

/// Reads the checkpoint directory from [`CHECKPOINT_DIR_ENV`].
///
/// Unset means checkpointing is disabled (`None`) — the production
/// default. A set-but-empty value is a loud startup error: silently
/// ignoring it would disable durability the operator asked for.
pub fn checkpoint_dir_from_env() -> Option<PathBuf> {
    match parse_checkpoint_dir(std::env::var_os(CHECKPOINT_DIR_ENV).as_deref()) {
        Ok(dir) => dir,
        Err(msg) => panic!("{msg}"),
    }
}

/// Parse layer behind [`checkpoint_dir_from_env`], exposed for tests:
/// `None` (unset) disables, a non-empty value enables, an empty value is
/// an error naming the offending variable.
pub fn parse_checkpoint_dir(
    raw: Option<&std::ffi::OsStr>,
) -> Result<Option<PathBuf>, String> {
    match raw {
        None => Ok(None),
        Some(v) if v.is_empty() => Err(format!(
            "{CHECKPOINT_DIR_ENV} is set but empty; unset it to disable checkpointing \
             or point it at a writable directory"
        )),
        Some(v) => Ok(Some(PathBuf::from(v))),
    }
}

/// What replay recovered from an existing journal.
#[derive(Debug, Default, Clone, PartialEq)]
pub struct Replay {
    /// Payloads of the valid contiguous record prefix: `payloads[i]` is
    /// record index `i`.
    pub payloads: Vec<Vec<u8>>,
    /// Corruption events detected and quarantined: a torn tail, a
    /// checksum mismatch, an out-of-sequence index, a rejected payload,
    /// or an unreadable/foreign/mis-versioned header (each counts once).
    pub corrupt_records: usize,
    /// Index of the record lost to a torn tail write, when identifiable.
    /// The writer uses this to avoid re-injecting a torn crash for a cell
    /// whose torn write already "happened" (see `rt::fault::CrashPlan`).
    pub torn_record: Option<u32>,
    /// Bytes discarded by quarantine (everything after the valid prefix).
    pub quarantined_bytes: u64,
    /// Whether the journal file did not exist and was freshly created.
    pub created: bool,
}

/// Append handle for an open journal.
///
/// Obtained from [`Journal::open`]; appends are flushed and synced per
/// record so a crash loses at most the record being written.
#[derive(Debug)]
pub struct JournalWriter {
    file: File,
    bytes: u64,
    records: u32,
}

impl JournalWriter {
    /// Total journal size in bytes (header + all durable records).
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Number of valid records in the journal (replayed + appended).
    pub fn records(&self) -> u32 {
        self.records
    }

    /// Appends one record durably: frame + payload in a single write,
    /// then `sync_data`. `index` must continue the consecutive sequence.
    pub fn append(&mut self, index: u32, payload: &[u8]) -> io::Result<()> {
        debug_assert_eq!(index, self.records, "journal indices must be consecutive");
        let buf = frame_record(index, payload);
        self.file.write_all(&buf)?;
        self.file.sync_data()?;
        self.bytes += buf.len() as u64;
        self.records += 1;
        Ok(())
    }

    /// Deliberately writes a *torn* record — the frame header plus a
    /// prefix of the payload — simulating a crash mid-append for the
    /// seeded crash tests. The journal must not be appended to afterwards
    /// (replay will quarantine the tail). `keep_frac` in `[0, 1]` selects
    /// how much of the payload survives; the full record is never written.
    pub fn append_torn(&mut self, index: u32, payload: &[u8], keep_frac: f64) -> io::Result<()> {
        debug_assert_eq!(index, self.records, "journal indices must be consecutive");
        let buf = frame_record(index, payload);
        let keep_payload = (payload.len() as f64 * keep_frac.clamp(0.0, 1.0)) as usize;
        let keep = (RECORD_HEADER_LEN + keep_payload).min(buf.len().saturating_sub(1));
        self.file.write_all(&buf[..keep])?;
        self.file.sync_data()?;
        self.bytes += keep as u64;
        // Not counted in `records`: the record is not durable.
        Ok(())
    }
}

fn frame_record(index: u32, payload: &[u8]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(RECORD_HEADER_LEN + payload.len());
    buf.extend_from_slice(&index.to_le_bytes());
    buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    buf.extend_from_slice(&checksum64(payload).to_le_bytes());
    buf.extend_from_slice(payload);
    buf
}

fn header_bytes(identity: &str) -> Vec<u8> {
    let id = identity.as_bytes();
    let mut buf = Vec::with_capacity(HEADER_FIXED_LEN + id.len());
    buf.extend_from_slice(&MAGIC);
    buf.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    buf.extend_from_slice(&(id.len() as u32).to_le_bytes());
    buf.extend_from_slice(&checksum64(id).to_le_bytes());
    buf.extend_from_slice(id);
    buf
}

fn read_u32(bytes: &[u8], at: usize) -> u32 {
    u32::from_le_bytes(bytes[at..at + 4].try_into().expect("bounds checked"))
}

fn read_u64(bytes: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(bytes[at..at + 8].try_into().expect("bounds checked"))
}

/// Namespace for opening journals.
pub struct Journal;

impl Journal {
    /// Opens (creating if absent) the journal at `path` for the given
    /// `identity`, replaying its valid record prefix.
    ///
    /// `validate` vets each replayed payload (`(index, payload) → ok`);
    /// a rejected payload is treated exactly like a checksum mismatch —
    /// the record and everything after it are quarantined. A journal
    /// whose header is unreadable, carries the wrong format version, or
    /// names a different identity is quarantined wholesale.
    ///
    /// Any quarantine **repairs the file**: the valid prefix is rewritten
    /// atomically (temp-file + rename) before the writer is handed back,
    /// so appends always continue a well-formed journal.
    pub fn open(
        path: &Path,
        identity: &str,
        validate: impl Fn(u32, &[u8]) -> bool,
    ) -> io::Result<(JournalWriter, Replay)> {
        let header = header_bytes(identity);
        let mut replay = Replay::default();

        let existing: Option<Vec<u8>> = match File::open(path) {
            Ok(mut f) => {
                let mut buf = Vec::new();
                f.read_to_end(&mut buf)?;
                Some(buf)
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => None,
            Err(e) => return Err(e),
        };

        let valid_len = match &existing {
            None => {
                replay.created = true;
                atomic_write(path, &header)?;
                header.len()
            }
            Some(bytes) => {
                let valid = Self::replay(bytes, &header, identity, &validate, &mut replay);
                // Repair when there is a damaged tail to quarantine OR the
                // header itself was unusable (including the zero-byte file,
                // where both lengths are 0 but a fresh header must still be
                // written before appends can proceed).
                if valid < bytes.len() || valid < header.len() {
                    // Quarantine the damaged tail: rewrite the valid
                    // prefix atomically so appends continue clean framing.
                    replay.quarantined_bytes = (bytes.len() - valid) as u64;
                    let mut repaired = Vec::with_capacity(header.len());
                    if valid == 0 {
                        repaired.extend_from_slice(&header);
                    } else {
                        repaired.extend_from_slice(&bytes[..valid]);
                    }
                    atomic_write(path, &repaired)?;
                    repaired.len()
                } else {
                    valid
                }
            }
        };

        let file = OpenOptions::new().append(true).open(path)?;
        let writer = JournalWriter {
            file,
            bytes: valid_len as u64,
            records: replay.payloads.len() as u32,
        };
        Ok((writer, replay))
    }

    /// Scans `bytes`, filling `replay.payloads` with the valid record
    /// prefix and returning the byte length of the valid region (header
    /// included). Returns 0 when the header itself is unusable.
    fn replay(
        bytes: &[u8],
        expected_header: &[u8],
        identity: &str,
        validate: &impl Fn(u32, &[u8]) -> bool,
        replay: &mut Replay,
    ) -> usize {
        // Header: magic, version, and identity must all match; anything
        // else is a foreign or damaged journal and nothing in it can be
        // attributed to our cells.
        if bytes.len() < HEADER_FIXED_LEN
            || bytes[..8] != MAGIC
            || read_u32(bytes, 8) != FORMAT_VERSION
        {
            replay.corrupt_records += 1;
            return 0;
        }
        let id_len = read_u32(bytes, 12) as usize;
        let id_sum = read_u64(bytes, 16);
        if id_len != identity.len()
            || bytes.len() < HEADER_FIXED_LEN + id_len
            || id_sum != checksum64(identity.as_bytes())
            || &bytes[HEADER_FIXED_LEN..HEADER_FIXED_LEN + id_len] != identity.as_bytes()
        {
            replay.corrupt_records += 1;
            return 0;
        }
        debug_assert_eq!(&bytes[..expected_header.len()], expected_header);

        let mut pos = expected_header.len();
        loop {
            let remaining = bytes.len() - pos;
            if remaining == 0 {
                return pos; // clean end
            }
            if remaining < RECORD_HEADER_LEN {
                // Torn mid-frame: the next record's index is the sequence
                // position even though its header is unreadable, because
                // indices are consecutive by construction.
                replay.corrupt_records += 1;
                replay.torn_record = Some(replay.payloads.len() as u32);
                return pos;
            }
            let index = read_u32(bytes, pos);
            let len = read_u32(bytes, pos + 4);
            let sum = read_u64(bytes, pos + 8);
            if index != replay.payloads.len() as u32 || len > MAX_PAYLOAD_LEN {
                replay.corrupt_records += 1;
                return pos;
            }
            if (remaining - RECORD_HEADER_LEN) < len as usize {
                // Frame header intact but payload truncated: a torn
                // append for exactly this record.
                replay.corrupt_records += 1;
                replay.torn_record = Some(index);
                return pos;
            }
            let payload = &bytes[pos + RECORD_HEADER_LEN..pos + RECORD_HEADER_LEN + len as usize];
            if checksum64(payload) != sum || !validate(index, payload) {
                // Bit-rot or semantic damage: quarantine from here on.
                replay.corrupt_records += 1;
                return pos;
            }
            replay.payloads.push(payload.to_vec());
            pos += RECORD_HEADER_LEN + len as usize;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_journal(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "smokescreen-journal-tests-{}",
            std::process::id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn accept_all(_: u32, _: &[u8]) -> bool {
        true
    }

    #[test]
    fn create_append_replay_round_trip() {
        let path = tmp_journal("round_trip.journal");
        let _ = std::fs::remove_file(&path);
        let payloads: Vec<Vec<u8>> = (0..5u32)
            .map(|i| format!("{{\"cell\":{i},\"data\":\"x{i}\"}}").into_bytes())
            .collect();
        {
            let (mut w, replay) = Journal::open(&path, "id-a", accept_all).unwrap();
            assert!(replay.created);
            assert!(replay.payloads.is_empty());
            for (i, p) in payloads.iter().enumerate() {
                w.append(i as u32, p).unwrap();
            }
            assert_eq!(w.records(), 5);
        }
        let (w, replay) = Journal::open(&path, "id-a", accept_all).unwrap();
        assert!(!replay.created);
        assert_eq!(replay.payloads, payloads);
        assert_eq!(replay.corrupt_records, 0);
        assert_eq!(replay.quarantined_bytes, 0);
        assert_eq!(w.records(), 5);
        assert_eq!(w.bytes(), std::fs::metadata(&path).unwrap().len());
    }

    #[test]
    fn torn_tail_is_detected_attributed_and_repaired() {
        let path = tmp_journal("torn.journal");
        let _ = std::fs::remove_file(&path);
        {
            let (mut w, _) = Journal::open(&path, "id", accept_all).unwrap();
            w.append(0, b"record-zero").unwrap();
            w.append(1, b"record-one").unwrap();
            w.append_torn(2, b"record-two-will-tear", 0.5).unwrap();
        }
        let before = std::fs::metadata(&path).unwrap().len();
        let (w, replay) = Journal::open(&path, "id", accept_all).unwrap();
        assert_eq!(replay.payloads.len(), 2);
        assert_eq!(replay.torn_record, Some(2));
        assert_eq!(replay.corrupt_records, 1);
        assert!(replay.quarantined_bytes > 0);
        // Repaired: the file now holds exactly the valid prefix.
        assert!(std::fs::metadata(&path).unwrap().len() < before);
        assert_eq!(w.bytes(), std::fs::metadata(&path).unwrap().len());
        // And a further reopen is clean.
        let (_, replay2) = Journal::open(&path, "id", accept_all).unwrap();
        assert_eq!(replay2.corrupt_records, 0);
        assert_eq!(replay2.payloads.len(), 2);
    }

    #[test]
    fn fully_torn_frame_header_still_reports_sequence_position() {
        let path = tmp_journal("torn_header.journal");
        let _ = std::fs::remove_file(&path);
        {
            let (mut w, _) = Journal::open(&path, "id", accept_all).unwrap();
            w.append(0, b"zero").unwrap();
            // Tear so hard that even the 16-byte frame header is partial.
            w.append_torn(1, b"", 0.0).unwrap();
        }
        let (_, replay) = Journal::open(&path, "id", accept_all).unwrap();
        assert_eq!(replay.payloads.len(), 1);
        assert_eq!(replay.torn_record, Some(1), "index inferred from sequence");
    }

    #[test]
    fn checksum_flip_quarantines_suffix() {
        let path = tmp_journal("bitflip.journal");
        let _ = std::fs::remove_file(&path);
        {
            let (mut w, _) = Journal::open(&path, "id", accept_all).unwrap();
            for i in 0..4u32 {
                w.append(i, format!("payload-{i}").as_bytes()).unwrap();
            }
        }
        // Flip one bit inside record 1's payload.
        let mut bytes = std::fs::read(&path).unwrap();
        let header_len = HEADER_FIXED_LEN + 2;
        let rec_len = RECORD_HEADER_LEN + "payload-0".len();
        let target = header_len + rec_len + RECORD_HEADER_LEN + 3;
        bytes[target] ^= 0x10;
        std::fs::write(&path, &bytes).unwrap();

        let (_, replay) = Journal::open(&path, "id", accept_all).unwrap();
        assert_eq!(replay.payloads.len(), 1, "only the prefix before damage survives");
        assert_eq!(replay.corrupt_records, 1);
        assert_eq!(replay.torn_record, None, "bit-rot is not a torn write");
        assert!(replay.quarantined_bytes > 0);
        // Appending record 1 again after repair works.
        let (mut w, replay) = Journal::open(&path, "id", accept_all).unwrap();
        assert_eq!(replay.corrupt_records, 0);
        w.append(1, b"payload-1-again").unwrap();
        let (_, replay) = Journal::open(&path, "id", accept_all).unwrap();
        assert_eq!(replay.payloads.len(), 2);
    }

    #[test]
    fn wrong_version_and_foreign_identity_quarantine_wholesale() {
        let path = tmp_journal("version.journal");
        let _ = std::fs::remove_file(&path);
        {
            let (mut w, _) = Journal::open(&path, "id", accept_all).unwrap();
            w.append(0, b"data").unwrap();
        }
        // Different identity: everything is discarded and rewritten.
        let (_, replay) = Journal::open(&path, "other-identity", accept_all).unwrap();
        assert!(replay.payloads.is_empty());
        assert_eq!(replay.corrupt_records, 1);

        // Corrupt the version field of the (freshly rewritten) header.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[8] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();
        let (_, replay) = Journal::open(&path, "other-identity", accept_all).unwrap();
        assert!(replay.payloads.is_empty());
        assert_eq!(replay.corrupt_records, 1);
    }

    #[test]
    fn zero_byte_journal_is_quarantined_not_trusted() {
        let path = tmp_journal("empty.journal");
        std::fs::write(&path, b"").unwrap();
        let (w, replay) = Journal::open(&path, "id", accept_all).unwrap();
        assert!(replay.payloads.is_empty());
        assert_eq!(
            replay.corrupt_records, 1,
            "a created-but-never-written file is a crash artifact"
        );
        assert_eq!(w.records(), 0);
        // Repaired to a proper header; usable immediately.
        let (_, replay2) = Journal::open(&path, "id", accept_all).unwrap();
        assert_eq!(replay2.corrupt_records, 0);
    }

    #[test]
    fn out_of_sequence_record_is_corruption() {
        let path = tmp_journal("sequence.journal");
        let _ = std::fs::remove_file(&path);
        {
            let (mut w, _) = Journal::open(&path, "id", accept_all).unwrap();
            w.append(0, b"zero").unwrap();
        }
        // Hand-append a record claiming index 5.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(&frame_record(5, b"rogue"));
        std::fs::write(&path, &bytes).unwrap();
        let (_, replay) = Journal::open(&path, "id", accept_all).unwrap();
        assert_eq!(replay.payloads.len(), 1);
        assert_eq!(replay.corrupt_records, 1);
    }

    #[test]
    fn rejected_payload_quarantines_like_checksum_damage() {
        let path = tmp_journal("reject.journal");
        let _ = std::fs::remove_file(&path);
        {
            let (mut w, _) = Journal::open(&path, "id", accept_all).unwrap();
            w.append(0, b"good").unwrap();
            w.append(1, b"BAD").unwrap();
            w.append(2, b"good-too").unwrap();
        }
        let (_, replay) =
            Journal::open(&path, "id", |_, p| p.starts_with(b"good")).unwrap();
        assert_eq!(replay.payloads.len(), 1, "validation failure stops the replay");
        assert_eq!(replay.corrupt_records, 1);
    }

    #[test]
    fn atomic_write_replaces_contents() {
        let path = tmp_journal("atomic.bin");
        atomic_write(&path, b"first").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"first");
        atomic_write(&path, b"second-longer").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"second-longer");
        // No temp residue.
        assert!(!sibling_tmp_path(&path).exists());
    }

    #[test]
    fn checksum_is_stable_and_input_sensitive() {
        assert_eq!(checksum64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(checksum64(b"abc"), checksum64(b"abc"));
        assert_ne!(checksum64(b"abc"), checksum64(b"abd"));
        assert_ne!(checksum64(b"abc"), checksum64(b"ab"));
    }

    #[test]
    fn checkpoint_dir_parsing_is_strict() {
        assert_eq!(parse_checkpoint_dir(None), Ok(None));
        assert_eq!(
            parse_checkpoint_dir(Some(std::ffi::OsStr::new("/tmp/ckpt"))),
            Ok(Some(PathBuf::from("/tmp/ckpt")))
        );
        let err = parse_checkpoint_dir(Some(std::ffi::OsStr::new(""))).unwrap_err();
        assert!(err.contains(CHECKPOINT_DIR_ENV), "{err}");
    }
}
