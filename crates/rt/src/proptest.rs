//! A miniature property-testing harness replacing the `proptest` crate for
//! this workspace's suites.
//!
//! It keeps the parts the test files actually use — the `proptest!` macro
//! with `arg in strategy` bindings, range and `any::<T>()` strategies,
//! `prop_map`, `collection::vec`, and `prop_assert!`/`prop_assert_eq!` —
//! and drops shrinking. Failures instead print the failing case's inputs
//! and the seed needed to replay it:
//!
//! * `SMOKESCREEN_PT_SEED=<n>` pins the base seed (printed on failure),
//! * `SMOKESCREEN_PT_CASES=<n>` overrides the per-test case count
//!   (default 64).
//!
//! Case generation is deterministic: each test derives its base seed from
//! its own name, so suites are reproducible run-to-run and across
//! machines.

use crate::rng::StdRng;
use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

/// A generator of random values for one `proptest!` argument.
pub trait Strategy {
    /// The value type produced.
    type Value: Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U: Debug, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U: Debug, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);

    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);

    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng), self.2.generate(rng))
    }
}

/// Full-type-range generation for [`any`].
pub trait Arbitrary: Debug + Sized {
    /// Draws one value covering the whole type.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),* $(,)?) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut StdRng) -> f64 {
        // Finite, sign-symmetric, spanning several orders of magnitude —
        // enough for numeric property tests without NaN plumbing.
        let mag = rng.gen_range(-9.0f64..9.0);
        let sign = if rng.gen_bool(0.5) { 1.0 } else { -1.0 };
        sign * 10f64.powf(mag)
    }
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// Strategy over the full range of `T`, e.g. `any::<u64>()`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// Collection strategies.
pub mod collection {
    use super::{StdRng, Strategy};
    use std::ops::Range;

    /// The strategy returned by [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        len: Range<usize>,
    }

    /// A `Vec` whose length is drawn from `len` and whose elements come
    /// from `elem`.
    pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(!len.is_empty(), "vec strategy requires a non-empty length range");
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = rng.gen_range(self.len.clone());
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// Number of cases each property runs (env-overridable).
pub fn case_count() -> u64 {
    std::env::var("SMOKESCREEN_PT_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
}

/// Base seed for a property test: `SMOKESCREEN_PT_SEED` if set, else an
/// FNV-1a hash of the test name (stable across runs and platforms).
pub fn base_seed(test_name: &str) -> u64 {
    if let Some(seed) = std::env::var("SMOKESCREEN_PT_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
    {
        return seed;
    }
    let mut hash: u64 = 0xCBF2_9CE4_8422_2325;
    for b in test_name.bytes() {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// Derives the per-case seed from the base seed.
pub fn case_seed(base: u64, case: u64) -> u64 {
    base ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Everything a property-test file needs: `use
/// smokescreen_rt::proptest::prelude::*;`.
///
/// The glob also binds the name `proptest` itself (both this module and
/// the [`proptest!`](crate::proptest) macro), so
/// `proptest::collection::vec(..)`-style paths keep resolving exactly as
/// they did against the external crate.
pub mod prelude {
    pub use super::{any, collection, Arbitrary, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Asserts a condition inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Declares property tests: each function runs its body against many
/// seeded random cases; a failing case prints its inputs and replay seed
/// before propagating the panic.
#[macro_export]
macro_rules! proptest {
    ($( $(#[$meta:meta])* fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )+) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cases = $crate::proptest::case_count();
                let __base = $crate::proptest::base_seed(stringify!($name));
                $(let $arg = $strat;)+
                for __case in 0..__cases {
                    let __seed = $crate::proptest::case_seed(__base, __case);
                    let mut __rng = $crate::rng::StdRng::seed_from_u64(__seed);
                    $(
                        let $arg = $crate::proptest::Strategy::generate(&$arg, &mut __rng);
                    )+
                    let __inputs = format!(
                        concat!($("\n    ", stringify!($arg), " = {:?}"),+),
                        $(&$arg),+
                    );
                    let __outcome = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(move || $body),
                    );
                    if let ::std::result::Result::Err(__panic) = __outcome {
                        eprintln!(
                            "[smokescreen-rt proptest] {} failed at case {}/{}\n  \
                             replay: SMOKESCREEN_PT_SEED={} SMOKESCREEN_PT_CASES={}\n  \
                             inputs:{}",
                            stringify!($name),
                            __case + 1,
                            __cases,
                            __base,
                            __cases,
                            __inputs,
                        );
                        ::std::panic::resume_unwind(__panic);
                    }
                }
            }
        )+
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strategies_are_deterministic_per_seed() {
        let s = collection::vec((0u32..100).prop_map(f64::from), 2..50);
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        assert_eq!(s.generate(&mut a), s.generate(&mut b));
    }

    #[test]
    fn vec_strategy_respects_bounds() {
        let s = collection::vec(0u32..10, 2..5);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
    }

    #[test]
    fn base_seed_differs_per_test_name() {
        assert_ne!(base_seed("alpha"), base_seed("beta"));
        assert_eq!(base_seed("alpha"), base_seed("alpha"));
    }

    #[test]
    fn any_u64_spans_magnitudes() {
        let s = any::<u64>();
        let mut rng = StdRng::seed_from_u64(3);
        let vals: Vec<u64> = (0..64).map(|_| s.generate(&mut rng)).collect();
        assert!(vals.iter().any(|&v| v > u64::MAX / 2));
        assert!(vals.iter().any(|&v| v < u64::MAX / 2));
    }

    // The macro itself, exercised end-to-end.
    proptest! {
        #[test]
        fn macro_binds_multiple_args(
            xs in collection::vec(0u32..7, 1..20),
            k in 1usize..4,
        ) {
            prop_assert!(xs.iter().all(|&x| x < 7));
            prop_assert!(k >= 1 && k < 4);
            prop_assert_eq!(xs.len(), xs.len());
        }
    }
}
