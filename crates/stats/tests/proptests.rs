//! Property-based tests for the statistical substrate.

use smokescreen_rt::proptest::prelude::*;

use smokescreen_stats::bounds::{clt, ebgs, empirical_bernstein, hoeffding, hoeffding_serfling};
use smokescreen_stats::describe::{Histogram, RunningStats};
use smokescreen_stats::hypergeometric;
use smokescreen_stats::normal;
use smokescreen_stats::estimators::quantile::stein_estimate;
use smokescreen_stats::sample::sample_indices;
use smokescreen_stats::{
    avg_estimate, count_estimate, quantile_estimate, sum_estimate, var_estimate, Extreme,
    MeanKernel, OrderKernel, VarKernel,
};

fn samples() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec((0u32..100).prop_map(f64::from), 2..300)
}

proptest! {
    #[test]
    fn intervals_widen_as_delta_shrinks(data in samples()) {
        let pop = data.len() * 10;
        for f in [
            hoeffding::interval, hoeffding_serfling::interval,
            empirical_bernstein::interval, clt::interval,
        ] {
            let strict = f(&data, pop, 0.01).unwrap();
            let loose = f(&data, pop, 0.20).unwrap();
            prop_assert!(strict.half_width >= loose.half_width - 1e-12);
        }
    }

    #[test]
    fn interval_estimates_are_the_sample_mean(data in samples()) {
        let pop = data.len() * 4;
        let mean = data.iter().sum::<f64>() / data.len() as f64;
        for f in [hoeffding::interval, hoeffding_serfling::interval, clt::interval] {
            let iv = f(&data, pop, 0.05).unwrap();
            prop_assert!((iv.estimate - mean).abs() < 1e-9);
        }
    }

    #[test]
    fn ebgs_estimate_lies_within_its_own_interval(data in samples()) {
        let pop = data.len() * 3;
        let out = ebgs::run(&data, pop, 0.05).unwrap();
        prop_assert!(out.estimate.y_approx.abs() >= out.estimate.lb - 1e-9);
        prop_assert!(out.estimate.y_approx.abs() <= out.estimate.ub + 1e-9);
        prop_assert!(out.estimate.err_b >= 0.0 && out.estimate.err_b <= 1.0 + 1e-12);
    }

    #[test]
    fn avg_bound_monotone_in_confidence(data in samples()) {
        let pop = data.len() * 5;
        let strict = avg_estimate(&data, pop, 0.01).unwrap();
        let loose = avg_estimate(&data, pop, 0.30).unwrap();
        prop_assert!(strict.err_b >= loose.err_b - 1e-12);
    }

    #[test]
    fn quantile_bound_positive_and_estimate_sampled(
        data in samples(),
        r in 0.05f64..0.95,
    ) {
        let pop = data.len() * 2;
        let q = quantile_estimate(&data, pop, r, 0.05, Extreme::Max).unwrap();
        prop_assert!(data.contains(&q.y_approx));
        prop_assert!(q.err_b >= 0.0);
    }

    #[test]
    fn hypergeometric_pmf_normalizes(
        population in 1u64..200,
        successes_frac in 0.0f64..1.0,
        draws_frac in 0.0f64..1.0,
    ) {
        let successes = (population as f64 * successes_frac) as u64;
        let draws = ((population as f64 * draws_frac) as u64).max(1).min(population);
        let total: f64 = (0..=draws)
            .map(|k| hypergeometric::pmf(population, successes, draws, k))
            .sum();
        prop_assert!((total - 1.0).abs() < 1e-8, "total={total}");
    }

    #[test]
    fn normal_cdf_monotone(a in -6.0f64..6.0, b in -6.0f64..6.0) {
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        prop_assert!(normal::phi(lo) <= normal::phi(hi) + 1e-15);
    }

    #[test]
    fn inverse_phi_round_trips(p in 0.0005f64..0.9995) {
        let x = normal::inverse_phi(p);
        prop_assert!((normal::phi(x) - p).abs() < 1e-9);
    }

    #[test]
    fn running_stats_matches_naive(data in samples()) {
        let s = RunningStats::from_slice(&data);
        let mean = data.iter().sum::<f64>() / data.len() as f64;
        let var = data.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / data.len() as f64;
        prop_assert!((s.mean() - mean).abs() < 1e-6);
        prop_assert!((s.variance() - var).abs() < 1e-6);
        prop_assert!(s.min() <= s.max());
        prop_assert!((s.range() - (s.max() - s.min())).abs() < 1e-12);
    }

    #[test]
    fn histogram_tv_is_a_pseudometric(data_a in samples(), data_b in samples()) {
        let mut a = Histogram::new(100);
        let mut b = Histogram::new(100);
        for &v in &data_a { a.record(v); }
        for &v in &data_b { b.record(v); }
        let ab = a.total_variation(&b);
        let ba = b.total_variation(&a);
        prop_assert!((ab - ba).abs() < 1e-12, "symmetry");
        prop_assert!((0.0..=1.0 + 1e-12).contains(&ab));
        prop_assert!(a.total_variation(&a) < 1e-12, "identity");
    }

    #[test]
    fn samples_are_distinct_and_in_range(
        population in 1usize..5_000,
        frac in 0.01f64..1.0,
        seed in any::<u64>(),
    ) {
        let n = ((population as f64 * frac) as usize).clamp(1, population);
        let idx = sample_indices(population, n, seed).unwrap();
        prop_assert_eq!(idx.len(), n);
        let mut sorted = idx.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), n, "duplicates found");
        prop_assert!(idx.iter().all(|&i| i < population));
    }

    // --- Streaming kernels: per-prefix bit-identity with the batch path ---

    #[test]
    fn mean_kernel_bit_identical_to_batch_on_random_prefixes(
        data in samples(),
        extra in 0usize..8_000,
        delta_pct in 1u32..50,
    ) {
        let population = data.len() + extra;
        let delta = f64::from(delta_pct) / 100.0;
        let mut kernel = MeanKernel::new();
        for (i, &v) in data.iter().enumerate() {
            kernel.push(v);
            let prefix = &data[..=i];
            prop_assert_eq!(
                kernel.avg(population, delta).unwrap(),
                avg_estimate(prefix, population, delta).unwrap()
            );
            prop_assert_eq!(
                kernel.sum(population, delta).unwrap(),
                sum_estimate(prefix, population, delta).unwrap()
            );
        }
    }

    #[test]
    fn var_kernel_bit_identical_to_batch_on_random_prefixes(
        data in samples(),
        extra in 0usize..8_000,
    ) {
        let population = data.len() + extra;
        let mut kernel = VarKernel::new();
        for (i, &v) in data.iter().enumerate() {
            kernel.push(v);
            prop_assert_eq!(
                kernel.estimate(population, 0.05).unwrap(),
                var_estimate(&data[..=i], population, 0.05).unwrap()
            );
        }
    }

    #[test]
    fn order_kernel_bit_identical_to_batch_on_random_prefixes(
        data in samples(),
        extra in 0usize..8_000,
        r in 0.01f64..0.99,
    ) {
        let population = data.len() + extra;
        let mut kernel = OrderKernel::with_capacity(data.len());
        for (i, &v) in data.iter().enumerate() {
            kernel.push(v);
            let prefix = &data[..=i];
            for &extreme in &[Extreme::Max, Extreme::Min] {
                prop_assert_eq!(
                    kernel.quantile(population, r, 0.05, extreme).unwrap(),
                    quantile_estimate(prefix, population, r, 0.05, extreme).unwrap()
                );
            }
            prop_assert_eq!(
                kernel.stein(population, r, 0.05).unwrap(),
                stein_estimate(prefix, population, r, 0.05).unwrap()
            );
        }
    }

    #[test]
    fn count_kernel_bit_identical_to_batch_on_random_prefixes(
        data in samples(),
        threshold in 0u32..100,
    ) {
        let population = data.len() * 3;
        let indicators: Vec<f64> =
            data.iter().map(|&v| f64::from(v >= f64::from(threshold))).collect();
        let mut kernel = MeanKernel::new();
        for (i, &v) in indicators.iter().enumerate() {
            kernel.push(v);
            prop_assert_eq!(
                kernel.count(population, 0.05).unwrap(),
                count_estimate(&indicators[..=i], population, 0.05).unwrap()
            );
        }
    }
}

// --- Batched `push_slice`: bit-identity with element-wise `push` ---
//
// The pinned-reduction-order contract (DESIGN.md): for any NaN-free ladder
// and any chunking of the same stream, the batched path must land on the
// same bits as per-element pushes — this is what lets the §3.3.2 sweep
// ingest whole fraction steps without perturbing goldens.

fn ladder(max_len: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec((0u32..100).prop_map(f64::from), 0..max_len + 1)
}

proptest! {
    #[test]
    fn push_slice_bit_identical_at_chunk_boundary_lengths(
        data in ladder(4_096),
    ) {
        // Prefix lengths straddling the 8-lane chunk width, plus the full
        // (up to 4096) random length.
        for len in [0usize, 1, 7, 8, 9, data.len()] {
            let len = len.min(data.len());
            let mut mean_ref = MeanKernel::new();
            let mut var_ref = VarKernel::new();
            let mut order_ref = OrderKernel::new();
            for &v in &data[..len] {
                mean_ref.push(v);
                var_ref.push(v);
                order_ref.push(v);
            }
            let mut mean_sl = MeanKernel::new();
            let mut var_sl = VarKernel::new();
            let mut order_sl = OrderKernel::new();
            mean_sl.push_slice(&data[..len]);
            var_sl.push_slice(&data[..len]);
            order_sl.push_slice(&data[..len]);
            prop_assert_eq!(mean_ref, mean_sl, "mean len={}", len);
            prop_assert_eq!(var_ref, var_sl, "var len={}", len);
            prop_assert_eq!(&order_ref, &order_sl, "order len={}", len);
            let bits = |k: &OrderKernel| -> Vec<u64> {
                k.sorted().iter().map(|v| v.to_bits()).collect()
            };
            prop_assert_eq!(bits(&order_ref), bits(&order_sl), "order bits len={}", len);
        }
    }

    #[test]
    fn push_slice_bit_identical_at_random_split_points(
        data in ladder(1_024),
        split_frac in 0.0f64..=1.0,
    ) {
        // One stream, two slices split anywhere: same bits as one slice,
        // and as per-element pushes.
        let split = ((split_frac * data.len() as f64) as usize).min(data.len());
        let mut mean_ref = MeanKernel::new();
        let mut var_ref = VarKernel::new();
        let mut order_ref = OrderKernel::new();
        for &v in &data {
            mean_ref.push(v);
            var_ref.push(v);
            order_ref.push(v);
        }
        let mut mean_sp = MeanKernel::new();
        let mut var_sp = VarKernel::new();
        let mut order_sp = OrderKernel::new();
        for part in [&data[..split], &data[split..]] {
            mean_sp.push_slice(part);
            var_sp.push_slice(part);
            order_sp.push_slice(part);
        }
        prop_assert_eq!(mean_ref, mean_sp, "mean split={}", split);
        prop_assert_eq!(var_ref, var_sp, "var split={}", split);
        prop_assert_eq!(&order_ref, &order_sp, "order split={}", split);
        if !data.is_empty() {
            let population = data.len() * 2;
            prop_assert_eq!(
                mean_ref.avg(population, 0.05).unwrap(),
                mean_sp.avg(population, 0.05).unwrap()
            );
            prop_assert_eq!(
                var_ref.estimate(population, 0.05).unwrap(),
                var_sp.estimate(population, 0.05).unwrap()
            );
        }
    }

    #[test]
    fn order_merge_byte_identical_to_insertion_on_heavy_ties(
        data in proptest::collection::vec((0u32..4).prop_map(f64::from), 1..2_049),
        split_frac in 0.0f64..=1.0,
        r in 0.05f64..0.95,
    ) {
        // Values drawn from {0,1,2,3}: long runs of exact ties, the model-
        // output regime where merge order could plausibly diverge from
        // insertion order. F̂/quantile estimates and the sorted buffer
        // must match bitwise.
        let split = ((split_frac * data.len() as f64) as usize).min(data.len());
        let mut inserted = OrderKernel::new();
        for &v in &data {
            inserted.push(v);
        }
        let mut merged = OrderKernel::with_capacity(data.len());
        merged.push_slice(&data[..split]);
        merged.push_slice(&data[split..]);
        prop_assert_eq!(&inserted, &merged);
        let bits = |k: &OrderKernel| -> Vec<u64> {
            k.sorted().iter().map(|v| v.to_bits()).collect()
        };
        prop_assert_eq!(bits(&inserted), bits(&merged));
        let population = data.len() * 2;
        for &extreme in &[Extreme::Max, Extreme::Min] {
            prop_assert_eq!(
                inserted.quantile(population, r, 0.05, extreme).unwrap(),
                merged.quantile(population, r, 0.05, extreme).unwrap()
            );
        }
        prop_assert_eq!(
            inserted.stein(population, r, 0.05).unwrap(),
            merged.stein(population, r, 0.05).unwrap()
        );
    }
}
