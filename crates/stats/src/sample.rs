//! Seeded sampling without replacement.
//!
//! Every estimator in the paper assumes frames are drawn **without
//! replacement** (the Hoeffding–Serfling and hypergeometric machinery both
//! depend on it). This module provides:
//!
//! * one-shot uniform samples of `n` indices out of `N`,
//! * [`PrefixSampler`], a random permutation whose prefixes are themselves
//!   uniform without-replacement samples. Nested prefixes are what make the
//!   paper's §3.3.2 reuse strategy sound: the model outputs computed for a
//!   sample at fraction `f` are reused verbatim when the fraction is raised
//!   to `f' > f`.

use smokescreen_rt::rng::StdRng;

use crate::{Result, StatsError};

/// Draws `n` distinct indices uniformly from `0..population` using a partial
/// Fisher–Yates shuffle (O(n) extra memory beyond the index vector).
pub fn sample_indices(population: usize, n: usize, seed: u64) -> Result<Vec<usize>> {
    if n == 0 {
        return Err(StatsError::EmptySample);
    }
    if n > population {
        return Err(StatsError::SampleExceedsPopulation { n, population });
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut indices: Vec<usize> = (0..population).collect();
    for i in 0..n {
        let j = rng.gen_range(i..population);
        indices.swap(i, j);
    }
    indices.truncate(n);
    Ok(indices)
}

/// Converts a sample fraction `f ∈ (0, 1]` over a population of `N` into a
/// sample size, always keeping at least one frame.
pub fn fraction_to_size(population: usize, fraction: f64) -> Result<usize> {
    if !(fraction > 0.0 && fraction <= 1.0) {
        return Err(StatsError::InvalidFraction(fraction));
    }
    Ok(((population as f64 * fraction).round() as usize)
        .max(1)
        .min(population))
}

/// A full random permutation of `0..population` whose prefixes are uniform
/// without-replacement samples.
///
/// `prefix(a) ⊆ prefix(b)` whenever `a ≤ b`, so model outputs computed for
/// smaller fractions can be reused for larger ones — the early-stopping and
/// reuse strategy of §3.3.2.
#[derive(Debug, Clone)]
pub struct PrefixSampler {
    permutation: Vec<usize>,
}

impl PrefixSampler {
    /// Builds the permutation for the given population and seed.
    pub fn new(population: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut permutation: Vec<usize> = (0..population).collect();
        // Fisher–Yates.
        for i in (1..population).rev() {
            let j = rng.gen_range(0..=i);
            permutation.swap(i, j);
        }
        PrefixSampler { permutation }
    }

    /// Population size the permutation covers.
    pub fn population(&self) -> usize {
        self.permutation.len()
    }

    /// The first `n` indices of the permutation (a uniform sample of size
    /// `n` without replacement). `n` is clamped to the population.
    pub fn prefix(&self, n: usize) -> &[usize] {
        &self.permutation[..n.min(self.permutation.len())]
    }

    /// Prefix sized by fraction (at least one frame).
    pub fn prefix_fraction(&self, fraction: f64) -> Result<&[usize]> {
        let n = fraction_to_size(self.population().max(1), fraction)?;
        Ok(self.prefix(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn sample_indices_are_distinct_and_in_range() {
        let s = sample_indices(100, 40, 7).unwrap();
        assert_eq!(s.len(), 40);
        let set: HashSet<_> = s.iter().copied().collect();
        assert_eq!(set.len(), 40);
        assert!(s.iter().all(|&i| i < 100));
    }

    #[test]
    fn sample_indices_full_population() {
        let s = sample_indices(10, 10, 3).unwrap();
        let mut sorted = s.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn sample_indices_rejects_oversample() {
        assert!(matches!(
            sample_indices(5, 6, 0),
            Err(StatsError::SampleExceedsPopulation { .. })
        ));
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        assert_eq!(
            sample_indices(1000, 50, 42).unwrap(),
            sample_indices(1000, 50, 42).unwrap()
        );
        assert_ne!(
            sample_indices(1000, 50, 42).unwrap(),
            sample_indices(1000, 50, 43).unwrap()
        );
    }

    #[test]
    fn fraction_to_size_bounds() {
        assert_eq!(fraction_to_size(1000, 0.1).unwrap(), 100);
        assert_eq!(fraction_to_size(1000, 1.0).unwrap(), 1000);
        assert_eq!(fraction_to_size(1000, 1e-9).unwrap(), 1); // floor of 1
        assert!(fraction_to_size(1000, 0.0).is_err());
        assert!(fraction_to_size(1000, 1.5).is_err());
    }

    #[test]
    fn prefix_sampler_nesting() {
        let p = PrefixSampler::new(500, 9);
        let small: HashSet<_> = p.prefix(50).iter().copied().collect();
        let large: HashSet<_> = p.prefix(200).iter().copied().collect();
        assert!(small.is_subset(&large));
        assert_eq!(p.prefix(1000).len(), 500); // clamped
    }

    #[test]
    fn prefix_is_a_permutation() {
        let p = PrefixSampler::new(64, 1);
        let mut all = p.prefix(64).to_vec();
        all.sort_unstable();
        assert_eq!(all, (0..64).collect::<Vec<_>>());
    }

    #[test]
    fn prefix_sampler_uniformity_smoke() {
        // Index 0's position in the prefix of size 10 should hit ~10% of
        // seeds over many permutations of population 100.
        let mut hits = 0;
        for seed in 0..2000 {
            let p = PrefixSampler::new(100, seed);
            if p.prefix(10).contains(&0) {
                hits += 1;
            }
        }
        let rate = hits as f64 / 2000.0;
        assert!((rate - 0.1).abs() < 0.03, "rate={rate}");
    }
}
