//! Error type for the statistical substrate.

use std::fmt;

/// Errors produced by estimators and bound computations.
#[derive(Debug, Clone, PartialEq)]
pub enum StatsError {
    /// An estimator was invoked on an empty sample.
    EmptySample,
    /// The confidence parameter `δ` must lie strictly inside `(0, 1)`.
    InvalidDelta(f64),
    /// The quantile position `r` must lie strictly inside `(0, 1)`.
    InvalidQuantile(f64),
    /// A sample fraction must lie inside `(0, 1]`.
    InvalidFraction(f64),
    /// The sample is larger than the population it was allegedly drawn from.
    SampleExceedsPopulation {
        /// Observed sample size.
        n: usize,
        /// Claimed population size.
        population: usize,
    },
    /// A value that must be finite was NaN or infinite.
    NonFinite(&'static str),
}

impl fmt::Display for StatsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StatsError::EmptySample => write!(f, "sample is empty"),
            StatsError::InvalidDelta(d) => {
                write!(f, "confidence parameter δ={d} must be in (0, 1)")
            }
            StatsError::InvalidQuantile(r) => {
                write!(f, "quantile position r={r} must be in (0, 1)")
            }
            StatsError::InvalidFraction(x) => {
                write!(f, "sample fraction {x} must be in (0, 1]")
            }
            StatsError::SampleExceedsPopulation { n, population } => write!(
                f,
                "sample size {n} exceeds population size {population} \
                 (sampling is without replacement)"
            ),
            StatsError::NonFinite(what) => write!(f, "{what} must be finite"),
        }
    }
}

impl std::error::Error for StatsError {}
