//! COUNT() estimation (§3.2.3): the number of frames whose predicate holds
//! is the SUM of per-frame indicator outputs, so the count is reduced to
//! the SUM estimator over `{0, 1}` values.

use super::sum::sum_estimate;
use crate::{MeanEstimate, Result, StatsError};

/// Estimates the number of frames satisfying a predicate.
///
/// `indicator_samples` must contain only 0.0/1.0 values — the per-frame
/// predicate outputs on the sampled frames.
pub fn count_estimate(
    indicator_samples: &[f64],
    population: usize,
    delta: f64,
) -> Result<MeanEstimate> {
    if indicator_samples
        .iter()
        .any(|&v| v != 0.0 && v != 1.0)
    {
        return Err(StatsError::NonFinite(
            "COUNT indicator samples (must be 0 or 1)",
        ));
    }
    sum_estimate(indicator_samples, population, delta)
}

/// Convenience: converts raw model outputs to indicators via a threshold
/// predicate `output ≥ k` and estimates the count of qualifying frames
/// (the paper's "number of frames when there are varying levels of cars").
pub fn count_at_least(
    outputs: &[f64],
    threshold: f64,
    population: usize,
    delta: f64,
) -> Result<MeanEstimate> {
    let indicators: Vec<f64> = outputs
        .iter()
        .map(|&v| if v >= threshold { 1.0 } else { 0.0 })
        .collect();
    count_estimate(&indicators, population, delta)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sample::sample_indices;

    #[test]
    fn rejects_non_indicator_values() {
        assert!(count_estimate(&[0.0, 0.5, 1.0], 100, 0.05).is_err());
    }

    #[test]
    fn count_converges_fast_on_high_prevalence() {
        // The paper's COUNT curves flatten at tiny fractions (0.0015 for
        // night-street) because the indicator variance is small when
        // prevalence is near 0.5+ and range is 1.
        let pop: Vec<f64> = (0..20_000)
            .map(|i| if (i * 37) % 10 < 6 { 1.0 } else { 0.0 })
            .collect();
        let truth: f64 = pop.iter().sum();
        let idx = sample_indices(pop.len(), 600, 77).unwrap();
        let s: Vec<f64> = idx.iter().map(|&i| pop[i]).collect();
        let est = count_estimate(&s, pop.len(), 0.05).unwrap();
        assert!(((est.y_approx - truth) / truth).abs() <= est.err_b);
        assert!(est.err_b < 0.35, "err_b={}", est.err_b);
    }

    #[test]
    fn count_at_least_thresholds() {
        let outputs = [0.0, 1.0, 2.0, 3.0, 4.0, 5.0];
        let est = count_at_least(&outputs, 3.0, 6, 0.05).unwrap();
        // Full population sampled: answer should be near-exact (3 frames).
        assert!((est.y_approx - 3.0).abs() < 0.5);
    }
}
