//! SUM() estimation (§3.2.2): `Y_true = N·μ`, so the AVG estimate is scaled
//! by the known video length `N`; relative error — and therefore `err_b` —
//! is unchanged.

use super::avg::avg_estimate;
use crate::{MeanEstimate, Result};

/// Estimates `SUM` over the population from sampled outputs.
///
/// Assumes the total number of frames `N` (`population`) is known before
/// processing, as the paper does.
pub fn sum_estimate(samples: &[f64], population: usize, delta: f64) -> Result<MeanEstimate> {
    Ok(avg_estimate(samples, population, delta)?.scaled(population as f64))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sample::sample_indices;

    #[test]
    fn sum_is_avg_scaled_by_n() {
        let pop: Vec<f64> = (0..3_000).map(|i| ((i * 7) % 11) as f64).collect();
        let idx = sample_indices(pop.len(), 300, 8).unwrap();
        let s: Vec<f64> = idx.iter().map(|&i| pop[i]).collect();
        let avg = avg_estimate(&s, pop.len(), 0.05).unwrap();
        let sum = sum_estimate(&s, pop.len(), 0.05).unwrap();
        assert!((sum.y_approx - avg.y_approx * pop.len() as f64).abs() < 1e-9);
        assert_eq!(sum.err_b, avg.err_b);
    }

    #[test]
    fn bound_covers_true_sum_error() {
        let pop: Vec<f64> = (0..5_000)
            .map(|i| if i % 13 == 0 { 9.0 } else { (i % 4) as f64 })
            .collect();
        let total: f64 = pop.iter().sum();
        let mut covered = 0;
        let trials = 200;
        for t in 0..trials {
            let idx = sample_indices(pop.len(), 250, 900 + t as u64).unwrap();
            let s: Vec<f64> = idx.iter().map(|&i| pop[i]).collect();
            let est = sum_estimate(&s, pop.len(), 0.05).unwrap();
            if ((est.y_approx - total) / total).abs() <= est.err_b {
                covered += 1;
            }
        }
        assert!(covered as f64 / trials as f64 >= 0.95);
    }
}
