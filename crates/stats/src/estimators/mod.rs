//! Aggregate-query answer and error-bound estimators (Section 3.2).
//!
//! Each estimator consumes the per-frame outputs of the vision model on a
//! degraded sample and returns both an approximate query answer and a
//! `1 − δ` upper bound `err_b` on the **relative** analytical error against
//! the answer that naïve execution over all `N` frames would produce.

pub mod avg;
pub mod count;
pub mod kernel;
pub mod quantile;
pub mod repair;
pub mod sum;
pub mod variance;

/// The answer/bound pair produced by the mean-style estimators
/// (AVG, SUM, COUNT, VAR).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeanEstimate {
    /// Approximate query answer `Y_approx`.
    pub y_approx: f64,
    /// Upper bound of the relative error `|Y_approx − Y_true| / |Y_true|`
    /// holding with probability at least `1 − δ`.
    pub err_b: f64,
    /// Lower bound on `|Y_true|` implied by the confidence interval.
    pub lb: f64,
    /// Upper bound on `|Y_true|` implied by the confidence interval.
    pub ub: f64,
    /// Sample size consumed.
    pub n: usize,
}

impl MeanEstimate {
    /// Builds the paper's harmonic-style estimate and symmetric relative
    /// bound from `(LB, UB)` bounds on `|Y_true|` (Theorem 3.1):
    /// `Y = sgn · 2·UB·LB/(UB+LB)`, `err_b = (UB−LB)/(UB+LB)`.
    pub fn from_interval(sign: f64, lb: f64, ub: f64, n: usize) -> Self {
        debug_assert!(lb >= 0.0 && ub >= lb);
        if lb <= 0.0 {
            // Uninformative: Theorem 3.1's LB = 0 case.
            return MeanEstimate {
                y_approx: 0.0,
                err_b: 1.0,
                lb: 0.0,
                ub,
                n,
            };
        }
        MeanEstimate {
            y_approx: sign.signum() * 2.0 * ub * lb / (ub + lb),
            err_b: (ub - lb) / (ub + lb),
            lb,
            ub,
            n,
        }
    }

    /// Scales the estimate by a positive constant (used to lift AVG to SUM:
    /// `Y_sum = Y_avg · N`). Relative error is scale-invariant.
    pub fn scaled(mut self, factor: f64) -> Self {
        debug_assert!(factor > 0.0);
        self.y_approx *= factor;
        self.lb *= factor;
        self.ub *= factor;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_interval_harmonic_identities() {
        let e = MeanEstimate::from_interval(1.0, 2.0, 8.0, 100);
        // 2·8·2/(8+2) = 3.2 ; (8−2)/(8+2) = 0.6
        assert!((e.y_approx - 3.2).abs() < 1e-12);
        assert!((e.err_b - 0.6).abs() < 1e-12);
        // Theorem 3.1: |Y|·(1 + err_b)⁻¹ ≤ LB and |Y|·(1 − err_b)⁻¹ ≥ UB.
        assert!((e.y_approx.abs() - (1.0 + e.err_b) * e.lb).abs() < 1e-12);
        assert!((e.y_approx.abs() - (1.0 - e.err_b) * e.ub).abs() < 1e-12);
    }

    #[test]
    fn from_interval_degenerate_lb_zero() {
        let e = MeanEstimate::from_interval(1.0, 0.0, 5.0, 10);
        assert_eq!(e.y_approx, 0.0);
        assert_eq!(e.err_b, 1.0);
    }

    #[test]
    fn negative_sign_propagates() {
        let e = MeanEstimate::from_interval(-1.0, 1.0, 3.0, 10);
        assert!(e.y_approx < 0.0);
    }

    #[test]
    fn scaling_preserves_relative_error() {
        let e = MeanEstimate::from_interval(1.0, 2.0, 8.0, 100);
        let s = e.scaled(1000.0);
        assert_eq!(s.err_b, e.err_b);
        assert!((s.y_approx - 3200.0).abs() < 1e-9);
    }
}
